.PHONY: verify test build bench-smoke doc clippy

# Tier-1 verification (ROADMAP.md) plus the perf smoke: the bench asserts
# that the arena evaluator and the refinement engine produce byte-identical
# outcomes/partitions to the retained baselines — and that the telemetry
# recorder changes no observable result — exiting non-zero if not. `doc`
# and `clippy` must both come back warning-free.
verify: build test bench-smoke doc clippy

build:
	cargo build --release

test:
	cargo test -q

bench-smoke:
	cargo run --release -q -p dkindex-bench --bin reproduce -- bench-smoke

doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

clippy:
	cargo clippy -q --workspace --all-targets -- -D warnings
