.PHONY: verify test build bench-smoke

# Tier-1 verification (ROADMAP.md) plus the perf smoke: the bench asserts
# that the arena evaluator and the refinement engine produce byte-identical
# outcomes/partitions to the retained baselines, and exits non-zero if not.
verify: build test bench-smoke

build:
	cargo build --release

test:
	cargo test -q

bench-smoke:
	cargo run --release -q -p dkindex-bench --bin reproduce -- bench-smoke
