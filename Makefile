.PHONY: verify test build bench-smoke verify-faults verify-serve doc clippy

# Tier-1 verification (ROADMAP.md) plus the perf smoke: the bench asserts
# that the arena evaluator and the refinement engine produce byte-identical
# outcomes/partitions to the retained baselines — and that the telemetry
# recorder changes no observable result — exiting non-zero if not.
# `verify-faults` sweeps injected snapshot/WAL corruption and fails on any
# panic or silently accepted damage. `verify-serve` re-runs the concurrent
# serving suite (sharded-construction byte-identity, serve-vs-serial
# determinism, racing-reader consistency) in release mode, where thread
# interleavings differ from the debug test run. `doc` and `clippy` must both
# come back warning-free.
verify: build test bench-smoke verify-faults verify-serve doc clippy

build:
	cargo build --release

test:
	cargo test -q

bench-smoke:
	cargo run --release -q -p dkindex-bench --bin reproduce -- bench-smoke

verify-faults:
	cargo run --release -q -p dkindex-bench --bin reproduce -- verify-faults

verify-serve:
	cargo test --release -q -p dkindex-core --test serve

doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

clippy:
	cargo clippy -q --workspace --all-targets -- -D warnings
