.PHONY: verify test build bench-smoke verify-faults doc clippy

# Tier-1 verification (ROADMAP.md) plus the perf smoke: the bench asserts
# that the arena evaluator and the refinement engine produce byte-identical
# outcomes/partitions to the retained baselines — and that the telemetry
# recorder changes no observable result — exiting non-zero if not.
# `verify-faults` sweeps injected snapshot/WAL corruption and fails on any
# panic or silently accepted damage. `doc` and `clippy` must both come back
# warning-free.
verify: build test bench-smoke verify-faults doc clippy

build:
	cargo build --release

test:
	cargo test -q

bench-smoke:
	cargo run --release -q -p dkindex-bench --bin reproduce -- bench-smoke

verify-faults:
	cargo run --release -q -p dkindex-bench --bin reproduce -- verify-faults

doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

clippy:
	cargo clippy -q --workspace --all-targets -- -D warnings
