.PHONY: verify test build bench-smoke verify-faults verify-serve verify-churn verify-net verify-crash verify-tune verify-analysis doc clippy

# Tier-1 verification (ROADMAP.md) plus the perf smoke: the bench asserts
# that the arena evaluator and the refinement engine produce byte-identical
# outcomes/partitions to the retained baselines — and that the telemetry
# recorder changes no observable result — exiting non-zero if not.
# `verify-faults` sweeps injected snapshot/WAL corruption and fails on any
# panic or silently accepted damage. `verify-serve` re-runs the concurrent
# serving suite (sharded-construction byte-identity, serve-vs-serial
# determinism, racing-reader consistency) in release mode, where thread
# interleavings differ from the debug test run. `verify-churn` runs a bounded
# sustained-churn stream (large update batches under concurrent readers) and
# fails on nondeterminism vs the serial replay or on a COW regression where
# publishes copy more than 10% of the block store on average
# (ARCHITECTURE.md §5). `verify-net` drives the DKNP network front-end over
# loopback TCP — mixed query/update workload plus an induced-overload window —
# and fails if the drained state diverges from the serial replay of the
# admitted updates, if any refusal was not a typed SHED frame, or if
# admission overshot the staleness threshold (docs/PROTOCOL.md,
# ARCHITECTURE.md §7). `verify-crash` is the crash-recovery torture gate for
# the v2 write-ahead log (docs/PROTOCOL.md §8): it cuts the log at every
# byte, fails every group commit's fsync, tears every batch write at every
# offset, and kills a live logged server at seeded random commits — failing
# if any acknowledged update does not replay byte-identically after
# snapshot + WAL recovery, if any crash view surfaces a partial batch, or
# if anything panics. `verify-tune` serves a Zipf-skewed query mix that
# flips to a different pool halfway through a WAL-logged run with the
# in-loop adaptive tuner on (ARCHITECTURE.md §8) — failing if the p99 query
# cost does not re-converge within the bounded round count, if the tuned
# state diverges from the serial replay of the recorded ops (tuner ops
# included), or if the WAL replay diverges. `doc` and `clippy` must both
# come back warning-free, and `verify-analysis` proves the determinism /
# oracle-purity / panic-freedom / unsafe-hygiene contracts plus the
# flow-aware guard-discipline / must-consume / wire-totality /
# metric-coherence contracts at lint time, and model-checks the serve epoch
# protocol including the tuner-in-the-loop extension (ARCHITECTURE.md §6).
verify: build test bench-smoke verify-faults verify-serve verify-churn verify-net verify-crash verify-tune doc clippy verify-analysis

build:
	cargo build --release

test:
	cargo test -q

bench-smoke:
	cargo run --release -q -p dkindex-bench --bin reproduce -- bench-smoke

verify-faults:
	cargo run --release -q -p dkindex-bench --bin reproduce -- verify-faults

verify-serve:
	cargo test --release -q -p dkindex-core --test serve

verify-churn:
	cargo run --release -q -p dkindex-bench --bin reproduce -- verify-churn

verify-net:
	cargo run --release -q -p dkindex-bench --bin reproduce -- verify-net

verify-crash:
	cargo run --release -q -p dkindex-bench --bin reproduce -- verify-crash

verify-tune:
	cargo run --release -q -p dkindex-bench --bin reproduce -- verify-tune

# Static analysis + model checking (ARCHITECTURE.md §6):
#   1. the dkindex-analyze lint pass over the whole workspace — all eight
#      rules, including the flow-aware guard-discipline / must-consume /
#      wire-totality / metric-coherence checks — nonzero exit on any
#      unjustified contract violation;
#   2. exhaustive-interleaving model tests for the serve epoch protocol and
#      the tuner-in-the-loop protocol (WAL poisoning, durable acks, monitor
#      feeds, tuner self-enqueue) in crates/core/tests/loom_serve.rs on the
#      offline loom stand-in;
#   3. Miri over the core suite, only when the toolchain component is
#      installed — the offline image has no rustup, so absence is a skip
#      with a notice, not a failure.
verify-analysis:
	cargo run --release -q -p dkindex-analyze -- --root .
	cargo test --release -q -p dkindex-core --test loom_serve
	@if cargo miri --version >/dev/null 2>&1; then \
		cargo miri test -p dkindex-core --lib; \
	else \
		echo "verify-analysis: miri not installed; skipping UB pass (install with: rustup +nightly component add miri)"; \
	fi

doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

# The clippy gate is pinned to an explicit lint-group set instead of the
# moving "whatever this toolchain's clippy warns about" target: `-D warnings`
# still hard-fails rustc warnings, `-A clippy::all` resets clippy, and the
# five groups that encode real contracts (correctness, suspicious,
# complexity, perf, style) are re-denied explicitly. Toolchain bumps that
# add lints to other groups (nursery, pedantic, restriction) cannot break
# the build; additions to the denied groups are deliberate signal.
CLIPPY_LINTS = -D warnings -A clippy::all \
	-D clippy::correctness -D clippy::suspicious -D clippy::complexity \
	-D clippy::perf -D clippy::style

clippy:
	cargo clippy -q --workspace --all-targets -- $(CLIPPY_LINTS)
