//! Fixture: the consumy discard carrying a justified allow — the tree
//! must lint clean.
#![forbid(unsafe_code)]

use std::sync::mpsc::Sender;

/// Best-effort ack on a shutdown path.
pub fn ack(tx: &Sender<u64>, epoch: u64) {
    // analyze: allow(must-consume) — fixture: a gone receiver means the
    // submitter stopped waiting; dropping the outcome is the contract.
    let _ = tx.send(epoch);
}
