//! Fixture: the same hash-order fold as the bad tree, suppressed by a
//! justified allow comment directly above the flagged line.
#![forbid(unsafe_code)]

use std::collections::HashMap;

/// Concatenates entries in hash order — justified here because the fixture
/// only exercises the escape hatch, not because the fold is sound.
pub fn fingerprint(counts: &HashMap<String, u32>) -> String {
    let mut out = String::new();
    // analyze: allow(nondeterministic-iter) — fixture: exercises the justified-allow escape hatch
    for (label, count) in counts {
        out.push_str(label);
        out.push(':');
        out.push_str(&count.to_string());
        out.push(';');
    }
    out
}
