//! Fixture: the guardy violation carrying a justified allow — the tree
//! must lint clean.
#![forbid(unsafe_code)]

use std::fs::File;
use std::sync::RwLock;

/// The current epoch and its backing file.
pub struct Epochs {
    current: RwLock<u64>,
    file: File,
}

impl Epochs {
    /// Publishes under the write guard, fsync included, on purpose.
    pub fn publish(&self, next: u64) -> std::io::Result<()> {
        let mut guard = self.current.write().unwrap();
        // analyze: allow(guard-discipline) — fixture: single-writer store,
        // readers tolerate the stall and the guard pins the epoch the
        // fsync certifies.
        self.file.sync_all()?;
        *guard = next;
        Ok(())
    }
}
