//! Fixture metric registry: the ARCH.md gap carries a justified allow —
//! the tree must lint clean.

/// Minimal counter mirror of the real telemetry type.
pub struct Counter {
    /// Registry name.
    pub name: &'static str,
}

impl Counter {
    /// Const-constructs a named counter.
    pub const fn new(name: &'static str) -> Counter {
        Counter { name }
    }
}

/// Maintenance-loop ticks.
pub static SERVE_TICKS: Counter = Counter::new("serve.ticks");
// analyze: allow(metric-coherence) — fixture: internal debugging counter,
// intentionally kept out of the operator-facing table.
/// Batches skipped while poisoned.
pub static SERVE_SKIPS: Counter = Counter::new("serve.skips");

/// Every counter, for the STATS reader.
pub fn counters() -> [&'static Counter; 2] {
    [&SERVE_TICKS, &SERVE_SKIPS]
}
