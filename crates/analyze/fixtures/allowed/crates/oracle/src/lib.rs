//! Fixture: a pure oracle — computes its answer from first principles and
//! never touches the fast path. `oracle-purity` deliberately has no allow
//! escape: the only fix is removing the dependency, as done here.
#![forbid(unsafe_code)]

/// Independent reference fold, free of the engine it certifies.
pub fn reference_fold(values: &[u32]) -> u32 {
    let mut total = 0u32;
    for v in values {
        total = total.wrapping_add(*v);
    }
    total
}
