//! Fixture: the same unwrap as the bad tree, justified with the invariant
//! that makes it infallible.
#![forbid(unsafe_code)]

/// Reads the length header of a frame the caller promises is non-empty.
pub fn header_len(bytes: &[u8]) -> usize {
    debug_assert!(!bytes.is_empty());
    // analyze: allow(panic-path) — caller guarantees a non-empty frame, checked above in debug builds
    let first = bytes.first().unwrap();
    usize::from(*first)
}
