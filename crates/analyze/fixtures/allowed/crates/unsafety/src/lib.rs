//! Fixture: the same unchecked read as the bad tree, carrying the SAFETY
//! comment that states the invariant.

/// Reads the first byte of a frame already validated as non-empty.
pub fn first_unchecked(bytes: &[u8]) -> u8 {
    debug_assert!(!bytes.is_empty());
    // SAFETY: every caller validates the frame header first, so the slice
    // is non-empty and index 0 is in bounds.
    unsafe { *bytes.get_unchecked(0) }
}
