//! Fixture CLI error surface: consistent with OPERATIONS.md.

/// Maps every error class to its process exit code.
pub fn exit_code() -> i32 {
    2
}
