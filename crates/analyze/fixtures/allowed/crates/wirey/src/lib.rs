//! Fixture: the wirey doc-anchor gap carrying a justified allow — the
//! tree must lint clean.
#![forbid(unsafe_code)]

pub mod cli;

/// Liveness-probe request opcode.
pub const OP_PING: u8 = 0x12;
// analyze: allow(wire-totality) — fixture: PONG is documented inline in
// the PING section; a dedicated anchor would duplicate it.
/// Liveness-probe response opcode.
pub const OP_PONG: u8 = 0x22;

/// Encode-side dispatch over every opcode.
pub fn opcode(ping: bool) -> u8 {
    if ping {
        OP_PING
    } else {
        OP_PONG
    }
}

/// Decode-side dispatch over every opcode.
pub fn decode_body(op: u8) -> bool {
    op == OP_PING || op == OP_PONG
}
