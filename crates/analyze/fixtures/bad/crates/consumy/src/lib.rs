//! Fixture: a durability ack discarded with `let _` — the `send` below
//! must be flagged by must-consume exactly once.
#![forbid(unsafe_code)]

use std::sync::mpsc::Sender;

/// Acks an epoch while silently losing the send outcome: the submitter
/// may never learn its op was dropped.
pub fn ack(tx: &Sender<u64>, epoch: u64) {
    let _ = tx.send(epoch);
}
