//! Fixture: a byte-identity-critical module that folds hash-map entries in
//! bucket order. The `for` loop below must be flagged exactly once.
#![forbid(unsafe_code)]

use std::collections::HashMap;

/// Concatenates entries in whatever order the hash map yields them, so two
/// runs with different hash seeds produce different bytes.
pub fn fingerprint(counts: &HashMap<String, u32>) -> String {
    let mut out = String::new();
    for (label, count) in counts {
        out.push_str(label);
        out.push(':');
        out.push_str(&count.to_string());
        out.push(';');
    }
    out
}
