//! Fixture: a blocking fsync while the epoch write guard is live — the
//! `sync_all` below must be flagged by guard-discipline exactly once.
#![forbid(unsafe_code)]

use std::fs::File;
use std::sync::RwLock;

/// The current epoch and its backing file.
pub struct Epochs {
    current: RwLock<u64>,
    file: File,
}

impl Epochs {
    /// Publishes while holding the write guard across the fsync, stalling
    /// every reader behind disk latency.
    pub fn publish(&self, next: u64) -> std::io::Result<()> {
        let mut guard = self.current.write().unwrap();
        self.file.sync_all()?;
        *guard = next;
        Ok(())
    }
}
