//! Fixture crate whose call sites use both registry counters, so neither
//! is an orphan; the bad tree's gap is the ARCH.md table.
#![forbid(unsafe_code)]

pub mod registry;

/// Touches both counters the way an instrumented hot path would.
pub fn observe() -> (&'static str, &'static str) {
    (registry::SERVE_TICKS.name, registry::SERVE_SKIPS.name)
}
