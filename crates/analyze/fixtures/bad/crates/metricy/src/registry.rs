//! Fixture metric registry: `serve.skips` is declared, registered, and
//! used, but missing from the ARCH.md metric table — metric-coherence
//! must flag it exactly once.

/// Minimal counter mirror of the real telemetry type.
pub struct Counter {
    /// Registry name.
    pub name: &'static str,
}

impl Counter {
    /// Const-constructs a named counter.
    pub const fn new(name: &'static str) -> Counter {
        Counter { name }
    }
}

/// Maintenance-loop ticks.
pub static SERVE_TICKS: Counter = Counter::new("serve.ticks");
/// Batches skipped while poisoned (undocumented in ARCH.md).
pub static SERVE_SKIPS: Counter = Counter::new("serve.skips");

/// Every counter, for the STATS reader.
pub fn counters() -> [&'static Counter; 2] {
    [&SERVE_TICKS, &SERVE_SKIPS]
}
