//! Fixture: a reference oracle that imports the fast-path engine it is the
//! trusted baseline for. The `use` below must be flagged exactly once.
#![forbid(unsafe_code)]

use fast_path::FastEngine;

/// "Reference" fold that secretly defers to the engine under test — the
/// exact dependency inversion `oracle-purity` exists to reject.
pub fn reference_fold(values: &[u32]) -> u32 {
    FastEngine::new().fold(values)
}
