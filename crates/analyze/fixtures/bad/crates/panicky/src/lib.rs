//! Fixture: recovery-path code that panics on malformed input instead of
//! returning a typed error. The `.unwrap()` must be flagged exactly once.
#![forbid(unsafe_code)]

/// Reads the length header of a frame; panics when the input is empty.
pub fn header_len(bytes: &[u8]) -> usize {
    let first = bytes.first().unwrap();
    usize::from(*first)
}
