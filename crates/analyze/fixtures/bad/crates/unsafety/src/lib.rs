//! Fixture: an unchecked read with no safety comment. Must be flagged
//! exactly once; the crate is exempt from the forbid requirement because
//! it genuinely uses unsafe code.

/// Reads the first byte without bounds checks and without stating the
/// invariant that makes the access sound.
pub fn first_unchecked(bytes: &[u8]) -> u8 {
    unsafe { *bytes.get_unchecked(0) }
}
