//! Fixture CLI error surface: the exit codes here must match the
//! OPERATIONS.md table (they do — the bad tree's gap is the opcode doc).

/// Maps every error class to its process exit code.
pub fn exit_code() -> i32 {
    2
}
