//! Fixture: a wire codec with a doc-anchor gap — `OP_PONG` has an encode
//! arm, a decode arm, and a golden byte test, but no PROTOCOL.md anchor;
//! wire-totality must flag it exactly once.
#![forbid(unsafe_code)]

pub mod cli;

/// Liveness-probe request opcode.
pub const OP_PING: u8 = 0x12;
/// Liveness-probe response opcode (missing its PROTOCOL.md anchor).
pub const OP_PONG: u8 = 0x22;

/// Encode-side dispatch over every opcode.
pub fn opcode(ping: bool) -> u8 {
    if ping {
        OP_PING
    } else {
        OP_PONG
    }
}

/// Decode-side dispatch over every opcode.
pub fn decode_body(op: u8) -> bool {
    op == OP_PING || op == OP_PONG
}
