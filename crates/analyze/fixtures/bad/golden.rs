// Golden bytes for the fixture codec: both opcodes are pinned.
#[test]
fn golden_frames() {
    assert_eq!(wirey::opcode(true), 0x12);
    assert_eq!(wirey::opcode(false), 0x22);
}
