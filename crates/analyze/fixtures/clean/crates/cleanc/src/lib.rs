//! Fixture: a module placed inside every rule scope that satisfies every
//! contract — ordered containers, typed errors, no unsafe, and the forbid
//! attribute making that compiler-enforced.
#![forbid(unsafe_code)]

pub mod cli;
pub mod protocol;
pub mod registry;

use std::collections::BTreeMap;
use std::fs::File;
use std::sync::mpsc::{SendError, Sender};
use std::sync::{PoisonError, RwLock};

/// Deterministic fingerprint: `BTreeMap` iterates in key order, so the
/// bytes are identical across runs.
pub fn fingerprint(counts: &BTreeMap<String, u32>) -> String {
    let mut out = String::new();
    for (label, count) in counts {
        out.push_str(label);
        out.push(':');
        out.push_str(&count.to_string());
        out.push(';');
    }
    out
}

/// Reads the length header of a frame, degrading through a typed error.
pub fn header_len(bytes: &[u8]) -> Result<usize, MissingHeader> {
    match bytes.first() {
        Some(first) => Ok(usize::from(*first)),
        None => Err(MissingHeader),
    }
}

/// The frame had no header byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissingHeader;

/// Publishes an epoch the disciplined way: fsync *before* taking the
/// write guard, which then lives only for the pointer store.
pub fn publish(current: &RwLock<u64>, file: &File, next: u64) -> std::io::Result<()> {
    file.sync_all()?;
    let mut guard = current.write().unwrap_or_else(PoisonError::into_inner);
    *guard = next;
    Ok(())
}

/// Acks an epoch and propagates the send outcome to the caller.
pub fn ack(tx: &Sender<u64>, epoch: u64) -> Result<(), SendError<u64>> {
    tx.send(epoch)
}

/// Reads the registered counter, marking it live at a call site.
pub fn tick_name() -> &'static str {
    registry::SERVE_TICKS.name
}
