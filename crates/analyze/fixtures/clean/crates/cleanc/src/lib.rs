//! Fixture: a module placed inside every rule scope that satisfies every
//! contract — ordered containers, typed errors, no unsafe, and the forbid
//! attribute making that compiler-enforced.
#![forbid(unsafe_code)]

use std::collections::BTreeMap;

/// Deterministic fingerprint: `BTreeMap` iterates in key order, so the
/// bytes are identical across runs.
pub fn fingerprint(counts: &BTreeMap<String, u32>) -> String {
    let mut out = String::new();
    for (label, count) in counts {
        out.push_str(label);
        out.push(':');
        out.push_str(&count.to_string());
        out.push(';');
    }
    out
}

/// Reads the length header of a frame, degrading through a typed error.
pub fn header_len(bytes: &[u8]) -> Result<usize, MissingHeader> {
    match bytes.first() {
        Some(first) => Ok(usize::from(*first)),
        None => Err(MissingHeader),
    }
}

/// The frame had no header byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissingHeader;
