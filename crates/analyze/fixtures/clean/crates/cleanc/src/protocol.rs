//! Fixture codec with total wire coverage: encode arm, decode arm, golden
//! byte test, and PROTOCOL.md anchor all present.

/// Liveness-probe request opcode.
pub const OP_PING: u8 = 0x12;

/// Encode-side dispatch.
pub fn opcode() -> u8 {
    OP_PING
}

/// Decode-side dispatch.
pub fn decode_body(op: u8) -> bool {
    op == OP_PING
}
