//! Fixture metric registry: declared, registered, used, and documented.

/// Minimal counter mirror of the real telemetry type.
pub struct Counter {
    /// Registry name.
    pub name: &'static str,
}

impl Counter {
    /// Const-constructs a named counter.
    pub const fn new(name: &'static str) -> Counter {
        Counter { name }
    }
}

/// Maintenance-loop ticks.
pub static SERVE_TICKS: Counter = Counter::new("serve.ticks");

/// Every counter, for the STATS reader.
pub fn counters() -> [&'static Counter; 1] {
    [&SERVE_TICKS]
}
