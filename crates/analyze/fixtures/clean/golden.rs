// Golden bytes for the fixture codec.
#[test]
fn golden_frames() {
    assert_eq!(cleanc::protocol::opcode(), 0x12);
}
