//! Fixture: a connection handler that drains per-connection reply queues
//! in hash-bucket order and unwraps a missing queue. Mirrors the real
//! `dkindex_server::conn` module path so the repository rule tables scope
//! onto it: the `for` loop and the `.unwrap()` must each be flagged.

use std::collections::HashMap;

/// Flushes queued reply frames in whatever order the hash map yields the
/// connections, so two servers with different hash seeds write replies in
/// different orders.
pub fn flush_replies(queues: &HashMap<u64, Vec<Vec<u8>>>) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for (_conn, frames) in queues {
        out.extend_from_slice(frames);
    }
    out
}

/// Fetches a connection's reply queue; panics when the id is unknown.
pub fn queue_of(queues: &HashMap<u64, Vec<Vec<u8>>>, id: u64) -> &Vec<Vec<u8>> {
    queues.get(&id).unwrap()
}
