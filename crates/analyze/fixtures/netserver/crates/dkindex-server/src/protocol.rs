//! Fixture: a frame encoder that serializes per-opcode payload sizes in
//! hash-bucket order and indexes past the end of a short body. Mirrors the
//! real `dkindex_server::protocol` module path so the repository rule
//! tables scope onto it: the `for` loop and the slice indexing must each
//! be flagged.

use std::collections::HashMap;

/// Serializes the opcode size table in whatever order the hash map yields
/// it, so two encoders with different hash seeds write different bytes.
pub fn size_table_bytes(sizes: &HashMap<u8, u32>) -> Vec<u8> {
    let mut out = Vec::new();
    for (opcode, size) in sizes {
        out.push(*opcode);
        out.extend_from_slice(&size.to_le_bytes());
    }
    out
}

/// Reads the opcode byte of a frame body; panics when the body is empty.
pub fn opcode_of(body: &[u8]) -> u8 {
    body[0]
}
