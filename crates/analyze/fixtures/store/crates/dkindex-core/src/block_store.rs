//! Fixture: a block store whose sharing census iterates a hash set of
//! touched block ids in bucket order and indexes past the end on a bad id.
//! Mirrors the real `dkindex_core::block_store` module path so the
//! repository rule tables scope onto it: the `for` loop and the slice
//! indexing must each be flagged.

use std::collections::HashSet;

/// Serializes touched block ids in hash-bucket order: two runs with
/// different hash seeds produce different bytes.
pub fn touched_bytes(touched: &HashSet<usize>) -> Vec<u8> {
    let mut out = Vec::new();
    for id in touched {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out
}

/// Looks up a block label; panics when `id` is out of range.
pub fn label_of(labels: &[u32], id: usize) -> u32 {
    labels[id]
}
