//! Fixture: a COW segment column whose rewrite pass iterates a hash map in
//! bucket order and panics on an empty segment. Mirrors the real
//! `dkindex_graph::segvec` module path so the repository rule tables scope
//! onto it: the `for` loop and the `.unwrap()` must each be flagged.

use std::collections::HashMap;

/// Rewrites dirty segments in whatever order the hash map yields them, so
/// two publishes with different hash seeds copy segments in different
/// orders.
pub fn rewrite_dirty(dirty: &HashMap<usize, Vec<u32>>) -> Vec<u32> {
    let mut out = Vec::new();
    for (_seg, values) in dirty {
        out.extend_from_slice(values);
    }
    out
}

/// Reads the first element of a segment; panics when the segment is empty.
pub fn first_of(segment: &[u32]) -> u32 {
    *segment.first().unwrap()
}
