//! Fixture: a load miner that folds query weights in hash-bucket order
//! and indexes the first query of an empty window. Mirrors the real
//! `dkindex_core::mining` module path so the repository rule tables scope
//! onto it: the `for` loop and the slice indexing must each be flagged —
//! mining in hash order would derive different requirements from the same
//! window on different runs, and a panic on an empty window would crash
//! the live tuner instead of holding.

use std::collections::HashMap;

/// Sums per-label support in whatever order the hash map yields entries,
/// so ties between labels resolve differently across runs.
pub fn fold_support(weights: &HashMap<String, u64>) -> Vec<(String, u64)> {
    let mut folded = Vec::new();
    for (label, w) in weights {
        folded.push((label.clone(), *w));
    }
    folded
}

/// Reads the dominant query of a harvested window; panics when the
/// window is empty (an empty window must be a hold, never a panic).
pub fn dominant(window: &[(String, u64)]) -> &(String, u64) {
    &window[0]
}
