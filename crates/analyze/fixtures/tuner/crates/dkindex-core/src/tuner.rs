//! Fixture: a tuning planner that walks its per-label requirement map in
//! hash-bucket order and unwraps a label lookup. Mirrors the real
//! `dkindex_core::tuner` module path so the repository rule tables scope
//! onto it: the `for` loop and the `.unwrap()` must each be flagged — a
//! tuner that plans in hash order would enqueue different
//! `SetRequirements` ops on different runs, breaking the recorded-op
//! replay oracle, and a panicking plan would take the maintenance thread
//! down with it.

use std::collections::HashMap;

/// Plans promotions in whatever order the hash map yields labels, so two
/// runs over the same window enqueue differently-ordered requirement sets.
pub fn plan_promotions(mined: &HashMap<String, usize>) -> Vec<(String, usize)> {
    let mut plan = Vec::new();
    for (label, k) in mined {
        plan.push((label.clone(), *k));
    }
    plan
}

/// Looks up one label's mined requirement; panics when the label was
/// never observed in the window.
pub fn mined_of(mined: &HashMap<String, usize>, label: &str) -> usize {
    *mined.get(label).unwrap()
}
