//! Fixture: a bare allow on a discarded send — the escape hatch demands a
//! reason, so must-consume must still fire.
#![forbid(unsafe_code)]

use std::sync::mpsc::Sender;

/// Discards the send outcome behind an allow that explains nothing.
pub fn ack(tx: &Sender<u64>, epoch: u64) {
    // analyze: allow(must-consume)
    let _ = tx.send(epoch);
}
