//! Fixture: an allow comment with no justification — the escape hatch
//! demands a reason, so this must still fail.
#![forbid(unsafe_code)]

/// Panics on empty input, with a bare allow that explains nothing.
pub fn header_len(bytes: &[u8]) -> usize {
    // analyze: allow(panic-path)
    let first = bytes.first().unwrap();
    usize::from(*first)
}
