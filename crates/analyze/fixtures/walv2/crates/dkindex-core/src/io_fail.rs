//! Fixture: a fail-point disk that replays its planned failures in
//! hash-bucket order and unwraps a missing plan entry. Mirrors the real
//! `dkindex_core::io_fail` module path so the repository rule tables
//! scope onto it: the `for` loop and the `.unwrap()` must each be
//! flagged — a nondeterministic or panicking fail-point layer would make
//! the crash torture harness unreproducible.

use std::collections::HashMap;

/// Applies planned sync failures in whatever order the hash map yields
/// them, so two runs with different hash seeds fail different syncs.
pub fn apply_plans(plans: &HashMap<u64, bool>) -> Vec<u64> {
    let mut failed = Vec::new();
    for (sync, fail) in plans {
        if *fail {
            failed.push(*sync);
        }
    }
    failed
}

/// Fetches the plan for one sync index; panics when the index is
/// unplanned.
pub fn plan_of(plans: &HashMap<u64, bool>, sync: u64) -> bool {
    *plans.get(&sync).unwrap()
}
