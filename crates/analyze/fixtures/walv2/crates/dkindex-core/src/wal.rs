//! Fixture: a v2 WAL encoder that writes its record-tag size table in
//! hash-bucket order and indexes past the end of a short record. Mirrors
//! the real `dkindex_core::wal` module path so the repository rule tables
//! scope onto it: the `for` loop and the slice indexing must each be
//! flagged — a WAL that encodes in hash order or panics on a torn record
//! would break the crash-recovery contract silently.

use std::collections::HashMap;

/// Serializes the per-tag body-length table in whatever order the hash
/// map yields it, so two writers with different hash seeds produce
/// different log bytes.
pub fn tag_table_bytes(lens: &HashMap<u8, u32>) -> Vec<u8> {
    let mut out = Vec::new();
    for (tag, len) in lens {
        out.push(*tag);
        out.extend_from_slice(&len.to_le_bytes());
    }
    out
}

/// Reads the tag byte of a record body; panics when the body is empty
/// (a torn tail must be a typed error, never a panic).
pub fn tag_of(body: &[u8]) -> u8 {
    body[0]
}
