//! Per-function control-flow/scope model — the first of the two
//! flow-analysis substrates (the other is [`crate::symbols`]).
//!
//! The token-level rules of PR 5 ask "does this token appear?"; the
//! contract rules of this PR ask "what is *live* when this call runs?".
//! This module recovers just enough structure from the token stream to
//! answer that: every `fn` item with its body range and return type, every
//! `let` binding with its initializer range and the brace scope it lives
//! to, and every call site with its callee name. No types, no expressions
//! — brace- and paren-matching over [`crate::lexer::Tok`]s, which is
//! exactly enough for guard-liveness and consumption tracking and keeps
//! the analyzer dependency-free.

use crate::lexer::{Tok, TokKind};
use crate::model::{matching_brace, SourceFile};
use crate::rules::KEYWORDS;

/// One `fn` item: signature facts plus the flow facts of its body.
pub struct FnModel {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body: `(open_brace_idx, idx_past_matching_close)`.
    pub body: (usize, usize),
    /// Return-type text (tokens after `->` joined), `""` for `()`.
    pub ret: String,
    /// `let` bindings in source order.
    pub lets: Vec<LetBinding>,
    /// Call sites in source order (macros excluded).
    pub calls: Vec<CallSite>,
}

/// One `let` statement inside a function body.
pub struct LetBinding {
    /// Lower-case / `_`-prefixed identifiers bound by the pattern (the
    /// names a later statement could use). Empty for `let _ = ...`.
    pub names: Vec<String>,
    /// The pattern is exactly `_` (possibly `mut`): an explicit discard.
    pub is_discard: bool,
    /// 1-based line of the `let` keyword.
    pub line: u32,
    /// Token range of the initializer: `(first_tok, idx_of_terminator)`.
    pub init: (usize, usize),
    /// Index just past the closing brace of the innermost block the
    /// binding lives in — its drop point, absent an explicit `drop`.
    pub scope_end: usize,
}

/// One call site: `callee(...)` or `recv.callee(...)`.
pub struct CallSite {
    /// Callee name (last path segment).
    pub callee: String,
    /// Preceded by `.` — a method call.
    pub is_method: bool,
    /// The argument list is empty (`callee()`): distinguishes
    /// `RwLock::write()` lock acquisition from `io::Write::write(buf)`.
    pub empty_args: bool,
    /// 1-based line of the callee identifier.
    pub line: u32,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// Token index of the opening `(`.
    pub args_open: usize,
}

impl FnModel {
    /// Call sites whose callee token lies in `range` (init ranges, guard
    /// live ranges).
    pub fn calls_in(&self, range: (usize, usize)) -> impl Iterator<Item = &CallSite> {
        self.calls
            .iter()
            .filter(move |c| c.tok >= range.0 && c.tok < range.1)
    }
}

/// Extract every `fn` item of `file` (test code excluded).
pub fn functions(file: &SourceFile) -> Vec<FnModel> {
    let toks = &file.toks;
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "fn" && !file.in_test_code(i) {
            if let Some((model, next)) = parse_fn(toks, i) {
                i = next;
                fns.push(model);
                continue;
            }
        }
        i += 1;
    }
    fns
}

/// Parse the `fn` at token `i`; returns the model and the index past its
/// body. `None` for bodyless declarations (trait methods, extern fns).
fn parse_fn(toks: &[Tok], i: usize) -> Option<(FnModel, usize)> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Find the body `{` (or a `;` meaning no body), tracking nesting so a
    // default argument or where-bound cannot fool us.
    let mut j = i + 2;
    let mut depth = 0isize;
    let mut arrow_at: Option<usize> = None;
    let open = loop {
        let t = toks.get(j)?;
        match t.text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            "{" if depth <= 0 => break j,
            ";" if depth <= 0 => return None,
            // `->` lexes as two tokens; consume both so the `>` does not
            // decrement depth (which would surface the `;` of an array
            // return type like `[&'static T; 2]` at depth 0).
            "-" if toks.get(j + 1).is_some_and(|n| n.text == ">") => {
                if depth <= 0 {
                    arrow_at = Some(j + 2);
                }
                j += 1;
            }
            _ => {}
        }
        j += 1;
    };
    let close = matching_brace(toks, open);
    let ret = arrow_at
        .map(|start| {
            // Joined without spaces — rules match on substrings
            // (`Result`, `DurableAck`), not exact renderings.
            let mut out = String::new();
            for t in &toks[start..open] {
                if t.text == "where" {
                    break;
                }
                out.push_str(&t.text);
            }
            out
        })
        .unwrap_or_default();
    let (lets, calls) = body_facts(toks, open, close);
    Some((
        FnModel {
            name: name_tok.text.clone(),
            line: toks[i].line,
            body: (open, close),
            ret,
            lets,
            calls,
        },
        close,
    ))
}

/// Collect the `let` bindings and call sites of a body range.
fn body_facts(toks: &[Tok], open: usize, close: usize) -> (Vec<LetBinding>, Vec<CallSite>) {
    let mut lets = Vec::new();
    let mut calls = Vec::new();
    // Stack of open-brace indices: the innermost enclosing block of any
    // point is the top of the stack.
    let mut braces: Vec<usize> = Vec::new();
    let mut i = open;
    while i < close {
        match toks[i].text.as_str() {
            "{" => braces.push(i),
            "}" => {
                braces.pop();
            }
            "let" => {
                // `if let` / `while let` bind a pattern, not a named value
                // the flow rules track: their "initializer" is a scrutinee
                // ending at the block `{`.
                let is_cond = i
                    .checked_sub(1)
                    .is_some_and(|p| matches!(toks[p].text.as_str(), "if" | "while"));
                if is_cond {
                    i += 1;
                    continue;
                }
                if let Some(binding) = parse_let(toks, i, close, braces.last().copied()) {
                    i = binding.init.0; // continue inside the initializer
                    lets.push(binding);
                    continue;
                }
            }
            _ => {
                if let Some(call) = parse_call(toks, i) {
                    calls.push(call);
                }
            }
        }
        i += 1;
    }
    (lets, calls)
}

/// Parse the `let` at `i`: pattern up to a top-level `=`, initializer up
/// to the terminating `;`.
fn parse_let(
    toks: &[Tok],
    i: usize,
    close: usize,
    enclosing: Option<usize>,
) -> Option<LetBinding> {
    let mut j = i + 1;
    let mut depth = 0isize;
    let mut names = Vec::new();
    let mut only_underscore = true;
    // Pattern: to the `=` (skip `let ... else`-less simple patterns; a
    // `let x;` declaration has no initializer and is skipped).
    loop {
        let t = toks.get(j)?;
        if j >= close {
            return None;
        }
        match t.text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            "=" if depth <= 0 && toks.get(j + 1).map(|n| n.text.as_str()) != Some("=") => break,
            ";" if depth <= 0 => return None,
            ":" if depth <= 0 => {
                // Type annotation: skip to the `=` without collecting
                // type identifiers as binding names.
                only_underscore = names.is_empty();
                let mut k = j + 1;
                let mut d = 0isize;
                loop {
                    let t = toks.get(k)?;
                    match t.text.as_str() {
                        "(" | "[" | "<" => d += 1,
                        ")" | "]" | ">" => d -= 1,
                        "=" if d <= 0 => break,
                        ";" if d <= 0 => return None,
                        _ => {}
                    }
                    k += 1;
                }
                j = k;
                break;
            }
            "_" => {}
            text => {
                if t.kind == TokKind::Ident
                    && !KEYWORDS.contains(&text)
                    && text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
                {
                    names.push(text.to_string());
                }
                if t.kind == TokKind::Ident && !matches!(text, "mut" | "ref") {
                    only_underscore = false;
                }
            }
        }
        j += 1;
    }
    let init_start = j + 1;
    // Initializer: to the `;` at brace/paren depth 0 relative to here.
    let mut k = init_start;
    let mut d = 0isize;
    while k < close {
        match toks[k].text.as_str() {
            "(" | "[" | "{" => d += 1,
            ")" | "]" | "}" => {
                d -= 1;
                if d < 0 {
                    break;
                }
            }
            ";" if d == 0 => break,
            _ => {}
        }
        k += 1;
    }
    let scope_end = enclosing.map(|b| matching_brace(toks, b)).unwrap_or(close);
    Some(LetBinding {
        is_discard: names.is_empty() && only_underscore,
        names,
        line: toks[i].line,
        init: (init_start, k),
        scope_end,
    })
}

/// Is the ident at `i` a call site (`name(` but not `name!(`, `fn name(`)?
fn parse_call(toks: &[Tok], i: usize) -> Option<CallSite> {
    let t = &toks[i];
    if t.kind != TokKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
        return None;
    }
    let open = i + 1;
    if toks.get(open).map(|n| n.text.as_str()) != Some("(") {
        return None; // also rejects macros: `name !  (`
    }
    let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
    if prev == Some("fn") {
        return None;
    }
    Some(CallSite {
        callee: t.text.clone(),
        is_method: prev == Some("."),
        empty_args: toks.get(open + 1).is_some_and(|n| n.text == ")"),
        line: t.line,
        tok: i,
        args_open: open,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;
    use std::path::PathBuf;

    fn flows(src: &str) -> Vec<FnModel> {
        functions(&SourceFile::parse(
            PathBuf::from("x.rs"),
            "m".into(),
            "c".into(),
            src,
        ))
    }

    #[test]
    fn fn_bodies_lets_and_calls_are_modeled() {
        let fns = flows(
            "fn pump(rx: &Receiver<u8>) -> Result<(), Error> {\n\
                 let guard = self.current.write();\n\
                 let _ = tx.send(1);\n\
                 helper(rx.recv()?);\n\
                 Ok(())\n\
             }\n\
             fn helper(x: u8) {}\n",
        );
        assert_eq!(fns.len(), 2);
        let pump = &fns[0];
        assert_eq!(pump.name, "pump");
        assert_eq!(pump.ret, "Result<(),Error>");
        assert_eq!(pump.lets.len(), 2);
        assert_eq!(pump.lets[0].names, ["guard"]);
        assert!(!pump.lets[0].is_discard);
        assert!(pump.lets[1].is_discard);
        let callees: Vec<&str> = pump.calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(callees, ["write", "send", "helper", "recv", "Ok"]);
        assert!(pump.calls[0].empty_args && pump.calls[0].is_method);
        assert!(!pump.calls[2].is_method);
    }

    #[test]
    fn let_scope_ends_at_the_enclosing_block() {
        let fns = flows(
            "fn f() {\n\
                 if cond {\n\
                     let g = m.lock();\n\
                     use_it(&g);\n\
                 }\n\
                 after();\n\
             }\n",
        );
        let f = &fns[0];
        let g = &f.lets[0];
        // `after` is outside g's scope; `use_it` is inside.
        let use_it = f.calls.iter().find(|c| c.callee == "use_it").unwrap();
        let after = f.calls.iter().find(|c| c.callee == "after").unwrap();
        assert!(use_it.tok < g.scope_end);
        assert!(after.tok >= g.scope_end);
    }

    #[test]
    fn array_return_types_do_not_abort_the_parse() {
        // The `;` inside `[T; 2]` must not read as "declaration, no body".
        let fns = flows("fn counters() -> [&'static Counter; 2] { [&A, &B] }\n");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "counters");
    }

    #[test]
    fn return_types_and_annotations_are_captured() {
        let fns = flows(
            "fn mk() -> DurableAck { x }\n\
             fn unit() { }\n\
             fn ann() { let v: Vec<Tok> = collect(); touch(&v); }\n",
        );
        assert_eq!(fns[0].ret, "DurableAck");
        assert_eq!(fns[1].ret, "");
        // The `Vec`/`Tok` in the annotation are not binding names.
        assert_eq!(fns[2].lets[0].names, ["v"]);
    }
}
