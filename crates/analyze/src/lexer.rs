//! A small Rust lexer: just enough tokenization for the lint rules.
//!
//! The offline build environment has no `syn`, so the analyzer works on a
//! hand-rolled token stream instead of a real AST. The lexer understands
//! everything that would otherwise produce false token matches — line and
//! (nested) block comments, string / raw-string / byte-string / char
//! literals, raw identifiers, lifetimes — and returns comments out-of-band
//! so rules can look up `// analyze: allow(...)` and `// SAFETY:`
//! annotations by line.
//!
//! Literal tokens carry their **verbatim source text** (quotes and raw
//! prefixes included): the cross-artifact rules read metric names out of
//! string literals and opcode bytes out of hex literals, so the lexer must
//! not collapse them to placeholders. Line numbers are tracked through
//! every multi-line construct — raw strings with hash fences, byte
//! strings, escaped newlines, nested block comments — because a desynced
//! line both misplaces findings and detaches `allow` comments from the
//! lines they justify.

/// What a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `unwrap`, `HashMap`, ...). Raw
    /// identifiers keep their `r#` prefix so `r#match` is never mistaken
    /// for the keyword.
    Ident,
    /// String / char / numeric / lifetime literal, text verbatim.
    Literal,
    /// Punctuation. Multi-character operators that matter to the rules
    /// (`::`) are fused into one token; everything else is one char.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Verbatim source text (for multi-line literals: the whole literal).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// For a string / byte-string literal: the content between the quotes
    /// (raw prefixes and hash fences stripped). `None` for every other
    /// token, including char literals and lifetimes.
    pub fn str_content(&self) -> Option<&str> {
        if self.kind != TokKind::Literal {
            return None;
        }
        let t = self.text.trim_start_matches(['b', 'r']).trim_matches('#');
        if t.len() >= 2 && t.starts_with('"') && t.ends_with('"') {
            Some(&t[1..t.len() - 1])
        } else {
            None
        }
    }
}

/// One comment with its 1-based starting line.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lex `src` into (tokens, comments). Never fails: unterminated constructs
/// consume to end-of-input, which is good enough for linting (the real
/// compiler rejects such files long before the analyzer matters).
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    text: src[start.min(i)..i].trim().to_string(),
                    line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let text_start = i + 2;
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text_end = i.saturating_sub(2).max(text_start);
                comments.push(Comment {
                    text: src[text_start..text_end].trim().to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                let start_line = line;
                let start = i;
                i = skip_string(bytes, i, &mut line);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'r' if is_raw_ident(bytes, i) => {
                let start = i;
                i += 2; // r#
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_literal(bytes, i) => {
                let start_line = line;
                let start = i;
                i = skip_prefixed_literal(bytes, i, &mut line);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) or char literal (`'x'`, `'\n'`).
                let (next, _is_lifetime) = lex_quote(bytes, i);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: src[i..next].to_string(),
                    line,
                });
                i = next;
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                // A fraction only when `.` is followed by a digit, so `0..n`
                // stays three tokens.
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < bytes.len()
                        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b':' if bytes.get(i + 1) == Some(&b':') => {
                toks.push(Tok { kind: TokKind::Punct, text: "::".into(), line });
                i += 2;
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    (toks, comments)
}

/// `r#ident` (raw identifier, not `r#"..."#`) starts here?
fn is_raw_ident(bytes: &[u8], i: usize) -> bool {
    bytes.get(i + 1) == Some(&b'#')
        && bytes
            .get(i + 2)
            .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
}

/// `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'` starts here?
fn starts_raw_or_byte_literal(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')) && raw_has_quote(bytes, i + 1),
        b'b' => match bytes.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => raw_has_quote(bytes, i + 2),
            _ => false,
        },
        _ => false,
    }
}

/// From a position at `#...` or `"`, is this a raw-string opener?
fn raw_has_quote(bytes: &[u8], mut i: usize) -> bool {
    while bytes.get(i) == Some(&b'#') {
        i += 1;
    }
    bytes.get(i) == Some(&b'"')
}

/// Skip a literal that begins with `r`/`b`/`br` at `i`; returns the index
/// past its end.
fn skip_prefixed_literal(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    let raw = bytes[i] == b'r' || bytes.get(i + 1) == Some(&b'r');
    while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
        i += 1;
    }
    if !raw {
        return if bytes.get(i) == Some(&b'\'') {
            lex_quote(bytes, i).0
        } else {
            skip_string(bytes, i, line)
        };
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Skip a normal `"..."` string starting at the quote; returns the index
/// past the closing quote. An escaped newline (`\` at end of line — the
/// Rust line-continuation) still advances the line counter: skipping the
/// escape pair blindly was the line-desync bug the lexer golden tests pin.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Lex from a `'`: returns (index past the token, is_lifetime).
fn lex_quote(bytes: &[u8], i: usize) -> (usize, bool) {
    // `'\x'`-style char literal.
    if bytes.get(i + 1) == Some(&b'\\') {
        let mut j = i + 3;
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return ((j + 1).min(bytes.len()), false);
    }
    // `'x'` char literal (exactly one char then a quote).
    if bytes.get(i + 2) == Some(&b'\'') {
        return (i + 3, false);
    }
    // Otherwise a lifetime: `'ident`.
    let mut j = i + 1;
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    (j, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let src = r##"
            // unwrap in a comment
            /* HashMap in /* a nested */ block */
            let s = "unwrap() on a HashMap";
            let r = r#"panic!("x")"#;
            let c = 'x';
            let lt: &'static str = s;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        // `'static` lexes as one lifetime Literal, not a `static` ident.
        assert!(!ids.contains(&"static".to_string()));
        let (toks, comments) = lex(src);
        assert!(toks.iter().any(|t| t.text == "'static"));
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].text, "unwrap in a comment");
    }

    #[test]
    fn literals_keep_their_verbatim_text() {
        let (toks, _) = lex("rec(\"serve.queries\", 0x2E, 'q');");
        let lits: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, ["\"serve.queries\"", "0x2E", "'q'"]);
        let s = toks.iter().find(|t| t.text.starts_with('"')).unwrap();
        assert_eq!(s.str_content(), Some("serve.queries"));
        // Raw and byte strings strip their prefixes/fences too.
        let (toks, _) = lex(r###"let a = r#"wal.sync"#; let b = b"dk";"###);
        let contents: Vec<&str> = toks.iter().filter_map(|t| t.str_content()).collect();
        assert_eq!(contents, ["wal.sync", "dk"]);
    }

    #[test]
    fn raw_identifiers_are_single_tokens() {
        let (toks, _) = lex("let r#match = r#fn + 1;");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["let", "r#match", "=", "r#fn", "+", "1", ";"]);
        // And they are Idents, not the keywords they shadow.
        assert!(!idents("r#match").contains(&"match".to_string()));
    }

    #[test]
    fn lines_and_ranges_track() {
        let (toks, comments) = lex("let a = 1;\nfor x in 0..n {}\n// tail\n");
        let for_tok = toks.iter().find(|t| t.text == "for").unwrap();
        assert_eq!(for_tok.line, 2);
        assert_eq!(comments[0].line, 3);
        // `0..n` is number, `..` (two dots), ident.
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.windows(4).any(|w| w == ["0", ".", ".", "n"]));
    }

    #[test]
    fn double_colon_is_fused() {
        let (toks, _) = lex("HashMap::new()");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["HashMap", "::", "new", "(", ")"]);
    }
}
