//! # dkindex-analyze
//!
//! The workspace static-analysis pass: proves the determinism,
//! oracle-purity, panic-freedom, and unsafe-hygiene contracts at lint time
//! instead of hoping a property test trips over a violation at run time.
//!
//! The D(k)-index's value proposition rests on reproducible refinement
//! (paper §4–5): the fast paths added since PR 1 are all certified by
//! *runtime* byte-identity oracles, which only catch an unordered
//! `HashMap` walk or a sneaky `unwrap` when a test happens to hit it.
//! This crate moves those contracts to `make verify-analysis`:
//!
//! | rule | contract |
//! |------|----------|
//! | `nondeterministic-iter` | byte-identity-critical modules (`partition::engine`, `core::dk::*`, `core::serve*`, `core::snapshot`, `core::wal`, `server::{protocol,conn}`) never iterate hash containers order-sensitively |
//! | `oracle-purity` | reference oracles never import the fast paths / telemetry they are oracles for (module import graph) |
//! | `panic-path` | serve, snapshot recovery, WAL replay, wire-frame encode/decode and network connection handling return typed errors — no `unwrap`/`expect`/`panic!`/indexing |
//! | `unsafe-hygiene` | every `unsafe` carries `// SAFETY:`; unsafe-free crates declare `#![forbid(unsafe_code)]` |
//! | `guard-discipline` | no blocking call (fsync, socket/channel I/O, lock re-acquisition) while an epoch write guard, mutex guard, or staged WAL batch is live, across helper calls one level deep |
//! | `must-consume` | a `DurableAck`/`Result` produced in the serve/WAL/network stack is bound and used — never statement-dropped or `let _`-discarded without justification |
//! | `wire-totality` | every DKNP opcode has encode + decode + golden byte test + PROTOCOL.md anchor; CLI exit codes match the OPERATIONS.md table, both directions |
//! | `metric-coherence` | metric names agree across call sites, the telemetry registry, and the ARCHITECTURE.md metric tables — no phantom or orphaned metrics |
//!
//! Because the offline build environment has no `syn`, the pass runs on a
//! hand-rolled token stream ([`lexer`]) — string/comment-aware, line
//! tracking, `#[cfg(test)]` exclusion — which is exactly enough for these
//! rules. Escape hatch: `// analyze: allow(<rule-id>) — <why>` on the
//! flagged line or in the comment block directly above it; the
//! justification text is mandatory (and may wrap onto following comment
//! lines).
//!
//! Findings print as `file:line: rule-id: message` and the
//! `dkindex-analyze` binary exits nonzero on any unjustified violation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;
pub mod symbols;
pub mod workspace;

use rules::{
    BlockingSpec, ConsumeConfig, ForbiddenRef, GuardConfig, GuardSpec, MetricConfig, OracleSpec,
    RuleConfig, WireConfig,
};
use std::io;
use std::path::Path;

pub use rules::{Finding, RuleMeta, Severity, RULES};

/// The rule tables for this repository: which modules are
/// byte-identity-critical, which must be panic-free, and which oracles
/// must stay independent of what.
pub fn default_config() -> RuleConfig {
    let scope = |names: &[&str]| names.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    RuleConfig {
        determinism_scope: scope(&[
            "dkindex_partition::engine",
            "dkindex_core::dk::*",
            "dkindex_core::block_store",
            "dkindex_core::serve",
            "dkindex_core::serve_ops",
            "dkindex_core::snapshot",
            "dkindex_core::wal",
            "dkindex_core::io_fail",
            "dkindex_core::tuner",
            "dkindex_core::mining",
            "dkindex_graph::segvec",
            "dkindex_server::protocol",
            "dkindex_server::conn",
        ]),
        panic_scope: scope(&[
            "dkindex_core::block_store",
            "dkindex_core::serve",
            "dkindex_core::serve_ops",
            "dkindex_core::snapshot",
            "dkindex_core::wal",
            "dkindex_core::io_fail",
            "dkindex_core::tuner",
            "dkindex_core::mining",
            "dkindex_graph::segvec",
            "dkindex_server::protocol",
            "dkindex_server::conn",
        ]),
        oracles: vec![
            OracleSpec {
                module: "dkindex_core::dk::reference".into(),
                oracle_for: "the engine-backed D(k) construction (`dk_partition_with_engine`, \
                             sharded builds)"
                    .into(),
                forbidden: vec![
                    ForbiddenRef::new(
                        "RefineEngine",
                        "the oracle would be checking the engine against itself",
                    ),
                    ForbiddenRef::new(
                        "dkindex_telemetry",
                        "telemetry must not be able to perturb the baseline",
                    ),
                ],
            },
            OracleSpec {
                module: "dkindex_core::serve_ops".into(),
                oracle_for: "the concurrent epoch-publication serve layer (`core::serve`)".into(),
                forbidden: vec![
                    ForbiddenRef::new(
                        "dkindex_telemetry",
                        "the serial oracle must not share telemetry hooks with the \
                         concurrent path it checks",
                    ),
                    ForbiddenRef::new(
                        "mpsc",
                        "the serial oracle must not depend on the channel machinery",
                    ),
                    ForbiddenRef::new(
                        "JoinHandle",
                        "the serial oracle must stay single-threaded",
                    ),
                    ForbiddenRef::new(
                        "RwLock",
                        "the serial oracle must not touch the epoch lock",
                    ),
                ],
            },
            OracleSpec {
                module: "dkindex_core::one_index".into(),
                oracle_for: "index-size/soundness comparisons (1-index baseline)".into(),
                forbidden: baseline_forbidden(),
            },
            OracleSpec {
                module: "dkindex_core::dataguide".into(),
                oracle_for: "index-size comparisons (strong DataGuide baseline)".into(),
                forbidden: baseline_forbidden(),
            },
            OracleSpec {
                module: "dkindex_core::fbindex".into(),
                oracle_for: "index-size comparisons (F&B-index baseline)".into(),
                forbidden: baseline_forbidden(),
            },
            OracleSpec {
                module: "dkindex_core::label_split".into(),
                oracle_for: "the A(0) label-split baseline".into(),
                forbidden: baseline_forbidden(),
            },
            OracleSpec {
                module: "dkindex_partition::refine".into(),
                oracle_for: "the interned-signature RefineEngine".into(),
                forbidden: partition_forbidden(),
            },
            OracleSpec {
                module: "dkindex_partition::naive".into(),
                oracle_for: "bisimulation partition fast paths".into(),
                forbidden: partition_forbidden(),
            },
            OracleSpec {
                module: "dkindex_partition::coarsest".into(),
                oracle_for: "bisimulation partition fast paths".into(),
                forbidden: partition_forbidden(),
            },
            OracleSpec {
                module: "dkindex_partition::paige_tarjan".into(),
                oracle_for: "bisimulation partition fast paths".into(),
                forbidden: partition_forbidden(),
            },
        ],
        unsafe_hygiene: true,
        guard: Some(GuardConfig {
            scope: scope(&[
                "dkindex_core::serve",
                "dkindex_core::wal",
                "dkindex_server::conn",
                "dkindex_server::server",
            ]),
            guards: vec![
                GuardSpec::new("write", true, "epoch RwLock write guard"),
                GuardSpec::new("lock", true, "mutex guard"),
            ],
            blocking: vec![
                BlockingSpec::new("sync_all", false, "fsync"),
                BlockingSpec::new("sync_data", false, "fdatasync"),
                BlockingSpec::new("recv", true, "blocking channel receive"),
                BlockingSpec::new("recv_timeout", false, "blocking channel receive"),
                BlockingSpec::new("join", true, "thread join"),
                BlockingSpec::new("read_exact", false, "blocking socket read"),
                BlockingSpec::new("write_all", false, "blocking socket write"),
                BlockingSpec::new("lock", true, "mutex (re-)acquisition"),
                BlockingSpec::new("write", true, "rwlock write (re-)acquisition"),
                BlockingSpec::new("read", true, "rwlock read (re-)acquisition"),
            ],
            batch_open: "stage".into(),
            batch_close: "commit".into(),
        }),
        consume: Some(ConsumeConfig {
            scope: scope(&[
                "dkindex_core::serve",
                "dkindex_core::wal",
                "dkindex_server::*",
            ]),
            producers: vec![
                "send".into(),
                "submit".into(),
                "submit_logged".into(),
                "log_batch".into(),
                "append_batch".into(),
                "stage".into(),
                "commit".into(),
                "sync_all".into(),
                "sync_data".into(),
            ],
            ret_types: vec!["DurableAck".into()],
        }),
        wire: Some(WireConfig {
            protocol_module: "dkindex_server::protocol".into(),
            encode_fns: vec!["opcode".into(), "encode".into()],
            decode_fns: vec!["decode_body".into()],
            golden_test: "crates/server/tests/protocol_golden.rs".into(),
            protocol_doc: "docs/PROTOCOL.md".into(),
            cli_module: "dkindex_cli::commands".into(),
            exit_code_fn: "exit_code".into(),
            operations_doc: "docs/OPERATIONS.md".into(),
        }),
        metrics: Some(MetricConfig {
            registry_module: "dkindex_telemetry::metrics".into(),
            registry_fns: vec!["counters".into(), "histograms".into()],
            architecture_doc: "ARCHITECTURE.md".into(),
        }),
    }
}

fn baseline_forbidden() -> Vec<ForbiddenRef> {
    vec![
        ForbiddenRef::new(
            "dkindex_telemetry",
            "baselines are compared against instrumented paths; instrumenting them too \
             would hide observer effects",
        ),
        ForbiddenRef::new(
            "RefineEngine",
            "baselines must not be built on the engine they are compared against",
        ),
    ]
}

fn partition_forbidden() -> Vec<ForbiddenRef> {
    vec![
        ForbiddenRef::new(
            "crate::engine",
            "the reference refinement must not call into the engine it certifies",
        ),
        ForbiddenRef::new(
            "RefineEngine",
            "the reference refinement must not call into the engine it certifies",
        ),
        ForbiddenRef::new(
            "dkindex_telemetry",
            "reference paths stay un-instrumented so oracle comparisons include the \
             recorder's effects",
        ),
    ]
}

/// Analyze the workspace at `root` with the repository rule tables.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    analyze_workspace_with(root, &default_config())
}

/// Analyze the workspace at `root` with a caller-provided config (fixture
/// tests scope the rules onto synthetic module trees this way).
pub fn analyze_workspace_with(root: &Path, config: &RuleConfig) -> io::Result<Vec<Finding>> {
    let files = workspace::load_workspace(root)?;
    Ok(rules::run_all(&files, config, Some(root)))
}
