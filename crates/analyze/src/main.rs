//! `dkindex-analyze` — run the workspace static-analysis pass.
//!
//! ```text
//! dkindex-analyze [--root DIR] [--json FILE] [--baseline FILE] [--quiet]
//! ```
//!
//! Prints findings as `file:line: rule-id: message`, then a per-rule
//! summary. Exits 1 when any unjustified violation exists, 2 on usage or
//! I/O errors. `--json` additionally writes an `ANALYZE.json` report
//! (rule → finding count; all zeros on a clean tree). `--baseline`
//! suppresses findings whose stable ids appear in a previously written
//! report, so a tree with known debt can still gate on *new* violations.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a value"),
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: dkindex-analyze [--root DIR] [--json FILE] [--baseline FILE] [--quiet]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = match root.or_else(discover_root) {
        Some(r) => r,
        None => return usage("no workspace root found; pass --root"),
    };

    let started = Instant::now();
    let all = match dkindex_analyze::analyze_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dkindex-analyze: cannot read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let wall_ms = started.elapsed().as_millis();

    let (findings, suppressed) = match &baseline {
        Some(path) => {
            let known = match dkindex_analyze::report::read_baseline(path) {
                Ok(ids) => ids,
                Err(e) => {
                    eprintln!("dkindex-analyze: cannot read baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let (old, new): (Vec<_>, Vec<_>) =
                all.into_iter().partition(|f| known.contains(&f.id()));
            (new, old.len())
        }
        None => (all, 0),
    };

    for f in &findings {
        println!("{f}");
    }
    if let Some(path) = json {
        if let Err(e) = dkindex_analyze::report::write_json(&path, &findings, Some(wall_ms)) {
            eprintln!("dkindex-analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet {
        print!("{}", dkindex_analyze::report::summary(&findings));
        if suppressed > 0 {
            println!("  {suppressed} finding(s) suppressed by baseline");
        }
    }
    if findings.is_empty() {
        if !quiet {
            if suppressed > 0 {
                println!("analysis clean modulo baseline: no new violations");
            } else {
                println!("analysis clean: all contracts hold");
            }
        }
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the first dir that looks like the
/// workspace root (has `Cargo.toml` and `crates/`).
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("dkindex-analyze: {msg}");
    eprintln!("usage: dkindex-analyze [--root DIR] [--json FILE] [--baseline FILE] [--quiet]");
    ExitCode::from(2)
}
