//! `dkindex-analyze` — run the workspace static-analysis pass.
//!
//! ```text
//! dkindex-analyze [--root DIR] [--json FILE] [--quiet]
//! ```
//!
//! Prints findings as `file:line: rule-id: message`, then a per-rule
//! summary. Exits 1 when any unjustified violation exists, 2 on usage or
//! I/O errors. `--json` additionally writes an `ANALYZE.json` report
//! (rule → finding count; all zeros on a clean tree).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("usage: dkindex-analyze [--root DIR] [--json FILE] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = match root.or_else(discover_root) {
        Some(r) => r,
        None => return usage("no workspace root found; pass --root"),
    };

    let findings = match dkindex_analyze::analyze_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dkindex-analyze: cannot read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if let Some(path) = json {
        if let Err(e) = dkindex_analyze::report::write_json(&path, &findings) {
            eprintln!("dkindex-analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet {
        print!("{}", dkindex_analyze::report::summary(&findings));
    }
    if findings.is_empty() {
        if !quiet {
            println!("analysis clean: all contracts hold");
        }
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the first dir that looks like the
/// workspace root (has `Cargo.toml` and `crates/`).
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("dkindex-analyze: {msg}");
    eprintln!("usage: dkindex-analyze [--root DIR] [--json FILE] [--quiet]");
    ExitCode::from(2)
}
