//! Source-file model shared by all rules: tokens + comments + module path,
//! `#[cfg(test)]` region detection, and the allow-comment escape hatch.

use crate::lexer::{lex, Comment, Tok, TokKind};
use std::path::{Path, PathBuf};

/// A lexed workspace source file with its logical module path.
pub struct SourceFile {
    /// Path as reported in findings (workspace-relative when possible).
    pub path: PathBuf,
    /// Logical module path, e.g. `dkindex_core::dk::construct`. Crate
    /// names use underscores; `lib.rs`/`main.rs` map to the bare crate
    /// name and `src/bin/x.rs` to `crate::bin::x`.
    pub module: String,
    /// Name of the owning crate (underscored).
    pub crate_name: String,
    /// Token stream (comments stripped, see `comments`).
    pub toks: Vec<Tok>,
    /// Comments by source order.
    pub comments: Vec<Comment>,
    /// Token-index ranges lying inside `#[cfg(test)] mod ... { }` blocks.
    pub test_ranges: Vec<(usize, usize)>,
    /// Is this a crate root (`lib.rs`, `main.rs`, `bin/*.rs`)? Crate roots
    /// are where `#![forbid(unsafe_code)]` must live.
    pub is_crate_root: bool,
}

impl SourceFile {
    /// Lex `src` into a model.
    pub fn parse(path: PathBuf, module: String, crate_name: String, src: &str) -> SourceFile {
        let (toks, comments) = lex(src);
        let test_ranges = find_test_ranges(&toks);
        SourceFile {
            path,
            module,
            crate_name,
            toks,
            comments,
            test_ranges,
            is_crate_root: false,
        }
    }

    /// Read and lex the file at `path`.
    pub fn load(path: &Path, module: String, crate_name: String) -> std::io::Result<SourceFile> {
        let src = std::fs::read_to_string(path)?;
        Ok(SourceFile::parse(path.to_path_buf(), module, crate_name, &src))
    }

    /// Is token `i` inside a `#[cfg(test)]` module body?
    pub fn in_test_code(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| i >= lo && i < hi)
    }

    /// Does a `// analyze: allow(<rule>) — <justification>` comment cover
    /// `line`? The allow may sit on the line itself or anywhere in the
    /// contiguous comment block whose last line is directly above it, so
    /// multi-line justifications read naturally. Returns
    /// `Some(has_justification)` when an allow for the rule is present;
    /// the justification is the non-empty text after the `)`, wrapping
    /// onto the block's following comment lines if need be.
    pub fn allow_on(&self, rule: &str, line: u32) -> Option<bool> {
        let needle = format!("analyze: allow({rule})");
        for (i, c) in self.comments.iter().enumerate() {
            if c.line > line {
                break;
            }
            let Some(pos) = c.text.find(&needle) else { continue };
            // Extend through the contiguous comment block below the allow,
            // accumulating wrapped justification text as we go.
            let mut end = c.line;
            let mut justification = c.text[pos + needle.len()..].to_string();
            for next in &self.comments[i + 1..] {
                if next.line != end + 1 {
                    break;
                }
                end = next.line;
                justification.push(' ');
                justification.push_str(&next.text);
            }
            if end + 1 < line {
                continue;
            }
            let justification = justification.trim_start_matches([' ', '-', '—', ':', '–']).trim();
            return Some(!justification.is_empty());
        }
        None
    }

    /// Is there a `SAFETY:` comment on `line` or within the 3 lines above?
    pub fn safety_comment_near(&self, line: u32) -> bool {
        self.comments
            .iter()
            .any(|c| c.line <= line && c.line + 3 >= line && c.text.contains("SAFETY:"))
    }
}

/// Locate `#[cfg(test)] mod name { ... }` bodies as token-index ranges.
fn find_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            // Skip this and any following attributes, then expect `mod X {`.
            let mut j = skip_attr(toks, i);
            while j < toks.len() && toks[j].text == "#" {
                j = skip_attr(toks, j);
            }
            if toks.get(j).is_some_and(|t| t.text == "mod")
                && toks.get(j + 1).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(j + 2).is_some_and(|t| t.text == "{")
            {
                let open = j + 2;
                let close = matching_brace(toks, open);
                ranges.push((open, close));
                i = close;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Does `#[cfg(test)]` start at token `i`?
fn is_cfg_test_attr(toks: &[Tok], i: usize) -> bool {
    let texts = ["#", "[", "cfg", "(", "test", ")", "]"];
    texts
        .iter()
        .enumerate()
        .all(|(k, want)| toks.get(i + k).is_some_and(|t| t.text == *want))
}

/// Given `#` at token `i`, return the index past the attribute's `]`.
pub(crate) fn skip_attr(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1;
    if toks.get(j).map(|t| t.text.as_str()) != Some("[") {
        return i + 1;
    }
    let mut depth = 0usize;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Index just past the brace matching the `{` at `open` (or `toks.len()`).
pub fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Does `module` fall inside scope pattern `pat`? Patterns are exact module
/// paths or a prefix followed by `::*` (any descendant, and the prefix
/// module itself).
pub fn in_scope(module: &str, pat: &str) -> bool {
    if let Some(prefix) = pat.strip_suffix("::*") {
        module == prefix || module.starts_with(&format!("{prefix}::"))
    } else {
        module == pat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("x.rs"), "m".into(), "c".into(), src)
    }

    #[test]
    fn cfg_test_mod_bodies_are_excluded() {
        let f = file(
            "fn live() { a.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n fn t() { b.unwrap(); }\n}\n\
             fn live2() {}\n",
        );
        let unwraps: Vec<usize> = f
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!f.in_test_code(unwraps[0]));
        assert!(f.in_test_code(unwraps[1]));
        // Code after the test mod is live again.
        let live2 = f.toks.iter().position(|t| t.text == "live2").unwrap();
        assert!(!f.in_test_code(live2));
    }

    #[test]
    fn allow_comments_require_justification() {
        let f = file(
            "// analyze: allow(panic-path) — the Vec write is infallible\n\
             let x = v.pop().unwrap();\n\
             // analyze: allow(panic-path)\n\
             let y = w.pop().unwrap();\n",
        );
        assert_eq!(f.allow_on("panic-path", 2), Some(true));
        assert_eq!(f.allow_on("panic-path", 4), Some(false));
        assert_eq!(f.allow_on("nondeterministic-iter", 2), None);
    }

    #[test]
    fn scope_patterns() {
        assert!(in_scope("dkindex_core::dk::promote", "dkindex_core::dk::*"));
        assert!(in_scope("dkindex_core::dk", "dkindex_core::dk::*"));
        assert!(in_scope("dkindex_core::serve", "dkindex_core::serve"));
        assert!(!in_scope("dkindex_core::serve2", "dkindex_core::serve"));
        assert!(!in_scope("dkindex_core::eval", "dkindex_core::dk::*"));
    }
}
