//! Rendering: findings to stderr-style text and `ANALYZE.json`.

use crate::rules::{count_by_rule, Finding, RULES};
use std::io::{self, Write};
use std::path::Path;

/// Render the per-rule summary table shown after the findings.
pub fn summary(findings: &[Finding]) -> String {
    let counts = count_by_rule(findings);
    let mut out = String::new();
    for rule in RULES {
        let n = counts.get(rule.id).copied().unwrap_or(0);
        out.push_str(&format!("  {:<24} {}\n", rule.id, n));
    }
    out.push_str(&format!("  {:<24} {}\n", "total", findings.len()));
    out
}

/// Write `ANALYZE.json`: rule → finding count (all zeros on a clean tree),
/// total, and the findings themselves.
pub fn write_json(path: &Path, findings: &[Finding]) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    let counts = count_by_rule(findings);
    writeln!(f, "{{")?;
    writeln!(f, "  \"rules\": {{")?;
    let mut first = true;
    for rule in RULES {
        let n = counts.get(rule.id).copied().unwrap_or(0);
        if !first {
            writeln!(f, ",")?;
        }
        write!(f, "    \"{}\": {}", rule.id, n)?;
        first = false;
    }
    writeln!(f)?;
    writeln!(f, "  }},")?;
    writeln!(f, "  \"total\": {},", findings.len())?;
    writeln!(f, "  \"findings\": [")?;
    for (i, finding) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{comma}",
            escape(&finding.path.display().to_string()),
            finding.line,
            finding.rule,
            escape(&finding.message)
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}
