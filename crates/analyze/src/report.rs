//! Rendering: findings to stderr-style text and `ANALYZE.json`, plus the
//! baseline reader used by `--baseline`.

use crate::rules::{count_by_rule, Finding, RULES};
use std::collections::BTreeSet;
use std::io::{self, Write};
use std::path::Path;

/// Render the per-rule summary table shown after the findings.
pub fn summary(findings: &[Finding]) -> String {
    let counts = count_by_rule(findings);
    let mut out = String::new();
    for rule in RULES {
        let n = counts.get(rule.id).copied().unwrap_or(0);
        out.push_str(&format!("  {:<24} {}\n", rule.id, n));
    }
    out.push_str(&format!("  {:<24} {}\n", "total", findings.len()));
    out
}

/// Write `ANALYZE.json`: rule → finding count (all zeros on a clean tree),
/// total, analysis wall time when measured, and the findings themselves.
/// Each finding carries its stable [`Finding::id`] so a saved report can
/// later serve as a `--baseline`.
pub fn write_json(path: &Path, findings: &[Finding], wall_ms: Option<u128>) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    let counts = count_by_rule(findings);
    writeln!(f, "{{")?;
    writeln!(f, "  \"rules\": {{")?;
    let mut first = true;
    for rule in RULES {
        let n = counts.get(rule.id).copied().unwrap_or(0);
        if !first {
            writeln!(f, ",")?;
        }
        write!(f, "    \"{}\": {}", rule.id, n)?;
        first = false;
    }
    writeln!(f)?;
    writeln!(f, "  }},")?;
    writeln!(f, "  \"total\": {},", findings.len())?;
    if let Some(ms) = wall_ms {
        writeln!(f, "  \"analysis_wall_ms\": {ms},")?;
    }
    writeln!(f, "  \"findings\": [")?;
    for (i, finding) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"id\": \"{}\", \"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{comma}",
            finding.id(),
            escape(&finding.path.display().to_string()),
            finding.line,
            finding.rule,
            escape(&finding.message)
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

/// Read the stable finding ids out of a previously written `ANALYZE.json`.
/// The scan is textual — every `"id": "…"` value — so it tolerates any
/// report this tool has ever written without needing a JSON parser.
pub fn read_baseline(path: &Path) -> io::Result<BTreeSet<String>> {
    let text = std::fs::read_to_string(path)?;
    let mut ids = BTreeSet::new();
    let needle = "\"id\": \"";
    let mut rest = text.as_str();
    while let Some(at) = rest.find(needle) {
        let tail = &rest[at + needle.len()..];
        let Some(end) = tail.find('"') else { break };
        ids.insert(tail[..end].to_string());
        rest = &tail[end..];
    }
    Ok(ids)
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn finding(rule: &'static str, path: &str, message: &str) -> Finding {
        Finding {
            path: PathBuf::from(path),
            line: 7,
            rule,
            message: message.to_string(),
        }
    }

    #[test]
    fn ids_are_stable_and_line_independent() {
        let a = finding("must-consume", "src/serve.rs", "`send` result dropped");
        let mut b = a.clone();
        b.line = 99;
        assert_eq!(a.id(), b.id());
        let c = finding("must-consume", "src/serve.rs", "`submit` result dropped");
        assert_ne!(a.id(), c.id());
        assert_eq!(a.id().len(), 16);
    }

    #[test]
    fn baseline_roundtrip_through_json() {
        let dir = std::env::temp_dir().join(format!("dkindex-analyze-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ANALYZE.json");
        let findings = vec![
            finding("must-consume", "src/a.rs", "`send` result dropped"),
            finding("guard-discipline", "src/b.rs", "`sync_all` under guard"),
        ];
        write_json(&path, &findings, Some(12)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"analysis_wall_ms\": 12"));
        let ids = read_baseline(&path).unwrap();
        assert_eq!(ids.len(), 2);
        for f in &findings {
            assert!(ids.contains(&f.id()), "baseline missing {}", f.id());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
