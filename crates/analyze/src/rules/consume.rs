//! must-consume: durability results must be bound and used.
//!
//! The bug class behind PR 9's S1/S2 fixes: a `DurableAck` (or a `Result`
//! from the WAL/serve layer) silently dropped on the floor turns a durable
//! acknowledgment into wishful thinking — the caller reports success the
//! disk never confirmed. Three shapes fire:
//!
//! 1. **statement-dropped** — `w.append_batch(&ops)?;` minus the `?`:
//!    a producing call whose whole statement is just the call expression.
//! 2. **explicitly discarded** — `let _ = tx.send(ack);`: binding a
//!    producer to `_` (or only `_`-prefixed names). Legitimate discards
//!    (shutdown paths) carry an `// analyze: allow(must-consume) — why`.
//! 3. **bound but never used** — `let ack = w.commit();` with `ack` never
//!    read afterwards in its scope.
//!
//! Producers are the configured method/fn names plus every workspace fn
//! whose return type mentions a configured marker (`Result`,
//! `DurableAck`), resolved through [`crate::symbols`].

use crate::flow::{CallSite, FnModel};
use crate::model::{in_scope, SourceFile};
use crate::rules::{push_unless_allowed, ConsumeConfig, Finding};
use crate::symbols::SymbolIndex;
use std::collections::BTreeSet;

/// Run the rule over every file in scope.
pub fn check(
    files: &[SourceFile],
    index: &SymbolIndex,
    cfg: &ConsumeConfig,
    findings: &mut Vec<Finding>,
) {
    // Workspace fns whose every definition returns a marked type.
    let mut producing_fns: BTreeSet<&str> = BTreeSet::new();
    for (name, defs) in &index.fns {
        let all_marked = defs.iter().all(|d| {
            let ret = &index.flows[d.file][d.idx].ret;
            cfg.ret_types.iter().any(|m| ret.contains(m.as_str()))
        });
        if all_marked && !defs.is_empty() {
            producing_fns.insert(name);
        }
    }

    for (file_idx, file) in files.iter().enumerate() {
        if !cfg.scope.iter().any(|pat| in_scope(&file.module, pat)) {
            continue;
        }
        for model in index.file_fns(file_idx) {
            check_fn(file, model, cfg, &producing_fns, findings);
        }
    }
}

fn is_producer(cfg: &ConsumeConfig, producing_fns: &BTreeSet<&str>, call: &CallSite) -> bool {
    cfg.producers.contains(&call.callee) || producing_fns.contains(call.callee.as_str())
}

fn check_fn(
    file: &SourceFile,
    model: &FnModel,
    cfg: &ConsumeConfig,
    producing_fns: &BTreeSet<&str>,
    findings: &mut Vec<Finding>,
) {
    let toks = &file.toks;

    // Shapes 2 and 3: producers bound by `let`.
    for binding in &model.lets {
        let producer = model
            .calls_in(binding.init)
            .into_iter()
            .find(|c| is_producer(cfg, producing_fns, c));
        let Some(call) = producer else { continue };
        // A `?`/`.` after the call's close paren means the produced value
        // is already consumed inside the init expression; the binding may
        // hold something else entirely (e.g. `let n = w.commit()?.len()`).
        if consumed_in_expr(file, call) {
            continue;
        }
        if binding.is_discard {
            push_unless_allowed(
                file,
                call.line,
                "must-consume",
                format!(
                    "`let _ = {}(..)` explicitly discards a durability result; handle it or \
                     justify the discard with an allow comment",
                    call.callee
                ),
                findings,
            );
            continue;
        }
        // Shape 3: bound, never read. A name "reads" if it reappears
        // between the end of the init and the end of its scope.
        let used = binding.names.iter().any(|n| {
            toks[binding.init.1..binding.scope_end.min(toks.len())]
                .iter()
                .any(|t| t.text == *n)
        });
        if !used && !binding.names.is_empty() {
            push_unless_allowed(
                file,
                call.line,
                "must-consume",
                format!(
                    "result of `{}(..)` is bound to `{}` but never used — the durability \
                     outcome is silently ignored",
                    call.callee,
                    binding.names.join("`, `")
                ),
                findings,
            );
        }
    }

    // Shape 1: statement-dropped producer calls.
    for call in &model.calls {
        if !is_producer(cfg, producing_fns, call) {
            continue;
        }
        let in_init = model
            .lets
            .iter()
            .any(|b| call.tok >= b.init.0 && call.tok < b.init.1);
        if in_init {
            continue;
        }
        if statement_is_bare_call(file, model, call) {
            push_unless_allowed(
                file,
                call.line,
                "must-consume",
                format!(
                    "result of `{}(..)` is dropped on the floor — propagate it with `?`, \
                     match on it, or bind and check it",
                    call.callee
                ),
                findings,
            );
        }
    }
}

/// Is the produced value consumed inside its own expression — `?`, a
/// chained method, or field access right after the call's `)`?
fn consumed_in_expr(file: &SourceFile, call: &CallSite) -> bool {
    let close = match matching_paren(file, call.args_open) {
        Some(c) => c,
        None => return true, // malformed; stay quiet
    };
    matches!(
        file.toks.get(close + 1).map(|t| t.text.as_str()),
        Some("?") | Some(".")
    )
}

/// Does the whole statement consist of just this call expression?
/// I.e. walking back over the receiver chain lands on `;`/`{`/`}` and the
/// token after the call's close paren is `;`.
fn statement_is_bare_call(file: &SourceFile, model: &FnModel, call: &CallSite) -> bool {
    if consumed_in_expr(file, call) {
        return false;
    }
    let close = match matching_paren(file, call.args_open) {
        Some(c) => c,
        None => return false,
    };
    if file.toks.get(close + 1).map(|t| t.text.as_str()) != Some(";") {
        return false;
    }
    // Walk backwards from the callee over the receiver chain: repeated
    // `segment . ` / `segment :: ` prefixes where a segment is an ident
    // (incl. `self`) or a parenthesized/bracketed sub-expression.
    let toks = &file.toks;
    let mut i = call.tok; // leftmost token of the expression so far
    while i > model.body.0 + 1 {
        match toks[i - 1].text.as_str() {
            "." | "::" => {
                if i < 2 {
                    return false;
                }
                match toks[i - 2].text.as_str() {
                    ")" | "]" => match matching_paren_back(file, i - 2) {
                        Some(open) => {
                            i = open;
                            // `foo(..).bar()`: pull in the inner callee or
                            // receiver ident just before the `(`.
                            if i > 0 && toks[i - 1].kind == crate::lexer::TokKind::Ident {
                                i -= 1;
                            }
                        }
                        None => return false,
                    },
                    _ if toks[i - 2].kind == crate::lexer::TokKind::Ident => i -= 2,
                    _ => return false,
                }
            }
            _ => break,
        }
    }
    i == model.body.0 + 1
        || matches!(
            toks.get(i - 1).map(|t| t.text.as_str()),
            Some(";") | Some("{") | Some("}")
        )
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(file: &SourceFile, open: usize) -> Option<usize> {
    let toks = &file.toks;
    let mut depth = 0isize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `(`/`[` matching the `)`/`]` at `close`, walking back.
fn matching_paren_back(file: &SourceFile, close: usize) -> Option<usize> {
    let toks = &file.toks;
    let mut depth = 0isize;
    let mut i = close;
    loop {
        match toks[i].text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
}
