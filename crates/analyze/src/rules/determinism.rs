//! Rule `nondeterministic-iter`: in byte-identity-critical modules, any
//! iteration over a `HashMap`/`HashSet` is flagged unless it is an
//! order-insensitive reduction, the results are sorted/merged in a declared
//! order within the same statement, or the line carries a justified
//! `// analyze: allow(nondeterministic-iter) — <why>` comment.
//!
//! Being a token-level pass with no type inference, the rule tracks which
//! identifiers are hash-typed three ways: type-alias declarations whose
//! right side mentions a hash type, `name: Type` annotations (lets, fields,
//! parameters), and `let name = <expr mentioning a hash type>` initializers.
//! That resolves every iteration site in this workspace; exotic flows (a
//! `HashMap` returned by a helper and iterated inline) are out of reach,
//! which is why the byte-identity runtime oracles stay in `make verify`
//! alongside this pass.

use super::{push_unless_allowed, Finding, RuleConfig, KEYWORDS};
use crate::lexer::TokKind;
use crate::model::{in_scope, SourceFile};
use std::collections::BTreeSet;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Iterator-producing methods whose order follows the hash map's internal
/// bucket order.
const ITER_METHODS: &[&str] = &[
    "iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "into_keys", "into_values",
    "drain",
];

/// Order-insensitive consumers: a hash iteration reduced by one of these in
/// the same statement cannot leak iteration order into the result.
const REDUCTIONS: &[&str] = &["all", "any", "count", "len", "min", "max", "sum", "contains"];

/// Ordered containers: collecting into one re-establishes a declared order.
const ORDERED_SINKS: &[&str] = &["BTreeMap", "BTreeSet", "BinaryHeap"];

/// Run the rule over one file.
pub fn check(file: &SourceFile, config: &RuleConfig, findings: &mut Vec<Finding>) {
    if !config.determinism_scope.iter().any(|p| in_scope(&file.module, p)) {
        return;
    }
    let hash_names = collect_hash_names(file);
    check_for_loops(file, &hash_names, findings);
    check_iter_methods(file, &hash_names, findings);
}

/// Identifiers (and type aliases) known to denote hash containers.
fn collect_hash_names(file: &SourceFile) -> BTreeSet<String> {
    let toks = &file.toks;
    let mut hash_types: BTreeSet<String> = HASH_TYPES.iter().map(|s| s.to_string()).collect();
    // Type aliases, to a fixpoint (aliases of aliases).
    loop {
        let mut grew = false;
        for i in 0..toks.len() {
            if toks[i].text == "type"
                && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(i + 2).is_some_and(|t| t.text == "=")
            {
                let name = &toks[i + 1].text;
                let mentions_hash = toks[i + 3..]
                    .iter()
                    .take_while(|t| t.text != ";")
                    .any(|t| hash_types.contains(&t.text));
                if mentions_hash && hash_types.insert(name.clone()) {
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }

    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        // `name: <type window mentioning a hash type>` — lets, struct
        // fields, parameters, struct-literal fields.
        if toks[i].kind == TokKind::Ident
            && !KEYWORDS.contains(&toks[i].text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.text == ":")
            && type_window_mentions(toks, i + 2, &hash_types)
        {
            names.insert(toks[i].text.clone());
        }
        // `let [mut] name = <rhs mentioning a hash type>;`
        if toks[i].text == "let" {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.text == "mut") {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(j + 1).is_some_and(|t| t.text == "=")
                && type_window_mentions(toks, j + 2, &hash_types)
            {
                names.insert(toks[j].text.clone());
            }
        }
    }
    names.extend(hash_types);
    names
}

/// Does the token window starting at `start` (bounded by the statement's
/// end) mention one of `hash_types`?
fn type_window_mentions(
    toks: &[crate::lexer::Tok],
    start: usize,
    hash_types: &BTreeSet<String>,
) -> bool {
    let mut depth = 0i32;
    for t in toks.iter().skip(start).take(80) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            ";" if depth == 0 => return false,
            _ if hash_types.contains(&t.text) => return true,
            _ => {}
        }
    }
    false
}

/// `for pat in <expr naming a hash container> {` — always order-sensitive
/// in a byte-identity module; only a justified allow rescues it.
fn check_for_loops(file: &SourceFile, hash_names: &BTreeSet<String>, findings: &mut Vec<Finding>) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if toks[i].text != "for" || file.in_test_code(i) {
            continue;
        }
        // Find `in` at depth 0 before the loop body's `{` — its absence
        // means this `for` is an `impl Trait for Type` or HRTB.
        let mut depth = 0i32;
        let mut in_pos = None;
        for (off, t) in toks.iter().enumerate().skip(i + 1).take(60) {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                "in" if depth == 0 => {
                    in_pos = Some(off);
                    break;
                }
                _ => {}
            }
        }
        let Some(in_pos) = in_pos else { continue };
        let mut depth = 0i32;
        for t in toks.iter().skip(in_pos + 1).take(60) {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                name if hash_names.contains(name) => {
                    push_unless_allowed(
                        file,
                        toks[i].line,
                        "nondeterministic-iter",
                        format!(
                            "`for` loop iterates hash container `{name}` in a \
                             byte-identity-critical module; iterate a sorted/ordered \
                             collection instead, or justify with \
                             `// analyze: allow(nondeterministic-iter) — <why>`"
                        ),
                        findings,
                    );
                    break;
                }
                _ => {}
            }
        }
    }
}

/// `<hash receiver>.iter()`-family calls, unless reduced order-insensitively
/// or re-ordered into an ordered sink within the same statement.
fn check_iter_methods(
    file: &SourceFile,
    hash_names: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if !ITER_METHODS.contains(&toks[i].text.as_str())
            || toks.get(i.wrapping_sub(1)).map(|t| t.text.as_str()) != Some(".")
            || toks.get(i + 1).map(|t| t.text.as_str()) != Some("(")
            || file.in_test_code(i)
        {
            continue;
        }
        let Some(receiver) = receiver_name(toks, i - 1) else { continue };
        if !hash_names.contains(&receiver) {
            continue;
        }
        if statement_restores_order(toks, i) {
            continue;
        }
        push_unless_allowed(
            file,
            toks[i].line,
            "nondeterministic-iter",
            format!(
                "`{receiver}.{}()` iterates a hash container in a byte-identity-critical \
                 module without restoring a declared order; sort/collect into an ordered \
                 container, reduce order-insensitively, or justify with \
                 `// analyze: allow(nondeterministic-iter) — <why>`",
                toks[i].text
            ),
            findings,
        );
    }
}

/// Walk a `self.a.b` / `a::b.c` chain leftwards from the `.` at `dot` and
/// return the field/variable the chain names (`None` when the receiver is
/// a call result the lexical pass cannot type).
fn receiver_name(toks: &[crate::lexer::Tok], dot: usize) -> Option<String> {
    let mut j = dot;
    let mut last_ident: Option<String> = None;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        match t.kind {
            TokKind::Ident if !KEYWORDS.contains(&t.text.as_str()) => {
                if last_ident.is_none() {
                    last_ident = Some(t.text.clone());
                }
            }
            TokKind::Punct if t.text == "." || t.text == "::" || t.text == "&" => continue,
            _ => break,
        }
    }
    last_ident
}

/// Does the rest of the statement sort, collect into an ordered container,
/// or reduce order-insensitively?
fn statement_restores_order(toks: &[crate::lexer::Tok], from: usize) -> bool {
    let mut depth = 0i32;
    for t in toks.iter().skip(from).take(100) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            ";" if depth == 0 => return false,
            name if name.starts_with("sort") => return true,
            name if ORDERED_SINKS.contains(&name) || REDUCTIONS.contains(&name) => return true,
            _ => {}
        }
    }
    false
}
