//! guard-discipline: no blocking call while a guard is live.
//!
//! The serve stack's liveness contract (ARCHITECTURE.md §5/§7.4): the
//! epoch `RwLock` write guard is held only for the single pointer store,
//! mutex guards never outlive a statement that also performs I/O, and a
//! `WalWriter` batch (`stage` → `commit`) never interleaves with other
//! blocking work. A violation deadlocks readers behind the maintenance
//! thread or holds the op channel hostage to disk latency — invisible to
//! tests until the worst interleaving happens in production.
//!
//! Three guard-liveness shapes are tracked per function (via
//! [`crate::flow`]):
//!
//! 1. `let g = x.write()` — live from the end of the `let` statement to
//!    the end of the enclosing block, or an explicit `drop(g)`.
//! 2. a guard call inside a larger statement (`*x.write() = v`) — live to
//!    the end of that statement.
//! 3. `w.stage(...)` — live until the matching `w.commit()`.
//!
//! Inside a live range, a blocking call from the table fires directly; a
//! call to a workspace function whose own body contains a blocking call
//! fires too (helper calls, one level deep, via [`crate::symbols`]).

use crate::flow::{CallSite, FnModel};
use crate::model::{in_scope, SourceFile};
use crate::rules::{push_unless_allowed, BlockingSpec, Finding, GuardConfig};
use crate::symbols::SymbolIndex;

/// Run the rule over every file in scope.
pub fn check(
    files: &[SourceFile],
    index: &SymbolIndex,
    cfg: &GuardConfig,
    findings: &mut Vec<Finding>,
) {
    for (file_idx, file) in files.iter().enumerate() {
        if !cfg.scope.iter().any(|pat| in_scope(&file.module, pat)) {
            continue;
        }
        for model in index.file_fns(file_idx) {
            check_fn(file, model, index, cfg, findings);
        }
    }
}

fn check_fn(
    file: &SourceFile,
    model: &FnModel,
    index: &SymbolIndex,
    cfg: &GuardConfig,
    findings: &mut Vec<Finding>,
) {
    // (live range, guard description, token index of the creating call)
    let mut live: Vec<((usize, usize), String, usize)> = Vec::new();

    // Shape 1: let-bound guards.
    for binding in &model.lets {
        for call in model.calls_in(binding.init) {
            if let Some(spec) = guard_spec(cfg, call) {
                let end = drop_point(file, model, binding, binding.scope_end);
                live.push(((binding.init.1, end), spec.what.clone(), call.tok));
            }
        }
    }
    // Shape 2: statement-temporary guards (guard call outside any init).
    for call in &model.calls {
        if guard_spec(cfg, call).is_none() {
            continue;
        }
        let in_init = model
            .lets
            .iter()
            .any(|b| call.tok >= b.init.0 && call.tok < b.init.1);
        if in_init {
            continue;
        }
        let spec = guard_spec(cfg, call).expect("checked above");
        let end = statement_end(file, call.args_open, model.body.1);
        live.push(((call.tok + 1, end), spec.what.clone(), call.tok));
    }
    // Shape 3: WAL batches (`stage` ... `commit`).
    for call in &model.calls {
        if call.callee != cfg.batch_open || !call.is_method {
            continue;
        }
        let end = model
            .calls
            .iter()
            .find(|c| c.callee == cfg.batch_close && c.tok > call.tok)
            .map(|c| c.tok)
            .unwrap_or(model.body.1);
        live.push((
            (call.tok + 1, end),
            format!("WAL batch (`{}` staged, not yet committed)", cfg.batch_open),
            call.tok,
        ));
    }

    let mut reported: Vec<(u32, String)> = Vec::new();
    for ((start, end), what, origin) in &live {
        for call in model.calls_in((*start, *end)) {
            if call.tok == *origin {
                continue;
            }
            // The batch-closing call is the legitimate end of a batch.
            if call.callee == cfg.batch_close {
                continue;
            }
            let hit = if let Some(spec) = blocking_spec(cfg, call) {
                Some(format!(
                    "`{}` ({}) called while a {} is live",
                    call.callee, spec.why, what
                ))
            } else {
                helper_blocks(index, cfg, call).map(|(helper, inner)| {
                    format!(
                        "`{helper}` (which calls blocking `{inner}`) called while a {what} \
                         is live"
                    )
                })
            };
            if let Some(message) = hit {
                if reported.iter().any(|(l, m)| *l == call.line && *m == message) {
                    continue;
                }
                reported.push((call.line, message.clone()));
                push_unless_allowed(file, call.line, "guard-discipline", message, findings);
            }
        }
    }
}

/// The guard spec `call` matches, if any.
fn guard_spec<'a>(cfg: &'a GuardConfig, call: &CallSite) -> Option<&'a crate::rules::GuardSpec> {
    cfg.guards
        .iter()
        .find(|g| g.method == call.callee && call.is_method && (!g.empty_args || call.empty_args))
}

/// The blocking spec `call` matches, if any.
fn blocking_spec<'a>(cfg: &'a GuardConfig, call: &CallSite) -> Option<&'a BlockingSpec> {
    cfg.blocking
        .iter()
        .find(|b| b.method == call.callee && (!b.empty_args || call.empty_args))
}

/// Does `call` resolve to a workspace fn whose body directly contains a
/// blocking call? Conservative on name collisions: fires only when every
/// definition with that name blocks.
fn helper_blocks<'a>(
    index: &'a SymbolIndex,
    cfg: &'a GuardConfig,
    call: &'a CallSite,
) -> Option<(&'a str, &'a str)> {
    let defs = index.fns.get(&call.callee)?;
    let mut inner_name: Option<&str> = None;
    for def in defs {
        let model = &index.flows[def.file][def.idx];
        let inner = model
            .calls
            .iter()
            .find(|c| cfg.blocking.iter().any(|b| b.method == c.callee && (!b.empty_args || c.empty_args)));
        match inner {
            Some(c) => inner_name = Some(&c.callee),
            None => return None,
        }
    }
    inner_name.map(|inner| (call.callee.as_str(), inner))
}

/// If the binding is `drop`ped inside its scope, the live range ends
/// there.
fn drop_point(
    file: &SourceFile,
    model: &FnModel,
    binding: &crate::flow::LetBinding,
    scope_end: usize,
) -> usize {
    model
        .calls
        .iter()
        .find(|c| {
            c.callee == "drop"
                && c.tok > binding.init.1
                && c.tok < scope_end
                && binding.names.iter().any(|n| {
                    // `drop(name)`: the single argument is the binding.
                    file.toks
                        .get(c.args_open + 1)
                        .map(|t| t.text == *n)
                        .unwrap_or(false)
                })
        })
        .map(|c| c.tok)
        .unwrap_or(scope_end)
}

/// End of the statement containing the call whose `(` is at `args_open`:
/// the next `;` at the statement's brace depth.
fn statement_end(file: &SourceFile, args_open: usize, body_end: usize) -> usize {
    let toks = &file.toks;
    let mut depth = 0isize;
    let mut i = args_open;
    while i < body_end.min(toks.len()) {
        match toks[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            ";" if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}
