//! metric-coherence: call sites, registry, and ARCHITECTURE.md agree on
//! the metric namespace.
//!
//! The telemetry registry (`telemetry::metrics`) is the single source of
//! truth for metric names: every `Counter`/`Histogram` is a static there,
//! registered in `counters()`/`histograms()`, and listed in the
//! ARCHITECTURE.md metric tables. Three drift modes fire:
//!
//! * **phantom** — a call site constructs `Counter::new("name")` outside
//!   the registry module (new names must go through the registry so
//!   `STATS` and dashboards see them);
//! * **orphaned** — a registry static no other file references (dead
//!   metric: it inflates STATS frames and the doc tables for nothing);
//! * **undocumented / unregistered** — a registry metric name absent from
//!   the ARCHITECTURE.md tables, or a static missing from its
//!   `counters()`/`histograms()` registration list.

use crate::lexer::TokKind;
use crate::model::SourceFile;
use crate::rules::{push_unless_allowed, Finding, MetricConfig};
use crate::symbols::SymbolIndex;

/// One registry static: `static IDENT: ... = Counter::new("name");`.
struct MetricDef {
    ident: String,
    name: String,
    line: u32,
}

/// Run the rule.
pub fn check(
    files: &[SourceFile],
    index: &SymbolIndex,
    cfg: &MetricConfig,
    findings: &mut Vec<Finding>,
) {
    let Some((reg_idx, registry)) = files
        .iter()
        .enumerate()
        .find(|(_, f)| f.module == cfg.registry_module)
    else {
        return;
    };
    let defs = collect_defs(registry);
    let doc = index.doc(&cfg.architecture_doc);

    for def in &defs {
        // Registered in one of the registry fns (`counters()`, ...)?
        let registered = cfg.registry_fns.iter().any(|name| {
            index
                .fn_in_file(reg_idx, name)
                .map(|m| {
                    registry.toks[m.body.0..m.body.1.min(registry.toks.len())]
                        .iter()
                        .any(|t| t.text == def.ident)
                })
                .unwrap_or(false)
        });
        if !registered {
            push_unless_allowed(
                registry,
                def.line,
                "metric-coherence",
                format!(
                    "metric `{}` (static `{}`) is not registered in any of `{}` — STATS \
                     readers will never see it",
                    def.name,
                    def.ident,
                    cfg.registry_fns.join("`/`")
                ),
                findings,
            );
        }
        // Referenced anywhere outside the registry file?
        let used = files.iter().enumerate().any(|(i, f)| {
            i != reg_idx
                && f.toks
                    .iter()
                    .any(|t| t.text == def.ident || t.str_content() == Some(def.name.as_str()))
        });
        if !used {
            push_unless_allowed(
                registry,
                def.line,
                "metric-coherence",
                format!(
                    "metric `{}` (static `{}`) is declared and registered but no call site \
                     references it — orphaned metric",
                    def.name, def.ident
                ),
                findings,
            );
        }
        // Listed in the architecture doc?
        match &doc {
            Some(content) if content.contains(&def.name) => {}
            Some(_) => push_unless_allowed(
                registry,
                def.line,
                "metric-coherence",
                format!(
                    "metric `{}` is missing from the {} metric tables",
                    def.name, cfg.architecture_doc
                ),
                findings,
            ),
            None => {}
        }
    }

    // Phantom constructors: `Counter::new(..)` / `Histogram::new(..)`
    // outside the registry file.
    for (i, file) in files.iter().enumerate() {
        if i == reg_idx {
            continue;
        }
        for (t_idx, t) in file.toks.iter().enumerate() {
            if (t.text == "Counter" || t.text == "Histogram")
                && file.toks.get(t_idx + 1).map(|t| t.text.as_str()) == Some("::")
                && file.toks.get(t_idx + 2).map(|t| t.text.as_str()) == Some("new")
                && file.toks.get(t_idx + 3).map(|t| t.text.as_str()) == Some("(")
                && !file.in_test_code(t_idx)
            {
                let name = file
                    .toks
                    .get(t_idx + 4)
                    .and_then(|n| n.str_content())
                    .unwrap_or("<dynamic>");
                push_unless_allowed(
                    file,
                    t.line,
                    "metric-coherence",
                    format!(
                        "`{}::new(\"{name}\")` outside the registry module `{}` — phantom \
                         metric invisible to STATS and the doc tables",
                        t.text, cfg.registry_module
                    ),
                    findings,
                );
            }
        }
    }
}

/// `static IDENT: <ty> = (Counter|Histogram)::new("name")` declarations.
fn collect_defs(file: &SourceFile) -> Vec<MetricDef> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.text != "static" || file.in_test_code(i) {
            continue;
        }
        let Some(ident) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        // Scan forward to `= (Counter|Histogram) :: new ( "name"` within
        // the same statement.
        let mut j = i + 2;
        while j + 4 < toks.len() && toks[j].text != ";" {
            if (toks[j].text == "Counter" || toks[j].text == "Histogram")
                && toks[j + 1].text == "::"
                && toks[j + 2].text == "new"
                && toks[j + 3].text == "("
            {
                if let Some(name) = toks[j + 4].str_content() {
                    out.push(MetricDef {
                        ident: ident.text.clone(),
                        name: name.to_string(),
                        line: ident.line,
                    });
                }
                break;
            }
            j += 1;
        }
    }
    out
}
