//! The table-driven rule set.
//!
//! Each rule has an id (used in findings and in
//! `// analyze: allow(<id>) — <why>` escape hatches), the contract it
//! proves, and a scope given as module patterns (`a::b` exact,
//! `a::b::*` subtree). Adding a rule means adding a [`RuleMeta`] entry, a
//! scope list in [`RuleConfig`], and a `check` function — the existing
//! rules average well under a hundred lines each.

pub mod consume;
pub mod determinism;
pub mod guard;
pub mod metric;
pub mod panic_path;
pub mod purity;
pub mod unsafety;
pub mod wire;

use crate::model::SourceFile;
use crate::symbols::SymbolIndex;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// How bad an unjustified violation is. Both levels currently fail the
/// build; the distinction is kept for reporting and future rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Violates a correctness contract (byte-identity, purity, recovery).
    Error,
    /// Violates a hygiene contract.
    Warning,
}

/// Static description of one rule.
pub struct RuleMeta {
    /// Stable rule id, also the allow-comment key.
    pub id: &'static str,
    /// The contract the rule enforces, for reports and docs.
    pub contract: &'static str,
    /// Failure class.
    pub severity: Severity,
}

/// All rules known to the analyzer, in reporting order.
pub const RULES: &[RuleMeta] = &[
    RuleMeta {
        id: "nondeterministic-iter",
        contract: "byte-identity-critical modules never iterate HashMap/HashSet in an \
                   order-sensitive way",
        severity: Severity::Error,
    },
    RuleMeta {
        id: "oracle-purity",
        contract: "reference oracles never import or call the fast paths they are oracles for, \
                   nor telemetry",
        severity: Severity::Error,
    },
    RuleMeta {
        id: "panic-path",
        contract: "serve / snapshot-recovery / WAL-replay code returns typed errors instead of \
                   panicking (no unwrap/expect/panic!/indexing)",
        severity: Severity::Error,
    },
    RuleMeta {
        id: "unsafe-hygiene",
        contract: "every unsafe block carries a SAFETY: comment; crates needing no unsafe \
                   forbid it outright",
        severity: Severity::Warning,
    },
    RuleMeta {
        id: "guard-discipline",
        contract: "no blocking call (fsync, socket/channel I/O, lock re-acquisition) while an \
                   epoch write guard, mutex guard, or WAL batch is live in scope, across helper \
                   calls one level deep",
        severity: Severity::Error,
    },
    RuleMeta {
        id: "must-consume",
        contract: "a DurableAck or Result produced in the serve/WAL/network stack is bound and \
                   used — never silently dropped or discarded with a bare `let _`",
        severity: Severity::Error,
    },
    RuleMeta {
        id: "wire-totality",
        contract: "every DKNP opcode has an encode path, a decode arm, a golden byte test, and \
                   a PROTOCOL.md anchor; every CLI exit code matches the OPERATIONS.md table",
        severity: Severity::Error,
    },
    RuleMeta {
        id: "metric-coherence",
        contract: "every metric name used at a call site is declared in the telemetry registry \
                   and listed in ARCHITECTURE.md; no phantom or orphaned metrics",
        severity: Severity::Warning,
    },
];

/// One reference an oracle module must not make.
#[derive(Clone, Debug)]
pub struct ForbiddenRef {
    /// Path segments: `["dkindex_telemetry"]` or `["crate", "engine"]`.
    /// Single lowercase segments match only in path position (`x::` / `::x`
    /// / `use x`); single uppercase segments (type names) match anywhere.
    pub segs: Vec<String>,
    /// Why this reference breaks oracle purity, echoed in the finding.
    pub why: String,
}

impl ForbiddenRef {
    /// Build from `::`-separated segments.
    pub fn new(path: &str, why: &str) -> ForbiddenRef {
        ForbiddenRef {
            segs: path.split("::").map(str::to_string).collect(),
            why: why.to_string(),
        }
    }
}

/// One oracle module and what it must stay independent of.
#[derive(Clone, Debug)]
pub struct OracleSpec {
    /// Module path of the oracle (exact).
    pub module: String,
    /// What the module is the trusted baseline for, echoed in findings.
    pub oracle_for: String,
    /// References the oracle must not make.
    pub forbidden: Vec<ForbiddenRef>,
}

/// One guard-creating method: binding its result keeps a guard live until
/// the enclosing scope ends (or an explicit `drop`).
#[derive(Clone, Debug)]
pub struct GuardSpec {
    /// Method name whose call creates the guard (`write`, `lock`).
    pub method: String,
    /// Only an empty argument list creates the guard: distinguishes
    /// `RwLock::write()` from `io::Write::write(buf)`.
    pub empty_args: bool,
    /// What the guard is, echoed in findings.
    pub what: String,
}

impl GuardSpec {
    /// Build a spec from its three fields.
    pub fn new(method: &str, empty_args: bool, what: &str) -> GuardSpec {
        GuardSpec { method: method.into(), empty_args, what: what.into() }
    }
}

/// One method call the guard-discipline rule considers blocking.
#[derive(Clone, Debug)]
pub struct BlockingSpec {
    /// Method name (`sync_all`, `recv`, ...).
    pub method: String,
    /// Only an empty argument list blocks (lock re-acquisition forms).
    pub empty_args: bool,
    /// Why the call blocks, echoed in findings.
    pub why: String,
}

impl BlockingSpec {
    /// Build a spec from its three fields.
    pub fn new(method: &str, empty_args: bool, why: &str) -> BlockingSpec {
        BlockingSpec { method: method.into(), empty_args, why: why.into() }
    }
}

/// Scope and tables for the guard-discipline rule.
#[derive(Clone, Debug)]
pub struct GuardConfig {
    /// Modules the rule runs in.
    pub scope: Vec<String>,
    /// Guard-creating methods.
    pub guards: Vec<GuardSpec>,
    /// Blocking calls forbidden while a guard is live.
    pub blocking: Vec<BlockingSpec>,
    /// Method opening a WAL batch (`stage`): the batch is live until...
    pub batch_open: String,
    /// ...this method closes it (`commit`).
    pub batch_close: String,
}

/// Scope and tables for the must-consume rule.
#[derive(Clone, Debug)]
pub struct ConsumeConfig {
    /// Modules the rule runs in.
    pub scope: Vec<String>,
    /// Method/function names that always produce a must-consume value
    /// (channel `send`, WAL `log_batch`, ...).
    pub producers: Vec<String>,
    /// Return-type markers: a workspace fn whose return type mentions one
    /// of these is a producer too (`Result`, `DurableAck`).
    pub ret_types: Vec<String>,
}

/// Artifact locations for the wire-totality rule.
#[derive(Clone, Debug)]
pub struct WireConfig {
    /// Module declaring the opcode consts and the frame codec.
    pub protocol_module: String,
    /// Fns an opcode const must be referenced in on the encode side.
    pub encode_fns: Vec<String>,
    /// Fns an opcode const must be referenced in on the decode side.
    pub decode_fns: Vec<String>,
    /// Root-relative path of the golden byte tests.
    pub golden_test: String,
    /// Root-relative path of the wire-protocol document.
    pub protocol_doc: String,
    /// Module declaring the CLI error type and its exit codes.
    pub cli_module: String,
    /// The fn mapping errors to exit codes.
    pub exit_code_fn: String,
    /// Root-relative path of the operations document (exit-code table).
    pub operations_doc: String,
}

/// Artifact locations for the metric-coherence rule.
#[derive(Clone, Debug)]
pub struct MetricConfig {
    /// Module declaring every metric static (the registry).
    pub registry_module: String,
    /// Registry fns whose bodies must reference every declared static
    /// (`counters`, `histograms`).
    pub registry_fns: Vec<String>,
    /// Root-relative path of the document listing every metric name.
    pub architecture_doc: String,
}

/// Scopes and tables the rules run against. [`crate::default_config`]
/// describes the real workspace; tests build ad-hoc configs for fixtures.
#[derive(Clone, Debug, Default)]
pub struct RuleConfig {
    /// Modules whose construction/serialization must be byte-deterministic.
    pub determinism_scope: Vec<String>,
    /// Modules that must be panic-free (typed errors only).
    pub panic_scope: Vec<String>,
    /// The oracle-purity table.
    pub oracles: Vec<OracleSpec>,
    /// Run the workspace-wide unsafe-hygiene rule.
    pub unsafe_hygiene: bool,
    /// The guard-discipline rule (`None` disables it).
    pub guard: Option<GuardConfig>,
    /// The must-consume rule (`None` disables it).
    pub consume: Option<ConsumeConfig>,
    /// The wire-totality rule (`None` disables it).
    pub wire: Option<WireConfig>,
    /// The metric-coherence rule (`None` disables it).
    pub metrics: Option<MetricConfig>,
}

/// One violation, printed as `file:line: rule-id: message`.
#[derive(Clone, Debug)]
pub struct Finding {
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Human explanation with the offending symbol.
    pub message: String,
}

impl Finding {
    /// Stable identity for baseline suppression: an FNV-1a hash over
    /// `rule:path:message`, rendered as 16 hex digits. Deliberately
    /// line-free so a finding keeps its id when unrelated edits shift
    /// code above it; the message embeds the offending symbol, so two
    /// distinct violations in one file hash apart.
    pub fn id(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self
            .rule
            .bytes()
            .chain([b':'])
            .chain(self.path.to_string_lossy().bytes())
            .chain([b':'])
            .chain(self.message.bytes())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Count findings per rule id (all rules present, zero-filled).
pub fn count_by_rule(findings: &[Finding]) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> = RULES.iter().map(|r| (r.id, 0)).collect();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    counts
}

/// Record a finding at `line` unless a justified allow-comment covers it.
/// An allow-comment *without* a justification is itself a finding — the
/// escape hatch requires a reason.
pub(crate) fn push_unless_allowed(
    file: &SourceFile,
    line: u32,
    rule: &'static str,
    message: String,
    findings: &mut Vec<Finding>,
) {
    match file.allow_on(rule, line) {
        Some(true) => {}
        Some(false) => findings.push(Finding {
            path: file.path.clone(),
            line,
            rule,
            message: format!(
                "allow({rule}) requires a justification after the closing parenthesis \
                 (suppressing: {message})"
            ),
        }),
        None => findings.push(Finding { path: file.path.clone(), line, rule, message }),
    }
}

/// Rust keywords, used to tell expression identifiers from syntax.
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut",
    "pub", "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

/// Run every configured rule over `files` (one whole workspace or a
/// fixture set). `root` resolves the cross-artifact rules' doc and test
/// files; without it those checks are skipped. Findings come back sorted
/// by path, then line.
pub fn run_all(files: &[SourceFile], config: &RuleConfig, root: Option<&Path>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        determinism::check(file, config, &mut findings);
        purity::check(file, config, &mut findings);
        panic_path::check(file, config, &mut findings);
    }
    if config.unsafe_hygiene {
        unsafety::check(files, &mut findings);
    }
    if config.guard.is_some() || config.consume.is_some() || config.wire.is_some()
        || config.metrics.is_some()
    {
        let index = SymbolIndex::build(files, root);
        if let Some(cfg) = &config.guard {
            guard::check(files, &index, cfg, &mut findings);
        }
        if let Some(cfg) = &config.consume {
            consume::check(files, &index, cfg, &mut findings);
        }
        if let Some(cfg) = &config.wire {
            wire::check(files, &index, cfg, &mut findings);
        }
        if let Some(cfg) = &config.metrics {
            metric::check(files, &index, cfg, &mut findings);
        }
    }
    findings.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    findings
}
