//! The table-driven rule set.
//!
//! Each rule has an id (used in findings and in
//! `// analyze: allow(<id>) — <why>` escape hatches), the contract it
//! proves, and a scope given as module patterns (`a::b` exact,
//! `a::b::*` subtree). Adding a rule means adding a [`RuleMeta`] entry, a
//! scope list in [`RuleConfig`], and a `check` function — the existing
//! rules average well under a hundred lines each.

pub mod determinism;
pub mod panic_path;
pub mod purity;
pub mod unsafety;

use crate::model::SourceFile;
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;

/// How bad an unjustified violation is. Both levels currently fail the
/// build; the distinction is kept for reporting and future rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Violates a correctness contract (byte-identity, purity, recovery).
    Error,
    /// Violates a hygiene contract.
    Warning,
}

/// Static description of one rule.
pub struct RuleMeta {
    /// Stable rule id, also the allow-comment key.
    pub id: &'static str,
    /// The contract the rule enforces, for reports and docs.
    pub contract: &'static str,
    /// Failure class.
    pub severity: Severity,
}

/// All rules known to the analyzer, in reporting order.
pub const RULES: &[RuleMeta] = &[
    RuleMeta {
        id: "nondeterministic-iter",
        contract: "byte-identity-critical modules never iterate HashMap/HashSet in an \
                   order-sensitive way",
        severity: Severity::Error,
    },
    RuleMeta {
        id: "oracle-purity",
        contract: "reference oracles never import or call the fast paths they are oracles for, \
                   nor telemetry",
        severity: Severity::Error,
    },
    RuleMeta {
        id: "panic-path",
        contract: "serve / snapshot-recovery / WAL-replay code returns typed errors instead of \
                   panicking (no unwrap/expect/panic!/indexing)",
        severity: Severity::Error,
    },
    RuleMeta {
        id: "unsafe-hygiene",
        contract: "every unsafe block carries a SAFETY: comment; crates needing no unsafe \
                   forbid it outright",
        severity: Severity::Warning,
    },
];

/// One reference an oracle module must not make.
#[derive(Clone, Debug)]
pub struct ForbiddenRef {
    /// Path segments: `["dkindex_telemetry"]` or `["crate", "engine"]`.
    /// Single lowercase segments match only in path position (`x::` / `::x`
    /// / `use x`); single uppercase segments (type names) match anywhere.
    pub segs: Vec<String>,
    /// Why this reference breaks oracle purity, echoed in the finding.
    pub why: String,
}

impl ForbiddenRef {
    /// Build from `::`-separated segments.
    pub fn new(path: &str, why: &str) -> ForbiddenRef {
        ForbiddenRef {
            segs: path.split("::").map(str::to_string).collect(),
            why: why.to_string(),
        }
    }
}

/// One oracle module and what it must stay independent of.
#[derive(Clone, Debug)]
pub struct OracleSpec {
    /// Module path of the oracle (exact).
    pub module: String,
    /// What the module is the trusted baseline for, echoed in findings.
    pub oracle_for: String,
    /// References the oracle must not make.
    pub forbidden: Vec<ForbiddenRef>,
}

/// Scopes and tables the rules run against. [`crate::default_config`]
/// describes the real workspace; tests build ad-hoc configs for fixtures.
#[derive(Clone, Debug, Default)]
pub struct RuleConfig {
    /// Modules whose construction/serialization must be byte-deterministic.
    pub determinism_scope: Vec<String>,
    /// Modules that must be panic-free (typed errors only).
    pub panic_scope: Vec<String>,
    /// The oracle-purity table.
    pub oracles: Vec<OracleSpec>,
    /// Run the workspace-wide unsafe-hygiene rule.
    pub unsafe_hygiene: bool,
}

/// One violation, printed as `file:line: rule-id: message`.
#[derive(Clone, Debug)]
pub struct Finding {
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Human explanation with the offending symbol.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Count findings per rule id (all rules present, zero-filled).
pub fn count_by_rule(findings: &[Finding]) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> = RULES.iter().map(|r| (r.id, 0)).collect();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    counts
}

/// Record a finding at `line` unless a justified allow-comment covers it.
/// An allow-comment *without* a justification is itself a finding — the
/// escape hatch requires a reason.
pub(crate) fn push_unless_allowed(
    file: &SourceFile,
    line: u32,
    rule: &'static str,
    message: String,
    findings: &mut Vec<Finding>,
) {
    match file.allow_on(rule, line) {
        Some(true) => {}
        Some(false) => findings.push(Finding {
            path: file.path.clone(),
            line,
            rule,
            message: format!(
                "allow({rule}) requires a justification after the closing parenthesis \
                 (suppressing: {message})"
            ),
        }),
        None => findings.push(Finding { path: file.path.clone(), line, rule, message }),
    }
}

/// Rust keywords, used to tell expression identifiers from syntax.
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut",
    "pub", "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

/// Run every configured rule over `files` (one whole workspace or a
/// fixture set). Findings come back sorted by path, then line.
pub fn run_all(files: &[SourceFile], config: &RuleConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        determinism::check(file, config, &mut findings);
        purity::check(file, config, &mut findings);
        panic_path::check(file, config, &mut findings);
    }
    if config.unsafe_hygiene {
        unsafety::check(files, &mut findings);
    }
    findings.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    findings
}
