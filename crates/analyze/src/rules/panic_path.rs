//! Rule `panic-path`: the concurrent serve layer, snapshot recovery, and
//! WAL replay promise to degrade through typed errors, never to take the
//! process down. In their modules the rule flags `unwrap`/`expect` calls,
//! panicking macros (`panic!`, `unreachable!`, `todo!`, `unimplemented!`,
//! the `assert*!` family — `debug_assert*!` stays legal), and indexing
//! expressions `x[...]`, which panic on out-of-bounds. `#[cfg(test)]`
//! modules are exempt; a justified
//! `// analyze: allow(panic-path) — <why>` comment is the escape hatch for
//! the provably-infallible cases.

use super::{push_unless_allowed, Finding, RuleConfig, KEYWORDS};
use crate::lexer::TokKind;
use crate::model::{in_scope, SourceFile};

const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: &[&str] = &[
    "panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne",
];

/// Run the rule over one file.
pub fn check(file: &SourceFile, config: &RuleConfig, findings: &mut Vec<Finding>) {
    if !config.panic_scope.iter().any(|p| in_scope(&file.module, p)) {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test_code(i) {
            continue;
        }
        let t = &toks[i];
        // `.unwrap(` / `.expect(` method calls.
        if t.kind == TokKind::Ident
            && PANIC_METHODS.contains(&t.text.as_str())
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            push_unless_allowed(
                file,
                t.line,
                "panic-path",
                format!(
                    "`.{}()` in a panic-free module; propagate a typed error instead, or \
                     justify with `// analyze: allow(panic-path) — <why>`",
                    t.text
                ),
                findings,
            );
        }
        // `panic!(` and friends.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.text == "!")
        {
            push_unless_allowed(
                file,
                t.line,
                "panic-path",
                format!(
                    "`{}!` in a panic-free module; return a typed error (use `debug_assert!` \
                     for debug-only checks), or justify with \
                     `// analyze: allow(panic-path) — <why>`",
                    t.text
                ),
                findings,
            );
        }
        // Indexing: `[` in expression position — directly after an
        // identifier, `)` or `]`. Array literals/types/patterns follow
        // punctuation or keywords and are not flagged.
        if t.text == "[" && i > 0 {
            let prev = &toks[i - 1];
            let expr_pos = match prev.kind {
                TokKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct => prev.text == ")" || prev.text == "]",
                TokKind::Literal => false,
            };
            if expr_pos {
                push_unless_allowed(
                    file,
                    t.line,
                    "panic-path",
                    format!(
                        "indexing `{}[...]` in a panic-free module can panic out-of-bounds; \
                         use `.get(..)` and propagate a typed error, or justify with \
                         `// analyze: allow(panic-path) — <why>`",
                        prev.text
                    ),
                    findings,
                );
            }
        }
    }
}
