//! Rule `oracle-purity`: a reference oracle must stay independent of the
//! fast paths it is the trusted baseline for — on the module import graph,
//! not just at call sites. An oracle that (transitively) leans on the
//! engine or telemetry it checks can no longer falsify them.
//!
//! The check walks the oracle module's tokens for forbidden references:
//! multi-segment paths (`crate::engine`) as contiguous `a :: b` token
//! runs, type names (`RefineEngine`) anywhere, and lowercase single
//! segments (`dkindex_telemetry`) in path or `use` position only, so a
//! local variable that happens to share the name does not fire the rule.

use super::{Finding, ForbiddenRef, RuleConfig};
use crate::lexer::TokKind;
use crate::model::SourceFile;
use std::collections::BTreeSet;

/// Run the rule over one file.
pub fn check(file: &SourceFile, config: &RuleConfig, findings: &mut Vec<Finding>) {
    let Some(spec) = config.oracles.iter().find(|o| o.module == file.module) else {
        return;
    };
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for fref in &spec.forbidden {
        if let Some(line) = first_reference(file, fref) {
            let path = fref.segs.join("::");
            if reported.insert(path.clone()) {
                findings.push(Finding {
                    path: file.path.clone(),
                    line,
                    rule: "oracle-purity",
                    message: format!(
                        "oracle module `{}` (the trusted baseline for {}) references `{path}`: \
                         {}; keep the oracle free of the paths it checks",
                        spec.module, spec.oracle_for, fref.why
                    ),
                });
            }
        }
    }
}

/// Line of the first reference to `fref` outside test code, if any.
fn first_reference(file: &SourceFile, fref: &ForbiddenRef) -> Option<u32> {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.in_test_code(i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let hit = if fref.segs.len() > 1 {
            matches_path_run(toks, i, &fref.segs)
        } else {
            let seg = &fref.segs[0];
            toks[i].text == *seg
                && (seg.starts_with(char::is_uppercase) || in_path_position(toks, i))
        };
        if hit {
            return Some(toks[i].line);
        }
    }
    None
}

/// Do tokens at `i` spell `segs[0] :: segs[1] :: ...`?
fn matches_path_run(toks: &[crate::lexer::Tok], i: usize, segs: &[String]) -> bool {
    let mut j = i;
    for (k, seg) in segs.iter().enumerate() {
        if toks.get(j).map(|t| t.text.as_str()) != Some(seg.as_str()) {
            return false;
        }
        j += 1;
        if k + 1 < segs.len() {
            if toks.get(j).map(|t| t.text.as_str()) != Some("::") {
                return false;
            }
            j += 1;
        }
    }
    true
}

/// Is the identifier at `i` used as a path segment or import — adjacent to
/// `::`, or directly after `use`?
fn in_path_position(toks: &[crate::lexer::Tok], i: usize) -> bool {
    let next_is_sep = toks.get(i + 1).is_some_and(|t| t.text == "::");
    let prev = i.checked_sub(1).and_then(|p| toks.get(p));
    let prev_is_sep = prev.map(|t| t.text.as_str()) == Some("::");
    let prev_is_use = prev.map(|t| t.text.as_str()) == Some("use");
    next_is_sep || prev_is_sep || prev_is_use
}
