//! Rule `unsafe-hygiene`, run workspace-wide: every `unsafe` keyword must
//! sit under a `// SAFETY: ...` comment (same line or the three lines
//! above), and every crate whose sources contain no `unsafe` at all must
//! say so in its roots with `#![forbid(unsafe_code)]` — turning the
//! observation into a compiler-enforced guarantee that survives future
//! edits.

use super::Finding;
use crate::model::SourceFile;
use std::collections::BTreeMap;

/// Run the rule over the whole file set (grouping by crate).
pub fn check(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let mut by_crate: BTreeMap<&str, Vec<&SourceFile>> = BTreeMap::new();
    for f in files {
        by_crate.entry(f.crate_name.as_str()).or_default().push(f);
    }
    for crate_files in by_crate.values() {
        let mut has_unsafe = false;
        for f in crate_files {
            for t in &f.toks {
                if t.text == "unsafe" {
                    has_unsafe = true;
                    if !f.safety_comment_near(t.line) {
                        findings.push(Finding {
                            path: f.path.clone(),
                            line: t.line,
                            rule: "unsafe-hygiene",
                            message: "`unsafe` without a `// SAFETY: ...` comment on the \
                                      preceding lines; state the invariant that makes this \
                                      sound"
                                .to_string(),
                        });
                    }
                }
            }
        }
        if has_unsafe {
            continue;
        }
        for f in crate_files.iter().filter(|f| f.is_crate_root) {
            if !has_forbid_unsafe(f) {
                findings.push(Finding {
                    path: f.path.clone(),
                    line: 1,
                    rule: "unsafe-hygiene",
                    message: format!(
                        "crate `{}` contains no unsafe code but its root does not declare \
                         `#![forbid(unsafe_code)]`; add the attribute so the property is \
                         compiler-enforced",
                        f.crate_name
                    ),
                });
            }
        }
    }
}

/// Does the file carry a `forbid(unsafe_code)` attribute?
fn has_forbid_unsafe(f: &SourceFile) -> bool {
    f.toks.windows(3).any(|w| {
        w[0].text == "forbid" && w[1].text == "(" && w[2].text == "unsafe_code"
    })
}
