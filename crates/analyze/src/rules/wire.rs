//! wire-totality: every opcode is encodable, decodable, golden-tested,
//! and documented; every CLI exit code is in the operations runbook.
//!
//! The DKNP wire protocol (docs/PROTOCOL.md) and the CLI exit-code
//! contract (docs/OPERATIONS.md §4) are cross-artifact invariants: an
//! opcode exists as a `const ...: u8` in `server::protocol`, an encode
//! path, a decode match arm, a golden byte test, and a doc anchor — five
//! artifacts that drift independently. This rule makes the drift a lint
//! failure in both directions (code → doc and doc → code).

use crate::lexer::TokKind;
use crate::model::SourceFile;
use crate::rules::{push_unless_allowed, Finding, WireConfig};
use crate::symbols::SymbolIndex;

/// One `const NAME: u8 = 0xNN;` opcode declaration.
struct Opcode {
    name: String,
    /// Literal text, lowercased (`0x2e`).
    hex: String,
    line: u32,
}

/// Run the rule.
pub fn check(
    files: &[SourceFile],
    index: &SymbolIndex,
    cfg: &WireConfig,
    findings: &mut Vec<Finding>,
) {
    if let Some((file_idx, file)) = files
        .iter()
        .enumerate()
        .find(|(_, f)| f.module == cfg.protocol_module)
    {
        check_opcodes(file_idx, file, index, cfg, findings);
    }
    if let Some((file_idx, file)) = files
        .iter()
        .enumerate()
        .find(|(_, f)| f.module == cfg.cli_module)
    {
        check_exit_codes(file_idx, file, index, cfg, findings);
    }
}

fn check_opcodes(
    file_idx: usize,
    file: &SourceFile,
    index: &SymbolIndex,
    cfg: &WireConfig,
    findings: &mut Vec<Finding>,
) {
    let opcodes = collect_opcodes(file);
    let golden = index.doc(&cfg.golden_test).map(|s| s.to_lowercase());
    let doc = index.doc(&cfg.protocol_doc).map(|s| s.to_lowercase());

    for op in &opcodes {
        for (fns, artifact) in [(&cfg.encode_fns, "encode"), (&cfg.decode_fns, "decode")] {
            let referenced = fns.iter().any(|name| {
                index
                    .fn_in_file(file_idx, name)
                    .map(|m| {
                        file.toks[m.body.0..m.body.1.min(file.toks.len())]
                            .iter()
                            .any(|t| t.text == op.name)
                    })
                    .unwrap_or(false)
            });
            if !referenced {
                push_unless_allowed(
                    file,
                    op.line,
                    "wire-totality",
                    format!(
                        "opcode `{}` ({}) has no {artifact} arm (none of `{}` reference it)",
                        op.name,
                        op.hex,
                        fns.join("`/`")
                    ),
                    findings,
                );
            }
        }
        match &golden {
            Some(content) if content.contains(&op.hex) => {}
            Some(_) => push_unless_allowed(
                file,
                op.line,
                "wire-totality",
                format!(
                    "opcode `{}` ({}) has no golden byte test in {}",
                    op.name, op.hex, cfg.golden_test
                ),
                findings,
            ),
            None => push_unless_allowed(
                file,
                op.line,
                "wire-totality",
                format!("golden byte-test file {} is missing or empty", cfg.golden_test),
                findings,
            ),
        }
        match &doc {
            Some(content) if content.contains(&format!("opcode `{}`", op.hex)) => {}
            Some(_) => push_unless_allowed(
                file,
                op.line,
                "wire-totality",
                format!(
                    "opcode `{}` ({}) has no \"opcode `{}`\" section anchor in {}",
                    op.name, op.hex, op.hex, cfg.protocol_doc
                ),
                findings,
            ),
            None => push_unless_allowed(
                file,
                op.line,
                "wire-totality",
                format!("protocol document {} is missing or empty", cfg.protocol_doc),
                findings,
            ),
        }
    }

    // Reverse direction: every "opcode `0x..`" anchor in the doc must be a
    // declared const.
    if let Some(content) = &doc {
        for anchor in doc_anchors(content) {
            if !opcodes.iter().any(|op| op.hex == anchor) {
                push_unless_allowed(
                    file,
                    1,
                    "wire-totality",
                    format!(
                        "{} documents opcode `{}` which is not declared in `{}`",
                        cfg.protocol_doc, anchor, cfg.protocol_module
                    ),
                    findings,
                );
            }
        }
    }
}

/// `const NAME: u8 = <lit>;` declarations outside test code. The `u8`
/// filter is what separates opcodes from `VERSION: u16` / frame-size
/// consts.
fn collect_opcodes(file: &SourceFile) -> Vec<Opcode> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 5 < toks.len() {
        if toks[i].text == "const"
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 2].text == ":"
            && toks[i + 3].text == "u8"
            && toks[i + 4].text == "="
            && toks[i + 5].kind == TokKind::Literal
            && !file.in_test_code(i)
        {
            out.push(Opcode {
                name: toks[i + 1].text.clone(),
                hex: toks[i + 5].text.to_lowercase(),
                line: toks[i + 1].line,
            });
            i += 6;
            continue;
        }
        i += 1;
    }
    out
}

/// Every `opcode `0x..`` anchor value in (lowercased) doc content.
fn doc_anchors(content: &str) -> Vec<String> {
    let mut out = Vec::new();
    let needle = "opcode `0x";
    let mut rest = content;
    while let Some(pos) = rest.find(needle) {
        let tail = &rest[pos + needle.len() - 2..]; // keep the `0x`
        let hex: String = tail
            .chars()
            .take_while(|c| c.is_ascii_hexdigit() || *c == 'x')
            .collect();
        if hex.len() > 2 && !out.contains(&hex) {
            out.push(hex);
        }
        rest = &rest[pos + needle.len()..];
    }
    out
}

fn check_exit_codes(
    file_idx: usize,
    file: &SourceFile,
    index: &SymbolIndex,
    cfg: &WireConfig,
    findings: &mut Vec<Finding>,
) {
    // Exit codes the code can produce: numeric literals in the
    // `exit_code` fn, plus 0 for success.
    let Some(model) = index.fn_in_file(file_idx, &cfg.exit_code_fn) else {
        return;
    };
    let mut in_code: Vec<(String, u32)> = vec![("0".into(), model.line)];
    for t in &file.toks[model.body.0..model.body.1.min(file.toks.len())] {
        if t.kind == TokKind::Literal && t.text.chars().all(|c| c.is_ascii_digit()) {
            in_code.push((t.text.clone(), t.line));
        }
    }

    let Some(doc) = index.doc(&cfg.operations_doc) else {
        push_unless_allowed(
            file,
            model.line,
            "wire-totality",
            format!("operations document {} is missing or empty", cfg.operations_doc),
            findings,
        );
        return;
    };
    // Doc table rows: `| N |` with a numeric first cell.
    let mut in_doc: Vec<String> = Vec::new();
    for line in doc.lines() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix('|') {
            if let Some(cell) = rest.split('|').next() {
                let cell = cell.trim();
                if !cell.is_empty() && cell.chars().all(|c| c.is_ascii_digit()) {
                    in_doc.push(cell.to_string());
                }
            }
        }
    }

    for (code, line) in &in_code {
        if !in_doc.contains(code) {
            push_unless_allowed(
                file,
                *line,
                "wire-totality",
                format!(
                    "exit code {code} is produced by `{}` but missing from the {} exit-code \
                     table",
                    cfg.exit_code_fn, cfg.operations_doc
                ),
                findings,
            );
        }
    }
    for code in &in_doc {
        if !in_code.iter().any(|(c, _)| c == code) {
            push_unless_allowed(
                file,
                model.line,
                "wire-totality",
                format!(
                    "{} documents exit code {code} which `{}` can no longer produce",
                    cfg.operations_doc, cfg.exit_code_fn
                ),
                findings,
            );
        }
    }
}
