//! Workspace symbol index — the second flow-analysis substrate (the first
//! is [`crate::flow`]).
//!
//! Where [`crate::flow`] models one function at a time, this module
//! aggregates the whole workspace so the cross-artifact rules can answer
//! workspace-shaped questions: which function does this call site resolve
//! to (one level deep, for guard-discipline across helpers), what does it
//! return (for must-consume), which enum variants / const tables exist in
//! a module (for wire-totality), and which string literals appear where
//! (for metric-coherence). Doc files are read on demand by the rules via
//! [`SymbolIndex::doc`], with one cached load per path.

use crate::flow::{self, FnModel};
use crate::model::SourceFile;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One function definition, addressable workspace-wide by name.
pub struct FnRef {
    /// Index into the file list the index was built from.
    pub file: usize,
    /// Index into that file's [`SymbolIndex::flows`] entry.
    pub idx: usize,
}

/// One `enum` item and its variant names.
pub struct EnumDef {
    /// Module the enum is defined in.
    pub module: String,
    /// Variant names with their 1-based lines, in declaration order.
    pub variants: Vec<(String, u32)>,
}

/// One string literal occurrence.
pub struct StrLit {
    /// Content between the quotes (prefixes/fences stripped).
    pub content: String,
    /// 1-based line.
    pub line: u32,
    /// Token index in the owning file.
    pub tok: usize,
    /// Inside `#[cfg(test)]` code?
    pub in_test: bool,
}

/// The workspace-wide symbol/callgraph index.
pub struct SymbolIndex {
    /// Per-file function models, parallel to the file list.
    pub flows: Vec<Vec<FnModel>>,
    /// fn name → every definition with that name.
    pub fns: BTreeMap<String, Vec<FnRef>>,
    /// enum name → definitions.
    pub enums: BTreeMap<String, Vec<EnumDef>>,
    /// Per-file string-literal tables, parallel to the file list.
    pub strings: Vec<Vec<StrLit>>,
    /// Workspace root (doc files resolve against it).
    root: Option<PathBuf>,
    /// Doc-file cache: root-relative path → content ("" when unreadable).
    docs: RefCell<BTreeMap<String, String>>,
}

impl SymbolIndex {
    /// Build the index over `files`. `root` enables [`Self::doc`] lookups.
    pub fn build(files: &[SourceFile], root: Option<&Path>) -> SymbolIndex {
        let mut flows = Vec::with_capacity(files.len());
        let mut fns: BTreeMap<String, Vec<FnRef>> = BTreeMap::new();
        let mut enums: BTreeMap<String, Vec<EnumDef>> = BTreeMap::new();
        let mut strings = Vec::with_capacity(files.len());
        for (file_idx, file) in files.iter().enumerate() {
            let models = flow::functions(file);
            for (idx, m) in models.iter().enumerate() {
                fns.entry(m.name.clone())
                    .or_default()
                    .push(FnRef { file: file_idx, idx });
            }
            flows.push(models);
            collect_enums(file, &mut enums);
            strings.push(collect_strings(file));
        }
        SymbolIndex {
            flows,
            fns,
            enums,
            strings,
            root: root.map(Path::to_path_buf),
            docs: RefCell::new(BTreeMap::new()),
        }
    }

    /// The function models of file `file_idx`.
    pub fn file_fns(&self, file_idx: usize) -> &[FnModel] {
        &self.flows[file_idx]
    }

    /// The model of the fn named `name` in file `file_idx`, if any.
    pub fn fn_in_file<'a>(&'a self, file_idx: usize, name: &str) -> Option<&'a FnModel> {
        self.flows[file_idx].iter().find(|m| m.name == name)
    }

    /// Content of the doc/test file at `rel` under the workspace root.
    /// `None` when the index has no root or the file does not exist —
    /// callers treat a missing doc as a finding, a missing root as
    /// "nothing to check".
    pub fn doc(&self, rel: &str) -> Option<String> {
        let root = self.root.as_ref()?;
        let mut cache = self.docs.borrow_mut();
        if let Some(content) = cache.get(rel) {
            return if content.is_empty() { None } else { Some(content.clone()) };
        }
        let content = std::fs::read_to_string(root.join(rel)).unwrap_or_default();
        cache.insert(rel.to_string(), content.clone());
        if content.is_empty() { None } else { Some(content) }
    }
}

/// Collect `enum Name { Variant, ... }` items of `file`.
fn collect_enums(file: &SourceFile, enums: &mut BTreeMap<String, Vec<EnumDef>>) {
    let toks = &file.toks;
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if toks[i].text == "enum" && !file.in_test_code(i) {
            let name = &toks[i + 1];
            // Find the `{` (skipping generics), then walk depth-1 idents
            // that start a variant (follow `{`, `,`, or open the body).
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                j += 1;
            }
            if toks.get(j).map(|t| t.text.as_str()) != Some("{") {
                i += 1;
                continue;
            }
            let close = crate::model::matching_brace(toks, j);
            let mut variants = Vec::new();
            let mut depth = 0isize;
            let mut expect_variant = true;
            let mut k = j;
            while k < close.min(toks.len()) {
                match toks[k].text.as_str() {
                    // Variant attributes (`#[...]`) sit between `,` and the
                    // next variant name; skip them whole.
                    "#" if depth == 1 => {
                        k = crate::model::skip_attr(toks, k);
                        continue;
                    }
                    "{" | "(" | "[" => {
                        depth += 1;
                        if depth > 1 {
                            expect_variant = false;
                        }
                    }
                    "}" | ")" | "]" => depth -= 1,
                    "," if depth == 1 => expect_variant = true,
                    text if depth == 1
                        && expect_variant
                        && toks[k].kind == crate::lexer::TokKind::Ident =>
                    {
                        variants.push((text.to_string(), toks[k].line));
                        expect_variant = false;
                    }
                    _ => {}
                }
                k += 1;
            }
            enums.entry(name.text.clone()).or_default().push(EnumDef {
                module: file.module.clone(),
                variants,
            });
            i = close;
            continue;
        }
        i += 1;
    }
}

/// Collect the string literals of `file`.
fn collect_strings(file: &SourceFile) -> Vec<StrLit> {
    file.toks
        .iter()
        .enumerate()
        .filter_map(|(tok, t)| {
            t.str_content().map(|content| StrLit {
                content: content.to_string(),
                line: t.line,
                tok,
                in_test: file.in_test_code(tok),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn index(src: &str) -> (SymbolIndex, Vec<SourceFile>) {
        let files = vec![SourceFile::parse(
            PathBuf::from("x.rs"),
            "m".into(),
            "c".into(),
            src,
        )];
        (SymbolIndex::build(&files, None), files)
    }

    #[test]
    fn fns_enums_and_strings_are_indexed() {
        let (idx, _) = index(
            "pub enum Frame { Hello { v: u16 }, Ping, Error(u8) }\n\
             fn encode(f: &Frame) -> Vec<u8> { tag(\"serve.queries\") }\n\
             fn tag(n: &str) -> Vec<u8> { Vec::new() }\n",
        );
        let frame = &idx.enums["Frame"][0];
        let names: Vec<&str> = frame.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Hello", "Ping", "Error"]);
        assert_eq!(idx.fns["encode"].len(), 1);
        assert_eq!(idx.fns["tag"].len(), 1);
        let encode = idx.fn_in_file(0, "encode").unwrap();
        assert_eq!(encode.ret, "Vec<u8>");
        assert_eq!(idx.strings[0].len(), 1);
        assert_eq!(idx.strings[0][0].content, "serve.queries");
        assert!(!idx.strings[0][0].in_test);
    }

    #[test]
    fn enum_payload_fields_are_not_variants() {
        let (idx, _) = index("enum E { A { long_field: u8, other: u16 }, B(Vec<u8>), C }");
        let names: Vec<&str> = idx.enums["E"][0].variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["A", "B", "C"]);
    }
}
