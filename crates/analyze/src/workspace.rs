//! Workspace discovery: find every crate's `src/` tree, map files to
//! logical module paths (`dkindex_core::dk::construct`), and load them as
//! [`SourceFile`]s.
//!
//! Crate directories are the workspace root itself (the root `dkindex`
//! package) and every `crates/*` directory with a `Cargo.toml`. Crate
//! names come from `[package] name`; directory names (underscored) are the
//! fallback so fixture trees need no manifests.

use crate::model::SourceFile;
use std::io;
use std::path::{Path, PathBuf};

/// Load every workspace source file under `root`.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for crate_dir in crate_dirs(root)? {
        let name = crate_name(&crate_dir);
        let src = crate_dir.join("src");
        if src.is_dir() {
            walk_src(&src, &src, &name, root, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// The root package dir (if it has `Cargo.toml` + `src/`) plus each
/// `crates/*` member, sorted for deterministic reports.
fn crate_dirs(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut dirs = Vec::new();
    if root.join("Cargo.toml").is_file() && root.join("src").is_dir() {
        dirs.push(root.to_path_buf());
    }
    let members = root.join("crates");
    if members.is_dir() {
        for entry in std::fs::read_dir(&members)? {
            let path = entry?.path();
            if path.is_dir() && path.join("src").is_dir() {
                dirs.push(path);
            }
        }
    }
    dirs.sort();
    Ok(dirs)
}

/// `[package] name` from the crate's `Cargo.toml`, underscored; directory
/// name when absent (fixture trees).
fn crate_name(crate_dir: &Path) -> String {
    let manifest = crate_dir.join("Cargo.toml");
    if let Ok(text) = std::fs::read_to_string(&manifest) {
        for l in text.lines() {
            let l = l.trim();
            if let Some(rest) = l.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    if let Some(name) = rest.trim().trim_matches('"').split('"').next() {
                        return name.replace('-', "_");
                    }
                }
            }
        }
    }
    crate_dir
        .file_name()
        .map(|n| n.to_string_lossy().replace('-', "_"))
        .unwrap_or_else(|| "unknown_crate".to_string())
}

fn walk_src(
    dir: &Path,
    src_root: &Path,
    crate_name: &str,
    ws_root: &Path,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_src(&path, src_root, crate_name, ws_root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let module = module_path(&path, src_root, crate_name);
            let is_root = {
                let rel = path.strip_prefix(src_root).unwrap_or(&path);
                rel == Path::new("lib.rs")
                    || rel == Path::new("main.rs")
                    || rel.parent() == Some(Path::new("bin"))
            };
            let report_path = path.strip_prefix(ws_root).unwrap_or(&path).to_path_buf();
            let mut file = SourceFile::load(&path, module, crate_name.to_string())?;
            file.path = report_path;
            file.is_crate_root = is_root;
            out.push(file);
        }
    }
    Ok(())
}

/// Map `src/a/b.rs` to `crate::a::b`, `mod.rs` to its directory module,
/// roots to the bare crate name, and `bin/x.rs` to `crate::bin::x`.
fn module_path(path: &Path, src_root: &Path, crate_name: &str) -> String {
    let rel = path.strip_prefix(src_root).unwrap_or(path);
    let mut parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    if let Some(last) = parts.last_mut() {
        *last = last.trim_end_matches(".rs").to_string();
    }
    if parts.last().is_some_and(|l| l == "mod") {
        parts.pop();
    }
    if parts.last().is_some_and(|l| l == "lib" || l == "main") {
        parts.pop();
    }
    let mut module = crate_name.to_string();
    for p in parts {
        module.push_str("::");
        module.push_str(&p);
    }
    module
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_paths() {
        let src = Path::new("/w/crates/core/src");
        let m = |p: &str| module_path(&src.join(p), src, "dkindex_core");
        assert_eq!(m("lib.rs"), "dkindex_core");
        assert_eq!(m("serve.rs"), "dkindex_core::serve");
        assert_eq!(m("dk/mod.rs"), "dkindex_core::dk");
        assert_eq!(m("dk/construct.rs"), "dkindex_core::dk::construct");
        assert_eq!(m("bin/reproduce.rs"), "dkindex_core::bin::reproduce");
    }
}
