//! Fixture tests for the analyzer: each rule fires exactly once on the
//! `bad` tree, the justified `allowed` tree passes, a bare allow comment is
//! itself a finding, the `clean` tree has zero findings under a config
//! that scopes every rule onto it — and the real workspace is clean under
//! the repository rule tables, which is the regression gate for every
//! violation fixed in this PR.
//!
//! Fixture trees live in `crates/analyze/fixtures/<case>/crates/<crate>/`
//! as manifest-less mini-workspaces: `workspace::load_workspace` falls
//! back to directory names for crate names, so a bare `src/lib.rs` is a
//! complete fixture crate.

use dkindex_analyze::rules::{count_by_rule, ForbiddenRef, OracleSpec, RuleConfig};
use dkindex_analyze::{analyze_workspace, analyze_workspace_with, default_config, Finding, RULES};
use std::path::{Path, PathBuf};

fn fixture_root(case: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(case)
}

/// The config the `bad` and `allowed` trees are analyzed under: every rule
/// scoped onto exactly one fixture crate.
fn fixture_config() -> RuleConfig {
    RuleConfig {
        determinism_scope: vec!["detcrate".into()],
        panic_scope: vec!["panicky".into()],
        oracles: vec![OracleSpec {
            module: "oracle".into(),
            oracle_for: "the fixture fast path".into(),
            forbidden: vec![
                ForbiddenRef::new(
                    "FastEngine",
                    "the oracle would be checking the engine against itself",
                ),
                ForbiddenRef::new(
                    "telemetry_stub",
                    "telemetry must not be able to perturb the baseline",
                ),
            ],
        }],
        unsafe_hygiene: true,
    }
}

fn finding_in<'a>(findings: &'a [Finding], rule: &str) -> &'a Finding {
    findings
        .iter()
        .find(|f| f.rule == rule)
        .unwrap_or_else(|| panic!("no {rule} finding in {findings:?}"))
}

#[test]
fn each_rule_fires_exactly_once_on_the_bad_tree() {
    let findings = analyze_workspace_with(&fixture_root("bad"), &fixture_config()).unwrap();
    let counts = count_by_rule(&findings);
    for rule in RULES {
        assert_eq!(
            counts[rule.id], 1,
            "rule {} should fire exactly once on the bad tree: {findings:?}",
            rule.id
        );
    }
    assert_eq!(findings.len(), RULES.len(), "no extra findings: {findings:?}");

    // Each finding lands in the fixture crate built to trigger it.
    let lands_in = [
        ("nondeterministic-iter", "detcrate"),
        ("oracle-purity", "oracle"),
        ("panic-path", "panicky"),
        ("unsafe-hygiene", "unsafety"),
    ];
    for (rule, crate_dir) in lands_in {
        let f = finding_in(&findings, rule);
        let path = f.path.to_string_lossy();
        assert!(path.contains(crate_dir), "{rule} fired in {path}, expected {crate_dir}");
        // The printed form is the `file:line: rule-id: message` contract.
        assert!(f.to_string().contains(&format!(":{}: {rule}: ", f.line)), "{f}");
    }
}

#[test]
fn justified_allows_and_safety_comments_pass() {
    let findings = analyze_workspace_with(&fixture_root("allowed"), &fixture_config()).unwrap();
    assert!(findings.is_empty(), "justified tree must be clean: {findings:?}");
}

#[test]
fn a_bare_allow_comment_is_itself_a_finding() {
    let config = RuleConfig {
        panic_scope: vec!["panicky".into()],
        ..RuleConfig::default()
    };
    let findings = analyze_workspace_with(&fixture_root("unjustified"), &config).unwrap();
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "panic-path");
    assert!(
        findings[0].message.contains("requires a justification"),
        "{}",
        findings[0]
    );
}

#[test]
fn the_clean_tree_has_zero_findings_under_the_full_config() {
    let config = RuleConfig {
        determinism_scope: vec!["cleanc".into()],
        panic_scope: vec!["cleanc".into()],
        oracles: vec![OracleSpec {
            module: "cleanc".into(),
            oracle_for: "the fixture fast path".into(),
            forbidden: vec![ForbiddenRef::new(
                "FastEngine",
                "the oracle would be checking the engine against itself",
            )],
        }],
        unsafe_hygiene: true,
    };
    let findings = analyze_workspace_with(&fixture_root("clean"), &config).unwrap();
    assert!(findings.is_empty(), "clean tree must have zero findings: {findings:?}");
}

/// The delta-epoch store modules (`dkindex_graph::segvec`,
/// `dkindex_core::block_store`) are inside the **repository** determinism
/// and panic scopes: a fixture tree mirroring their exact module paths,
/// seeded with one hash-order iteration and one panic path per module,
/// fires both rules in both modules under `default_config`. If the scope
/// tables lose those entries, this test fails before the real modules can
/// regress unchecked.
#[test]
fn store_modules_are_inside_the_repository_scopes() {
    let findings = analyze_workspace_with(&fixture_root("store"), &default_config()).unwrap();
    let counts = count_by_rule(&findings);
    assert_eq!(counts["nondeterministic-iter"], 2, "{findings:?}");
    assert_eq!(counts["panic-path"], 2, "{findings:?}");
    assert_eq!(findings.len(), 4, "no extra findings: {findings:?}");
    for module in ["segvec", "block_store"] {
        for rule in ["nondeterministic-iter", "panic-path"] {
            assert!(
                findings
                    .iter()
                    .any(|f| f.rule == rule && f.path.to_string_lossy().contains(module)),
                "{rule} did not fire in {module}: {findings:?}"
            );
        }
    }
}

/// The network wire modules (`dkindex_server::protocol`,
/// `dkindex_server::conn`) are inside the **repository** determinism and
/// panic scopes: a fixture tree mirroring their exact module paths, seeded
/// with one hash-order iteration and one panic path per module, fires both
/// rules in both modules under `default_config`. A frame codec that panics
/// on a malformed body or encodes in hash order would break the
/// wire-determinism contract (docs/PROTOCOL.md) silently; this test fails
/// first if the scope tables lose those entries.
#[test]
fn net_server_modules_are_inside_the_repository_scopes() {
    let findings = analyze_workspace_with(&fixture_root("netserver"), &default_config()).unwrap();
    let counts = count_by_rule(&findings);
    assert_eq!(counts["nondeterministic-iter"], 2, "{findings:?}");
    assert_eq!(counts["panic-path"], 2, "{findings:?}");
    assert_eq!(findings.len(), 4, "no extra findings: {findings:?}");
    for module in ["protocol", "conn"] {
        for rule in ["nondeterministic-iter", "panic-path"] {
            assert!(
                findings
                    .iter()
                    .any(|f| f.rule == rule && f.path.to_string_lossy().contains(module)),
                "{rule} did not fire in {module}: {findings:?}"
            );
        }
    }
}

/// The durability-layer modules (`dkindex_core::wal`,
/// `dkindex_core::io_fail`) are inside the **repository** determinism and
/// panic scopes: a fixture tree mirroring their exact module paths, seeded
/// with one hash-order iteration and one panic path per module, fires both
/// rules in both modules under `default_config`. A WAL that encodes in
/// hash order would make recovery replay a different op sequence than the
/// one acknowledged, and a panicking fail-point layer would crash the
/// torture harness instead of reporting a typed violation; this test
/// fails first if the scope tables lose those entries.
#[test]
fn wal_v2_and_io_fail_are_inside_the_repository_scopes() {
    let findings = analyze_workspace_with(&fixture_root("walv2"), &default_config()).unwrap();
    let counts = count_by_rule(&findings);
    assert_eq!(counts["nondeterministic-iter"], 2, "{findings:?}");
    assert_eq!(counts["panic-path"], 2, "{findings:?}");
    assert_eq!(findings.len(), 4, "no extra findings: {findings:?}");
    // Match on file names ("wal.rs", not "wal") — the fixture root itself
    // contains "wal", so a bare substring would match every path.
    for module in ["wal.rs", "io_fail.rs"] {
        for rule in ["nondeterministic-iter", "panic-path"] {
            assert!(
                findings
                    .iter()
                    .any(|f| f.rule == rule && f.path.to_string_lossy().ends_with(module)),
                "{rule} did not fire in {module}: {findings:?}"
            );
        }
    }
}

/// The adaptive-tuning modules (`dkindex_core::tuner`,
/// `dkindex_core::mining`) are inside the **repository** determinism and
/// panic scopes: a fixture tree mirroring their exact module paths, seeded
/// with one hash-order iteration and one panic path per module, fires both
/// rules in both modules under `default_config`. A tuner that plans in
/// hash order would enqueue different `SetRequirements` ops on different
/// runs — breaking the recorded-op replay oracle the live-tuning gate
/// depends on — and a panicking plan or miner would take the maintenance
/// thread down; this test fails first if the scope tables lose those
/// entries.
#[test]
fn tuner_and_mining_are_inside_the_repository_scopes() {
    let findings = analyze_workspace_with(&fixture_root("tuner"), &default_config()).unwrap();
    let counts = count_by_rule(&findings);
    assert_eq!(counts["nondeterministic-iter"], 2, "{findings:?}");
    assert_eq!(counts["panic-path"], 2, "{findings:?}");
    assert_eq!(findings.len(), 4, "no extra findings: {findings:?}");
    // Match on file names — the fixture root itself is named "tuner", so a
    // bare substring would match every path.
    for module in ["tuner.rs", "mining.rs"] {
        for rule in ["nondeterministic-iter", "panic-path"] {
            assert!(
                findings
                    .iter()
                    .any(|f| f.rule == rule && f.path.to_string_lossy().ends_with(module)),
                "{rule} did not fire in {module}: {findings:?}"
            );
        }
    }
}

/// The regression gate for the workspace-wide fix pass: the real tree
/// lints clean under the repository rule tables, forever.
#[test]
fn the_real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels under the workspace root");
    let findings = analyze_workspace(root).unwrap();
    assert!(findings.is_empty(), "workspace contract violations: {findings:#?}");
}
