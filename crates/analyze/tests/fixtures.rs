//! Fixture tests for the analyzer: each rule fires exactly once on the
//! `bad` tree, the justified `allowed` tree passes, a bare allow comment is
//! itself a finding, the `clean` tree has zero findings under a config
//! that scopes every rule onto it — and the real workspace is clean under
//! the repository rule tables, which is the regression gate for every
//! violation fixed in this PR.
//!
//! Fixture trees live in `crates/analyze/fixtures/<case>/crates/<crate>/`
//! as manifest-less mini-workspaces: `workspace::load_workspace` falls
//! back to directory names for crate names, so a bare `src/lib.rs` is a
//! complete fixture crate.

use dkindex_analyze::rules::{
    count_by_rule, BlockingSpec, ConsumeConfig, ForbiddenRef, GuardConfig, GuardSpec,
    MetricConfig, OracleSpec, RuleConfig, WireConfig,
};
use dkindex_analyze::{analyze_workspace, analyze_workspace_with, default_config, Finding, RULES};
use std::path::{Path, PathBuf};

fn fixture_root(case: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(case)
}

/// The config the `bad` and `allowed` trees are analyzed under: every rule
/// scoped onto exactly one fixture crate.
fn fixture_config() -> RuleConfig {
    RuleConfig {
        determinism_scope: vec!["detcrate".into()],
        panic_scope: vec!["panicky".into()],
        oracles: vec![OracleSpec {
            module: "oracle".into(),
            oracle_for: "the fixture fast path".into(),
            forbidden: vec![
                ForbiddenRef::new(
                    "FastEngine",
                    "the oracle would be checking the engine against itself",
                ),
                ForbiddenRef::new(
                    "telemetry_stub",
                    "telemetry must not be able to perturb the baseline",
                ),
            ],
        }],
        unsafe_hygiene: true,
        guard: Some(GuardConfig {
            scope: vec!["guardy".into()],
            guards: vec![GuardSpec::new("write", true, "epoch RwLock write guard")],
            blocking: vec![BlockingSpec::new("sync_all", false, "fsync")],
            batch_open: "stage".into(),
            batch_close: "commit".into(),
        }),
        consume: Some(ConsumeConfig {
            scope: vec!["consumy".into()],
            producers: vec!["send".into()],
            ret_types: vec!["DurableAck".into()],
        }),
        wire: Some(WireConfig {
            protocol_module: "wirey".into(),
            encode_fns: vec!["opcode".into()],
            decode_fns: vec!["decode_body".into()],
            golden_test: "golden.rs".into(),
            protocol_doc: "PROTOCOL.md".into(),
            cli_module: "wirey::cli".into(),
            exit_code_fn: "exit_code".into(),
            operations_doc: "OPERATIONS.md".into(),
        }),
        metrics: Some(MetricConfig {
            registry_module: "metricy::registry".into(),
            registry_fns: vec!["counters".into()],
            architecture_doc: "ARCH.md".into(),
        }),
    }
}

fn finding_in<'a>(findings: &'a [Finding], rule: &str) -> &'a Finding {
    findings
        .iter()
        .find(|f| f.rule == rule)
        .unwrap_or_else(|| panic!("no {rule} finding in {findings:?}"))
}

#[test]
fn each_rule_fires_exactly_once_on_the_bad_tree() {
    let findings = analyze_workspace_with(&fixture_root("bad"), &fixture_config()).unwrap();
    let counts = count_by_rule(&findings);
    for rule in RULES {
        assert_eq!(
            counts[rule.id], 1,
            "rule {} should fire exactly once on the bad tree: {findings:?}",
            rule.id
        );
    }
    assert_eq!(findings.len(), RULES.len(), "no extra findings: {findings:?}");

    // Each finding lands in the fixture crate built to trigger it.
    let lands_in = [
        ("nondeterministic-iter", "detcrate"),
        ("oracle-purity", "oracle"),
        ("panic-path", "panicky"),
        ("unsafe-hygiene", "unsafety"),
        ("guard-discipline", "guardy"),
        ("must-consume", "consumy"),
        ("wire-totality", "wirey"),
        ("metric-coherence", "metricy"),
    ];
    for (rule, crate_dir) in lands_in {
        let f = finding_in(&findings, rule);
        let path = f.path.to_string_lossy();
        assert!(path.contains(crate_dir), "{rule} fired in {path}, expected {crate_dir}");
        // The printed form is the `file:line: rule-id: message` contract.
        assert!(f.to_string().contains(&format!(":{}: {rule}: ", f.line)), "{f}");
    }
}

#[test]
fn justified_allows_and_safety_comments_pass() {
    let findings = analyze_workspace_with(&fixture_root("allowed"), &fixture_config()).unwrap();
    assert!(findings.is_empty(), "justified tree must be clean: {findings:?}");
}

#[test]
fn a_bare_allow_comment_is_itself_a_finding() {
    let config = RuleConfig {
        panic_scope: vec!["panicky".into()],
        consume: Some(ConsumeConfig {
            scope: vec!["consumy".into()],
            producers: vec!["send".into()],
            ret_types: vec!["DurableAck".into()],
        }),
        ..RuleConfig::default()
    };
    let findings = analyze_workspace_with(&fixture_root("unjustified"), &config).unwrap();
    assert_eq!(findings.len(), 2, "{findings:?}");
    for (finding, rule) in findings.iter().zip(["must-consume", "panic-path"]) {
        assert_eq!(finding.rule, rule, "{findings:?}");
        assert!(
            finding.message.contains("requires a justification"),
            "{finding}"
        );
    }
}

#[test]
fn the_clean_tree_has_zero_findings_under_the_full_config() {
    let config = RuleConfig {
        determinism_scope: vec!["cleanc".into()],
        panic_scope: vec!["cleanc".into()],
        oracles: vec![OracleSpec {
            module: "cleanc".into(),
            oracle_for: "the fixture fast path".into(),
            forbidden: vec![ForbiddenRef::new(
                "FastEngine",
                "the oracle would be checking the engine against itself",
            )],
        }],
        unsafe_hygiene: true,
        guard: Some(GuardConfig {
            scope: vec!["cleanc".into()],
            guards: vec![GuardSpec::new("write", true, "epoch RwLock write guard")],
            blocking: vec![BlockingSpec::new("sync_all", false, "fsync")],
            batch_open: "stage".into(),
            batch_close: "commit".into(),
        }),
        consume: Some(ConsumeConfig {
            scope: vec!["cleanc".into()],
            producers: vec!["send".into()],
            ret_types: vec!["DurableAck".into()],
        }),
        wire: Some(WireConfig {
            protocol_module: "cleanc::protocol".into(),
            encode_fns: vec!["opcode".into()],
            decode_fns: vec!["decode_body".into()],
            golden_test: "golden.rs".into(),
            protocol_doc: "PROTOCOL.md".into(),
            cli_module: "cleanc::cli".into(),
            exit_code_fn: "exit_code".into(),
            operations_doc: "OPERATIONS.md".into(),
        }),
        metrics: Some(MetricConfig {
            registry_module: "cleanc::registry".into(),
            registry_fns: vec!["counters".into()],
            architecture_doc: "ARCH.md".into(),
        }),
    };
    let findings = analyze_workspace_with(&fixture_root("clean"), &config).unwrap();
    assert!(findings.is_empty(), "clean tree must have zero findings: {findings:?}");
}

/// The delta-epoch store modules (`dkindex_graph::segvec`,
/// `dkindex_core::block_store`) are inside the **repository** determinism
/// and panic scopes: a fixture tree mirroring their exact module paths,
/// seeded with one hash-order iteration and one panic path per module,
/// fires both rules in both modules under `default_config`. If the scope
/// tables lose those entries, this test fails before the real modules can
/// regress unchecked.
#[test]
fn store_modules_are_inside_the_repository_scopes() {
    let findings = analyze_workspace_with(&fixture_root("store"), &default_config()).unwrap();
    let counts = count_by_rule(&findings);
    assert_eq!(counts["nondeterministic-iter"], 2, "{findings:?}");
    assert_eq!(counts["panic-path"], 2, "{findings:?}");
    assert_eq!(findings.len(), 4, "no extra findings: {findings:?}");
    for module in ["segvec", "block_store"] {
        for rule in ["nondeterministic-iter", "panic-path"] {
            assert!(
                findings
                    .iter()
                    .any(|f| f.rule == rule && f.path.to_string_lossy().contains(module)),
                "{rule} did not fire in {module}: {findings:?}"
            );
        }
    }
}

/// The network wire modules (`dkindex_server::protocol`,
/// `dkindex_server::conn`) are inside the **repository** determinism and
/// panic scopes: a fixture tree mirroring their exact module paths, seeded
/// with one hash-order iteration and one panic path per module, fires both
/// rules in both modules under `default_config`. A frame codec that panics
/// on a malformed body or encodes in hash order would break the
/// wire-determinism contract (docs/PROTOCOL.md) silently; this test fails
/// first if the scope tables lose those entries.
#[test]
fn net_server_modules_are_inside_the_repository_scopes() {
    let findings = analyze_workspace_with(&fixture_root("netserver"), &default_config()).unwrap();
    let counts = count_by_rule(&findings);
    assert_eq!(counts["nondeterministic-iter"], 2, "{findings:?}");
    assert_eq!(counts["panic-path"], 2, "{findings:?}");
    assert_eq!(findings.len(), 4, "no extra findings: {findings:?}");
    for module in ["protocol", "conn"] {
        for rule in ["nondeterministic-iter", "panic-path"] {
            assert!(
                findings
                    .iter()
                    .any(|f| f.rule == rule && f.path.to_string_lossy().contains(module)),
                "{rule} did not fire in {module}: {findings:?}"
            );
        }
    }
}

/// The durability-layer modules (`dkindex_core::wal`,
/// `dkindex_core::io_fail`) are inside the **repository** determinism and
/// panic scopes: a fixture tree mirroring their exact module paths, seeded
/// with one hash-order iteration and one panic path per module, fires both
/// rules in both modules under `default_config`. A WAL that encodes in
/// hash order would make recovery replay a different op sequence than the
/// one acknowledged, and a panicking fail-point layer would crash the
/// torture harness instead of reporting a typed violation; this test
/// fails first if the scope tables lose those entries.
#[test]
fn wal_v2_and_io_fail_are_inside_the_repository_scopes() {
    let findings = analyze_workspace_with(&fixture_root("walv2"), &default_config()).unwrap();
    let counts = count_by_rule(&findings);
    assert_eq!(counts["nondeterministic-iter"], 2, "{findings:?}");
    assert_eq!(counts["panic-path"], 2, "{findings:?}");
    assert_eq!(findings.len(), 4, "no extra findings: {findings:?}");
    // Match on file names ("wal.rs", not "wal") — the fixture root itself
    // contains "wal", so a bare substring would match every path.
    for module in ["wal.rs", "io_fail.rs"] {
        for rule in ["nondeterministic-iter", "panic-path"] {
            assert!(
                findings
                    .iter()
                    .any(|f| f.rule == rule && f.path.to_string_lossy().ends_with(module)),
                "{rule} did not fire in {module}: {findings:?}"
            );
        }
    }
}

/// The adaptive-tuning modules (`dkindex_core::tuner`,
/// `dkindex_core::mining`) are inside the **repository** determinism and
/// panic scopes: a fixture tree mirroring their exact module paths, seeded
/// with one hash-order iteration and one panic path per module, fires both
/// rules in both modules under `default_config`. A tuner that plans in
/// hash order would enqueue different `SetRequirements` ops on different
/// runs — breaking the recorded-op replay oracle the live-tuning gate
/// depends on — and a panicking plan or miner would take the maintenance
/// thread down; this test fails first if the scope tables lose those
/// entries.
#[test]
fn tuner_and_mining_are_inside_the_repository_scopes() {
    let findings = analyze_workspace_with(&fixture_root("tuner"), &default_config()).unwrap();
    let counts = count_by_rule(&findings);
    assert_eq!(counts["nondeterministic-iter"], 2, "{findings:?}");
    assert_eq!(counts["panic-path"], 2, "{findings:?}");
    assert_eq!(findings.len(), 4, "no extra findings: {findings:?}");
    // Match on file names — the fixture root itself is named "tuner", so a
    // bare substring would match every path.
    for module in ["tuner.rs", "mining.rs"] {
        for rule in ["nondeterministic-iter", "panic-path"] {
            assert!(
                findings
                    .iter()
                    .any(|f| f.rule == rule && f.path.to_string_lossy().ends_with(module)),
                "{rule} did not fire in {module}: {findings:?}"
            );
        }
    }
}

/// A report written from one run is a complete baseline for the next:
/// every finding's stable id round-trips through `ANALYZE.json`, and the
/// ids stay put when line numbers drift (they hash `rule:path:message`,
/// not positions).
#[test]
fn a_written_report_baselines_the_same_tree() {
    let findings = analyze_workspace_with(&fixture_root("bad"), &fixture_config()).unwrap();
    assert!(!findings.is_empty());
    let dir = std::env::temp_dir().join(format!("dkindex-analyze-baseline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json = dir.join("ANALYZE.json");
    dkindex_analyze::report::write_json(&json, &findings, Some(3)).unwrap();
    let known = dkindex_analyze::report::read_baseline(&json).unwrap();
    assert_eq!(known.len(), findings.len(), "ids must be distinct: {findings:?}");
    for f in &findings {
        assert!(known.contains(&f.id()), "baseline missing {} for {f}", f.id());
        let mut shifted = f.clone();
        shifted.line += 40;
        assert_eq!(shifted.id(), f.id(), "ids must survive line drift");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The regression gate for the workspace-wide fix pass: the real tree
/// lints clean under the repository rule tables, forever.
#[test]
fn the_real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels under the workspace root");
    let findings = analyze_workspace(root).unwrap();
    assert!(findings.is_empty(), "workspace contract violations: {findings:#?}");
}
