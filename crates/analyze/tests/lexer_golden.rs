//! Lexer hardening goldens: line tracking and token fidelity through every
//! pathological literal form. A lexer that silently desyncs its line
//! counter misplaces findings *and* detaches `// analyze: allow(...)`
//! comments from the lines they justify — i.e. it can suppress findings —
//! so each construct pins the exact line of a sentinel token placed after
//! it, plus a composition sweep that cross-checks the whole stream against
//! the newline count.

use dkindex_analyze::lexer::{lex, TokKind};

/// Line of the first `sentinel` ident in `src`.
fn sentinel_line(src: &str) -> u32 {
    let (toks, _) = lex(src);
    toks.iter()
        .find(|t| t.kind == TokKind::Ident && t.text == "sentinel")
        .unwrap_or_else(|| panic!("no sentinel token in {src:?}"))
        .line
}

#[test]
fn hashed_raw_strings_track_lines() {
    // r#"..."# spanning three lines; an embedded "# that does NOT close
    // (fence is ##) must not end the literal early.
    let src = "let a = r##\"one\n\"# not a close\nthree\"##;\nsentinel();\n";
    assert_eq!(sentinel_line(src), 4);
    let (toks, _) = lex(src);
    let lit = toks.iter().find(|t| t.text.starts_with("r##")).unwrap();
    assert_eq!(lit.line, 1, "a multi-line literal is reported at its start");
    assert_eq!(lit.str_content(), Some("one\n\"# not a close\nthree"));
}

#[test]
fn byte_and_raw_byte_strings_track_lines() {
    let src = "let a = b\"x\\ny\";\nlet b = br#\"p\nq\"#;\nsentinel();\n";
    assert_eq!(sentinel_line(src), 4);
    let (toks, _) = lex(src);
    assert!(toks.iter().any(|t| t.text == "br#\"p\nq\"#"));
}

#[test]
fn multi_line_plain_strings_report_their_start_line() {
    let src = "let a = \"one\ntwo\nthree\";\nsentinel();\n";
    assert_eq!(sentinel_line(src), 4);
    let (toks, _) = lex(src);
    let lit = toks.iter().find(|t| t.kind == TokKind::Literal).unwrap();
    assert_eq!(lit.line, 1);
}

#[test]
fn escaped_newline_in_a_string_still_counts_the_line() {
    // The `\` + newline line-continuation: the escape consumes the
    // newline, but the *source* still has one — the next token is on
    // line 3, not line 2.
    let src = "let a = \"one \\\ntwo\";\nsentinel();\n";
    assert_eq!(sentinel_line(src), 3);
}

#[test]
fn nested_block_comments_track_lines_and_nesting() {
    let src = "/* outer\n/* inner\nstill inner */\nouter again */\nsentinel();\n";
    assert_eq!(sentinel_line(src), 5);
    let (toks, comments) = lex(src);
    assert_eq!(comments.len(), 1, "one nested comment, not two");
    assert_eq!(comments[0].line, 1);
    // Nothing inside the comment leaked into the token stream.
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Ident).count(), 1);
}

#[test]
fn allow_comments_survive_a_pathological_raw_string_above_them() {
    // The regression that motivated the hardening: a hashed raw string
    // between an allow comment and the line it covers must not shift the
    // comment's reported line.
    let src = "let wire = r#\"a\nb\nc\"#;\n// analyze: allow(panic-path) — pinned\nlet x = v.pop().unwrap();\n";
    let (_, comments) = lex(src);
    let allow = comments.iter().find(|c| c.text.contains("allow")).unwrap();
    assert_eq!(allow.line, 4, "comment line must survive the raw string");
}

#[test]
fn char_and_lifetime_literals_do_not_eat_following_tokens() {
    let (toks, _) = lex("f('\\n', 'x', b'\\'', &'a str)");
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    assert!(texts.contains(&"str"), "{texts:?}");
    assert!(texts.contains(&"'a"), "{texts:?}");
}

/// Property sweep: every composition of the pathological fragments keeps
/// the final token's line equal to the source's newline-derived line. A
/// deterministic LCG drives fragment selection so the sweep is
/// reproducible without a randomness dependency.
#[test]
fn composed_pathological_sources_never_desync_lines() {
    let fragments = [
        "let a = \"s\";\n",
        "let b = r##\"multi\nline \"# fake\nend\"##;\n",
        "let c = b\"bytes\\n\";\n",
        "let d = br##\"raw\nbytes\"##;\n",
        "/* block /* nested\n */ comment */\n",
        "// line comment with \"quote\n",
        "let e = \"escaped \\\" quote and \\\ncontinuation\";\n",
        "let f = ('x', '\\n', 'a');\n",
        "let g: &'static str = \"s\";\n",
        "let r#h = 0x2E;\n",
    ];
    let mut state = 0x2545F4914F6CDD1Du64;
    for trial in 0..64 {
        let mut src = String::new();
        for _ in 0..(trial % 7) + 1 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = (state >> 33) as usize % fragments.len();
            src.push_str(fragments[pick]);
        }
        src.push_str("sentinel();\n");
        let expected = (src[..src.find("sentinel").unwrap()].matches('\n').count() + 1) as u32;
        assert_eq!(
            sentinel_line(&src),
            expected,
            "line desync on composed source:\n{src}"
        );
    }
}
