//! Construction benchmarks: label-split, A(k), D(k) and 1-index build times
//! on the XMark-like dataset (supports the paper's O(km) construction claim:
//! A(k)/D(k) build time grows roughly linearly in k, with D(k) tracking the
//! requirement mix rather than the worst case).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dkindex_bench::datasets;
use dkindex_bench::experiments::standard_workload;
use dkindex_core::{label_split_index, AkIndex, DkIndex, OneIndex};

fn construction(c: &mut Criterion) {
    let data = datasets::xmark(0.005);
    let workload = standard_workload(&data, 2003);
    let reqs = workload.mine_requirements();

    let mut group = c.benchmark_group("construction");
    group.sample_size(10);

    group.bench_function("label_split", |b| {
        b.iter(|| label_split_index(std::hint::black_box(&data)))
    });
    for k in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("ak", k), &k, |b, &k| {
            b.iter(|| AkIndex::build(std::hint::black_box(&data), k))
        });
    }
    group.bench_function("dk_mined", |b| {
        b.iter(|| DkIndex::build(std::hint::black_box(&data), reqs.clone()))
    });
    group.bench_function("one_index", |b| {
        b.iter(|| OneIndex::build(std::hint::black_box(&data)))
    });
    group.finish();
}

criterion_group!(benches, construction);
criterion_main!(benches);
