//! Figure 4 micro-benchmark: workload evaluation wall-time through each
//! index on the XMark-like dataset, before updating. The `reproduce` binary
//! reports the paper's node-visit cost model; this bench confirms the same
//! ordering holds for wall-clock time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dkindex_bench::datasets;
use dkindex_bench::experiments::standard_workload;
use dkindex_core::{AkIndex, DkIndex, IndexEvaluator};

fn eval_xmark(c: &mut Criterion) {
    let data = datasets::xmark(0.005);
    let workload = standard_workload(&data, 2003);

    let mut group = c.benchmark_group("eval_xmark");
    group.sample_size(10);

    for k in [0usize, 2, 4] {
        let ak = AkIndex::build(&data, k);
        group.bench_with_input(BenchmarkId::new("ak", k), &k, |b, _| {
            let mut evaluator = IndexEvaluator::new(ak.index(), &data);
            b.iter(|| {
                let mut total = 0u64;
                for q in workload.queries() {
                    total += evaluator.evaluate(q).cost.total();
                }
                total
            })
        });
    }
    let dk = DkIndex::build(&data, workload.mine_requirements());
    group.bench_function("dk", |b| {
        let mut evaluator = IndexEvaluator::new(dk.index(), &data);
        b.iter(|| {
            let mut total = 0u64;
            for q in workload.queries() {
                total += evaluator.evaluate(q).cost.total();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, eval_xmark);
criterion_main!(benches);
