//! Ablation bench for the refinement-engine design choices called out in
//! DESIGN.md: the signature-based fixpoint vs the worklist coarsest
//! refinement for the 1-index, per-round A(k) refinement cost (the O(km)
//! claim), and the broadcast algorithm's overhead within D(k) construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dkindex_bench::datasets;
use dkindex_core::{dk::dk_partition_with_options, Requirements};
use dkindex_partition::{bisimulation_fixpoint, coarsest_stable_refinement, k_bisimulation, paige_tarjan};

fn partition_engines(c: &mut Criterion) {
    let data = datasets::xmark(0.005);

    let mut group = c.benchmark_group("partition");
    group.sample_size(10);

    group.bench_function("signature_fixpoint", |b| {
        b.iter(|| bisimulation_fixpoint(std::hint::black_box(&data)))
    });
    group.bench_function("worklist_coarsest", |b| {
        b.iter(|| coarsest_stable_refinement(std::hint::black_box(&data)))
    });
    group.bench_function("paige_tarjan", |b| {
        b.iter(|| paige_tarjan(std::hint::black_box(&data)))
    });
    for k in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("k_bisimulation", k), &k, |b, &k| {
            b.iter(|| k_bisimulation(std::hint::black_box(&data), k))
        });
    }
    // Broadcast on/off inside D(k) construction (uniform requirements make
    // the broadcast a no-op pass; the delta is its bookkeeping cost).
    let reqs = Requirements::uniform(3);
    group.bench_function("dk_with_broadcast", |b| {
        b.iter(|| dk_partition_with_options(std::hint::black_box(&data), &reqs, true))
    });
    group.bench_function("dk_without_broadcast", |b| {
        b.iter(|| dk_partition_with_options(std::hint::black_box(&data), &reqs, false))
    });
    group.finish();
}

criterion_group!(benches, partition_engines);
criterion_main!(benches);
