//! Table 1 micro-benchmark: the time to apply a stream of random ID/IDREF
//! edge additions to A(1)..A(4) vs the D(k)-index. The paper's headline:
//! A(k) update cost "shoots up dramatically" with k while D(k) stays cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dkindex_bench::datasets;
use dkindex_bench::experiments::standard_workload;
use dkindex_core::{AkIndex, DkIndex};
use dkindex_workload::generate_update_edges;

fn update(c: &mut Criterion) {
    let data = datasets::xmark(0.005);
    let workload = standard_workload(&data, 2003);
    let edges = generate_update_edges(&data, 20, 2003);

    let mut group = c.benchmark_group("update_xmark_20_edges");
    group.sample_size(10);

    for k in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("ak", k), &k, |b, &k| {
            b.iter_with_setup(
                || (data.clone(), AkIndex::build(&data, k)),
                |(mut g, mut ak)| {
                    for &(u, v) in &edges {
                        ak.add_edge(&mut g, u, v);
                    }
                    (g, ak)
                },
            )
        });
    }
    let reqs = workload.mine_requirements();
    group.bench_function("dk", |b| {
        b.iter_with_setup(
            || (data.clone(), DkIndex::build(&data, reqs.clone())),
            |(mut g, mut dk)| {
                for &(u, v) in &edges {
                    dk.add_edge(&mut g, u, v);
                }
                (g, dk)
            },
        )
    });
    group.finish();
}

criterion_group!(benches, update);
criterion_main!(benches);
