//! Reproduce the tables and figures of the D(k)-index paper (SIGMOD 2003).
//!
//! ```text
//! reproduce <experiment> [--xmark-scale F] [--nasa-scale F] [--max-k K] [--seed S]
//!
//! experiments:
//!   fig4       evaluation cost vs index size, XMark, before updating
//!   fig5       same on NASA data
//!   table1     update efficiency, A(1)..A(4) vs D(k), both datasets
//!   fig6       evaluation cost vs index size, XMark, after 100 edge updates
//!   fig7       same on NASA data
//!   sizes      summary sizes: A(k), D(k), 1-index, DataGuide (ablation C)
//!   ablation-broadcast   D(k) without Algorithm 1 (ablation A)
//!   ablation-promote     promoting after updates (ablation B)
//!   degradation          cost vs update count, with/without periodic promotion (D1)
//!   length-sweep         cost by query length per index (D2)
//!   bench-smoke          before/after perf check (arena evaluator, refinement
//!                        engine); writes BENCH_eval.json
//!   verify-faults        fault-injection sweep: bit-flip every snapshot byte,
//!                        truncate snapshot and WAL everywhere; exits nonzero
//!                        on any panic or silently accepted corruption
//!   verify-churn         bounded sustained-churn run: large update batches
//!                        under concurrent readers; exits nonzero if the final
//!                        state diverges from the serial replay or a publish
//!                        copied more than 10% of the block store on average
//!   verify-net           loopback network serve gate: mixed query/update
//!                        workload over real TCP plus an induced-overload
//!                        window; exits nonzero if the drained state diverges
//!                        from the serial replay of the admitted updates, if
//!                        any refusal was not a typed SHED frame, or if
//!                        admission overshot the staleness threshold
//!   verify-crash         crash-recovery torture gate for the v2 WAL: cut the
//!                        log at every byte, fail every group commit's fsync,
//!                        tear every batch write at every offset, and kill a
//!                        live logged server at seeded random commits; exits
//!                        nonzero if any acknowledged update fails to replay
//!                        byte-identically after recovery, any crash view
//!                        recovers a partial batch, or anything panics
//!   verify-tune          live-tuning convergence gate: a Zipf-skewed query
//!                        mix that flips to a different pool halfway through
//!                        a WAL-logged serve run with in-loop tuning on;
//!                        exits nonzero if the p99 query cost fails to
//!                        re-converge within the bounded round count, if the
//!                        tuned state diverges from the serial replay of the
//!                        recorded ops (tuner ops included), or if the WAL
//!                        replay diverges from the live state
//!   all        everything above in order
//! ```
//!
//! `bench-smoke` extra flags: `--threads N` (0 = machine parallelism),
//! `--repeats N`, `--out PATH` (default `BENCH_eval.json`), `--metrics PATH`
//! (default `METRICS.json`), `--analyze PATH` (default `ANALYZE.json`).
//! Besides the before/after timing comparison it runs one
//! telemetry-instrumented build → query → adapt pass and writes the
//! recorder snapshot (per-phase span timings, refinement-round counts, query
//! visit-count histograms) to the `--metrics` file, after verifying the
//! recorder changes no observable result. It also runs the `dkindex-analyze`
//! static pass over the workspace sources and writes the per-rule finding
//! counts (all zeros on a clean tree) to the `--analyze` file; when the
//! binary runs outside the source tree the analysis is skipped with a
//! notice.

#![forbid(unsafe_code)]

use dkindex_bench::crash;
use dkindex_bench::datasets::{self, DEFAULT_NASA_SCALE, DEFAULT_XMARK_SCALE};
use dkindex_bench::experiments::*;
use dkindex_bench::net;
use dkindex_bench::perf::{self, PerfConfig};
use dkindex_bench::tuning;
use dkindex_bench::report::{fmt_f64, render_table};
use dkindex_graph::stats::GraphStats;
use dkindex_graph::DataGraph;
use dkindex_workload::Workload;

struct Options {
    xmark_scale: f64,
    nasa_scale: f64,
    max_k: usize,
    seed: u64,
    threads: usize,
    repeats: usize,
    out: String,
    metrics: String,
    analyze: String,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = None;
    let mut opts = Options {
        xmark_scale: DEFAULT_XMARK_SCALE,
        nasa_scale: DEFAULT_NASA_SCALE,
        max_k: 4,
        seed: 2003,
        threads: 0,
        repeats: 3,
        out: "BENCH_eval.json".to_string(),
        metrics: "METRICS.json".to_string(),
        analyze: "ANALYZE.json".to_string(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--xmark-scale" => opts.xmark_scale = parse_next(&mut it, arg),
            "--nasa-scale" => opts.nasa_scale = parse_next(&mut it, arg),
            "--max-k" => opts.max_k = parse_next(&mut it, arg),
            "--seed" => opts.seed = parse_next(&mut it, arg),
            "--threads" => opts.threads = parse_next(&mut it, arg),
            "--repeats" => opts.repeats = parse_next(&mut it, arg),
            "--out" => {
                opts.out = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("flag --out needs a path");
                    std::process::exit(2);
                });
            }
            "--metrics" => {
                opts.metrics = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("flag --metrics needs a path");
                    std::process::exit(2);
                });
            }
            "--analyze" => {
                opts.analyze = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("flag --analyze needs a path");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            name if experiment.is_none() && !name.starts_with('-') => {
                experiment = Some(name.to_string());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                print_usage();
                std::process::exit(2);
            }
        }
    }
    let Some(experiment) = experiment else {
        print_usage();
        std::process::exit(2);
    };

    match experiment.as_str() {
        "fig4" => fig_before(&opts, Dataset::Xmark),
        "fig5" => fig_before(&opts, Dataset::Nasa),
        "table1" => run_table1(&opts),
        "fig6" => fig_after(&opts, Dataset::Xmark),
        "fig7" => fig_after(&opts, Dataset::Nasa),
        "sizes" => run_sizes(&opts),
        "ablation-broadcast" => run_ablation_broadcast(&opts),
        "ablation-promote" => run_ablation_promote(&opts),
        "degradation" => run_degradation(&opts),
        "length-sweep" => run_length_sweep(&opts),
        "bench-smoke" => run_bench_smoke(&opts),
        "verify-faults" => run_verify_faults(&opts),
        "verify-churn" => run_verify_churn(&opts),
        "verify-net" => run_verify_net(&opts),
        "verify-crash" => run_verify_crash(&opts),
        "verify-tune" => run_verify_tune(&opts),
        "all" => {
            fig_before(&opts, Dataset::Xmark);
            fig_before(&opts, Dataset::Nasa);
            run_table1(&opts);
            fig_after(&opts, Dataset::Xmark);
            fig_after(&opts, Dataset::Nasa);
            run_sizes(&opts);
            run_ablation_broadcast(&opts);
            run_ablation_promote(&opts);
            run_degradation(&opts);
            run_length_sweep(&opts);
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            print_usage();
            std::process::exit(2);
        }
    }
}

fn parse_next<T: std::str::FromStr>(it: &mut std::slice::Iter<'_, String>, flag: &str) -> T {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("flag {flag} needs a numeric value");
            std::process::exit(2);
        })
}

fn print_usage() {
    println!(
        "usage: reproduce <fig4|fig5|fig6|fig7|table1|sizes|ablation-broadcast|ablation-promote|\n\
         \x20                degradation|length-sweep|bench-smoke|verify-faults|verify-churn|\n\
         \x20                verify-net|verify-crash|verify-tune|all>\n\
         \x20       [--xmark-scale F] [--nasa-scale F] [--max-k K] [--seed S]\n\
         \x20       [--threads N] [--repeats N] [--out PATH] [--metrics PATH] [--analyze PATH]\n\
         \x20       (the last five flags apply to bench-smoke only)"
    );
}

#[derive(Clone, Copy)]
enum Dataset {
    Xmark,
    Nasa,
}

impl Dataset {
    fn name(self) -> &'static str {
        match self {
            Dataset::Xmark => "Xmark",
            Dataset::Nasa => "Nasa",
        }
    }
}

fn load(opts: &Options, which: Dataset) -> (DataGraph, Workload) {
    let data = match which {
        Dataset::Xmark => datasets::xmark(opts.xmark_scale),
        Dataset::Nasa => datasets::nasa(opts.nasa_scale),
    };
    let workload = standard_workload(&data, opts.seed);
    println!(
        "[{}] {} | workload: {} paths, lengths {:?}",
        which.name(),
        GraphStats::of(&data),
        workload.len(),
        workload.length_histogram(),
    );
    (data, workload)
}

fn print_points(title: &str, points: &[EvalPoint]) {
    println!("\n=== {title} ===");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                p.size.to_string(),
                fmt_f64(p.avg_cost),
                p.validated_queries.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["index", "size (nodes)", "avg cost (nodes visited)", "queries validated"],
            &rows
        )
    );
}

fn fig_before(opts: &Options, which: Dataset) {
    let (data, workload) = load(opts, which);
    let points = figure_before_update(&data, &workload, opts.max_k);
    let fig = match which {
        Dataset::Xmark => "Figure 4",
        Dataset::Nasa => "Figure 5",
    };
    print_points(
        &format!("{fig}: evaluation performance on {} data before updating", which.name()),
        &points,
    );
}

fn fig_after(opts: &Options, which: Dataset) {
    let (data, workload) = load(opts, which);
    let edges = standard_updates(&data, opts.seed);
    let points = figure_after_update(&data, &workload, &edges, opts.max_k);
    let fig = match which {
        Dataset::Xmark => "Figure 6",
        Dataset::Nasa => "Figure 7",
    };
    print_points(
        &format!(
            "{fig}: evaluation performance on {} data after {} edge updates",
            which.name(),
            edges.len()
        ),
        &points,
    );
}

fn run_table1(opts: &Options) {
    println!("\n=== Table 1: update efficiency (100 random ID/IDREF edges) ===");
    let mut rows_out: Vec<Vec<String>> = Vec::new();
    for which in [Dataset::Xmark, Dataset::Nasa] {
        let (data, workload) = load(opts, which);
        let edges = standard_updates(&data, opts.seed);
        let rows = table1(&data, &edges, opts.max_k, &workload.mine_requirements());
        for (i, r) in rows.iter().enumerate() {
            if rows_out.len() <= i {
                rows_out.push(vec![r.name.clone()]);
            }
            rows_out[i].push(format!("{:.0}", r.millis));
            rows_out[i].push(r.work.to_string());
            rows_out[i].push(format!("{}->{}", r.size_before, r.size_after));
        }
    }
    print!(
        "{}",
        render_table(
            &[
                "index",
                "Xmark ms",
                "Xmark work",
                "Xmark size",
                "Nasa ms",
                "Nasa work",
                "Nasa size"
            ],
            &rows_out
        )
    );
}

fn run_sizes(opts: &Options) {
    for which in [Dataset::Xmark, Dataset::Nasa] {
        let (data, workload) = load(opts, which);
        let rows = size_comparison(&data, &workload, opts.max_k);
        println!("\n=== Summary sizes on {} data (ablation C) ===", which.name());
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    match &r.size {
                        Ok(n) => n.to_string(),
                        Err(e) => format!("n/a ({e})"),
                    },
                    r.bytes
                        .map(|b| format!("{:.1} KiB", b as f64 / 1024.0))
                        .unwrap_or_else(|| "-".to_string()),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(&["summary", "size (nodes)", "approx bytes"], &table)
        );
    }
}

fn run_ablation_broadcast(opts: &Options) {
    for which in [Dataset::Xmark, Dataset::Nasa] {
        let (data, workload) = load(opts, which);
        let ab = ablation_broadcast(&data, &workload);
        println!(
            "\n=== Ablation A on {}: D(k) without the broadcast algorithm ===",
            which.name()
        );
        println!(
            "constraint violations: {} | wrong answers: {}/{} | size with broadcast: {} | without: {}",
            ab.constraint_violations,
            ab.wrong_answers,
            workload.len(),
            ab.size_with,
            ab.size_without
        );
    }
}

fn run_degradation(opts: &Options) {
    for which in [Dataset::Xmark, Dataset::Nasa] {
        let (data, workload) = load(opts, which);
        let edges = standard_updates(&data, opts.seed);
        let points = degradation_curve(&data, &workload, &edges, 20, 25);
        println!(
            "\n=== Extension D1 on {}: degradation under updates (promote every 25) ===",
            which.name()
        );
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.updates_applied.to_string(),
                    fmt_f64(p.cost_untuned),
                    fmt_f64(p.cost_promoted),
                    p.size_promoted.to_string(),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &["updates", "cost untuned", "cost promoted", "size promoted"],
                &rows
            )
        );
    }
}

fn run_length_sweep(opts: &Options) {
    for which in [Dataset::Xmark, Dataset::Nasa] {
        let (data, workload) = load(opts, which);
        let (names, rows) = length_sweep(&data, &workload);
        println!(
            "\n=== Extension D2 on {}: avg cost by query length ===",
            which.name()
        );
        let mut headers: Vec<&str> = vec!["labels", "queries"];
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        headers.extend(name_refs);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let mut row = vec![r.labels.to_string(), r.queries.to_string()];
                row.extend(r.avg_costs.iter().map(|&c| fmt_f64(c)));
                row
            })
            .collect();
        print!("{}", render_table(&headers, &table));
    }
}

fn run_bench_smoke(opts: &Options) {
    let (data, workload) = load(opts, Dataset::Xmark);
    let reqs = workload.mine_requirements();
    let cfg = PerfConfig {
        threads: opts.threads,
        repeats: opts.repeats,
    };
    let (eval, builds) = perf::bench_smoke(&data, workload.queries(), &reqs, opts.max_k, &cfg);

    println!("\n=== Bench smoke: arena evaluator + refinement engine ===");
    println!(
        "batch eval ({} indexes x {} queries): baseline {:.1} ms | arena {:.1} ms | \
         parallel({}) {:.1} ms | speedup {:.2}x | identical outcomes: {}",
        eval.indexes,
        eval.queries,
        eval.baseline_ms,
        eval.arena_ms,
        eval.threads,
        eval.parallel_ms,
        eval.speedup_best,
        eval.identical,
    );
    for b in &builds {
        println!(
            "{} build: baseline {:.1} ms | engine {:.1} ms | parallel {:.1} ms | \
             speedup {:.2}x | identical partition: {} | {} blocks",
            b.name,
            b.baseline_ms,
            b.engine_ms,
            b.engine_parallel_ms,
            b.speedup,
            b.identical,
            b.blocks,
        );
    }

    let serve = perf::bench_serve(&data, workload.queries(), &reqs, &cfg, opts.seed);
    println!(
        "serve: {} readers x {} rounds over {} update(s) in {} epoch(s): \
         {:.1} ms | {:.0} queries/s | deterministic vs serial replay: {}",
        serve.readers,
        serve.rounds,
        serve.updates,
        serve.epochs,
        serve.serve_ms,
        serve.queries_per_sec,
        serve.deterministic,
    );

    let churn = perf::bench_churn(&data, workload.queries(), &reqs, &cfg, opts.seed);
    print_churn(&churn);

    let net_cfg = net::NetBenchConfig::default();
    let net_res = net::bench_net(&data, workload.queries(), &reqs, &cfg, &net_cfg, opts.seed);
    print_net(&net_res);

    let tune_cfg = tuning::TuningBenchConfig::default();
    let tune_res = tuning::bench_tuning(&data, &cfg, &tune_cfg, opts.seed);
    print_tuning(&tune_res);

    let durability = {
        let dk = dkindex_core::DkIndex::build(&data, reqs.clone());
        let updates = dkindex_workload::generate_update_edges(&data, 64, opts.seed);
        let wal_path = std::env::temp_dir().join(format!(
            "dkindex-bench-durability-{}.wal",
            std::process::id()
        ));
        match crash::bench_durability(&data, &dk, &updates, &wal_path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("FAIL: durability bench could not ack every update: {e}");
                std::process::exit(1);
            }
        }
    };
    println!(
        "durability: {} updates | WAL on {:.0} acked/s over {} group commit(s) | \
         WAL off {:.0} acked/s",
        durability.updates,
        durability.acked_per_sec_wal_on,
        durability.group_commits,
        durability.acked_per_sec_wal_off,
    );

    let json = perf::to_json(
        "xmark",
        &cfg,
        &eval,
        &builds,
        &perf::ServingSections {
            serve: &serve,
            churn: &churn,
            net: &net_res,
            durability: &durability,
            tuning: &tune_res,
        },
    );
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("error: writing {}: {e}", opts.out);
        std::process::exit(2);
    }
    println!("wrote {}", opts.out);

    let tel = perf::bench_telemetry(&data, workload.queries(), &reqs, opts.max_k, opts.seed);
    println!(
        "telemetry pass: identical with recorder off: {} | on: {} | \
         partition rounds {} | eval queries {}",
        tel.identical_off,
        tel.identical_on,
        tel.snapshot.counter("partition.rounds").unwrap_or(0),
        tel.snapshot.counter("eval.queries").unwrap_or(0),
    );
    let metrics = perf::metrics_to_json("xmark", &cfg, opts.max_k, workload.len(), &tel);
    if let Err(e) = std::fs::write(&opts.metrics, &metrics) {
        eprintln!("error: writing {}: {e}", opts.metrics);
        std::process::exit(2);
    }
    println!("wrote {}", opts.metrics);

    let analysis_violations = run_analyze_report(&opts.analyze);

    if !eval.identical || builds.iter().any(|b| !b.identical) {
        eprintln!("FAIL: before/after paths disagree");
        std::process::exit(1);
    }
    if !serve.deterministic {
        eprintln!("FAIL: concurrent serve diverged from serial replay");
        std::process::exit(1);
    }
    if !churn.deterministic {
        eprintln!("FAIL: sustained-churn run diverged from serial replay");
        std::process::exit(1);
    }
    if !net_res.gate_ok(&net_cfg) {
        eprintln!("FAIL: network serve gate (determinism / typed shedding) failed");
        std::process::exit(1);
    }
    if !tune_res.gate_ok() {
        eprintln!("FAIL: live-tuning gate (re-convergence / determinism / WAL replay) failed");
        std::process::exit(1);
    }
    if !tel.identical() {
        eprintln!("FAIL: telemetry recorder changed observable results");
        std::process::exit(1);
    }
    if analysis_violations > 0 {
        eprintln!("FAIL: {analysis_violations} static-analysis contract violation(s)");
        std::process::exit(1);
    }
}

/// Run the `dkindex-analyze` static pass over the workspace sources and
/// write the per-rule report to `path`. Returns the number of unjustified
/// violations; when the binary runs outside the source tree (no workspace
/// root above the current directory) the pass is skipped with a notice and
/// reported as clean.
fn run_analyze_report(path: &str) -> usize {
    let Some(root) = workspace_root() else {
        println!("static analysis skipped: no workspace sources above the current directory");
        return 0;
    };
    let started = std::time::Instant::now();
    let findings = match dkindex_analyze::analyze_workspace(&root) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("error: analyzing workspace at {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    let wall_ms = started.elapsed().as_millis();
    for f in &findings {
        eprintln!("{f}");
    }
    if let Err(e) =
        dkindex_analyze::report::write_json(std::path::Path::new(path), &findings, Some(wall_ms))
    {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(2);
    }
    println!("wrote {path} ({} finding(s))", findings.len());
    findings.len()
}

/// Walk up from the current directory to the first dir that looks like the
/// workspace root (has `Cargo.toml` and `crates/`).
fn workspace_root() -> Option<std::path::PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn print_churn(churn: &perf::ChurnBenchResult) {
    println!(
        "churn: {} updates in batches of {} over {} epoch(s), {} readers answering \
         {} queries: {:.1} ms | {:.0} updates/s",
        churn.updates,
        churn.batch,
        churn.epochs,
        churn.readers,
        churn.queries,
        churn.churn_ms,
        churn.updates_per_sec,
    );
    println!(
        "churn sharing: {} blocks shared / {} rebuilt across publishes \
         (rebuilt ratio {:.4}, store size {}) | publish p50 {:.3} ms, max {:.3} ms \
         over {} publish(es) | deterministic vs serial replay: {}",
        churn.blocks_shared,
        churn.blocks_rebuilt,
        churn.rebuilt_ratio,
        churn.total_blocks,
        churn.publish_p50_ns as f64 / 1e6,
        churn.publish_max_ns as f64 / 1e6,
        churn.publish_count,
        churn.deterministic,
    );
}

/// Bounded sustained-churn gate: the delta-epoch acceptance criteria as an
/// exit code. Fails if the final state diverges from the serial replay
/// (nondeterminism) or if publishes copied more than 10% of the block store
/// on average at the 32-update batch size (COW regression).
fn run_verify_churn(opts: &Options) {
    let (data, workload) = load(opts, Dataset::Xmark);
    let reqs = workload.mine_requirements();
    let cfg = PerfConfig {
        threads: opts.threads,
        repeats: opts.repeats,
    };
    println!("\n=== Verify churn: delta-epoch publishes under sustained updates ===");
    let churn = perf::bench_churn(&data, workload.queries(), &reqs, &cfg, opts.seed);
    print_churn(&churn);
    if !churn.deterministic {
        eprintln!("FAIL: sustained-churn run diverged from serial replay");
        std::process::exit(1);
    }
    if !churn.sharing_ok() {
        eprintln!(
            "FAIL: publishes copied {:.1}% of the block store on average (gate: <= 10%)",
            churn.rebuilt_ratio * 100.0
        );
        std::process::exit(1);
    }
    println!("sustained churn deterministic; publishes copied only the touched delta");
}

fn print_net(net: &net::NetBenchResult) {
    println!(
        "net: {} readers x {} rounds over loopback TCP: {} queries at {:.0}/s | \
         p50 {:.1} us, p99 {:.1} us, p999 {:.1} us | {} update(s) admitted",
        net.readers,
        net.rounds,
        net.queries,
        net.queries_per_sec,
        net.p50_us,
        net.p99_us,
        net.p999_us,
        net.updates_admitted,
    );
    println!(
        "net overload: {} admitted / {} shed (rate {:.2}) with maintenance paused | \
         typed sheds only: {} | drain {:.1} ms | deterministic vs serial replay: {}",
        net.overload_admitted,
        net.overload_shed,
        net.shed_rate,
        net.typed_sheds_only,
        net.drain_ms,
        net.deterministic,
    );
}

/// Network serve gate: the loopback bench's acceptance criteria as an exit
/// code. Fails if the drained state diverges from the serial replay of the
/// admitted update sequence, if any refusal was not a typed SHED frame
/// (PROTOCOL.md §5), or if admission under induced overload did not stop
/// exactly at the staleness threshold.
fn run_verify_net(opts: &Options) {
    let (data, workload) = load(opts, Dataset::Xmark);
    let reqs = workload.mine_requirements();
    let cfg = PerfConfig {
        threads: opts.threads,
        repeats: opts.repeats,
    };
    println!("\n=== Verify net: DKNP serve over loopback TCP ===");
    let net_cfg = net::NetBenchConfig::default();
    let net_res = net::bench_net(&data, workload.queries(), &reqs, &cfg, &net_cfg, opts.seed);
    print_net(&net_res);
    if !net_res.deterministic {
        eprintln!("FAIL: drained state diverged from serial replay of the admitted updates");
        std::process::exit(1);
    }
    if !net_res.typed_sheds_only {
        eprintln!("FAIL: a refusal was not a typed SHED frame (or a request got no reply)");
        std::process::exit(1);
    }
    if net_res.overload_admitted != net_cfg.staleness_threshold
        || net_res.overload_shed != net_cfg.overload_extra
    {
        eprintln!(
            "FAIL: overload admitted {} (want {}) and shed {} (want {}) — \
             admission did not stop at the staleness threshold",
            net_res.overload_admitted,
            net_cfg.staleness_threshold,
            net_res.overload_shed,
            net_cfg.overload_extra,
        );
        std::process::exit(1);
    }
    println!(
        "network serve deterministic; overload shed typed frames only, zero unbounded queueing"
    );
}

fn run_verify_faults(opts: &Options) {
    use dkindex_bench::faults;
    println!("\n=== Fault injection: snapshot + WAL damage sweeps ===");
    let reports = faults::run_all(opts.seed);
    let mut failed = false;
    for r in &reports {
        println!("{}", r.summary());
        for v in &r.violations {
            eprintln!("  VIOLATION: {v}");
            failed = true;
        }
    }
    if failed {
        eprintln!("FAIL: durability contract violated");
        std::process::exit(1);
    }
    println!("all fault probes recovered or failed with typed errors; zero panics");
}

fn print_tuning(t: &tuning::TuningBenchResult) {
    println!(
        "tuning: {} readers x {} rounds, workload flips at round {}: \
         p99 cost {} -> {} at the shift -> {} converged | \
         re-converged in {} round(s) (bound {})",
        t.readers,
        t.rounds,
        t.shift_round,
        t.baseline_p99,
        t.shift_p99,
        t.converged_p99,
        t.converge_rounds
            .map_or_else(|| "-".to_string(), |r| r.to_string()),
        t.converge_bound,
    );
    println!(
        "tuning activity: {} window(s) mined, {} promotion(s), {} demotion(s), \
         {} tuning op(s) recorded | deterministic vs serial replay: {} | \
         WAL replay identical: {}",
        t.windows,
        t.promotions,
        t.demotions,
        t.tuning_ops,
        t.deterministic,
        t.wal_recovered,
    );
}

/// Live-tuning gate: the shifting-workload bench's acceptance criteria as
/// an exit code. Fails if the p99 query cost does not re-converge within
/// the bounded number of rounds after the workload flips, if the live-tuned
/// state diverges from [`dkindex_core::apply_serial`] over the recorded op
/// sequence
/// (tuner ops at their actual interleaved positions), or if replaying the
/// WAL does not reproduce the live state byte-identically.
fn run_verify_tune(opts: &Options) {
    let data = datasets::xmark(opts.xmark_scale);
    let cfg = PerfConfig {
        threads: opts.threads,
        repeats: opts.repeats,
    };
    println!("\n=== Verify tune: live adaptation under a shifting Zipf workload ===");
    let tune_cfg = tuning::TuningBenchConfig::default();
    let t = tuning::bench_tuning(&data, &cfg, &tune_cfg, opts.seed);
    print_tuning(&t);
    if !t.deterministic {
        eprintln!("FAIL: live-tuned state diverged from serial replay of the recorded ops");
        std::process::exit(1);
    }
    if !t.wal_recovered {
        eprintln!("FAIL: WAL replay diverged from the live-tuned state");
        std::process::exit(1);
    }
    if t.windows == 0 || t.promotions == 0 {
        eprintln!(
            "FAIL: tuner never acted ({} window(s), {} promotion(s))",
            t.windows, t.promotions
        );
        std::process::exit(1);
    }
    if t.converged_p99 > t.shift_p99 {
        eprintln!(
            "FAIL: converged p99 {} is worse than the shift-round p99 {}",
            t.converged_p99, t.shift_p99
        );
        std::process::exit(1);
    }
    match t.converge_rounds {
        Some(r) if r <= t.converge_bound => {}
        _ => {
            eprintln!(
                "FAIL: p99 did not re-converge within {} round(s) after the shift \
                 (curve: {:?})",
                t.converge_bound, t.p99_curve
            );
            std::process::exit(1);
        }
    }
    println!(
        "live tuner re-converged the p99 after the workload shift; \
         tuned run replays serially and from the WAL byte-identically"
    );
}

fn run_verify_crash(opts: &Options) {
    println!("\n=== Crash recovery: v2 WAL fail-points, torn writes, kill loop ===");
    let reports = crash::run_all(opts.seed);
    let mut failed = false;
    for r in &reports {
        println!("{}", r.summary());
        for v in &r.violations {
            eprintln!("  VIOLATION: {v}");
            failed = true;
        }
    }
    if failed {
        eprintln!("FAIL: durable-ack contract violated");
        std::process::exit(1);
    }
    println!(
        "every acknowledged update survived every simulated crash byte-identically; \
         unacked tails recovered atomically; zero panics, typed errors only"
    );
}

fn run_ablation_promote(opts: &Options) {
    for which in [Dataset::Xmark, Dataset::Nasa] {
        let (data, workload) = load(opts, which);
        let edges = standard_updates(&data, opts.seed);
        let (degraded, promoted, splits) = ablation_promote(&data, &workload, &edges);
        println!(
            "\n=== Ablation B on {}: promoting after {} updates ({} splits) ===",
            which.name(),
            edges.len(),
            splits
        );
        print_points("before/after promotion", &[degraded, promoted]);
    }
}
