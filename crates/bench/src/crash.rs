//! Crash-recovery torture harness for the v2 group-commit WAL: inject
//! fsync failures and torn writes at every interesting point, simulate a
//! crash at every surviving-file length, and assert the durable-ack
//! contract of docs/PROTOCOL.md §8 — every acknowledged update replays
//! byte-identically after recovery, unacknowledged work is either absent
//! or recovered as whole batches, and nothing ever panics.
//!
//! Four sweeps, all deterministic (seeding picks the fail plans; the
//! storage model in [`dkindex_core::io_fail`] just executes them):
//!
//! * [`wal_tail_sweep`] — write a batched log on a healthy [`SimDisk`],
//!   then cut it at **every** byte length. Each cut must replay to the
//!   serial application of a whole-batch prefix (commit fences make
//!   partially-persisted batches invisible), and the clean-vs-torn tail
//!   verdict must flag exactly the fence boundaries.
//! * [`fsync_failpoint_sweep`] — fail the group commit of every batch in
//!   turn. Batches before the fail-point must ack, every batch at or
//!   after it must fail typed, and every crash view of the unsynced tail
//!   must recover at least the acked prefix and at most one extra batch.
//! * [`torn_write_sweep`] — tear every batch's single `write(2)` at every
//!   byte offset. The torn batch is never acknowledged, so recovery may
//!   see it fully (the tear hit after the fence) or not at all — never
//!   partially.
//! * [`kill_loop`] — the end-to-end run: a real [`DkServer`] with the WAL
//!   on a [`SharedDisk`], a seeded fail point "killing" the disk at a
//!   random group commit, acks collected per op. The ack stream must be
//!   an `Ok` prefix followed only by typed [`ServeError::WalFailed`], and
//!   every crash view must recover all acked ops in submission order,
//!   byte-identical to the serial oracle.
//!
//! [`bench_durability`] measures what the contract costs: acked
//! updates/sec with the WAL on (real file, one fsync per batch) versus
//! off, reported in the `durability` section of `BENCH_eval.json`.

use crate::faults::{probe, record, FaultReport, Probe};
use dkindex_core::io_fail::{FailPlan, SharedDisk, SimDisk};
use dkindex_core::wal::{self, WalRecord, WalTail, WalWriter};
use dkindex_core::{
    apply_serial, snapshot_bytes, DkIndex, DkServer, ServeConfig, ServeError, ServeOp,
};
use dkindex_graph::{DataGraph, NodeId};
use std::io;
use std::time::Instant;

/// Fold the update stream into mixed maintenance batches: cycling batch
/// sizes, interleaved promotes, and a trailing promote-to-requirements
/// pass, so the sweeps cover every v2 record tag that the serve layer
/// actually logs.
pub fn torture_batches(updates: &[(NodeId, NodeId)]) -> Vec<Vec<ServeOp>> {
    let mut batches: Vec<Vec<ServeOp>> = Vec::new();
    let mut batch: Vec<ServeOp> = Vec::new();
    let mut size = 1usize;
    for (i, &(from, to)) in updates.iter().enumerate() {
        batch.push(ServeOp::AddEdge { from, to });
        if i % 3 == 1 {
            batch.push(ServeOp::Promote { node: from, k: 3 });
        }
        if batch.len() >= size {
            batches.push(std::mem::take(&mut batch));
            size = size % 3 + 1;
        }
    }
    if !batch.is_empty() {
        batches.push(batch);
    }
    batches.push(vec![ServeOp::PromoteToRequirements]);
    batches
}

/// The serial oracle every crash view is compared against: snapshot
/// bytes and cumulative record counts after each whole-batch prefix.
struct BatchOracle {
    states: Vec<Vec<u8>>,
    counts: Vec<usize>,
}

fn batch_oracle(dk: &DkIndex, data: &DataGraph, batches: &[Vec<ServeOp>]) -> BatchOracle {
    let mut d = dk.clone();
    let mut g = data.clone();
    let mut states = vec![snapshot_bytes(&d, &g)];
    let mut counts = vec![0usize];
    for batch in batches {
        apply_serial(&mut d, &mut g, batch);
        states.push(snapshot_bytes(&d, &g));
        counts.push(counts.last().copied().unwrap_or(0) + batch.len());
    }
    BatchOracle { states, counts }
}

/// Contract for one surviving file: it must replay to the serial state of
/// a whole-batch prefix `j` with `min_batches <= j <= max_batches` —
/// never a partial batch, never fewer batches than were acknowledged.
fn check_view(
    dk: &DkIndex,
    data: &DataGraph,
    bytes: &[u8],
    oracle: &BatchOracle,
    min_batches: usize,
    max_batches: usize,
    context: &str,
) -> Probe {
    let mut d = dk.clone();
    let mut g = data.clone();
    match wal::replay(&mut d, &mut g, bytes) {
        Ok(report) => {
            let Some(j) = oracle.counts.iter().position(|&c| c == report.applied) else {
                return Probe::Violation(format!(
                    "{context}: applied {} records — not a whole-batch prefix",
                    report.applied
                ));
            };
            if j < min_batches {
                return Probe::Violation(format!(
                    "{context}: only {j} batches recovered; {min_batches} were acknowledged"
                ));
            }
            if j > max_batches {
                return Probe::Violation(format!(
                    "{context}: {j} batches recovered but at most {max_batches} were ever synced"
                ));
            }
            match oracle.states.get(j) {
                Some(expected) if snapshot_bytes(&d, &g) == *expected => Probe::Recovered,
                _ => Probe::Violation(format!(
                    "{context}: replay of {j} batches diverged from serial application"
                )),
            }
        }
        Err(wal::WalError::Io(e)) => {
            Probe::Violation(format!("{context}: I/O error from in-memory bytes: {e}"))
        }
        Err(_) => Probe::TypedError,
    }
}

/// Write `batches` on a healthy simulated disk, then cut the log at every
/// byte length and replay each cut. The committed-prefix contract: every
/// cut yields a whole-batch prefix, and the tail reads clean exactly at
/// the commit-fence boundaries.
pub fn wal_tail_sweep(dk: &DkIndex, data: &DataGraph, batches: &[Vec<ServeOp>]) -> FaultReport {
    let mut report = FaultReport::new("WAL v2 tail sweep");
    let mut writer = match WalWriter::with_store(SimDisk::new(FailPlan::none())) {
        Ok(w) => w,
        Err(e) => {
            report
                .violations
                .push(format!("healthy disk refused the WAL header: {e}"));
            return report;
        }
    };
    let mut clean_cuts = vec![writer.store().cached().len()];
    for (i, batch) in batches.iter().enumerate() {
        if let Err(e) = writer.append_batch(batch) {
            report
                .violations
                .push(format!("healthy disk refused batch {i}: {e}"));
            return report;
        }
        clean_cuts.push(writer.store().cached().len());
    }
    let log = writer.store().cached().to_vec();
    let oracle = batch_oracle(dk, data, batches);

    for cut in 0..=log.len() {
        let context = format!("v2 WAL cut at byte {cut}");
        let outcome = probe(&context, || {
            let mut d = dk.clone();
            let mut g = data.clone();
            let view = log.get(..cut).unwrap_or(&log);
            match wal::replay(&mut d, &mut g, view) {
                Ok(r) => {
                    let Some(j) = oracle.counts.iter().position(|&c| c == r.applied) else {
                        return Probe::Violation(format!(
                            "{context}: applied {} records — not a whole-batch prefix",
                            r.applied
                        ));
                    };
                    match oracle.states.get(j) {
                        Some(expected) if snapshot_bytes(&d, &g) == *expected => {}
                        _ => {
                            return Probe::Violation(format!(
                                "{context}: replay of {j} batches diverged from serial application"
                            ))
                        }
                    }
                    let clean = matches!(r.tail, WalTail::Clean);
                    if clean != clean_cuts.contains(&cut) {
                        return Probe::Violation(format!(
                            "{context}: tail misreported (torn vs clean)"
                        ));
                    }
                    Probe::Recovered
                }
                Err(wal::WalError::Io(e)) => {
                    Probe::Violation(format!("{context}: I/O error from in-memory bytes: {e}"))
                }
                Err(_) => Probe::TypedError,
            }
        });
        record(&mut report, outcome);
    }
    report
}

/// Fail the group commit of every batch in turn and sweep every crash
/// view of the unsynced tail. Stable storage must hold exactly the acked
/// batches; a crash view may additionally surface the failed batch (its
/// bytes were written, only the fsync failed) — whole or not at all.
pub fn fsync_failpoint_sweep(
    dk: &DkIndex,
    data: &DataGraph,
    batches: &[Vec<ServeOp>],
) -> FaultReport {
    let mut report = FaultReport::new("fsync fail-points");
    let oracle = batch_oracle(dk, data, batches);
    for s in 0..batches.len() {
        // Sync 0 is the header sync at creation; batch i commits at sync i+1.
        let plan = FailPlan {
            fail_sync_at: Some(s as u64 + 1),
            torn_write_at: None,
        };
        let mut writer = match WalWriter::with_store(SimDisk::new(plan)) {
            Ok(w) => w,
            Err(e) => {
                report
                    .violations
                    .push(format!("fail_sync_at {s}: header write failed early: {e}"));
                continue;
            }
        };
        let mut acked = 0usize;
        let shape_context = format!("fail_sync_at {s}: ack shape");
        let shape = probe(&shape_context, || {
            for (i, batch) in batches.iter().enumerate() {
                match writer.append_batch(batch) {
                    Ok(()) if i < s => acked += 1,
                    Ok(()) => {
                        return Probe::Violation(format!(
                            "{shape_context}: batch {i} acked past the failed fsync"
                        ))
                    }
                    Err(_) if i >= s => {}
                    Err(e) => {
                        return Probe::Violation(format!(
                            "{shape_context}: batch {i} failed before the fail-point: {e}"
                        ))
                    }
                }
            }
            Probe::Recovered
        });
        record(&mut report, shape);

        let durable = writer.store().durable().to_vec();
        let context = format!("fail_sync_at {s}: durable prefix");
        let outcome = probe(&context, || {
            check_view(dk, data, &durable, &oracle, acked, acked, &context)
        });
        record(&mut report, outcome);

        let unsynced = writer.store().unsynced_len();
        for extra in 0..=unsynced {
            let view = writer.store().crash_view(extra);
            let context = format!("fail_sync_at {s}: crash view +{extra}B");
            let outcome = probe(&context, || {
                check_view(dk, data, &view, &oracle, acked, acked + 1, &context)
            });
            record(&mut report, outcome);
        }
    }
    report
}

/// Tear every batch's single group-commit `write(2)` at every byte offset.
/// The torn batch never acks; recovery sees it fully (when the tear kept
/// the whole buffer) or not at all — the commit fence makes any shorter
/// tear invisible to replay.
pub fn torn_write_sweep(dk: &DkIndex, data: &DataGraph, batches: &[Vec<ServeOp>]) -> FaultReport {
    let mut report = FaultReport::new("torn batch writes");
    let oracle = batch_oracle(dk, data, batches);

    // Measure each batch's encoded write length on a healthy disk.
    let mut lens = Vec::with_capacity(batches.len());
    {
        let mut writer = match WalWriter::with_store(SimDisk::new(FailPlan::none())) {
            Ok(w) => w,
            Err(e) => {
                report
                    .violations
                    .push(format!("healthy disk refused the WAL header: {e}"));
                return report;
            }
        };
        let mut prev = writer.store().cached().len();
        for (i, batch) in batches.iter().enumerate() {
            if let Err(e) = writer.append_batch(batch) {
                report
                    .violations
                    .push(format!("healthy disk refused batch {i}: {e}"));
                return report;
            }
            let now = writer.store().cached().len();
            lens.push(now - prev);
            prev = now;
        }
    }

    for (w_idx, &len) in lens.iter().enumerate() {
        for keep in 0..=len {
            // Write 0 is the header; batch i is write i+1.
            let plan = FailPlan {
                fail_sync_at: None,
                torn_write_at: Some((w_idx as u64 + 1, keep)),
            };
            let mut writer = match WalWriter::with_store(SimDisk::new(plan)) {
                Ok(w) => w,
                Err(e) => {
                    report.violations.push(format!(
                        "torn_write at batch {w_idx}+{keep}B: header write failed early: {e}"
                    ));
                    continue;
                }
            };
            let context = format!("torn_write at batch {w_idx} keeping {keep}B");
            let shape = probe(&context, || {
                for (i, batch) in batches.iter().enumerate() {
                    match writer.append_batch(batch) {
                        Ok(()) if i < w_idx => {}
                        Ok(()) => {
                            return Probe::Violation(format!(
                                "{context}: batch {i} acked through the torn write"
                            ))
                        }
                        Err(_) if i >= w_idx => {}
                        Err(e) => {
                            return Probe::Violation(format!(
                                "{context}: batch {i} failed before the fail-point: {e}"
                            ))
                        }
                    }
                }
                Probe::Recovered
            });
            record(&mut report, shape);

            let unsynced = writer.store().unsynced_len();
            let mut extras = vec![0usize];
            if unsynced > 0 {
                extras.push(unsynced);
            }
            for extra in extras {
                let view = writer.store().crash_view(extra);
                let view_context = format!("{context}, crash view +{extra}B");
                let outcome = probe(&view_context, || {
                    check_view(dk, data, &view, &oracle, w_idx, w_idx + 1, &view_context)
                });
                record(&mut report, outcome);
            }
        }
    }
    report
}

/// `splitmix64` — the same tiny seeded generator the retry client uses for
/// jitter; deterministic fail-plan selection for [`kill_loop`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// End-to-end kill loop: run a real [`DkServer`] with its WAL on a shared
/// simulated disk, fail the disk at a seeded random group commit, and
/// verify the acknowledged-prefix contract through actual recovery — the
/// ack stream is an `Ok` prefix followed only by typed
/// [`ServeError::WalFailed`], and every crash view replays all acked ops
/// in submission order, byte-identical to the serial oracle.
pub fn kill_loop(
    dk: &DkIndex,
    data: &DataGraph,
    updates: &[(NodeId, NodeId)],
    rounds: usize,
    seed: u64,
) -> FaultReport {
    let mut report = FaultReport::new("kill-at-random-batch loop");
    let mut rng = seed;
    let ops: Vec<ServeOp> = updates
        .iter()
        .map(|&(from, to)| ServeOp::AddEdge { from, to })
        .collect();
    for round in 0..rounds {
        // Worst case every op is its own batch: syncs 1..=ops.len() are
        // group commits (sync 0 is the header). Rolling past the last
        // commit is a round where the disk never fails — also a valid case.
        let kill_sync = 1 + splitmix64(&mut rng) % (ops.len() as u64 + 1);
        let shared = SharedDisk::new(FailPlan {
            fail_sync_at: Some(kill_sync),
            torn_write_at: None,
        });
        let writer = match WalWriter::with_store(shared.clone()) {
            Ok(w) => w,
            Err(e) => {
                report
                    .violations
                    .push(format!("round {round}: shared disk refused the header: {e}"));
                continue;
            }
        };
        let server = DkServer::start_logged(
            data.clone(),
            dk.clone(),
            ServeConfig {
                max_batch: 4,
                threads: 1,
                ..ServeConfig::default()
            },
            Box::new(writer),
        );
        let mut acks = Vec::with_capacity(ops.len());
        let mut submitted: Vec<ServeOp> = Vec::with_capacity(ops.len());
        for op in &ops {
            match server.submit_logged(op.clone()) {
                Ok(ack) => {
                    submitted.push(op.clone());
                    acks.push(ack);
                }
                Err(e) => {
                    report
                        .violations
                        .push(format!("round {round}: submit refused unexpectedly: {e}"));
                }
            }
        }
        let results: Vec<Result<u64, ServeError>> = acks.into_iter().map(|a| a.wait()).collect();
        let _ = server.shutdown();

        let acked = results.iter().take_while(|r| r.is_ok()).count();
        for (i, result) in results.iter().enumerate().skip(acked) {
            match result {
                Ok(_) => report.violations.push(format!(
                    "round {round}: op {i} acked after a failed group commit"
                )),
                Err(ServeError::WalFailed) => {}
                Err(e) => report.violations.push(format!(
                    "round {round}: op {i} failed with {e:?} instead of WalFailed"
                )),
            }
        }

        let unsynced = shared.view(|d| d.unsynced_len());
        let mut extras = vec![0usize];
        if unsynced > 0 {
            extras.push(unsynced / 2);
            extras.push(unsynced);
        }
        extras.dedup();
        for extra in extras {
            let view = shared.view(|d| d.crash_view(extra));
            let context = format!("round {round}: crash view +{extra}B (of {unsynced}B unsynced)");
            let outcome = probe(&context, || {
                let (records, _tail) = match wal::decode_wal(&view) {
                    Ok(decoded) => decoded,
                    Err(wal::WalError::Io(e)) => {
                        return Probe::Violation(format!(
                            "{context}: I/O error from in-memory bytes: {e}"
                        ))
                    }
                    Err(_) => return Probe::TypedError,
                };
                if records.len() < acked {
                    return Probe::Violation(format!(
                        "{context}: {} records recovered but {acked} updates were acknowledged",
                        records.len()
                    ));
                }
                for (i, rec) in records.iter().enumerate() {
                    let Some(expected) = submitted.get(i).map(WalRecord::from_op) else {
                        return Probe::Violation(format!(
                            "{context}: record {i} recovered but only {} ops were submitted",
                            submitted.len()
                        ));
                    };
                    if *rec != expected {
                        return Probe::Violation(format!(
                            "{context}: record {i} does not match the op submitted at {i}"
                        ));
                    }
                }
                let Some(prefix) = submitted.get(..records.len()) else {
                    return Probe::Violation(format!(
                        "{context}: recovered more records than were submitted"
                    ));
                };
                let mut d = dk.clone();
                let mut g = data.clone();
                if let Err(e) = wal::replay(&mut d, &mut g, &view) {
                    return Probe::Violation(format!(
                        "{context}: committed prefix failed to replay: {e}"
                    ));
                }
                let mut d2 = dk.clone();
                let mut g2 = data.clone();
                apply_serial(&mut d2, &mut g2, prefix);
                if snapshot_bytes(&d, &g) != snapshot_bytes(&d2, &g2) {
                    return Probe::Violation(format!(
                        "{context}: recovered state diverged from the serial oracle"
                    ));
                }
                Probe::Recovered
            });
            record(&mut report, outcome);
        }
    }
    report
}

/// Run all four sweeps on the standard fault fixture.
pub fn run_all(seed: u64) -> Vec<FaultReport> {
    let (data, dk, updates) = crate::faults::fixture(seed);
    let batches = torture_batches(&updates);
    vec![
        wal_tail_sweep(&dk, &data, &batches),
        fsync_failpoint_sweep(&dk, &data, &batches),
        torn_write_sweep(&dk, &data, &batches),
        kill_loop(&dk, &data, &updates, 8, seed),
    ]
}

// ---- durability bench ----------------------------------------------------

/// What durable acknowledgments cost: acked updates/sec through a real
/// WAL file (one fsync per group commit) versus the same stream with the
/// WAL off.
#[derive(Clone, Debug)]
pub struct DurabilityBenchResult {
    /// Updates acknowledged on each side.
    pub updates: usize,
    /// Wall time to ack every update with the WAL on.
    pub wal_on_ms: f64,
    /// Wall time to ack every update with the WAL off.
    pub wal_off_ms: f64,
    /// Durable acknowledgments per second (WAL on).
    pub acked_per_sec_wal_on: f64,
    /// Acknowledgments per second (WAL off).
    pub acked_per_sec_wal_off: f64,
    /// Group commits (distinct publish epochs) the WAL-on run needed —
    /// shows how batching amortizes the fsync cost.
    pub group_commits: u64,
}

/// Submit every op, then wait for every acknowledgment; returns the wall
/// time and the number of distinct publish epochs (= group commits on a
/// logged server).
fn time_acked(server: &DkServer, ops: &[ServeOp]) -> io::Result<(f64, u64)> {
    let start = Instant::now();
    let mut acks = Vec::with_capacity(ops.len());
    for op in ops {
        let ack = server
            .submit_logged(op.clone())
            .map_err(|e| io::Error::other(e.to_string()))?;
        acks.push(ack);
    }
    let mut epochs = std::collections::BTreeSet::new();
    for ack in acks {
        let epoch = ack.wait().map_err(|e| io::Error::other(e.to_string()))?;
        epochs.insert(epoch);
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    Ok((ms, epochs.len() as u64))
}

/// Measure acked updates/sec with the WAL on (a real file under
/// `wal_path`, removed afterwards) versus off. Fails typed if any
/// acknowledgment fails — the bench doubles as a smoke test of the
/// durable-ack path against a real filesystem.
pub fn bench_durability(
    data: &DataGraph,
    dk: &DkIndex,
    updates: &[(NodeId, NodeId)],
    wal_path: &std::path::Path,
) -> io::Result<DurabilityBenchResult> {
    let ops: Vec<ServeOp> = updates
        .iter()
        .map(|&(from, to)| ServeOp::AddEdge { from, to })
        .collect();

    let writer = WalWriter::create(wal_path)?;
    let logged = DkServer::start_logged(
        data.clone(),
        dk.clone(),
        ServeConfig::default(),
        Box::new(writer),
    );
    let on = time_acked(&logged, &ops);
    let _ = logged.shutdown();
    let _ = std::fs::remove_file(wal_path);
    let (wal_on_ms, group_commits) = on?;

    let plain = DkServer::start(data.clone(), dk.clone(), ServeConfig::default());
    let off = time_acked(&plain, &ops);
    let _ = plain.shutdown();
    let (wal_off_ms, _) = off?;

    Ok(DurabilityBenchResult {
        updates: ops.len(),
        wal_on_ms,
        wal_off_ms,
        acked_per_sec_wal_on: ops.len() as f64 / (wal_on_ms.max(1e-9) / 1e3),
        acked_per_sec_wal_off: ops.len() as f64 / (wal_off_ms.max(1e-9) / 1e3),
        group_commits,
    })
}

/// Render the `durability` section of `BENCH_eval.json` (no trailing
/// comma or newline — the caller splices it between sections).
pub fn durability_to_json(d: &DurabilityBenchResult) -> String {
    let mut s = String::new();
    s.push_str("  \"durability\": {\n");
    s.push_str(&format!("    \"updates\": {},\n", d.updates));
    s.push_str(&format!("    \"wal_on_ms\": {:.3},\n", d.wal_on_ms));
    s.push_str(&format!("    \"wal_off_ms\": {:.3},\n", d.wal_off_ms));
    s.push_str(&format!(
        "    \"acked_per_sec_wal_on\": {:.1},\n",
        d.acked_per_sec_wal_on
    ));
    s.push_str(&format!(
        "    \"acked_per_sec_wal_off\": {:.1},\n",
        d.acked_per_sec_wal_off
    ));
    s.push_str(&format!("    \"group_commits\": {}\n", d.group_commits));
    s.push_str("  }");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_core::Requirements;
    use dkindex_graph::{EdgeKind, LabeledGraph};

    fn tiny_fixture() -> (DataGraph, DkIndex, Vec<(NodeId, NodeId)>) {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let c = g.add_labeled_node("c");
        let r = LabeledGraph::root(&g);
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, b, EdgeKind::Tree);
        g.add_edge(r, c, EdgeKind::Tree);
        g.add_edge(c, b, EdgeKind::Reference);
        let dk = DkIndex::build(&g, Requirements::uniform(2));
        let updates = vec![(a, c), (b, c), (c, a), (a, b)];
        (g, dk, updates)
    }

    #[test]
    fn v2_sweeps_hold_on_a_small_graph() {
        let (g, dk, updates) = tiny_fixture();
        let batches = torture_batches(&updates);
        assert!(batches.len() >= 3, "fixture should produce several batches");
        for report in [
            wal_tail_sweep(&dk, &g, &batches),
            fsync_failpoint_sweep(&dk, &g, &batches),
            torn_write_sweep(&dk, &g, &batches),
        ] {
            assert!(report.cases > 0, "{} probed nothing", report.name);
            assert!(report.passed(), "{}: {:?}", report.name, report.violations);
        }
    }

    #[test]
    fn kill_loop_holds_on_a_small_graph() {
        let (g, dk, updates) = tiny_fixture();
        let report = kill_loop(&dk, &g, &updates, 4, 0xD15C_0C05);
        assert!(report.cases > 0);
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn durability_bench_acks_everything_and_renders_json() {
        let (g, dk, updates) = tiny_fixture();
        let path = std::env::temp_dir().join(format!(
            "dkindex-crash-test-{}.wal",
            std::process::id()
        ));
        let result = bench_durability(&g, &dk, &updates, &path).expect("bench must ack all");
        assert_eq!(result.updates, updates.len());
        assert!(result.group_commits >= 1);
        assert!(!path.exists(), "bench must clean up its WAL file");
        let json = durability_to_json(&result);
        assert!(json.contains("\"durability\""));
        assert!(json.contains("\"group_commits\""));
        assert!(!json.ends_with(','), "caller splices the comma");
    }
}
