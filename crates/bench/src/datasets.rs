//! The two evaluation datasets of the paper's §6, at configurable scale.

use dkindex_datagen::{nasa_graph, xmark_graph, NasaConfig, XmarkConfig};
use dkindex_graph::DataGraph;

/// XMark-like auction data. `scale = 0.1` approximates the paper's ~10 MB
/// file; the default harness scale is smaller so the full experiment suite
/// runs in minutes (shapes, not absolute numbers, are the target).
pub fn xmark(scale: f64) -> DataGraph {
    xmark_graph(&XmarkConfig::scale(scale))
}

/// NASA-like astronomical data with 8 of 20 reference kinds kept
/// (the paper deletes 12 of 20). `scale = 1.0` approximates ~15 MB.
pub fn nasa(scale: f64) -> DataGraph {
    nasa_graph(&NasaConfig::scale(scale))
}

/// Default harness scales: large enough that index-size differences between
/// A(k) levels are pronounced, small enough for a complete run in minutes.
pub const DEFAULT_XMARK_SCALE: f64 = 0.02;
/// See [`DEFAULT_XMARK_SCALE`].
pub const DEFAULT_NASA_SCALE: f64 = 0.15;

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::stats::GraphStats;

    #[test]
    fn datasets_build_at_small_scale() {
        let x = xmark(0.002);
        let n = nasa(0.01);
        assert_eq!(GraphStats::of(&x).unreachable, 0);
        assert_eq!(GraphStats::of(&n).unreachable, 0);
        assert!(GraphStats::of(&x).reference_edges > 0);
        assert!(GraphStats::of(&n).reference_edges > 0);
    }
}
