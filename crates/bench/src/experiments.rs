//! The experiments of the paper's §6, as reusable functions returning
//! structured results (the `reproduce` binary renders them; tests assert the
//! paper's qualitative shapes on scaled-down datasets).

use dkindex_core::{
    dk::dk_partition_with_options, AkIndex, DataGuide, DkIndex, IndexEvaluator, IndexGraph,
    OneIndex, Requirements,
};
use dkindex_graph::{DataGraph, LabeledGraph, NodeId};
use dkindex_workload::{generate_test_paths, generate_update_edges, Workload, WorkloadConfig};
use std::time::Instant;

/// Default number of update edges (the paper adds 100).
pub const UPDATE_EDGES: usize = 100;

/// One point on a figure-4/5/6/7 plot: an index, its size (X) and its
/// average evaluation cost over the workload (Y).
#[derive(Clone, Debug)]
pub struct EvalPoint {
    /// Index name, e.g. `A(2)` or `D(k)`.
    pub name: String,
    /// Index size in nodes (the X axis).
    pub size: usize,
    /// Average nodes visited per query (the Y axis).
    pub avg_cost: f64,
    /// Number of workload queries that triggered validation.
    pub validated_queries: usize,
}

fn eval_point(name: impl Into<String>, index: &IndexGraph, data: &DataGraph, w: &Workload) -> EvalPoint {
    let mut evaluator = IndexEvaluator::new(index, data);
    let mut total = 0u64;
    let mut validated = 0usize;
    for q in w.queries() {
        let out = evaluator.evaluate(q);
        total += out.cost.total();
        validated += usize::from(out.validated);
    }
    EvalPoint {
        name: name.into(),
        size: index.size(),
        avg_cost: total as f64 / w.len().max(1) as f64,
        validated_queries: validated,
    }
}

/// Figures 4 & 5: evaluation performance before updating. Returns the
/// A(0)..A(max_k) curve followed by the D(k) point (requirements mined from
/// the workload).
pub fn figure_before_update(data: &DataGraph, workload: &Workload, max_k: usize) -> Vec<EvalPoint> {
    let mut points = Vec::new();
    for k in 0..=max_k {
        let ak = AkIndex::build(data, k);
        points.push(eval_point(format!("A({k})"), ak.index(), data, workload));
    }
    let dk = DkIndex::build(data, workload.mine_requirements());
    points.push(eval_point("D(k)", dk.index(), data, workload));
    points
}

/// One row of Table 1: total time and machine-independent work to apply the
/// update stream to one index.
#[derive(Clone, Debug)]
pub struct UpdateRow {
    /// Index name.
    pub name: String,
    /// Total wall-clock time for all updates, in milliseconds.
    pub millis: f64,
    /// Machine-independent work: data nodes touched (A(k)) or index nodes
    /// touched (D(k)).
    pub work: u64,
    /// Index size before the update stream.
    pub size_before: usize,
    /// Index size after the update stream.
    pub size_after: usize,
}

/// Table 1: update efficiency of A(1)..A(max_k) vs D(k) over the same
/// 100-edge update stream.
pub fn table1(data: &DataGraph, edges: &[(NodeId, NodeId)], max_k: usize, reqs: &Requirements) -> Vec<UpdateRow> {
    let mut rows = Vec::new();
    for k in 1..=max_k {
        let mut g = data.clone();
        let mut ak = AkIndex::build(&g, k);
        let size_before = ak.size();
        let start = Instant::now();
        let mut work = 0u64;
        for &(u, v) in edges {
            work += ak.add_edge(&mut g, u, v).data_nodes_touched;
        }
        rows.push(UpdateRow {
            name: format!("A({k})"),
            millis: start.elapsed().as_secs_f64() * 1e3,
            work,
            size_before,
            size_after: ak.size(),
        });
    }
    {
        let mut g = data.clone();
        let mut dk = DkIndex::build(&g, reqs.clone());
        let size_before = dk.size();
        let start = Instant::now();
        let mut work = 0u64;
        for &(u, v) in edges {
            work += dk.add_edge(&mut g, u, v).index_nodes_touched;
        }
        rows.push(UpdateRow {
            name: "D(k)".to_string(),
            millis: start.elapsed().as_secs_f64() * 1e3,
            work,
            size_before,
            size_after: dk.size(),
        });
    }
    rows
}

/// Figures 6 & 7: evaluation performance *after* the update stream. Each
/// index receives the same new edges via its own update algorithm, then the
/// workload is re-evaluated against the updated data.
pub fn figure_after_update(
    data: &DataGraph,
    workload: &Workload,
    edges: &[(NodeId, NodeId)],
    max_k: usize,
) -> Vec<EvalPoint> {
    let mut points = Vec::new();
    for k in 0..=max_k {
        let mut g = data.clone();
        let mut ak = AkIndex::build(&g, k);
        for &(u, v) in edges {
            ak.add_edge(&mut g, u, v);
        }
        points.push(eval_point(format!("A({k})"), ak.index(), &g, workload));
    }
    {
        let mut g = data.clone();
        let mut dk = DkIndex::build(&g, workload.mine_requirements());
        for &(u, v) in edges {
            dk.add_edge(&mut g, u, v);
        }
        points.push(eval_point("D(k)", dk.index(), &g, workload));
    }
    points
}

/// Ablation B: the promoting process restores evaluation performance after
/// updates. Returns (degraded point, promoted point, splits performed).
pub fn ablation_promote(
    data: &DataGraph,
    workload: &Workload,
    edges: &[(NodeId, NodeId)],
) -> (EvalPoint, EvalPoint, usize) {
    let mut g = data.clone();
    let mut dk = DkIndex::build(&g, workload.mine_requirements());
    for &(u, v) in edges {
        dk.add_edge(&mut g, u, v);
    }
    let degraded = eval_point("D(k) after updates", dk.index(), &g, workload);
    let splits = dk.promote_to_requirements(&g);
    let promoted = eval_point("D(k) promoted", dk.index(), &g, workload);
    (degraded, promoted, splits)
}

/// Ablation A result: what happens without the broadcast algorithm.
#[derive(Clone, Debug)]
pub struct BroadcastAblation {
    /// Definition 3 violations in the no-broadcast index.
    pub constraint_violations: usize,
    /// Queries whose no-broadcast "sound" answer was wrong.
    pub wrong_answers: usize,
    /// Size with broadcast.
    pub size_with: usize,
    /// Size without broadcast.
    pub size_without: usize,
}

/// Ablation A: build D(k) with and without the broadcast step and count
/// constraint violations and wrong (unsound) answers.
pub fn ablation_broadcast(data: &DataGraph, workload: &Workload) -> BroadcastAblation {
    let reqs = workload.mine_requirements();
    let with = DkIndex::build(data, reqs.clone());
    let (p, sims) = dk_partition_with_options(data, &reqs, false);
    let without = IndexGraph::from_data_partition(data, &p, sims);

    let mut violations = 0;
    for a in without.node_ids() {
        for &b in without.children_of(a) {
            if without.similarity(a).saturating_add(1) < without.similarity(b) {
                violations += 1;
            }
        }
    }

    let mut evaluator = IndexEvaluator::new(&without, data);
    let mut wrong = 0;
    for q in workload.queries() {
        let out = evaluator.evaluate(q);
        let truth = dkindex_core::evaluate_on_data(data, q).0;
        if out.matches != truth {
            wrong += 1;
        }
    }
    BroadcastAblation {
        constraint_violations: violations,
        wrong_answers: wrong,
        size_with: with.size(),
        size_without: without.size(),
    }
}

/// Ablation C row: size of every summary structure on one dataset.
#[derive(Clone, Debug)]
pub struct SizeRow {
    /// Summary name.
    pub name: String,
    /// Node count (or an explanation when construction fails).
    pub size: Result<usize, String>,
    /// Approximate resident bytes (None where not applicable).
    pub bytes: Option<usize>,
}

/// Ablation C: sizes of label-split/A(k)/D(k)/1-index/DataGuide.
pub fn size_comparison(data: &DataGraph, workload: &Workload, max_k: usize) -> Vec<SizeRow> {
    let mut rows = Vec::new();
    for k in 0..=max_k {
        let ak = AkIndex::build(data, k);
        rows.push(SizeRow {
            name: format!("A({k})"),
            size: Ok(ak.size()),
            bytes: Some(ak.index().approx_bytes()),
        });
    }
    let dk = DkIndex::build(data, workload.mine_requirements());
    rows.push(SizeRow {
        name: "D(k)".into(),
        size: Ok(dk.size()),
        bytes: Some(dk.index().approx_bytes()),
    });
    let one = OneIndex::build(data);
    rows.push(SizeRow {
        name: "1-index".into(),
        size: Ok(one.size()),
        bytes: Some(one.index().approx_bytes()),
    });
    rows.push(SizeRow {
        name: "DataGuide".into(),
        size: DataGuide::build(data, data.node_count() * 4)
            .map(|g| g.size())
            .map_err(|e| e.to_string()),
        bytes: None,
    });
    rows.push(SizeRow {
        name: "data graph".into(),
        size: Ok(data.node_count()),
        bytes: Some(data.approx_bytes()),
    });
    rows
}

/// Build the standard workload for a dataset (100 paths of 2–5 labels).
pub fn standard_workload(data: &DataGraph, seed: u64) -> Workload {
    generate_test_paths(
        data,
        &WorkloadConfig {
            seed,
            ..WorkloadConfig::default()
        },
    )
}

/// Build the standard update stream (100 ID/IDREF-style edges).
pub fn standard_updates(data: &DataGraph, seed: u64) -> Vec<(NodeId, NodeId)> {
    generate_update_edges(data, UPDATE_EDGES, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    fn small_xmark() -> DataGraph {
        datasets::xmark(0.003)
    }

    #[test]
    fn figure_shape_dk_beats_or_matches_best_ak() {
        let g = small_xmark();
        let w = standard_workload(&g, 1);
        let points = figure_before_update(&g, &w, 4);
        assert_eq!(points.len(), 6);
        let dk = points.last().unwrap();
        assert_eq!(dk.name, "D(k)");
        // The paper's headline: the D(k) point lies below the A(k) curve —
        // for every A(k) with size ≥ D(k)'s, D(k)'s cost is no worse, and
        // D(k) is smaller than the first sound A(k) (= A(4)).
        let a4 = &points[4];
        assert!(dk.size <= a4.size, "D(k) must be no larger than A(4)");
        assert!(
            dk.avg_cost <= a4.avg_cost * 1.05,
            "D(k) cost {} should be ≈≤ A(4) cost {}",
            dk.avg_cost,
            a4.avg_cost
        );
        // Neither D(k) nor A(4) validates on this workload.
        assert_eq!(dk.validated_queries, 0);
        assert_eq!(a4.validated_queries, 0);
    }

    #[test]
    fn ak_sizes_increase_and_costs_decrease_with_k() {
        let g = small_xmark();
        let w = standard_workload(&g, 2);
        let points = figure_before_update(&g, &w, 4);
        for pair in points[..5].windows(2) {
            assert!(pair[0].size <= pair[1].size);
        }
        // A(4) (sound) is cheaper than A(0) (validates everything).
        assert!(points[4].avg_cost < points[0].avg_cost);
    }

    #[test]
    fn table1_dk_update_is_cheapest() {
        let g = small_xmark();
        let w = standard_workload(&g, 5);
        let edges = standard_updates(&g, 5);
        let rows = table1(&g, &edges, 4, &w.mine_requirements());
        assert_eq!(rows.len(), 5);
        let dk = rows.last().unwrap();
        assert_eq!(dk.name, "D(k)");
        // D(k) index size is unchanged by updates; A(k≥1) sizes grow.
        assert_eq!(dk.size_before, dk.size_after);
        assert!(rows[1].size_after > rows[1].size_before); // A(2)
        // Work: D(k) touches (far) fewer units than high-k A(k).
        assert!(dk.work < rows[3].work, "D(k) {} !< A(4) {}", dk.work, rows[3].work);
    }

    #[test]
    fn after_update_dk_size_unchanged_ak_grows() {
        let g = small_xmark();
        let w = standard_workload(&g, 4);
        let edges = standard_updates(&g, 4);
        let before = figure_before_update(&g, &w, 2);
        let after = figure_after_update(&g, &w, &edges, 2);
        let dk_b = before.last().unwrap();
        let dk_a = after.last().unwrap();
        assert_eq!(dk_b.size, dk_a.size);
        // A(2) grows.
        assert!(after[2].size > before[2].size);
    }

    #[test]
    fn promote_restores_performance() {
        let g = small_xmark();
        let w = standard_workload(&g, 5);
        let edges = standard_updates(&g, 5);
        let (degraded, promoted, _splits) = ablation_promote(&g, &w, &edges);
        assert!(promoted.avg_cost <= degraded.avg_cost);
        assert_eq!(promoted.validated_queries, 0);
    }

    #[test]
    fn broadcast_ablation_reports() {
        let g = small_xmark();
        let w = standard_workload(&g, 6);
        let ab = ablation_broadcast(&g, &w);
        // Without the broadcast the index is never larger.
        assert!(ab.size_without <= ab.size_with);
    }

    #[test]
    fn size_comparison_orders_summaries() {
        let g = small_xmark();
        let w = standard_workload(&g, 7);
        let rows = size_comparison(&g, &w, 4);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.name == name)
                .unwrap()
                .size
                .clone()
                .unwrap()
        };
        assert!(get("A(0)") <= get("A(4)"));
        assert!(get("A(4)") <= get("1-index"));
        assert!(get("1-index") <= get("data graph"));
        assert!(get("D(k)") <= get("A(4)"));
    }
}

/// One point of the degradation curve (extension experiment D1): evaluation
/// cost after `updates_applied` edge additions, with and without periodic
/// promotion every `promote_every` updates.
#[derive(Clone, Debug)]
pub struct DegradationPoint {
    /// Number of edge updates applied so far.
    pub updates_applied: usize,
    /// Average cost without any tuning.
    pub cost_untuned: f64,
    /// Average cost with periodic promotion.
    pub cost_promoted: f64,
    /// Index size on the promoted path.
    pub size_promoted: usize,
}

/// Extension experiment D1: how evaluation cost degrades as edge updates
/// accumulate, and how the paper's "periodically executed" promoting process
/// (§5.3) arrests the degradation. Measures after every `step` updates.
pub fn degradation_curve(
    data: &DataGraph,
    workload: &Workload,
    edges: &[(NodeId, NodeId)],
    step: usize,
    promote_every: usize,
) -> Vec<DegradationPoint> {
    let reqs = workload.mine_requirements();
    let mut g_plain = data.clone();
    let mut dk_plain = DkIndex::build(&g_plain, reqs.clone());
    let mut g_tuned = data.clone();
    let mut dk_tuned = DkIndex::build(&g_tuned, reqs);

    let avg = |dk: &DkIndex, g: &DataGraph| -> f64 {
        IndexEvaluator::new(dk.index(), g).average_cost(workload.queries())
    };

    let mut points = vec![DegradationPoint {
        updates_applied: 0,
        cost_untuned: avg(&dk_plain, &g_plain),
        cost_promoted: avg(&dk_tuned, &g_tuned),
        size_promoted: dk_tuned.size(),
    }];
    for (i, &(u, v)) in edges.iter().enumerate() {
        dk_plain.add_edge(&mut g_plain, u, v);
        dk_tuned.add_edge(&mut g_tuned, u, v);
        let applied = i + 1;
        if applied % promote_every == 0 {
            dk_tuned.promote_to_requirements(&g_tuned);
        }
        if applied % step == 0 {
            points.push(DegradationPoint {
                updates_applied: applied,
                cost_untuned: avg(&dk_plain, &g_plain),
                cost_promoted: avg(&dk_tuned, &g_tuned),
                size_promoted: dk_tuned.size(),
            });
        }
    }
    points
}

/// One row of the query-length sweep (extension experiment D2).
#[derive(Clone, Debug)]
pub struct LengthSweepRow {
    /// Query length in labels.
    pub labels: usize,
    /// Number of workload queries with that length.
    pub queries: usize,
    /// Average cost per index name, in the same order as the names returned
    /// alongside the rows.
    pub avg_costs: Vec<f64>,
}

/// Extension experiment D2: average evaluation cost broken down by query
/// length for A(0), A(2), A(4) and D(k) — shows where the validation penalty
/// kicks in for each summary (cost of A(k) explodes for queries longer than
/// k; D(k) tracks the mined requirement per result label).
pub fn length_sweep(
    data: &DataGraph,
    workload: &Workload,
) -> (Vec<String>, Vec<LengthSweepRow>) {
    let names = vec![
        "A(0)".to_string(),
        "A(2)".to_string(),
        "A(4)".to_string(),
        "D(k)".to_string(),
    ];
    let a0 = AkIndex::build(data, 0);
    let a2 = AkIndex::build(data, 2);
    let a4 = AkIndex::build(data, 4);
    let dk = DkIndex::build(data, workload.mine_requirements());
    let indexes: Vec<&IndexGraph> = vec![a0.index(), a2.index(), a4.index(), dk.index()];
    let mut evaluators: Vec<IndexEvaluator> = indexes
        .iter()
        .map(|i| IndexEvaluator::new(i, data))
        .collect();

    let mut by_len: std::collections::BTreeMap<usize, Vec<&dkindex_pathexpr::PathExpr>> =
        Default::default();
    for q in workload.queries() {
        by_len.entry(q.max_word_len().unwrap_or(0)).or_default().push(q);
    }
    let rows = by_len
        .into_iter()
        .map(|(labels, queries)| {
            let avg_costs = evaluators
                .iter_mut()
                .map(|e| {
                    let total: u64 = queries.iter().map(|q| e.evaluate(q).cost.total()).sum();
                    total as f64 / queries.len() as f64
                })
                .collect();
            LengthSweepRow {
                labels,
                queries: queries.len(),
                avg_costs,
            }
        })
        .collect();
    (names, rows)
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn degradation_is_arrested_by_promotion() {
        let g = datasets::xmark(0.003);
        let w = standard_workload(&g, 8);
        let edges = standard_updates(&g, 8);
        let points = degradation_curve(&g, &w, &edges[..40], 20, 10);
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        // Untuned cost degrades; the promoted path stays near the baseline.
        assert!(last.cost_untuned > first.cost_untuned);
        assert!(last.cost_promoted <= last.cost_untuned);
    }

    #[test]
    fn length_sweep_shows_validation_penalty() {
        let g = datasets::xmark(0.003);
        let w = standard_workload(&g, 9);
        let (names, rows) = length_sweep(&g, &w);
        assert_eq!(names.len(), 4);
        assert!(!rows.is_empty());
        // For the longest queries, A(0) costs far more than A(4) and D(k).
        let longest = rows.last().unwrap();
        assert!(longest.labels >= 4);
        let a0 = longest.avg_costs[0];
        let a4 = longest.avg_costs[2];
        let dk = longest.avg_costs[3];
        assert!(a0 > a4 * 2.0, "A(0) {a0} should dwarf A(4) {a4} on long queries");
        assert!(dk <= a4 * 1.1, "D(k) {dk} should match A(4) {a4} on long queries");
    }
}
