//! Fault-injection harness for the durability layer: systematically damage
//! snapshot and WAL bytes, then assert that every damaged input either
//! recovers to a provably well-formed index or fails with a typed error —
//! and that **nothing ever panics**.
//!
//! Three sweeps:
//!
//! * [`snapshot_bitflip_sweep`] — flip one bit at every byte position of a
//!   snapshot. Strict reads must reject the damage (or prove it harmless by
//!   re-serializing byte-identically); graceful loads must return an index
//!   that passes `check_invariants` or a typed [`SnapshotError`].
//! * [`snapshot_truncation_sweep`] — cut the snapshot at every length.
//! * [`wal_fault_sweep`] — cut the WAL at every byte boundary (the torn-tail
//!   crash signature must replay the record prefix exactly) and flip one bit
//!   in every byte (must decode as a typed [`wal::WalError`] or replay to a
//!   well-formed index).
//!
//! Every probe runs under `catch_unwind`; a panic anywhere is a harness
//! failure, reported with the exact byte offset that triggered it.

use dkindex_core::wal::{self, WalRecord, WalTail};
use dkindex_core::{
    load_with_recovery, read_snapshot, snapshot_bytes, DkIndex, Requirements, SnapshotError,
};
use dkindex_graph::{DataGraph, NodeId};
use dkindex_workload::generate_update_edges;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Outcome of one sweep: how many probes ran and how each class resolved.
#[derive(Clone, Debug, Default)]
pub struct FaultReport {
    /// Sweep label for rendering.
    pub name: String,
    /// Total damaged inputs probed.
    pub cases: usize,
    /// Inputs that loaded (strictly or via recovery) to a verified index.
    pub recovered: usize,
    /// Inputs rejected with a typed error.
    pub typed_errors: usize,
    /// Probes that violated the contract (panicked, silently accepted
    /// damage, or recovered to a malformed index); one line each.
    pub violations: Vec<String>,
}

impl FaultReport {
    pub(crate) fn new(name: &str) -> Self {
        FaultReport {
            name: name.to_string(),
            ..FaultReport::default()
        }
    }

    /// True when every probe resolved to recovery or a typed error.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} cases | {} recovered | {} typed errors | {} violations",
            self.name,
            self.cases,
            self.recovered,
            self.typed_errors,
            self.violations.len()
        )
    }
}

/// What a single probe observed, before contract checking.
pub(crate) enum Probe {
    Recovered,
    TypedError,
    Violation(String),
}

/// Run `f` under `catch_unwind`, mapping a panic to a violation.
pub(crate) fn probe(context: &str, f: impl FnOnce() -> Probe) -> Probe {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(p) => p,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Probe::Violation(format!("{context}: PANIC: {msg}"))
        }
    }
}

pub(crate) fn record(report: &mut FaultReport, outcome: Probe) {
    report.cases += 1;
    match outcome {
        Probe::Recovered => report.recovered += 1,
        Probe::TypedError => report.typed_errors += 1,
        Probe::Violation(line) => report.violations.push(line),
    }
}

/// Contract for one damaged snapshot byte stream: strict read must reject
/// or be byte-identical; graceful load must yield a verified index or a
/// typed error.
fn check_snapshot_bytes(damaged: &[u8], pristine: &[u8], context: &str) -> Probe {
    // Strict mode: accepting damaged bytes is only legal when the damage is
    // provably immaterial (re-serializes to the pristine snapshot).
    if let Ok((dk, g)) = read_snapshot(damaged) {
        if snapshot_bytes(&dk, &g) != pristine {
            return Probe::Violation(format!("{context}: strict read accepted damaged bytes"));
        }
    }
    match load_with_recovery(damaged) {
        Ok((dk, g, _recovery)) => match dk.index().check_invariants(&g) {
            Ok(()) => Probe::Recovered,
            Err(e) => Probe::Violation(format!("{context}: recovered a malformed index: {e}")),
        },
        Err(SnapshotError::Io(e)) => {
            Probe::Violation(format!("{context}: I/O error from in-memory bytes: {e}"))
        }
        Err(_) => Probe::TypedError,
    }
}

/// Flip one bit at every byte position of the snapshot for `dk` + `data`.
pub fn snapshot_bitflip_sweep(dk: &DkIndex, data: &DataGraph) -> FaultReport {
    let pristine = snapshot_bytes(dk, data);
    let mut report = FaultReport::new("snapshot bit-flips");
    for i in 0..pristine.len() {
        let mut damaged = pristine.clone();
        damaged[i] ^= 1 << (i % 8);
        let context = format!("bit flip at byte {i}");
        let outcome = probe(&context, || {
            check_snapshot_bytes(&damaged, &pristine, &context)
        });
        record(&mut report, outcome);
    }
    report
}

/// Truncate the snapshot for `dk` + `data` at every possible length.
pub fn snapshot_truncation_sweep(dk: &DkIndex, data: &DataGraph) -> FaultReport {
    let pristine = snapshot_bytes(dk, data);
    let mut report = FaultReport::new("snapshot truncations");
    for cut in 0..pristine.len() {
        let context = format!("truncation to {cut} bytes");
        let outcome = probe(&context, || {
            check_snapshot_bytes(&pristine[..cut], &pristine, &context)
        });
        record(&mut report, outcome);
    }
    report
}

/// Cut a legacy v1 WAL at every byte boundary and flip one bit in every byte.
///
/// This sweep deliberately exercises the *v1* wire format (fixed 13-byte
/// records, no commit fences) so pre-upgrade logs keep their torn-tail
/// guarantees; the v2 group-commit format gets the same treatment — plus
/// fsync fail-points — in `crate::crash`. Truncations additionally assert
/// the §5 replay contract: a torn tail must replay exactly the
/// complete-record prefix, reaching the same state (same snapshot bytes) as
/// applying that prefix directly.
pub fn wal_fault_sweep(dk: &DkIndex, data: &DataGraph, updates: &[(NodeId, NodeId)]) -> FaultReport {
    let mut report = FaultReport::new("WAL truncations + bit-flips");
    let mut log = wal::encode_header_v1().to_vec();
    for &(from, to) in updates {
        let Some(rec) = wal::encode_record_v1(&WalRecord::AddEdge { from, to }) else {
            continue;
        };
        log.extend_from_slice(&rec);
    }

    // Expected state after each prefix length, as snapshot bytes.
    let mut prefix_states = Vec::with_capacity(updates.len() + 1);
    {
        let mut g = data.clone();
        let mut d = dk.clone();
        prefix_states.push(snapshot_bytes(&d, &g));
        for &(from, to) in updates {
            d.add_edge(&mut g, from, to);
            prefix_states.push(snapshot_bytes(&d, &g));
        }
    }

    for cut in 0..log.len() {
        let damaged = &log[..cut];
        let context = format!("WAL truncated to {cut} bytes");
        let outcome = probe(&context, || {
            let mut g = data.clone();
            let mut d = dk.clone();
            match wal::replay(&mut d, &mut g, damaged) {
                Ok(r) => {
                    let mid_record = cut >= 8 && (cut - 8) % 13 != 0;
                    if mid_record != matches!(r.tail, WalTail::Torn { .. }) {
                        return Probe::Violation(format!(
                            "{context}: tail misreported (torn vs clean)"
                        ));
                    }
                    if snapshot_bytes(&d, &g) != prefix_states[r.applied] {
                        return Probe::Violation(format!(
                            "{context}: prefix replay diverged from direct application"
                        ));
                    }
                    Probe::Recovered
                }
                Err(wal::WalError::Io(e)) => {
                    Probe::Violation(format!("{context}: I/O error from in-memory bytes: {e}"))
                }
                Err(_) => Probe::TypedError,
            }
        });
        record(&mut report, outcome);
    }

    for i in 0..log.len() {
        let mut damaged = log.clone();
        damaged[i] ^= 1 << (i % 8);
        let context = format!("WAL bit flip at byte {i}");
        let outcome = probe(&context, || {
            let mut g = data.clone();
            let mut d = dk.clone();
            match wal::replay(&mut d, &mut g, &damaged) {
                // A flip the CRC does not catch (e.g. inside an already-torn
                // region) may replay; the result must still be well-formed.
                Ok(_) => match d.index().check_invariants(&g) {
                    Ok(()) => Probe::Recovered,
                    Err(e) => {
                        Probe::Violation(format!("{context}: replayed to a malformed index: {e}"))
                    }
                },
                Err(wal::WalError::Io(e)) => {
                    Probe::Violation(format!("{context}: I/O error from in-memory bytes: {e}"))
                }
                Err(_) => Probe::TypedError,
            }
        });
        record(&mut report, outcome);
    }
    report
}

/// Standard fixture for the fault suite: a small XMark graph (with reference
/// edges, so update generation works) and a mixed-k requirement set.
pub fn fixture(seed: u64) -> (DataGraph, DkIndex, Vec<(NodeId, NodeId)>) {
    let data = crate::datasets::xmark(0.002);
    let dk = DkIndex::build(
        &data,
        Requirements::from_pairs([("item", 2), ("bidder", 3), ("person", 1)]),
    );
    let updates = generate_update_edges(&data, 6, seed);
    (data, dk, updates)
}

/// Run all three sweeps on the standard fixture.
pub fn run_all(seed: u64) -> Vec<FaultReport> {
    let (data, dk, updates) = fixture(seed);
    vec![
        snapshot_bitflip_sweep(&dk, &data),
        snapshot_truncation_sweep(&dk, &data),
        wal_fault_sweep(&dk, &data, &updates),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_snapshot_survives_every_bitflip_and_truncation() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let c = g.add_labeled_node("c");
        let r = dkindex_graph::LabeledGraph::root(&g);
        g.add_edge(r, a, dkindex_graph::EdgeKind::Tree);
        g.add_edge(a, b, dkindex_graph::EdgeKind::Tree);
        g.add_edge(r, c, dkindex_graph::EdgeKind::Tree);
        g.add_edge(c, b, dkindex_graph::EdgeKind::Reference);
        let dk = DkIndex::build(&g, Requirements::uniform(2));

        let flips = snapshot_bitflip_sweep(&dk, &g);
        assert!(flips.passed(), "{:?}", flips.violations);
        assert_eq!(flips.cases, snapshot_bytes(&dk, &g).len());

        let cuts = snapshot_truncation_sweep(&dk, &g);
        assert!(cuts.passed(), "{:?}", cuts.violations);

        let updates = vec![
            (a, c),
            (b, c),
            (NodeId::from_index(0), b),
        ];
        let wal = wal_fault_sweep(&dk, &g, &updates);
        assert!(wal.passed(), "{:?}", wal.violations);
        // Truncations + bit flips each probe every log byte.
        let log_len = 8 + 13 * updates.len();
        assert_eq!(wal.cases, 2 * log_len);
    }
}
