//! # dkindex-bench
//!
//! Experiment harness reproducing every table and figure of the D(k)-index
//! paper's evaluation (§6): figures 4–7, Table 1, and three ablations. The
//! [`experiments`] module computes structured results; the `reproduce`
//! binary renders them (`cargo run -p dkindex-bench --release --bin
//! reproduce -- all`). Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crash;
pub mod datasets;
pub mod experiments;
pub mod faults;
pub mod net;
pub mod perf;
pub mod report;
pub mod tuning;
