//! Loopback benchmark for the DKNP network front-end (`dkindex-server`):
//! a mixed query/update workload over real TCP sockets, an induced-overload
//! phase proving typed load-shedding, and a graceful drain — all
//! cross-checked byte-for-byte against a serial replay of the admitted
//! update sequence.
//!
//! Three properties are gated (the `reproduce verify-net` subcommand turns
//! them into an exit code):
//!
//! * **Determinism** — the state the drained server hands back is
//!   byte-identical to [`apply_serial`] over exactly the updates that were
//!   acknowledged with `UPDATE_OK`, in acknowledgement order.
//! * **Typed shedding** — with maintenance deterministically paused, the
//!   server admits exactly `staleness_threshold` updates and answers every
//!   further one with `SHED(maintenance-lag)` (PROTOCOL.md §5.1): refusals
//!   are frames, never unbounded queueing, never dropped connections.
//! * **Zero transport surprises** — every request in the run gets a decoded
//!   reply frame; a reset, timeout, or undecodable response fails the gate.
//!
//! Latency percentiles (p50/p99/p999) are reported for the query stream and
//! written to the `net` section of `BENCH_eval.json`; they are
//! machine-dependent and **not** gated.

use dkindex_core::{apply_serial, snapshot_bytes, DkIndex, DkServer, Requirements, ServeConfig, ServeOp};
use dkindex_graph::{DataGraph, NodeId};
use dkindex_pathexpr::PathExpr;
use dkindex_server::{Frame, NetClient, NetConfig, NetServer, ShedReason};
use dkindex_workload::generate_update_edges;
use std::time::{Duration, Instant};

use crate::perf::PerfConfig;

/// Knobs for the loopback net bench (see [`bench_net`]).
#[derive(Clone, Copy, Debug)]
pub struct NetBenchConfig {
    /// QUERY rounds issued per reader connection in the mixed phase.
    pub rounds: usize,
    /// Updates pushed through the single writer connection in the mixed
    /// phase (retried on shed, so all of them are eventually admitted).
    pub updates: usize,
    /// `staleness_threshold` for the server under test: the exact number
    /// of updates the overload phase must see admitted.
    pub staleness_threshold: u64,
    /// Extra updates sent past the threshold while maintenance is paused;
    /// every one must come back as a typed SHED.
    pub overload_extra: u64,
}

impl Default for NetBenchConfig {
    fn default() -> Self {
        NetBenchConfig {
            rounds: 200,
            updates: 48,
            staleness_threshold: 16,
            overload_extra: 8,
        }
    }
}

/// What [`bench_net`] measured and verified.
#[derive(Clone, Debug)]
pub struct NetBenchResult {
    /// Reader connections issuing queries concurrently.
    pub readers: usize,
    /// QUERY rounds per reader.
    pub rounds: usize,
    /// Total queries answered over the wire.
    pub queries: u64,
    /// Updates acknowledged with `UPDATE_OK` across both phases.
    pub updates_admitted: usize,
    /// Query latency percentiles over loopback, microseconds.
    pub p50_us: f64,
    /// 99th percentile query latency, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile query latency, microseconds.
    pub p999_us: f64,
    /// Queries per second across all readers in the mixed phase.
    pub queries_per_sec: f64,
    /// Updates admitted during the induced-overload phase (must equal the
    /// configured `staleness_threshold`).
    pub overload_admitted: u64,
    /// Updates refused with `SHED(maintenance-lag)` during overload.
    pub overload_shed: u64,
    /// `overload_shed / (overload_admitted + overload_shed)`.
    pub shed_rate: f64,
    /// Every refusal in the run was a typed SHED frame with the expected
    /// reason, and every request got a decodable reply.
    pub typed_sheds_only: bool,
    /// Wall-clock of the graceful drain reported by the server.
    pub drain_ms: f64,
    /// Final drained state is byte-identical to a serial replay of the
    /// admitted update sequence.
    pub deterministic: bool,
}

impl NetBenchResult {
    /// The `verify-net` acceptance gate.
    pub fn gate_ok(&self, cfg: &NetBenchConfig) -> bool {
        self.deterministic
            && self.typed_sheds_only
            && self.overload_admitted == cfg.staleness_threshold
            && self.overload_shed == cfg.overload_extra
    }
}

/// Exact percentile (nearest-rank on the sorted sample), in microseconds.
fn percentile_us(sorted_ns: &[u64], per_mille: usize) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) * per_mille) / 1000;
    sorted_ns.get(idx).copied().unwrap_or(0) as f64 / 1e3
}

/// Run the loopback net bench: start a [`NetServer`] on an ephemeral port,
/// drive `cfg.threads` reader connections plus one writer connection
/// through it, induce an overload window with the maintenance pause gate,
/// then drain and compare against the serial oracle.
///
/// The writer is a **single** connection and retries shed updates until
/// admitted, so the admitted sequence is a deterministic total order — the
/// serial oracle replays exactly that order.
pub fn bench_net(
    data: &DataGraph,
    queries: &[PathExpr],
    reqs: &Requirements,
    perf: &PerfConfig,
    cfg: &NetBenchConfig,
    seed: u64,
) -> NetBenchResult {
    let readers = perf.resolved_threads().max(1);
    let dk = DkIndex::build(data, reqs.clone());
    let edges = generate_update_edges(
        data,
        cfg.updates + (cfg.staleness_threshold + cfg.overload_extra) as usize,
        seed,
    );
    let (mixed_edges, overload_edges) = edges.split_at(cfg.updates.min(edges.len()));

    let server = DkServer::start(
        data.clone(),
        dk.clone(),
        ServeConfig {
            max_batch: 8,
            threads: readers,
            ..ServeConfig::default()
        },
    );
    let net = NetServer::start(
        server,
        "127.0.0.1:0",
        NetConfig {
            workers: readers + 1,
            staleness_threshold: cfg.staleness_threshold,
            ..NetConfig::default()
        },
    )
    .expect("bind loopback for net bench");
    let addr = net.local_addr();

    // Phase 1 — mixed workload: `readers` query connections, one sequential
    // writer that retries on shed (so every mixed-phase update is admitted).
    let mut admitted: Vec<(u64, u64)> = Vec::new();
    let mut clean = true;
    let start = Instant::now();
    let latencies: Vec<Vec<u64>> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for r in 0..readers {
            handles.push(s.spawn(move || {
                let mut client = match NetClient::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return (Vec::new(), false),
                };
                let mut samples = Vec::with_capacity(cfg.rounds);
                let mut ok = true;
                for round in 0..cfg.rounds {
                    let q = &queries[(r + round) % queries.len()];
                    let t = Instant::now();
                    match client.query(&q.to_string(), 0) {
                        Ok(Frame::Answer { .. }) => {}
                        Ok(_) | Err(_) => ok = false,
                    }
                    samples.push(t.elapsed().as_nanos() as u64);
                }
                (samples, ok)
            }));
        }

        let mut writer = NetClient::connect(addr).expect("writer connect");
        for &(from, to) in mixed_edges {
            let (from, to) = (from.index() as u64, to.index() as u64);
            // Retry until admitted: sheds are safe to retry by contract
            // (PROTOCOL.md §5.2), and the single connection keeps the
            // admitted order total.
            loop {
                match writer.update(from, to) {
                    Ok(Frame::UpdateOk { .. }) => {
                        admitted.push((from, to));
                        break;
                    }
                    Ok(Frame::Shed { reason, .. }) => {
                        if reason != ShedReason::MaintenanceLag {
                            clean = false;
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Ok(_) | Err(_) => {
                        clean = false;
                        break;
                    }
                }
            }
        }

        let mut all = Vec::new();
        for h in handles {
            let (samples, ok) = h.join().expect("reader thread panicked");
            clean &= ok;
            all.push(samples);
        }
        all
    });
    let mixed_secs = start.elapsed().as_secs_f64();

    // Phase 2 — induced overload: pause maintenance, push past the
    // staleness threshold, count typed sheds.
    net.dk_server().flush().expect("maintenance alive");
    let gate = net.dk_server().pause_maintenance().expect("pause maintenance");
    let mut writer = NetClient::connect(addr).expect("overload writer connect");
    let mut overload_admitted = 0u64;
    let mut overload_shed = 0u64;
    for &(from, to) in overload_edges {
        let (from, to) = (from.index() as u64, to.index() as u64);
        match writer.update(from, to) {
            Ok(Frame::UpdateOk { .. }) => {
                admitted.push((from, to));
                overload_admitted += 1;
            }
            Ok(Frame::Shed { reason, .. }) => {
                if reason != ShedReason::MaintenanceLag {
                    clean = false;
                }
                overload_shed += 1;
            }
            Ok(_) | Err(_) => clean = false,
        }
    }
    drop(gate);
    net.dk_server().flush().expect("maintenance alive after resume");
    drop(writer);

    // Phase 3 — graceful drain, then the determinism oracle.
    let shutdown = net.shutdown().expect("graceful shutdown");
    let ops: Vec<ServeOp> = admitted
        .iter()
        .map(|&(from, to)| ServeOp::AddEdge {
            from: NodeId::from_index(from as usize),
            to: NodeId::from_index(to as usize),
        })
        .collect();
    let mut serial_dk = dk;
    let mut serial_g = data.clone();
    apply_serial(&mut serial_dk, &mut serial_g, &ops);
    let deterministic =
        snapshot_bytes(&shutdown.index, &shutdown.data) == snapshot_bytes(&serial_dk, &serial_g);

    let mut sorted: Vec<u64> = latencies.into_iter().flatten().collect();
    sorted.sort_unstable();
    let answered = sorted.len() as u64;
    let refused = overload_admitted + overload_shed;
    NetBenchResult {
        readers,
        rounds: cfg.rounds,
        queries: answered,
        updates_admitted: ops.len(),
        p50_us: percentile_us(&sorted, 500),
        p99_us: percentile_us(&sorted, 990),
        p999_us: percentile_us(&sorted, 999),
        queries_per_sec: answered as f64 / mixed_secs.max(f64::MIN_POSITIVE),
        overload_admitted,
        overload_shed,
        shed_rate: overload_shed as f64 / (refused as f64).max(1.0),
        typed_sheds_only: clean,
        drain_ms: shutdown.drain.as_secs_f64() * 1e3,
        deterministic,
    }
}

/// Render the `net` section for `BENCH_eval.json`.
pub fn net_to_json(net: &NetBenchResult) -> String {
    let mut s = String::new();
    s.push_str("  \"net\": {\n");
    s.push_str(&format!("    \"readers\": {},\n", net.readers));
    s.push_str(&format!("    \"rounds\": {},\n", net.rounds));
    s.push_str(&format!("    \"queries\": {},\n", net.queries));
    s.push_str(&format!(
        "    \"updates_admitted\": {},\n",
        net.updates_admitted
    ));
    s.push_str(&format!("    \"p50_us\": {:.1},\n", net.p50_us));
    s.push_str(&format!("    \"p99_us\": {:.1},\n", net.p99_us));
    s.push_str(&format!("    \"p999_us\": {:.1},\n", net.p999_us));
    s.push_str(&format!(
        "    \"queries_per_sec\": {:.1},\n",
        net.queries_per_sec
    ));
    s.push_str(&format!(
        "    \"overload_admitted\": {},\n",
        net.overload_admitted
    ));
    s.push_str(&format!("    \"overload_shed\": {},\n", net.overload_shed));
    s.push_str(&format!("    \"shed_rate\": {:.4},\n", net.shed_rate));
    s.push_str(&format!(
        "    \"typed_sheds_only\": {},\n",
        net.typed_sheds_only
    ));
    s.push_str(&format!("    \"drain_ms\": {:.3},\n", net.drain_ms));
    s.push_str(&format!(
        "    \"deterministic\": {}\n",
        net.deterministic
    ));
    s.push_str("  }");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::experiments::standard_workload;

    #[test]
    fn net_bench_is_deterministic_and_sheds_typed() {
        let data = datasets::xmark(0.004);
        let workload = standard_workload(&data, 7);
        let reqs = workload.mine_requirements();
        let perf = PerfConfig {
            threads: 2,
            repeats: 1,
        };
        let cfg = NetBenchConfig {
            rounds: 20,
            updates: 12,
            staleness_threshold: 4,
            overload_extra: 3,
        };
        let net = bench_net(&data, workload.queries(), &reqs, &perf, &cfg, 7);
        assert!(net.deterministic, "net serve diverged from serial replay");
        assert!(net.typed_sheds_only, "a refusal was not a typed SHED");
        assert_eq!(net.overload_admitted, cfg.staleness_threshold);
        assert_eq!(net.overload_shed, cfg.overload_extra);
        assert!(net.gate_ok(&cfg));
        assert_eq!(net.queries, (net.readers * net.rounds) as u64);
        assert_eq!(
            net.updates_admitted,
            cfg.updates + cfg.staleness_threshold as usize
        );
        let json = net_to_json(&net);
        assert!(json.contains("\"p999_us\""), "{json}");
        assert!(json.contains("\"shed_rate\""), "{json}");
        assert!(json.contains("\"deterministic\": true"), "{json}");
    }
}
