//! Before/after performance benchmark for the scratch-arena query engine and
//! the interned-signature refinement engine.
//!
//! "Before" is the retained reference implementation (allocator-per-query
//! evaluation, vector-keyed signature refinement); "after" is the arena +
//! memo evaluator and the [`RefineEngine`]. Both sides are checked for
//! **byte-identical results** — same matches, same [`dkindex_core::QueryCost`] visit
//! counts, same partitions — before any timing is reported, so the speedup
//! numbers can never come from computing something different.
//!
//! The `reproduce bench-smoke` subcommand drives this module and writes the
//! measurements to `BENCH_eval.json`.

use dkindex_core::dk::{dk_partition_reference, dk_partition_with_engine};
use dkindex_core::{
    apply_serial, evaluate_workload_parallel, snapshot_bytes, AdaptiveTuner, AkIndex, DkIndex,
    DkServer, IndexEvalOutcome, IndexEvaluator, IndexGraph, Requirements, ServeConfig, ServeOp,
    TunerConfig,
};
use dkindex_graph::DataGraph;
use dkindex_partition::{k_bisimulation, RefineEngine};
use dkindex_pathexpr::PathExpr;
use dkindex_telemetry as telemetry;
use dkindex_workload::generate_update_edges;
use std::time::Instant;

/// Knobs for the smoke benchmark.
#[derive(Clone, Copy, Debug)]
pub struct PerfConfig {
    /// Threads for the parallel paths (`0` = available parallelism).
    pub threads: usize,
    /// Timing repeats per side; the minimum is reported.
    pub repeats: usize,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            threads: 0,
            repeats: 3,
        }
    }
}

impl PerfConfig {
    /// `threads`, with `0` resolved to the machine's available parallelism.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.threads
        }
    }
}

/// Batch-evaluation measurements: reference vs arena vs parallel.
#[derive(Clone, Debug)]
pub struct EvalBenchResult {
    /// Indexes the workload is evaluated through (the paper's figure-4 set:
    /// A(0)..A(max_k) plus the workload-tuned D(k)).
    pub indexes: usize,
    /// Queries in the workload.
    pub queries: usize,
    /// Reference path: fresh allocations per query, no memo.
    pub baseline_ms: f64,
    /// Arena + memo evaluator, single thread.
    pub arena_ms: f64,
    /// Arena + memo evaluators across worker threads.
    pub parallel_ms: f64,
    /// Threads used by the parallel path.
    pub threads: usize,
    /// `baseline_ms / arena_ms`.
    pub speedup_arena: f64,
    /// `baseline_ms / min(arena_ms, parallel_ms)` — the headline number.
    pub speedup_best: f64,
    /// All three paths returned byte-identical outcomes (matches, visit
    /// counts, validated flags).
    pub identical: bool,
    /// Total index visits across the workload (identical on every path).
    pub index_visits: u64,
    /// Total validation visits across the workload (identical on every path).
    pub data_visits: u64,
}

/// Construction measurements for one summary: reference vs engine.
#[derive(Clone, Debug)]
pub struct BuildBenchResult {
    /// Summary name, e.g. `"A(4)"`.
    pub name: String,
    /// Reference construction (vector-keyed signatures).
    pub baseline_ms: f64,
    /// [`RefineEngine`] construction, single thread.
    pub engine_ms: f64,
    /// [`RefineEngine`] construction with the configured thread count.
    pub engine_parallel_ms: f64,
    /// `baseline_ms / min(engine_ms, engine_parallel_ms)`.
    pub speedup: f64,
    /// Engine partitions equal the reference partitions (same block ids,
    /// same member order).
    pub identical: bool,
    /// Blocks in the final partition.
    pub blocks: usize,
}

/// Minimum over `repeats` timed runs, returning the last run's value.
fn time_best<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("repeats >= 1"))
}

/// Benchmark batch workload evaluation through every index in `indexes` over
/// `data` (the paper's figure-4 sweep shape: the coarse indexes validate
/// heavily, the tuned ones barely — both regimes count).
pub fn bench_eval(
    indexes: &[IndexGraph],
    data: &DataGraph,
    queries: &[PathExpr],
    cfg: &PerfConfig,
) -> EvalBenchResult {
    let threads = cfg.resolved_threads();
    let (baseline_ms, base_out) = time_best(cfg.repeats, || {
        let mut all: Vec<IndexEvalOutcome> = Vec::new();
        for index in indexes {
            let evaluator = IndexEvaluator::new(index, data);
            all.extend(queries.iter().map(|q| evaluator.evaluate_baseline(q)));
        }
        all
    });
    let (arena_ms, arena_out) = time_best(cfg.repeats, || {
        let mut all: Vec<IndexEvalOutcome> = Vec::new();
        for index in indexes {
            all.extend(IndexEvaluator::new(index, data).evaluate_all(queries));
        }
        all
    });
    let (parallel_ms, parallel_out) = time_best(cfg.repeats, || {
        let mut all: Vec<IndexEvalOutcome> = Vec::new();
        for index in indexes {
            all.extend(evaluate_workload_parallel(index, data, queries, threads));
        }
        all
    });

    let identical = base_out == arena_out && base_out == parallel_out;
    let index_visits = base_out.iter().map(|o| o.cost.index_visits).sum();
    let data_visits = base_out.iter().map(|o| o.cost.data_visits).sum();
    let best_after = arena_ms.min(parallel_ms);
    EvalBenchResult {
        indexes: indexes.len(),
        queries: queries.len(),
        baseline_ms,
        arena_ms,
        parallel_ms,
        threads,
        speedup_arena: baseline_ms / arena_ms.max(f64::MIN_POSITIVE),
        speedup_best: baseline_ms / best_after.max(f64::MIN_POSITIVE),
        identical,
        index_visits,
        data_visits,
    }
}

/// Benchmark A(k) construction: reference [`k_bisimulation`] vs
/// [`RefineEngine::k_bisimulation`].
pub fn bench_ak_build(data: &DataGraph, k: usize, cfg: &PerfConfig) -> BuildBenchResult {
    let threads = cfg.resolved_threads();
    let (baseline_ms, reference) = time_best(cfg.repeats, || k_bisimulation(data, k));
    let (engine_ms, sequential) = time_best(cfg.repeats, || {
        let mut engine = RefineEngine::new();
        engine.k_bisimulation(data, k)
    });
    let (engine_parallel_ms, parallel) = time_best(cfg.repeats, || {
        let mut engine = RefineEngine::with_threads(threads);
        engine.k_bisimulation(data, k)
    });
    let identical = reference == sequential && reference == parallel;
    let best = engine_ms.min(engine_parallel_ms);
    BuildBenchResult {
        name: format!("A({k})"),
        baseline_ms,
        engine_ms,
        engine_parallel_ms,
        speedup: baseline_ms / best.max(f64::MIN_POSITIVE),
        identical,
        blocks: reference.block_count(),
    }
}

/// Benchmark D(k) construction for `reqs`: the retained reference loop vs
/// [`dk_partition_with_engine`].
pub fn bench_dk_build(
    data: &DataGraph,
    reqs: &Requirements,
    cfg: &PerfConfig,
) -> BuildBenchResult {
    let threads = cfg.resolved_threads();
    let (baseline_ms, (ref_p, ref_sims)) =
        time_best(cfg.repeats, || dk_partition_reference(data, reqs, true));
    let (engine_ms, (seq_p, seq_sims)) = time_best(cfg.repeats, || {
        dk_partition_with_engine(data, reqs, true, &mut RefineEngine::new())
    });
    let (engine_parallel_ms, (par_p, par_sims)) = time_best(cfg.repeats, || {
        dk_partition_with_engine(data, reqs, true, &mut RefineEngine::with_threads(threads))
    });
    let identical =
        ref_p == seq_p && ref_p == par_p && ref_sims == seq_sims && ref_sims == par_sims;
    let best = engine_ms.min(engine_parallel_ms);
    BuildBenchResult {
        name: "D(k)".to_string(),
        baseline_ms,
        engine_ms,
        engine_parallel_ms,
        speedup: baseline_ms / best.max(f64::MIN_POSITIVE),
        identical,
        blocks: ref_p.block_count(),
    }
}

/// Concurrent serving measurements: reader throughput under a live update
/// stream, plus the determinism cross-check against a serial replay.
#[derive(Clone, Debug)]
pub struct ServeBenchResult {
    /// Reader threads evaluating queries against published epochs.
    pub readers: usize,
    /// Query evaluations issued per reader.
    pub rounds: usize,
    /// Total queries answered (`readers * rounds`).
    pub queries: u64,
    /// Edge updates applied by the maintenance thread.
    pub updates: usize,
    /// Epochs published (batching collapses updates, so `<= updates`).
    pub epochs: u64,
    /// Wall-clock for the whole mixed run.
    pub serve_ms: f64,
    /// Queries answered per second across all readers.
    pub queries_per_sec: f64,
    /// Final published state is byte-identical to a serial replay of the
    /// same op sequence.
    pub deterministic: bool,
}

/// Benchmark the epoch-published serving layer ([`DkServer`]): reader
/// threads evaluate `queries` round-robin while the maintenance thread
/// applies a generated edge-update stream in batches, then the final state
/// is compared byte-for-byte against [`apply_serial`].
pub fn bench_serve(
    data: &DataGraph,
    queries: &[PathExpr],
    reqs: &Requirements,
    cfg: &PerfConfig,
    seed: u64,
) -> ServeBenchResult {
    let readers = cfg.resolved_threads().max(1);
    let rounds = 200;
    let updates = 32;
    let dk = DkIndex::build(data, reqs.clone());
    let ops: Vec<ServeOp> = generate_update_edges(data, updates, seed)
        .into_iter()
        .map(|(from, to)| ServeOp::AddEdge { from, to })
        .collect();

    let mut serial_dk = dk.clone();
    let mut serial_g = data.clone();
    apply_serial(&mut serial_dk, &mut serial_g, &ops);
    let expected = snapshot_bytes(&serial_dk, &serial_g);

    let start = Instant::now();
    let server = DkServer::start(
        data.clone(),
        dk,
        ServeConfig {
            max_batch: 8,
            threads: readers,
            ..ServeConfig::default()
        },
    );
    std::thread::scope(|s| {
        let mut workers = Vec::new();
        for r in 0..readers {
            let handle = server.handle();
            workers.push(s.spawn(move || {
                for round in 0..rounds {
                    let q = &queries[(r + round) % queries.len()];
                    let _ = handle.evaluate(q);
                }
            }));
        }
        for op in &ops {
            server.submit(op.clone()).expect("maintenance thread alive during bench");
        }
        for w in workers {
            w.join().expect("reader thread panicked");
        }
    });
    let epochs = server.flush().expect("maintenance thread alive during bench");
    let serve_ms = start.elapsed().as_secs_f64() * 1e3;
    let (final_dk, final_g) = server.shutdown().expect("maintenance thread alive during bench");
    let deterministic = snapshot_bytes(&final_dk, &final_g) == expected;

    let answered = (readers * rounds) as u64;
    ServeBenchResult {
        readers,
        rounds,
        queries: answered,
        updates: ops.len(),
        epochs,
        serve_ms,
        queries_per_sec: answered as f64 / (serve_ms / 1e3).max(f64::MIN_POSITIVE),
        deterministic,
    }
}

/// Sustained-churn measurements: a long update stream applied in large
/// batches while reader threads query continuously, with the COW
/// delta-epoch sharing counters and publish-latency histogram captured
/// from the telemetry recorder.
#[derive(Clone, Debug)]
pub struct ChurnBenchResult {
    /// Reader threads querying concurrently with the update stream.
    pub readers: usize,
    /// Edge updates applied inside the measured window (one unmeasured
    /// warm-up batch precedes it; see [`bench_churn`]).
    pub updates: usize,
    /// [`ServeConfig::max_batch`]: updates coalesced per publish.
    pub batch: usize,
    /// Epochs published inside the measured window.
    pub epochs: u64,
    /// Queries answered by the readers while the stream was live.
    pub queries: u64,
    /// Wall-clock for the whole churn run.
    pub churn_ms: f64,
    /// Updates applied per second (the sustained-churn headline).
    pub updates_per_sec: f64,
    /// Blocks pointer-shared with the predecessor epoch, summed over
    /// publishes (`serve.publish.blocks_shared`).
    pub blocks_shared: u64,
    /// Blocks copied-on-write or freshly built, summed over publishes
    /// (`serve.publish.blocks_rebuilt`).
    pub blocks_rebuilt: u64,
    /// Blocks in the final published index.
    pub total_blocks: usize,
    /// `blocks_rebuilt / (blocks_shared + blocks_rebuilt)` — the average
    /// fraction of the store a publish had to copy. The delta-epoch
    /// acceptance gate is `<= 0.10` at the 32-update batch size.
    pub rebuilt_ratio: f64,
    /// Publishes recorded in the `serve.publish_ns` histogram.
    pub publish_count: u64,
    /// Median publish latency in nanoseconds (`serve.publish_ns` p50).
    pub publish_p50_ns: u64,
    /// Worst publish latency in nanoseconds (`serve.publish_ns` max).
    pub publish_max_ns: u64,
    /// Final published state is byte-identical to a serial replay of the
    /// same op sequence.
    pub deterministic: bool,
}

impl ChurnBenchResult {
    /// The delta-epoch acceptance gate: publishes shared structurally and
    /// copied at most 10% of the store on average.
    pub fn sharing_ok(&self) -> bool {
        self.blocks_shared > 0 && self.rebuilt_ratio <= 0.10
    }
}

/// Sustained-churn benchmark: apply `batches * batch` generated edge updates
/// through a [`DkServer`] configured with `max_batch = batch` while
/// `cfg.threads` reader threads query continuously, then cross-check the
/// final state byte-for-byte against [`apply_serial`].
///
/// One additional warm-up batch is applied before the measurement window
/// opens: the very first update batch on a freshly tuned index triggers the
/// one-time broadcast-lowering cascade (a large fraction of blocks get
/// their similarity lowered), which is a property of cold start, not of
/// sustained publishing. The serial-replay determinism oracle still covers
/// the **full** stream, warm-up included.
///
/// The telemetry recorder is reset and enabled for the measured window
/// so the COW sharing counters (`serve.publish.blocks_shared` /
/// `serve.publish.blocks_rebuilt`) and the `serve.publish_ns` latency
/// histogram cover exactly the steady-state stream. Callers that care about
/// recorder state should snapshot before calling; the recorder is left
/// disabled.
pub fn bench_churn(
    data: &DataGraph,
    queries: &[PathExpr],
    reqs: &Requirements,
    cfg: &PerfConfig,
    seed: u64,
) -> ChurnBenchResult {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let readers = cfg.resolved_threads().max(1);
    let batch = 32;
    let batches = 8;
    let dk = DkIndex::build(data, reqs.clone());
    // One extra batch up front is warm-up (applied outside the window).
    let ops: Vec<ServeOp> = generate_update_edges(data, batch * (batches + 1), seed)
        .into_iter()
        .map(|(from, to)| ServeOp::AddEdge { from, to })
        .collect();
    let (warmup, measured) = ops.split_at(batch);

    // Serial oracle, recorder off: determinism must not depend on telemetry.
    telemetry::disable();
    let mut serial_dk = dk.clone();
    let mut serial_g = data.clone();
    apply_serial(&mut serial_dk, &mut serial_g, &ops);
    let expected = snapshot_bytes(&serial_dk, &serial_g);

    let server = DkServer::start(
        data.clone(),
        dk,
        ServeConfig {
            max_batch: batch,
            threads: readers,
            ..ServeConfig::default()
        },
    );
    // Warm-up: absorb the cold-start broadcast-lowering cascade unrecorded.
    for op in warmup {
        server.submit(op.clone()).expect("maintenance thread alive during bench");
    }
    let warmup_epochs = server.flush().expect("maintenance thread alive during bench");

    telemetry::reset();
    telemetry::enable();
    let start = Instant::now();
    let stop = AtomicBool::new(false);
    let answered = AtomicU64::new(0);
    let mut epochs = warmup_epochs;
    std::thread::scope(|s| {
        for r in 0..readers {
            let handle = server.handle();
            let (stop, answered) = (&stop, &answered);
            s.spawn(move || {
                let mut round = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let q = &queries[(r + round) % queries.len()];
                    let _ = handle.evaluate(q);
                    round += 1;
                }
                answered.fetch_add(round as u64, Ordering::Relaxed);
            });
        }
        // Submit one full batch, then flush to force a publish boundary, so
        // the sharing counters measure genuine `batch`-sized deltas.
        for chunk in measured.chunks(batch) {
            for op in chunk {
                server.submit(op.clone()).expect("maintenance thread alive during bench");
            }
            epochs = server.flush().expect("maintenance thread alive during bench");
        }
        stop.store(true, Ordering::Relaxed);
    });
    let churn_ms = start.elapsed().as_secs_f64() * 1e3;
    let (final_dk, final_g) = server.shutdown().expect("maintenance thread alive during bench");
    telemetry::disable();
    let snapshot = telemetry::snapshot();
    let deterministic = snapshot_bytes(&final_dk, &final_g) == expected;

    let blocks_shared = snapshot.counter("serve.publish.blocks_shared").unwrap_or(0);
    let blocks_rebuilt = snapshot.counter("serve.publish.blocks_rebuilt").unwrap_or(0);
    let publish = snapshot.histogram("serve.publish_ns");
    let considered = blocks_shared + blocks_rebuilt;
    ChurnBenchResult {
        readers,
        updates: measured.len(),
        batch,
        epochs: epochs - warmup_epochs,
        queries: answered.load(Ordering::Relaxed),
        churn_ms,
        updates_per_sec: measured.len() as f64 / (churn_ms / 1e3).max(f64::MIN_POSITIVE),
        blocks_shared,
        blocks_rebuilt,
        total_blocks: final_dk.index().size(),
        rebuilt_ratio: blocks_rebuilt as f64 / (considered as f64).max(1.0),
        publish_count: publish.map_or(0, |h| h.count),
        publish_p50_ns: publish.and_then(|h| h.p50).unwrap_or(0),
        publish_max_ns: publish.and_then(|h| h.max).unwrap_or(0),
        deterministic,
    }
}

/// Full smoke benchmark on an XMark-like dataset: batch evaluation of the
/// workload through the figure-4 index set (A(0)..A(max_k) plus the
/// workload-tuned D(k)), plus A(k) and D(k) construction. Returns the eval
/// result and the construction results.
pub fn bench_smoke(
    data: &DataGraph,
    queries: &[PathExpr],
    reqs: &Requirements,
    max_k: usize,
    cfg: &PerfConfig,
) -> (EvalBenchResult, Vec<BuildBenchResult>) {
    let mut indexes: Vec<IndexGraph> = (0..=max_k)
        .map(|k| AkIndex::build(data, k).index().clone())
        .collect();
    indexes.push(DkIndex::build(data, reqs.clone()).index().clone());
    let eval = bench_eval(&indexes, data, queries, cfg);
    let builds = vec![
        bench_ak_build(data, max_k, cfg),
        bench_dk_build(data, reqs, cfg),
    ];
    (eval, builds)
}

/// Result of the telemetry transparency check plus one fully instrumented
/// build → query → adapt pass.
#[derive(Clone, Debug)]
pub struct TelemetryBenchResult {
    /// Fast paths matched the reference oracles with the recorder **off**.
    pub identical_off: bool,
    /// Fast paths matched the reference oracles with the recorder **on**.
    pub identical_on: bool,
    /// Snapshot taken after the instrumented pass (recorder already off).
    pub snapshot: telemetry::Snapshot,
}

impl TelemetryBenchResult {
    /// Both checks passed: telemetry is observationally transparent.
    pub fn identical(&self) -> bool {
        self.identical_off && self.identical_on
    }
}

/// Verify that the telemetry recorder is observationally transparent and
/// collect one instrumented pass for `METRICS.json`.
///
/// The oracles are the retained PR 1 reference paths — [`dk_partition_reference`]
/// and [`IndexEvaluator::evaluate_baseline`], run with the recorder off. The
/// fast paths ([`dk_partition_with_engine`], [`IndexEvaluator::evaluate_all`])
/// are then run twice, recorder off and recorder on, and compared for
/// byte-identical partitions, similarities, matches, and visit counts. The
/// recorder-on run is wrapped in the `phase.build_ns` / `phase.query_ns`
/// spans; a follow-up update + tuning round on cloned state fills
/// `phase.adapt_ns` (it mutates the index, so it is exercised for its
/// telemetry rather than compared).
pub fn bench_telemetry(
    data: &DataGraph,
    queries: &[PathExpr],
    reqs: &Requirements,
    max_k: usize,
    seed: u64,
) -> TelemetryBenchResult {
    telemetry::disable();

    // Oracles: reference construction + baseline evaluation, recorder off.
    let (oracle_p, oracle_sims) = dk_partition_reference(data, reqs, true);
    let mut indexes: Vec<IndexGraph> = (0..=max_k)
        .map(|k| AkIndex::build(data, k).index().clone())
        .collect();
    indexes.push(DkIndex::build(data, reqs.clone()).index().clone());
    let mut oracle_out: Vec<IndexEvalOutcome> = Vec::new();
    for index in &indexes {
        let evaluator = IndexEvaluator::new(index, data);
        oracle_out.extend(queries.iter().map(|q| evaluator.evaluate_baseline(q)));
    }

    let fast_pass = |indexes: &[IndexGraph]| {
        let (p, sims) = {
            let _span = telemetry::Span::start(&telemetry::metrics::PHASE_BUILD_NS);
            dk_partition_with_engine(data, reqs, true, &mut RefineEngine::new())
        };
        let out = {
            let _span = telemetry::Span::start(&telemetry::metrics::PHASE_QUERY_NS);
            let mut all: Vec<IndexEvalOutcome> = Vec::new();
            for index in indexes {
                all.extend(IndexEvaluator::new(index, data).evaluate_all(queries));
            }
            all
        };
        (p, sims, out)
    };

    // Recorder off: the disabled spans above are inert.
    let (p_off, sims_off, out_off) = fast_pass(&indexes);
    let identical_off =
        p_off == oracle_p && sims_off == oracle_sims && out_off == oracle_out;

    // Recorder on: same work, now recorded under the phase spans.
    telemetry::reset();
    telemetry::enable();
    let (p_on, sims_on, out_on) = fast_pass(&indexes);
    {
        // Adapt phase: the paper's update + tune loop on cloned state.
        let _span = telemetry::Span::start(&telemetry::metrics::PHASE_ADAPT_NS);
        let mut adapted = data.clone();
        let mut dk = DkIndex::build(&adapted, reqs.clone());
        for (u, v) in generate_update_edges(&adapted, 10, seed) {
            dk.add_edge(&mut adapted, u, v);
        }
        dk.promote_to_requirements(&adapted);
        let window = queries.len().max(1);
        let mut tuner = AdaptiveTuner::new(
            dk,
            TunerConfig {
                window,
                ..TunerConfig::default()
            },
        );
        for q in queries {
            tuner.evaluate(&adapted, q);
        }
        tuner.maybe_tune(&adapted);
    }
    telemetry::disable();
    let snapshot = telemetry::snapshot();
    let identical_on = p_on == oracle_p && sims_on == oracle_sims && out_on == oracle_out;

    TelemetryBenchResult {
        identical_off,
        identical_on,
        snapshot,
    }
}

/// Render the telemetry bench as the `METRICS.json` document: dataset +
/// config header, the transparency verdicts, and the full recorder snapshot
/// (per-phase span timings, refinement-round counts, visit histograms).
pub fn metrics_to_json(
    dataset: &str,
    cfg: &PerfConfig,
    max_k: usize,
    queries: usize,
    tel: &TelemetryBenchResult,
) -> String {
    let snapshot_json = tel.snapshot.to_json();
    format!(
        "{{\n  \"dataset\": \"{dataset}\",\n  \
         \"config\": {{ \"threads\": {}, \"repeats\": {}, \"max_k\": {max_k}, \
         \"queries\": {queries} }},\n  \
         \"identical_with_telemetry_off\": {},\n  \
         \"identical_with_telemetry_on\": {},\n  \
         \"telemetry\": {}\n}}\n",
        cfg.resolved_threads(),
        cfg.repeats,
        tel.identical_off,
        tel.identical_on,
        snapshot_json.trim_end(),
    )
}

/// The serving-layer result sections [`to_json`] renders after the
/// eval/construction sections.
pub struct ServingSections<'a> {
    /// Concurrent serve bench (`bench_serve`).
    pub serve: &'a ServeBenchResult,
    /// Sustained-churn bench (`bench_churn`).
    pub churn: &'a ChurnBenchResult,
    /// Loopback network bench ([`crate::net::bench_net`]).
    pub net: &'a crate::net::NetBenchResult,
    /// Durable-ack cost bench ([`crate::crash::bench_durability`]).
    pub durability: &'a crate::crash::DurabilityBenchResult,
    /// Shifting-workload live-tuning bench ([`crate::tuning::bench_tuning`]).
    pub tuning: &'a crate::tuning::TuningBenchResult,
}

/// Render the results as a JSON document (hand-rolled: the workspace has no
/// serialization dependency).
pub fn to_json(
    dataset: &str,
    cfg: &PerfConfig,
    eval: &EvalBenchResult,
    builds: &[BuildBenchResult],
    sections: &ServingSections<'_>,
) -> String {
    let ServingSections {
        serve,
        churn,
        net,
        durability,
        tuning,
    } = *sections;
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    s.push_str(&format!(
        "  \"config\": {{ \"threads\": {}, \"repeats\": {} }},\n",
        cfg.resolved_threads(),
        cfg.repeats
    ));
    s.push_str("  \"eval\": {\n");
    s.push_str(&format!("    \"indexes\": {},\n", eval.indexes));
    s.push_str(&format!("    \"queries\": {},\n", eval.queries));
    s.push_str(&format!("    \"baseline_ms\": {:.3},\n", eval.baseline_ms));
    s.push_str(&format!("    \"arena_ms\": {:.3},\n", eval.arena_ms));
    s.push_str(&format!("    \"parallel_ms\": {:.3},\n", eval.parallel_ms));
    s.push_str(&format!("    \"threads\": {},\n", eval.threads));
    s.push_str(&format!("    \"speedup_arena\": {:.2},\n", eval.speedup_arena));
    s.push_str(&format!("    \"speedup_best\": {:.2},\n", eval.speedup_best));
    s.push_str(&format!("    \"identical_outcomes\": {},\n", eval.identical));
    s.push_str(&format!("    \"index_visits\": {},\n", eval.index_visits));
    s.push_str(&format!("    \"data_visits\": {}\n", eval.data_visits));
    s.push_str("  },\n");
    s.push_str("  \"construction\": [\n");
    for (i, b) in builds.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"baseline_ms\": {:.3}, \"engine_ms\": {:.3}, \
             \"engine_parallel_ms\": {:.3}, \"speedup\": {:.2}, \
             \"identical_partition\": {}, \"blocks\": {} }}{}\n",
            b.name,
            b.baseline_ms,
            b.engine_ms,
            b.engine_parallel_ms,
            b.speedup,
            b.identical,
            b.blocks,
            if i + 1 < builds.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"serve\": {\n");
    s.push_str(&format!("    \"readers\": {},\n", serve.readers));
    s.push_str(&format!("    \"rounds\": {},\n", serve.rounds));
    s.push_str(&format!("    \"queries\": {},\n", serve.queries));
    s.push_str(&format!("    \"updates\": {},\n", serve.updates));
    s.push_str(&format!("    \"epochs\": {},\n", serve.epochs));
    s.push_str(&format!("    \"serve_ms\": {:.3},\n", serve.serve_ms));
    s.push_str(&format!(
        "    \"queries_per_sec\": {:.1},\n",
        serve.queries_per_sec
    ));
    s.push_str(&format!(
        "    \"deterministic\": {}\n",
        serve.deterministic
    ));
    s.push_str("  },\n");
    s.push_str("  \"churn\": {\n");
    s.push_str(&format!("    \"readers\": {},\n", churn.readers));
    s.push_str(&format!("    \"updates\": {},\n", churn.updates));
    s.push_str(&format!("    \"batch\": {},\n", churn.batch));
    s.push_str(&format!("    \"epochs\": {},\n", churn.epochs));
    s.push_str(&format!("    \"queries\": {},\n", churn.queries));
    s.push_str(&format!("    \"churn_ms\": {:.3},\n", churn.churn_ms));
    s.push_str(&format!(
        "    \"updates_per_sec\": {:.1},\n",
        churn.updates_per_sec
    ));
    s.push_str(&format!("    \"blocks_shared\": {},\n", churn.blocks_shared));
    s.push_str(&format!(
        "    \"blocks_rebuilt\": {},\n",
        churn.blocks_rebuilt
    ));
    s.push_str(&format!("    \"total_blocks\": {},\n", churn.total_blocks));
    s.push_str(&format!(
        "    \"rebuilt_ratio\": {:.4},\n",
        churn.rebuilt_ratio
    ));
    s.push_str(&format!(
        "    \"publish_count\": {},\n",
        churn.publish_count
    ));
    s.push_str(&format!(
        "    \"publish_p50_ns\": {},\n",
        churn.publish_p50_ns
    ));
    s.push_str(&format!(
        "    \"publish_max_ns\": {},\n",
        churn.publish_max_ns
    ));
    s.push_str(&format!(
        "    \"deterministic\": {}\n",
        churn.deterministic
    ));
    s.push_str("  },\n");
    s.push_str(&crate::crash::durability_to_json(durability));
    s.push_str(",\n");
    s.push_str(&crate::net::net_to_json(net));
    s.push_str(",\n");
    s.push_str(&crate::tuning::tuning_to_json(tuning));
    s.push('\n');
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::experiments::standard_workload;
    use std::sync::Mutex;

    /// `bench_churn` and `bench_telemetry` both drive the process-global
    /// telemetry recorder (reset/enable/disable); tests that call either
    /// must serialize on this lock or the parallel test harness interleaves
    /// their counter windows.
    static RECORDER_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn smoke_results_are_identical_across_paths() {
        let data = datasets::xmark(0.004);
        let workload = standard_workload(&data, 7);
        let reqs = workload.mine_requirements();
        let cfg = PerfConfig {
            threads: 2,
            repeats: 1,
        };
        let (eval, builds) = bench_smoke(&data, workload.queries(), &reqs, 2, &cfg);
        assert!(eval.identical, "evaluation paths disagree");
        for b in &builds {
            assert!(b.identical, "{} construction paths disagree", b.name);
        }
        let serve = bench_serve(&data, workload.queries(), &reqs, &cfg, 7);
        assert!(serve.deterministic, "serve diverged from serial replay");
        assert_eq!(serve.queries, (serve.readers * serve.rounds) as u64);
        assert!(serve.epochs >= 1 && serve.epochs <= serve.updates as u64);
        let churn = {
            let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            bench_churn(&data, workload.queries(), &reqs, &cfg, 7)
        };
        assert!(churn.deterministic, "churn diverged from serial replay");
        assert!(churn.epochs >= 1, "churn published no epochs");
        assert!(
            churn.blocks_shared > 0,
            "no publish shared any blocks — COW regression to full clones"
        );
        assert!(
            churn.sharing_ok(),
            "publishes copied {:.1}% of the store on average (gate: <= 10%)",
            churn.rebuilt_ratio * 100.0
        );
        assert!(
            churn.publish_count >= churn.epochs,
            "publish latency histogram missed publishes"
        );
        let net_cfg = crate::net::NetBenchConfig {
            rounds: 10,
            updates: 6,
            staleness_threshold: 3,
            overload_extra: 2,
        };
        let net = crate::net::bench_net(&data, workload.queries(), &reqs, &cfg, &net_cfg, 7);
        assert!(net.gate_ok(&net_cfg), "net gate failed: {net:?}");
        let durability = {
            let dk = DkIndex::build(&data, reqs.clone());
            let updates = dkindex_workload::generate_update_edges(&data, 4, 7);
            let wal_path = std::env::temp_dir()
                .join(format!("dkindex-perf-test-{}.wal", std::process::id()));
            crate::crash::bench_durability(&data, &dk, &updates, &wal_path)
                .expect("durability bench must ack every update")
        };
        assert_eq!(durability.updates, 4);
        let tune_cfg = crate::tuning::TuningBenchConfig {
            rounds: 6,
            queries_per_round: 96,
            tune_window: 32,
            ..crate::tuning::TuningBenchConfig::default()
        };
        let tuning = crate::tuning::bench_tuning(&data, &cfg, &tune_cfg, 7);
        assert!(tuning.gate_ok(), "tuning gate failed: {tuning:?}");
        let sections = ServingSections {
            serve: &serve,
            churn: &churn,
            net: &net,
            durability: &durability,
            tuning: &tuning,
        };
        let json = to_json("xmark-test", &cfg, &eval, &builds, &sections);
        assert!(json.contains("\"identical_outcomes\": true"));
        assert!(json.contains("\"identical_partition\": true"));
        assert!(json.contains("\"serve\""), "{json}");
        assert!(json.contains("\"churn\""), "{json}");
        assert!(json.contains("\"net\""), "{json}");
        assert!(json.contains("\"durability\""), "{json}");
        assert!(json.contains("\"acked_per_sec_wal_on\""), "{json}");
        assert!(json.contains("\"rebuilt_ratio\""), "{json}");
        assert!(json.contains("\"publish_p50_ns\""), "{json}");
        assert!(json.contains("\"p999_us\""), "{json}");
        assert!(json.contains("\"tuning\""), "{json}");
        assert!(json.contains("\"p99_curve\""), "{json}");
        assert!(json.contains("\"wal_recovered\": true"), "{json}");
        assert!(json.contains("\"deterministic\": true"), "{json}");
    }

    #[test]
    fn telemetry_is_observationally_transparent() {
        let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let data = datasets::xmark(0.004);
        let workload = standard_workload(&data, 7);
        let reqs = workload.mine_requirements();
        let tel = bench_telemetry(&data, workload.queries(), &reqs, 2, 7);
        assert!(tel.identical_off, "fast paths diverge with recorder off");
        assert!(tel.identical_on, "fast paths diverge with recorder on");
        assert!(tel.snapshot.counter("partition.rounds").unwrap_or(0) > 0);
        assert!(tel.snapshot.counter("eval.queries").unwrap_or(0) > 0);
        let cfg = PerfConfig {
            threads: 2,
            repeats: 1,
        };
        let json = metrics_to_json("xmark-test", &cfg, 2, workload.len(), &tel);
        assert!(json.contains("\"identical_with_telemetry_off\": true"));
        assert!(json.contains("\"identical_with_telemetry_on\": true"));
        assert!(json.contains("phase.build_ns"));
        assert!(json.contains("phase.query_ns"));
        assert!(json.contains("phase.adapt_ns"));
    }
}
