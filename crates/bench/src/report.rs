//! Plain-text table rendering for the experiment harness.

/// Render an aligned table; `headers.len()` must match every row's length.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: Vec<&str>| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str("| ");
            out.push_str(cell);
            out.push_str(&" ".repeat(widths[i] - cell.len() + 1));
        }
        out.push_str("|\n");
    };
    line(&mut out, headers.to_vec());
    for w in &widths {
        out.push('|');
        out.push_str(&"-".repeat(w + 2));
    }
    out.push_str("|\n");
    for row in rows {
        line(&mut out, row.iter().map(String::as_str).collect());
    }
    out
}

/// Format a float with limited precision for table cells.
pub fn fmt_f64(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["index", "size"],
            &[
                vec!["A(0)".into(), "5".into()],
                vec!["D(k)".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let len = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == len));
        assert!(lines[1].chars().all(|c| c == '|' || c == '-'));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        render_table(&["a", "b"], &[vec!["only one".into()]]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(3.44159), "3.4");
        assert_eq!(fmt_f64(12345.6), "12346");
    }
}
