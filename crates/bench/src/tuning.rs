//! Live-tuning convergence bench: a Zipf-skewed query mix served through a
//! [`DkServer`] with the in-loop adaptive tuner on, where the hot set flips
//! to a different query pool halfway through the run. The server starts at
//! `D(1)` — deliberately under-provisioned — so the tuner has to earn both
//! the initial convergence and the re-convergence after the shift.
//!
//! Three properties are gated (the `reproduce verify-tune` subcommand turns
//! them into an exit code):
//!
//! * **Re-convergence** — the per-round p99 query cost returns to its
//!   converged post-shift value within `converge_bound` rounds (one epoch
//!   pair per round) after the workload flips, and the converged p99 is no
//!   worse than the p99 at the shift itself.
//! * **Determinism** — the final live-tuned state is byte-identical to
//!   [`apply_serial`] over the recorded op sequence, which includes the
//!   tuner's own `SetRequirements`/`Demote` ops at their actual interleaved
//!   positions ([`ServeConfig::record_ops`]).
//! * **Durability** — the run is WAL-logged; replaying the committed log
//!   over the initial state reproduces the final state byte-identically,
//!   tuning ops included.
//!
//! The whole curve is deterministic — costs are graph-visit counts, the
//! query mix per round is a fixed weighted stream, and tuning rides the
//! round's flush — so the `p99_curve` in `BENCH_eval.json` is reproducible
//! across machines, not a timing artifact.

use crate::experiments::standard_workload;
use crate::perf::PerfConfig;
use dkindex_core::io_fail::{FailPlan, SharedDisk};
use dkindex_core::wal::{self, WalWriter};
use dkindex_core::{
    apply_serial, snapshot_bytes, DkIndex, DkServer, Requirements, ServeConfig, ServeOp,
};
use dkindex_graph::DataGraph;
use dkindex_pathexpr::PathExpr;
use dkindex_workload::{generate_update_edges, weighted_stream};

/// Knobs for the shifting-workload tuning bench (see [`bench_tuning`]).
#[derive(Clone, Copy, Debug)]
pub struct TuningBenchConfig {
    /// Total serve rounds; the workload flips at `rounds / 2`.
    pub rounds: usize,
    /// Queries evaluated per round (the weighted stream's total).
    pub queries_per_round: u64,
    /// Zipf skew for the per-phase query stream.
    pub skew: f64,
    /// [`ServeConfig::tune_window`]: recorded queries per mining pass. Keep
    /// it at or below `queries_per_round` so every round's flush mines.
    pub tune_window: usize,
    /// Rounds the post-shift p99 is allowed before it must reach (within
    /// 5%) its converged value.
    pub converge_bound: usize,
}

impl Default for TuningBenchConfig {
    fn default() -> Self {
        TuningBenchConfig {
            rounds: 16,
            queries_per_round: 256,
            skew: 1.1,
            tune_window: 64,
            converge_bound: 8,
        }
    }
}

/// What [`bench_tuning`] measured and verified.
#[derive(Clone, Debug)]
pub struct TuningBenchResult {
    /// Reader threads evaluating each round's mix concurrently.
    pub readers: usize,
    /// Serve rounds actually run.
    pub rounds: usize,
    /// First round (0-based) served from the flipped workload.
    pub shift_round: usize,
    /// Total queries evaluated across the run.
    pub queries: u64,
    /// Per-round p99 query cost in graph visits — the convergence curve.
    pub p99_curve: Vec<u64>,
    /// p99 of the last pre-shift round (converged on workload A).
    pub baseline_p99: u64,
    /// p99 of the first post-shift round (workload B on A-tuned state).
    pub shift_p99: u64,
    /// p99 of the final round (converged on workload B).
    pub converged_p99: u64,
    /// Rounds after the shift until p99 first came within 5% of
    /// `converged_p99` (1 = the very first post-shift round).
    pub converge_rounds: Option<usize>,
    /// The configured bound `converge_rounds` is gated against.
    pub converge_bound: usize,
    /// Windows the live tuner mined ([`dkindex_core::TuneStats::windows`]).
    pub windows: u64,
    /// Promotions the live tuner enqueued.
    pub promotions: u64,
    /// Demotions the live tuner enqueued.
    pub demotions: u64,
    /// `SetRequirements`/`Demote` ops in the recorded sequence — the
    /// tuner's footprint in the oracle's input.
    pub tuning_ops: usize,
    /// Final state is byte-identical to [`apply_serial`] over the recorded
    /// ops (client and tuner ops at their actual interleaving).
    pub deterministic: bool,
    /// Replaying the committed WAL over the initial state reproduces the
    /// final state byte-identically.
    pub wal_recovered: bool,
}

impl TuningBenchResult {
    /// The `verify-tune` acceptance gate.
    pub fn gate_ok(&self) -> bool {
        self.deterministic
            && self.wal_recovered
            && self.windows >= 1
            && self.promotions >= 1
            && self.converged_p99 <= self.shift_p99
            && self
                .converge_rounds
                .is_some_and(|r| r <= self.converge_bound)
    }
}

/// Nearest-rank p99 over one round's (unsorted) cost samples.
fn p99(samples: &mut [u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[((samples.len() - 1) * 99) / 100]
}

/// Expand a weighted stream into the flat evaluation list for one round:
/// each distinct query repeated `weight` times. The repeats are what make
/// the round's p99 (and the monitor's mined weights) load-weighted — a memo
/// hit re-records the same deterministic cost.
fn expand(stream: &[(PathExpr, u64)]) -> Vec<PathExpr> {
    stream
        .iter()
        .flat_map(|(q, w)| std::iter::repeat_n(q.clone(), *w as usize))
        .collect()
}

/// Run the shifting-workload tuning bench: serve `cfg.rounds` rounds of a
/// Zipf-weighted query mix from a `D(1)` start with live tuning on
/// (`tune_interval` 1), flipping to a second query pool at the halfway
/// round, and record the per-round p99 cost curve. Every round evaluates
/// its full mix across `perf.threads` readers, then submits one edge update
/// and flushes twice — the first flush publishes the round's batch (whose
/// `after_publish` pass mines the round's observations), the second drains
/// whatever op the tuner enqueued — so tuning lands on a deterministic
/// round boundary.
pub fn bench_tuning(
    data: &DataGraph,
    perf: &PerfConfig,
    cfg: &TuningBenchConfig,
    seed: u64,
) -> TuningBenchResult {
    let readers = perf.resolved_threads().max(1);
    let shift_round = cfg.rounds / 2;
    // Two independent pools: B's queries are largely unseen during phase A,
    // so the shift genuinely invalidates the tuned requirements instead of
    // just reshuffling weights over already-promoted labels.
    let pool_a = standard_workload(data, seed);
    let pool_b = standard_workload(data, seed.wrapping_add(1));
    let mix_a = expand(&weighted_stream(&pool_a, cfg.queries_per_round, cfg.skew, seed));
    let mix_b = expand(&weighted_stream(
        &pool_b,
        cfg.queries_per_round,
        cfg.skew,
        seed.wrapping_add(1),
    ));
    let edges = generate_update_edges(data, cfg.rounds, seed);

    // Under-provisioned start: uniform k = 1, so phase A's convergence is
    // itself the tuner's work, not the build's.
    let initial_reqs = Requirements::uniform(1);
    let dk0 = DkIndex::build(data, initial_reqs);
    let shared = SharedDisk::new(FailPlan::none());
    let writer = WalWriter::with_store(shared.clone()).expect("WAL header on in-memory disk");
    let server = DkServer::start_logged(
        data.clone(),
        dk0.clone(),
        ServeConfig {
            max_batch: 8,
            threads: readers,
            tune_interval: 1,
            tune_window: cfg.tune_window,
            // Every query in the round's mix carries at least weight 1 by
            // construction; support 1 lets the tuner cover the whole mix,
            // which is what the p99 (a tail metric) converges on.
            tune_min_support: 1,
            record_ops: true,
            ..ServeConfig::default()
        },
        Box::new(writer),
    );
    let handle = server.handle();

    let mut p99_curve = Vec::with_capacity(cfg.rounds);
    let mut queries = 0u64;
    for round in 0..cfg.rounds {
        let mix = if round < shift_round { &mix_a } else { &mix_b };
        queries += mix.len() as u64;
        let mut costs: Vec<u64> = std::thread::scope(|s| {
            let mut parts = Vec::new();
            for r in 0..readers {
                let handle = handle.clone();
                parts.push(s.spawn(move || {
                    let mut costs = Vec::new();
                    for q in mix.iter().skip(r).step_by(readers) {
                        costs.push(handle.evaluate(q).cost.total());
                    }
                    costs
                }));
            }
            parts
                .into_iter()
                .flat_map(|h| h.join().expect("reader thread panicked"))
                .collect()
        });
        p99_curve.push(p99(&mut costs));
        // One real op per round forces the publish the tuner rides; the
        // first flush returns only after that publish's tuning pass has
        // enqueued its op (if any), so the second flush applies it before
        // the next round evaluates.
        if let Some(&(from, to)) = edges.get(round) {
            server
                .submit(ServeOp::AddEdge { from, to })
                .expect("maintenance alive");
        }
        server.flush().expect("round flush");
        server.flush().expect("tuning-op flush");
    }

    let stats = handle.tuning_stats().expect("tuning enabled");
    let recorded = server.recorded_ops().expect("op recording enabled");
    let tuning_ops = recorded
        .iter()
        .filter(|op| matches!(op, ServeOp::SetRequirements(_) | ServeOp::Demote(_)))
        .count();
    let (final_dk, final_data) = server.shutdown().expect("clean shutdown");
    let final_bytes = snapshot_bytes(&final_dk, &final_data);

    let mut serial_dk = dk0.clone();
    let mut serial_g = data.clone();
    apply_serial(&mut serial_dk, &mut serial_g, &recorded);
    let deterministic = snapshot_bytes(&serial_dk, &serial_g) == final_bytes;

    let mut wal_dk = dk0;
    let mut wal_g = data.clone();
    let view = shared.view(|d| d.crash_view(0));
    let wal_recovered = wal::replay(&mut wal_dk, &mut wal_g, &view).is_ok()
        && snapshot_bytes(&wal_dk, &wal_g) == final_bytes;

    let baseline_p99 = p99_curve[shift_round.saturating_sub(1)];
    let shift_p99 = p99_curve[shift_round.min(p99_curve.len() - 1)];
    let converged_p99 = *p99_curve.last().expect("at least one round");
    // Within 5% of the converged value counts as re-converged: the one
    // edge update per round perturbs costs a little even at steady state.
    let tolerance = converged_p99 + converged_p99 / 20;
    let converge_rounds = p99_curve[shift_round..]
        .iter()
        .position(|&p| p <= tolerance)
        .map(|i| i + 1);

    TuningBenchResult {
        readers,
        rounds: cfg.rounds,
        shift_round,
        queries,
        p99_curve,
        baseline_p99,
        shift_p99,
        converged_p99,
        converge_rounds,
        converge_bound: cfg.converge_bound,
        windows: stats.windows,
        promotions: stats.promotions,
        demotions: stats.demotions,
        tuning_ops,
        deterministic,
        wal_recovered,
    }
}

/// Render the `tuning` section for `BENCH_eval.json`.
pub fn tuning_to_json(t: &TuningBenchResult) -> String {
    let mut s = String::new();
    s.push_str("  \"tuning\": {\n");
    s.push_str(&format!("    \"readers\": {},\n", t.readers));
    s.push_str(&format!("    \"rounds\": {},\n", t.rounds));
    s.push_str(&format!("    \"shift_round\": {},\n", t.shift_round));
    s.push_str(&format!("    \"queries\": {},\n", t.queries));
    let curve: Vec<String> = t.p99_curve.iter().map(u64::to_string).collect();
    s.push_str(&format!("    \"p99_curve\": [{}],\n", curve.join(", ")));
    s.push_str(&format!("    \"baseline_p99\": {},\n", t.baseline_p99));
    s.push_str(&format!("    \"shift_p99\": {},\n", t.shift_p99));
    s.push_str(&format!("    \"converged_p99\": {},\n", t.converged_p99));
    s.push_str(&format!(
        "    \"converge_rounds\": {},\n",
        t.converge_rounds
            .map_or_else(|| "null".to_string(), |r| r.to_string())
    ));
    s.push_str(&format!("    \"converge_bound\": {},\n", t.converge_bound));
    s.push_str(&format!("    \"windows\": {},\n", t.windows));
    s.push_str(&format!("    \"promotions\": {},\n", t.promotions));
    s.push_str(&format!("    \"demotions\": {},\n", t.demotions));
    s.push_str(&format!("    \"tuning_ops\": {},\n", t.tuning_ops));
    s.push_str(&format!("    \"deterministic\": {},\n", t.deterministic));
    s.push_str(&format!("    \"wal_recovered\": {}\n", t.wal_recovered));
    s.push_str("  }");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn shifting_workload_reconverges_and_replays_serially() {
        let data = datasets::xmark(0.004);
        let perf = PerfConfig {
            threads: 2,
            repeats: 1,
        };
        let cfg = TuningBenchConfig {
            rounds: 8,
            queries_per_round: 128,
            tune_window: 32,
            ..TuningBenchConfig::default()
        };
        let t = bench_tuning(&data, &perf, &cfg, 7);
        assert!(t.deterministic, "live-tuned serve diverged from serial replay");
        assert!(t.wal_recovered, "WAL replay diverged from the live-tuned state");
        assert!(t.promotions >= 1, "tuner never promoted: {t:?}");
        assert!(t.tuning_ops >= 1, "no tuning op in the recording: {t:?}");
        assert_eq!(t.p99_curve.len(), cfg.rounds);
        assert!(
            t.converge_rounds.is_some_and(|r| r <= cfg.converge_bound),
            "p99 did not re-converge: {t:?}"
        );
        assert!(t.gate_ok(), "gate failed: {t:?}");
        let json = tuning_to_json(&t);
        assert!(json.contains("\"p99_curve\""), "{json}");
        assert!(json.contains("\"converge_rounds\""), "{json}");
        assert!(json.contains("\"deterministic\": true"), "{json}");
        assert!(json.contains("\"wal_recovered\": true"), "{json}");
    }
}
