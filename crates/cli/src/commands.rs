//! Command implementations for the `dkindex` binary. Each command returns
//! its textual output so the test suite can drive the full CLI in-process.

use dkindex_core::store::{load_dk, save_dk};
use dkindex_core::{mine_requirements, DkIndex, FbIndex, IndexEvaluator, Requirements};
use dkindex_graph::stats::{label_histogram, GraphStats};
use dkindex_graph::{DataGraph, LabeledGraph, NodeId};
use dkindex_pathexpr::{parse, parse_twig, PathExpr};
use dkindex_telemetry as telemetry;
use dkindex_xml::{stream_to_graph, GraphOptions};
use std::fmt::Write as _;
use std::fs;

/// CLI usage text.
pub const USAGE: &str = "\
usage:
  dkindex stats <doc.xml> [--queries <file>] [--idref ATTR]...
  dkindex dot   <doc.xml> [--idref ATTR]...
  dkindex build <doc.xml> --out <index.dki> [--req LABEL=K]... [--uniform K]
                [--queries <file>] [--idref ATTR]...
  dkindex info  <index.dki>
  dkindex query <index.dki> <path-expression>
  dkindex twig  <doc.xml> <twig-query> [--idref ATTR]...
  dkindex add-edge <index.dki> <from-id> <to-id> --out <index2.dki>
  dkindex add-file <index.dki> <doc.xml> --out <index2.dki> [--idref ATTR]...
  dkindex tune  <index.dki> --queries <file> --out <index2.dki>

global flags:
  --metrics <path>   record hot-path telemetry across the command and write
                     a JSON snapshot to <path> on success";

/// Top-level error type: every failure is reported as a message.
pub type CliError = String;

/// Dispatch a full argument vector (without the program name).
///
/// The global `--metrics <path>` flag is handled here, before the command is
/// chosen: the telemetry recorder is reset and enabled for the duration of
/// the command, and the resulting snapshot is written to `<path>` as JSON
/// when the command succeeds. Telemetry never changes a command's output —
/// only observes it.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let mut args = args.to_vec();
    let metrics_path = extract_metrics_flag(&mut args)?;
    if metrics_path.is_some() {
        telemetry::reset();
        telemetry::enable();
    }
    let result = dispatch_command(&args);
    if let Some(path) = metrics_path {
        telemetry::disable();
        if result.is_ok() {
            fs::write(&path, telemetry::snapshot().to_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    result
}

/// Strip `--metrics <path>` (anywhere in the argument vector) and return the
/// path if the flag was present.
fn extract_metrics_flag(args: &mut Vec<String>) -> Result<Option<String>, CliError> {
    let Some(pos) = args.iter().position(|a| a == "--metrics") else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err("flag --metrics needs a value".to_string());
    }
    let path = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(path))
}

fn dispatch_command(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("stats") => cmd_stats(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("twig") => cmd_twig(&args[1..]),
        Some("add-edge") => cmd_add_edge(&args[1..]),
        Some("add-file") => cmd_add_file(&args[1..]),
        Some("tune") => cmd_tune(&args[1..]),
        Some("--help") | Some("-h") => Ok(format!("{USAGE}\n")),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("missing command".to_string()),
    }
}

/// Positional/flag splitter shared by all commands.
struct Parsed<'a> {
    positional: Vec<&'a str>,
    idrefs: Vec<String>,
    reqs: Vec<(String, usize)>,
    uniform: Option<usize>,
    out: Option<&'a str>,
    queries: Option<&'a str>,
}

fn parse_args<'a>(args: &'a [String]) -> Result<Parsed<'a>, CliError> {
    let mut parsed = Parsed {
        positional: Vec::new(),
        idrefs: Vec::new(),
        reqs: Vec::new(),
        uniform: None,
        out: None,
        queries: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--idref" => parsed
                .idrefs
                .push(next_value(&mut it, "--idref")?.to_string()),
            "--req" => {
                let spec = next_value(&mut it, "--req")?;
                let (label, k) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--req expects LABEL=K, got {spec:?}"))?;
                let k: usize = k
                    .parse()
                    .map_err(|_| format!("--req {label}: K must be a number"))?;
                parsed.reqs.push((label.to_string(), k));
            }
            "--uniform" => {
                parsed.uniform = Some(
                    next_value(&mut it, "--uniform")?
                        .parse()
                        .map_err(|_| "--uniform expects a number".to_string())?,
                )
            }
            "--out" => parsed.out = Some(next_value(&mut it, "--out")?),
            "--queries" => parsed.queries = Some(next_value(&mut it, "--queries")?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            positional => parsed.positional.push(positional),
        }
    }
    Ok(parsed)
}

fn next_value<'a>(
    it: &mut std::slice::Iter<'a, String>,
    flag: &str,
) -> Result<&'a str, CliError> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| format!("flag {flag} needs a value"))
}

/// Read a query-load file: one path expression per line, `#` comments and
/// blank lines ignored.
fn read_query_file(path: &str) -> Result<Vec<PathExpr>, CliError> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut queries: Vec<PathExpr> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        queries.push(parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?);
    }
    Ok(queries)
}

fn load_xml(path: &str, idrefs: &[String]) -> Result<DataGraph, CliError> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut options = GraphOptions::default();
    if !idrefs.is_empty() {
        options.idref_attributes = idrefs.to_vec();
    }
    // Streaming build: O(depth) memory, same graph as the DOM path.
    stream_to_graph(&text, &options).map_err(|e| format!("{path}: {e}"))
}

fn load_index(path: &str) -> Result<(DkIndex, DataGraph), CliError> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    load_dk(&mut bytes.as_slice()).map_err(|e| format!("{path}: {e}"))
}

fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path] = parsed.positional[..] else {
        return Err("stats expects exactly one XML file".to_string());
    };
    let g = load_xml(path, &parsed.idrefs)?;
    let mut out = String::new();
    let _ = writeln!(out, "{}", GraphStats::of(&g));
    let _ = writeln!(out, "top labels:");
    for (name, count) in label_histogram(&g).into_iter().take(10) {
        let _ = writeln!(out, "  {name:<24} {count}");
    }

    // With a query file, exercise the build → query pipeline under the
    // telemetry recorder and append a hot-path report: D(k) construction
    // (requirements mined from the load), then evaluation of every query.
    if let Some(qfile) = parsed.queries {
        let queries = read_query_file(qfile)?;
        let was_enabled = telemetry::is_enabled();
        if !was_enabled {
            telemetry::reset();
            telemetry::enable();
        }
        let dk = {
            let _span = telemetry::Span::start(&telemetry::metrics::PHASE_BUILD_NS);
            DkIndex::build(&g, mine_requirements(&queries))
        };
        {
            let _span = telemetry::Span::start(&telemetry::metrics::PHASE_QUERY_NS);
            let mut evaluator = IndexEvaluator::new(dk.index(), &g);
            for q in &queries {
                evaluator.evaluate(q);
            }
        }
        if !was_enabled {
            telemetry::disable();
        }
        let _ = writeln!(
            out,
            "\ntelemetry (D(k) build + {} queries, {} index nodes):",
            queries.len(),
            dk.size()
        );
        out.push_str(&telemetry::snapshot().render_text());
    }
    Ok(out)
}

fn cmd_dot(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path] = parsed.positional[..] else {
        return Err("dot expects exactly one XML file".to_string());
    };
    let g = load_xml(path, &parsed.idrefs)?;
    Ok(dkindex_graph::dot::to_dot(&g))
}

fn cmd_build(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path] = parsed.positional[..] else {
        return Err("build expects exactly one XML file".to_string());
    };
    let out_path = parsed.out.ok_or("build needs --out <index.dki>")?;
    let g = load_xml(path, &parsed.idrefs)?;

    let mut reqs = match parsed.uniform {
        Some(k) => Requirements::uniform(k),
        None => Requirements::new(),
    };
    for (label, k) in &parsed.reqs {
        reqs.raise(label, *k);
    }
    if let Some(qfile) = parsed.queries {
        let queries = read_query_file(qfile)?;
        let mined = mine_requirements(&queries);
        for (label, k) in mined.iter() {
            reqs.raise(label, k);
        }
        reqs.raise_floor(mined.floor());
    }

    let dk = DkIndex::build(&g, reqs);
    let mut bytes = Vec::new();
    save_dk(&dk, &g, &mut bytes).map_err(|e| format!("serialize: {e}"))?;
    fs::write(out_path, &bytes).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    Ok(format!(
        "indexed {} data nodes into {} index nodes -> {out_path} ({} bytes)\n",
        g.node_count(),
        dk.size(),
        bytes.len()
    ))
}

fn cmd_info(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path] = parsed.positional[..] else {
        return Err("info expects exactly one index file".to_string());
    };
    let (dk, g) = load_index(path)?;
    let mut out = String::new();
    let _ = writeln!(out, "data graph: {}", GraphStats::of(&g));
    let _ = write!(out, "{}", dkindex_core::IndexStats::of(dk.index(), &g));
    Ok(out)
}

fn cmd_query(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path, expr_text] = parsed.positional[..] else {
        return Err("query expects <index.dki> <path-expression>".to_string());
    };
    let (dk, g) = load_index(path)?;
    let expr = parse(expr_text).map_err(|e| e.to_string())?;
    let out = IndexEvaluator::new(dk.index(), &g).evaluate(&expr);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "{} match(es), cost {} ({} index + {} data visits){}",
        out.matches.len(),
        out.cost.total(),
        out.cost.index_visits,
        out.cost.data_visits,
        if out.validated { ", validated" } else { "" }
    );
    for n in out.matches.iter().take(20) {
        let _ = writeln!(text, "  node {} ({})", n.index(), g.label_name(*n));
    }
    if out.matches.len() > 20 {
        let _ = writeln!(text, "  ... and {} more", out.matches.len() - 20);
    }
    Ok(text)
}

fn cmd_twig(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path, twig_text] = parsed.positional[..] else {
        return Err("twig expects <doc.xml> <twig-query>".to_string());
    };
    let g = load_xml(path, &parsed.idrefs)?;
    let twig = parse_twig(twig_text).map_err(|e| e.to_string())?;
    let fb = FbIndex::build(&g);
    let (matches, visited) = fb.evaluate_twig(&twig);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "{} match(es) via F&B-index ({} states, {} visits)",
        matches.len(),
        fb.size(),
        visited
    );
    for n in matches.iter().take(20) {
        let _ = writeln!(text, "  node {} ({})", n.index(), g.label_name(*n));
    }
    Ok(text)
}

fn cmd_add_edge(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path, from, to] = parsed.positional[..] else {
        return Err("add-edge expects <index.dki> <from-id> <to-id>".to_string());
    };
    let out_path = parsed.out.ok_or("add-edge needs --out <index.dki>")?;
    let (mut dk, mut g) = load_index(path)?;
    let from: usize = from.parse().map_err(|_| "from-id must be a number")?;
    let to: usize = to.parse().map_err(|_| "to-id must be a number")?;
    if from >= g.node_count() || to >= g.node_count() {
        return Err(format!(
            "node ids must be < {} (data node count)",
            g.node_count()
        ));
    }
    let outcome = dk.add_edge(&mut g, NodeId::from_index(from), NodeId::from_index(to));
    let mut bytes = Vec::new();
    save_dk(&dk, &g, &mut bytes).map_err(|e| format!("serialize: {e}"))?;
    fs::write(out_path, &bytes).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    Ok(format!(
        "added edge {from} -> {to}; target similarity now {}, {} node(s) lowered -> {out_path}\n",
        outcome.new_similarity, outcome.lowered
    ))
}

fn cmd_add_file(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [index_path, doc_path] = parsed.positional[..] else {
        return Err("add-file expects <index.dki> <doc.xml>".to_string());
    };
    let out_path = parsed.out.ok_or("add-file needs --out <index.dki>")?;
    let (mut dk, mut g) = load_index(index_path)?;
    let sub = load_xml(doc_path, &parsed.idrefs)?;
    let before = g.node_count();
    dk.add_subgraph(&mut g, &sub);
    let mut bytes = Vec::new();
    save_dk(&dk, &g, &mut bytes).map_err(|e| format!("serialize: {e}"))?;
    fs::write(out_path, &bytes).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    Ok(format!(
        "inserted {} new data nodes (now {}); index has {} nodes -> {out_path}\n",
        g.node_count() - before,
        g.node_count(),
        dk.size()
    ))
}

fn cmd_tune(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [index_path] = parsed.positional[..] else {
        return Err("tune expects exactly one index file".to_string());
    };
    let out_path = parsed.out.ok_or("tune needs --out <index.dki>")?;
    let qfile = parsed.queries.ok_or("tune needs --queries <file>")?;
    let (mut dk, g) = load_index(index_path)?;
    let queries = read_query_file(qfile)?;
    let mined = mine_requirements(&queries);
    let before = dk.size();
    let report = if mined.max_requirement() >= dk.requirements().max_requirement() {
        // Load got deeper (or equal): merge and promote.
        let mut merged = dk.requirements().clone();
        for (label, k) in mined.iter() {
            merged.raise(label, k);
        }
        merged.raise_floor(mined.floor());
        dk.set_requirements_public(merged);
        let splits = dk.promote_to_requirements(&g);
        format!("promoted: {splits} extent splits, size {before} -> {}", dk.size())
    } else {
        // Load got shallower: demote to the mined requirements.
        let saved = dk.demote(mined);
        format!("demoted: {saved} index nodes merged, size {before} -> {}", dk.size())
    };
    let mut bytes = Vec::new();
    save_dk(&dk, &g, &mut bytes).map_err(|e| format!("serialize: {e}"))?;
    fs::write(out_path, &bytes).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    Ok(format!("{report} -> {out_path}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const DOC: &str = r#"
        <movieDB>
          <director id="d1"><name/><movie id="m1"><title/></movie></director>
          <actor id="a1" idref="m1"><name/></actor>
        </movieDB>"#;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "dkindex-cli-test-{tag}-{}",
                std::process::id()
            ));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn file(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn run(args: &[&str]) -> Result<String, CliError> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn write_doc(dir: &TempDir) -> PathBuf {
        let p = dir.file("doc.xml");
        fs::write(&p, DOC).unwrap();
        p
    }

    #[test]
    fn stats_reports_shape() {
        let dir = TempDir::new("stats");
        let doc = write_doc(&dir);
        let out = run(&["stats", doc.to_str().unwrap()]).unwrap();
        assert!(out.contains("nodes"));
        assert!(out.contains("refs"));
        assert!(out.contains("name"));
    }

    #[test]
    fn dot_emits_digraph() {
        let dir = TempDir::new("dot");
        let doc = write_doc(&dir);
        let out = run(&["dot", doc.to_str().unwrap()]).unwrap();
        assert!(out.starts_with("digraph"));
        assert!(out.contains("style=dashed")); // the idref edge
    }

    #[test]
    fn build_info_query_round_trip() {
        let dir = TempDir::new("biq");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        let built = run(&[
            "build",
            doc.to_str().unwrap(),
            "--out",
            idx.to_str().unwrap(),
            "--req",
            "title=2",
        ])
        .unwrap();
        assert!(built.contains("index nodes"));

        let info = run(&["info", idx.to_str().unwrap()]).unwrap();
        assert!(info.contains("compression"));
        assert!(info.contains("title"));

        let q = run(&["query", idx.to_str().unwrap(), "director.movie.title"]).unwrap();
        assert!(q.contains("1 match(es)"), "{q}");
        assert!(!q.contains("validated"), "title=2 must be sound: {q}");
    }

    #[test]
    fn build_mines_queries_file() {
        let dir = TempDir::new("mine");
        let doc = write_doc(&dir);
        let queries = dir.file("load.txt");
        fs::write(&queries, "# comment\ndirector.movie.title\n\nactor.name\n").unwrap();
        let idx = dir.file("index.dki");
        run(&[
            "build",
            doc.to_str().unwrap(),
            "--out",
            idx.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
        ])
        .unwrap();
        let info = run(&["info", idx.to_str().unwrap()]).unwrap();
        assert!(info.contains("title"));
        let q = run(&["query", idx.to_str().unwrap(), "director.movie.title"]).unwrap();
        assert!(!q.contains("validated"));
    }

    #[test]
    fn add_edge_updates_and_persists() {
        let dir = TempDir::new("edge");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        run(&[
            "build",
            doc.to_str().unwrap(),
            "--out",
            idx.to_str().unwrap(),
            "--uniform",
            "2",
        ])
        .unwrap();
        let idx2 = dir.file("index2.dki");
        let out = run(&[
            "add-edge",
            idx.to_str().unwrap(),
            "2",
            "4",
            "--out",
            idx2.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("added edge 2 -> 4"));
        // The updated index still loads and answers.
        let q = run(&["query", idx2.to_str().unwrap(), "movie"]).unwrap();
        assert!(q.contains("match(es)"));
    }

    #[test]
    fn add_file_grows_index() {
        let dir = TempDir::new("addfile");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        run(&["build", doc.to_str().unwrap(), "--out", idx.to_str().unwrap(), "--uniform", "1"]).unwrap();
        let extra = dir.file("extra.xml");
        fs::write(&extra, "<archive><movie><title/></movie></archive>").unwrap();
        let idx2 = dir.file("index2.dki");
        let out = run(&[
            "add-file",
            idx.to_str().unwrap(),
            extra.to_str().unwrap(),
            "--out",
            idx2.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("inserted 3 new data nodes"), "{out}");
        let q = run(&["query", idx2.to_str().unwrap(), "archive.movie.title"]).unwrap();
        assert!(q.contains("1 match(es)"), "{q}");
    }

    #[test]
    fn twig_command_answers_branching_queries() {
        let dir = TempDir::new("twig");
        let doc = write_doc(&dir);
        let out = run(&["twig", doc.to_str().unwrap(), "director[movie]/name"]).unwrap();
        assert!(out.contains("1 match(es)"), "{out}");
    }

    #[test]
    fn tune_promotes_then_demotes() {
        let dir = TempDir::new("tune");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        run(&["build", doc.to_str().unwrap(), "--out", idx.to_str().unwrap()]).unwrap();

        // Deep load: promote.
        let deep = dir.file("deep.txt");
        fs::write(&deep, "director.movie.title\n").unwrap();
        let idx2 = dir.file("index2.dki");
        let out = run(&[
            "tune", idx.to_str().unwrap(),
            "--queries", deep.to_str().unwrap(),
            "--out", idx2.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("promoted"), "{out}");
        let q = run(&["query", idx2.to_str().unwrap(), "director.movie.title"]).unwrap();
        assert!(!q.contains("validated"), "{q}");

        // Shallow load: demote.
        let shallow = dir.file("shallow.txt");
        fs::write(&shallow, "name\n").unwrap();
        let idx3 = dir.file("index3.dki");
        let out = run(&[
            "tune", idx2.to_str().unwrap(),
            "--queries", shallow.to_str().unwrap(),
            "--out", idx3.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("demoted"), "{out}");
    }

    /// The telemetry recorder is process-global and tests run on parallel
    /// threads; tests that toggle it serialize here.
    fn telemetry_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        LOCK.get_or_init(|| std::sync::Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn stats_with_queries_appends_telemetry_report() {
        let _guard = telemetry_test_lock();
        let dir = TempDir::new("statstel");
        let doc = write_doc(&dir);
        let queries = dir.file("load.txt");
        fs::write(&queries, "director.movie.title\nmovie.title\n").unwrap();
        let out = run(&[
            "stats",
            doc.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("nodes"), "{out}"); // plain stats still present
        assert!(out.contains("telemetry"), "{out}");
        assert!(out.contains("eval.queries"), "{out}");
        assert!(out.contains("dk.constructions"), "{out}");
        assert!(out.contains("phase.build_ns"), "{out}");
        assert!(out.contains("phase.query_ns"), "{out}");
    }

    #[test]
    fn metrics_flag_writes_snapshot_and_leaves_output_unchanged() {
        let _guard = telemetry_test_lock();
        let dir = TempDir::new("metrics");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        let plain = run(&[
            "build",
            doc.to_str().unwrap(),
            "--out",
            idx.to_str().unwrap(),
            "--uniform",
            "1",
        ])
        .unwrap();

        let idx2 = dir.file("index2.dki");
        let metrics = dir.file("METRICS.json");
        let recorded = run(&[
            "build",
            doc.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
            "--out",
            idx2.to_str().unwrap(),
            "--uniform",
            "1",
        ])
        .unwrap();
        // Telemetry observes; it must not change what the command reports
        // (up to the differing output path) or builds.
        assert_eq!(
            plain.replace(idx.to_str().unwrap(), "X"),
            recorded.replace(idx2.to_str().unwrap(), "X")
        );
        assert_eq!(fs::read(&idx).unwrap(), fs::read(&idx2).unwrap());

        let json = fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("\"counters\""), "{json}");
        assert!(json.contains("\"histograms\""), "{json}");
        assert!(json.contains("\"dk.constructions\""), "{json}");
        assert!(!telemetry::is_enabled());
    }

    #[test]
    fn metrics_flag_requires_a_value() {
        let err = run(&["build", "doc.xml", "--metrics"]).unwrap_err();
        assert!(err.contains("--metrics"), "{err}");
    }

    #[test]
    fn helpful_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&["frobnicate"]).is_err());
        assert!(run(&["build", "nope.xml"]).unwrap_err().contains("--out"));
        assert!(run(&["query", "missing.dki", "a.b"])
            .unwrap_err()
            .contains("missing.dki"));
        let dir = TempDir::new("err");
        let doc = write_doc(&dir);
        assert!(run(&["build", doc.to_str().unwrap(), "--out", "/x", "--req", "bad"])
            .unwrap_err()
            .contains("LABEL=K"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["--help"]).unwrap();
        assert!(out.contains("usage:"));
    }
}
