//! Command implementations for the `dkindex` binary. Each command returns
//! its textual output so the test suite can drive the full CLI in-process.
//!
//! Failures are typed ([`CliError`]) and each class maps to a distinct exit
//! code (see [`CliError::exit_code`]); no user input — malformed flags,
//! unreadable files, corrupt indexes, hostile XML — reaches a panic.

use dkindex_core::audit::{audit_dk, AuditConfig, Severity};
use dkindex_core::snapshot::{self, load_index_bytes, save_snapshot_file, snapshot_bytes};
use dkindex_core::wal::{self, WalRecord, WalTail, WalWriter};
use dkindex_core::{
    apply_serial, mine_requirements, DkIndex, DkServer, FbIndex, IndexEvaluator, Requirements,
    ServeConfig, ServeError, ServeOp,
};
use dkindex_graph::stats::{label_histogram, GraphStats};
use dkindex_graph::{DataGraph, LabeledGraph, NodeId};
use dkindex_pathexpr::{parse, parse_twig, PathExpr};
use dkindex_server::{ConnectError, ErrorCode, Frame, NetClient, NetConfig, NetServer};
use dkindex_telemetry as telemetry;
use dkindex_xml::{stream_to_graph, GraphOptions};
use std::fmt::Write as _;
use std::fs;

/// CLI usage text.
pub const USAGE: &str = "\
usage:
  dkindex stats <doc.xml> [--queries <file>] [--idref ATTR]...
  dkindex dot   <doc.xml> [--idref ATTR]...
  dkindex build <doc.xml> --out <index.dki> [--req LABEL=K]... [--uniform K]
                [--queries <file>] [--idref ATTR]...
  dkindex info  <index.dki>
  dkindex query <index.dki> <path-expression> [--budget N]
  dkindex twig  <doc.xml> <twig-query> [--idref ATTR]...
  dkindex add-edge <index.dki> <from-id> <to-id> --out <index2.dki>
                [--wal <file.wal>]
  dkindex add-file <index.dki> <doc.xml> --out <index2.dki> [--idref ATTR]...
  dkindex tune  <index.dki> --queries <file> --out <index2.dki>
  dkindex snapshot <index.dki> --out <snap.dki> [--wal <file.wal>]
  dkindex recover  <snap.dki> --out <fixed.dki> [--wal <file.wal>]
  dkindex doctor   <index.dki> [--wal <file.wal>]
  dkindex serve <index.dki> --queries <file> [--threads N] [--updates N]
                [--batch N] [--rounds N] [--tune-interval N] [--tune-window N]
  dkindex serve <index.dki> --listen <addr> [--workers N] [--accept-queue N]
                [--staleness N] [--budget N] [--batch N] [--duration-ms N]
                [--wal <file.wal>] [--tune-interval N] [--tune-window N]
  dkindex client <addr> [--ping] [--query <expr> [--budget N] [--rounds N]]
                [--update FROM:TO] [--stats]

global flags:
  --metrics <path>   record hot-path telemetry across the command and write
                     a JSON snapshot to <path> on success

exit codes:
  0 success   2 usage/query syntax   3 I/O   4 corrupt input
  5 doctor found corruption          6 query aborted (budget)
  7 serve maintenance thread died    8 request shed (retry later)";

/// Top-level error type: every failure class is distinguishable by the
/// caller, and each maps to its own process exit code.
#[derive(Debug)]
pub enum CliError {
    /// Malformed command line: unknown command or flag, missing argument,
    /// unparseable number or `LABEL=K` spec.
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The path the operation failed on.
        path: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// An input file was readable but its content is malformed — hostile
    /// XML, a corrupt snapshot or WAL, a truncated legacy index.
    Invalid {
        /// The offending file.
        path: String,
        /// What was wrong with it.
        message: String,
    },
    /// A path expression or twig query failed to parse.
    Query(String),
    /// `doctor` found invariant violations that make answers untrustworthy.
    Unsound {
        /// Number of corruption-severity findings.
        corruptions: usize,
        /// The rendered report.
        report: String,
    },
    /// A bounded query exhausted its visit budget.
    Aborted(String),
    /// The serve maintenance thread died before the run completed.
    Serve(ServeError),
    /// The server shed the request under overload or drain
    /// (docs/PROTOCOL.md §5.2): nothing was executed, retry after backoff.
    Shed(String),
}

impl CliError {
    /// The process exit code for this failure class.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) | CliError::Query(_) => 2,
            CliError::Io { .. } => 3,
            CliError::Invalid { .. } => 4,
            CliError::Unsound { .. } => 5,
            CliError::Aborted(_) => 6,
            CliError::Serve(_) => 7,
            CliError::Shed(_) => 8,
        }
    }

    fn usage(message: impl Into<String>) -> CliError {
        CliError::Usage(message.into())
    }

    fn io(path: impl Into<String>, source: std::io::Error) -> CliError {
        CliError::Io { path: path.into(), source }
    }

    fn invalid(path: impl Into<String>, message: impl ToString) -> CliError {
        CliError::Invalid {
            path: path.into(),
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Query(m) | CliError::Aborted(m) => write!(f, "{m}"),
            CliError::Io { path, source } => write!(f, "cannot access {path}: {source}"),
            CliError::Invalid { path, message } => write!(f, "{path}: {message}"),
            CliError::Unsound { corruptions, report } => {
                write!(f, "index is unsound ({corruptions} corruption finding(s))\n{report}")
            }
            CliError::Serve(e) => write!(f, "serve failed: {e}"),
            CliError::Shed(m) => write!(f, "request shed: {m}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Serve(source) => Some(source),
            _ => None,
        }
    }
}

/// Dispatch a full argument vector (without the program name).
///
/// The global `--metrics <path>` flag is handled here, before the command is
/// chosen: the telemetry recorder is reset and enabled for the duration of
/// the command, and the resulting snapshot is written to `<path>` as JSON
/// when the command succeeds. Telemetry never changes a command's output —
/// only observes it.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let mut args = args.to_vec();
    let metrics_path = extract_metrics_flag(&mut args)?;
    if metrics_path.is_some() {
        telemetry::reset();
        telemetry::enable();
    }
    let result = dispatch_command(&args);
    if let Some(path) = metrics_path {
        telemetry::disable();
        if result.is_ok() {
            fs::write(&path, telemetry::snapshot().to_json())
                .map_err(|e| CliError::io(&path, e))?;
        }
    }
    result
}

/// Strip `--metrics <path>` (anywhere in the argument vector) and return the
/// path if the flag was present.
fn extract_metrics_flag(args: &mut Vec<String>) -> Result<Option<String>, CliError> {
    let Some(pos) = args.iter().position(|a| a == "--metrics") else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(CliError::usage("flag --metrics needs a value"));
    }
    let path = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(path))
}

fn dispatch_command(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("stats") => cmd_stats(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("twig") => cmd_twig(&args[1..]),
        Some("add-edge") => cmd_add_edge(&args[1..]),
        Some("add-file") => cmd_add_file(&args[1..]),
        Some("tune") => cmd_tune(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some("recover") => cmd_recover(&args[1..]),
        Some("doctor") => cmd_doctor(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("--help") | Some("-h") => Ok(format!("{USAGE}\n")),
        Some(other) => Err(CliError::usage(format!("unknown command {other:?}"))),
        None => Err(CliError::usage("missing command")),
    }
}

/// Positional/flag splitter shared by all commands.
struct Parsed<'a> {
    positional: Vec<&'a str>,
    idrefs: Vec<String>,
    reqs: Vec<(String, usize)>,
    uniform: Option<usize>,
    out: Option<&'a str>,
    queries: Option<&'a str>,
    wal: Option<&'a str>,
    budget: Option<u64>,
    threads: Option<usize>,
    updates: Option<usize>,
    batch: Option<usize>,
    rounds: Option<usize>,
    listen: Option<&'a str>,
    workers: Option<usize>,
    accept_queue: Option<usize>,
    staleness: Option<u64>,
    duration_ms: Option<u64>,
    tune_interval: Option<usize>,
    tune_window: Option<usize>,
    query: Option<&'a str>,
    update: Option<&'a str>,
    ping: bool,
    stats: bool,
}

fn parse_args<'a>(args: &'a [String]) -> Result<Parsed<'a>, CliError> {
    let mut parsed = Parsed {
        positional: Vec::new(),
        idrefs: Vec::new(),
        reqs: Vec::new(),
        uniform: None,
        out: None,
        queries: None,
        wal: None,
        budget: None,
        threads: None,
        updates: None,
        batch: None,
        rounds: None,
        listen: None,
        workers: None,
        accept_queue: None,
        staleness: None,
        duration_ms: None,
        tune_interval: None,
        tune_window: None,
        query: None,
        update: None,
        ping: false,
        stats: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--idref" => parsed
                .idrefs
                .push(next_value(&mut it, "--idref")?.to_string()),
            "--req" => {
                let spec = next_value(&mut it, "--req")?;
                let (label, k) = spec
                    .split_once('=')
                    .ok_or_else(|| CliError::usage(format!("--req expects LABEL=K, got {spec:?}")))?;
                let k: usize = k
                    .parse()
                    .map_err(|_| CliError::usage(format!("--req {label}: K must be a number")))?;
                parsed.reqs.push((label.to_string(), k));
            }
            "--uniform" => {
                parsed.uniform = Some(
                    next_value(&mut it, "--uniform")?
                        .parse()
                        .map_err(|_| CliError::usage("--uniform expects a number"))?,
                )
            }
            "--budget" => {
                parsed.budget = Some(
                    next_value(&mut it, "--budget")?
                        .parse()
                        .map_err(|_| CliError::usage("--budget expects a number"))?,
                )
            }
            "--threads" => {
                parsed.threads = Some(
                    next_value(&mut it, "--threads")?
                        .parse()
                        .map_err(|_| CliError::usage("--threads expects a number"))?,
                )
            }
            "--updates" => {
                parsed.updates = Some(
                    next_value(&mut it, "--updates")?
                        .parse()
                        .map_err(|_| CliError::usage("--updates expects a number"))?,
                )
            }
            "--batch" => {
                parsed.batch = Some(
                    next_value(&mut it, "--batch")?
                        .parse()
                        .map_err(|_| CliError::usage("--batch expects a number"))?,
                )
            }
            "--rounds" => {
                parsed.rounds = Some(
                    next_value(&mut it, "--rounds")?
                        .parse()
                        .map_err(|_| CliError::usage("--rounds expects a number"))?,
                )
            }
            "--workers" => {
                parsed.workers = Some(
                    next_value(&mut it, "--workers")?
                        .parse()
                        .map_err(|_| CliError::usage("--workers expects a number"))?,
                )
            }
            "--accept-queue" => {
                parsed.accept_queue = Some(
                    next_value(&mut it, "--accept-queue")?
                        .parse()
                        .map_err(|_| CliError::usage("--accept-queue expects a number"))?,
                )
            }
            "--staleness" => {
                parsed.staleness = Some(
                    next_value(&mut it, "--staleness")?
                        .parse()
                        .map_err(|_| CliError::usage("--staleness expects a number"))?,
                )
            }
            "--duration-ms" => {
                parsed.duration_ms = Some(
                    next_value(&mut it, "--duration-ms")?
                        .parse()
                        .map_err(|_| CliError::usage("--duration-ms expects a number"))?,
                )
            }
            "--tune-interval" => {
                parsed.tune_interval = Some(
                    next_value(&mut it, "--tune-interval")?
                        .parse()
                        .map_err(|_| CliError::usage("--tune-interval expects a number"))?,
                )
            }
            "--tune-window" => {
                parsed.tune_window = Some(
                    next_value(&mut it, "--tune-window")?
                        .parse()
                        .map_err(|_| CliError::usage("--tune-window expects a number"))?,
                )
            }
            "--out" => parsed.out = Some(next_value(&mut it, "--out")?),
            "--queries" => parsed.queries = Some(next_value(&mut it, "--queries")?),
            "--wal" => parsed.wal = Some(next_value(&mut it, "--wal")?),
            "--listen" => parsed.listen = Some(next_value(&mut it, "--listen")?),
            "--query" => parsed.query = Some(next_value(&mut it, "--query")?),
            "--update" => parsed.update = Some(next_value(&mut it, "--update")?),
            "--ping" => parsed.ping = true,
            "--stats" => parsed.stats = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::usage(format!("unknown flag {flag:?}")))
            }
            positional => parsed.positional.push(positional),
        }
    }
    Ok(parsed)
}

fn next_value<'a>(
    it: &mut std::slice::Iter<'a, String>,
    flag: &str,
) -> Result<&'a str, CliError> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| CliError::usage(format!("flag {flag} needs a value")))
}

/// Read a query-load file: one path expression per line, `#` comments and
/// blank lines ignored.
fn read_query_file(path: &str) -> Result<Vec<PathExpr>, CliError> {
    let text = fs::read_to_string(path).map_err(|e| CliError::io(path, e))?;
    let mut queries: Vec<PathExpr> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        queries.push(
            parse(line).map_err(|e| CliError::Query(format!("{path}:{}: {e}", lineno + 1)))?,
        );
    }
    Ok(queries)
}

fn load_xml(path: &str, idrefs: &[String]) -> Result<DataGraph, CliError> {
    let text = fs::read_to_string(path).map_err(|e| CliError::io(path, e))?;
    let mut options = GraphOptions::default();
    if !idrefs.is_empty() {
        options.idref_attributes = idrefs.to_vec();
    }
    // Streaming build: O(depth) memory, same graph as the DOM path.
    stream_to_graph(&text, &options).map_err(|e| CliError::invalid(path, e))
}

/// Load an index of either format (checksummed `DKSN` snapshot or legacy
/// bare stream), sniffing the magic. Strict: corruption is a typed error,
/// never a panic (see `recover` for the graceful path).
fn load_index(path: &str) -> Result<(DkIndex, DataGraph), CliError> {
    let bytes = fs::read(path).map_err(|e| CliError::io(path, e))?;
    let (dk, g, _) = load_index_bytes(&bytes).map_err(|e| CliError::invalid(path, e))?;
    Ok((dk, g))
}

/// Load an index for *serving*: a checksummed snapshot with a damaged-but-
/// recoverable section (e.g. a corrupt INDX payload whose index is rebuilt
/// deterministically from the graph) still answers queries. Only genuinely
/// unrecoverable damage is a typed `Invalid` error. Using this in `query`
/// keeps failure classes honest: a `--budget` abort during evaluation over a
/// recovered snapshot is exit 6 (aborted), not exit 4 (corrupt).
fn load_index_graceful(path: &str) -> Result<(DkIndex, DataGraph), CliError> {
    let bytes = fs::read(path).map_err(|e| CliError::io(path, e))?;
    if bytes.starts_with(snapshot::MAGIC) {
        let (dk, g, _) = snapshot::load_with_recovery(&bytes).map_err(|e| CliError::invalid(path, e))?;
        Ok((dk, g))
    } else {
        let (dk, g, _) = load_index_bytes(&bytes).map_err(|e| CliError::invalid(path, e))?;
        Ok((dk, g))
    }
}

/// Serialize `dk` + `g` as a checksummed snapshot and write it to `path`.
fn save_index(dk: &DkIndex, g: &DataGraph, path: &str) -> Result<usize, CliError> {
    let bytes = snapshot_bytes(dk, g);
    fs::write(path, &bytes).map_err(|e| CliError::io(path, e))?;
    Ok(bytes.len())
}

/// Replay a WAL file (if given) into `dk`/`g`, returning a human-readable
/// one-liner about what was applied.
fn replay_wal_file(
    dk: &mut DkIndex,
    g: &mut DataGraph,
    path: &str,
) -> Result<String, CliError> {
    let bytes = fs::read(path).map_err(|e| CliError::io(path, e))?;
    let report = wal::replay(dk, g, &bytes).map_err(|e| CliError::invalid(path, e))?;
    let torn = match report.tail {
        WalTail::Clean => "",
        WalTail::Torn { .. } => " (torn tail truncated)",
    };
    Ok(format!("replayed {} WAL record(s) from {path}{torn}", report.applied))
}

fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path] = parsed.positional[..] else {
        return Err(CliError::usage("stats expects exactly one XML file"));
    };
    let g = load_xml(path, &parsed.idrefs)?;
    let mut out = String::new();
    let _ = writeln!(out, "{}", GraphStats::of(&g));
    let _ = writeln!(out, "top labels:");
    for (name, count) in label_histogram(&g).into_iter().take(10) {
        let _ = writeln!(out, "  {name:<24} {count}");
    }

    // With a query file, exercise the build → query pipeline under the
    // telemetry recorder and append a hot-path report: D(k) construction
    // (requirements mined from the load), then evaluation of every query.
    if let Some(qfile) = parsed.queries {
        let queries = read_query_file(qfile)?;
        let was_enabled = telemetry::is_enabled();
        if !was_enabled {
            telemetry::reset();
            telemetry::enable();
        }
        let dk = {
            let _span = telemetry::Span::start(&telemetry::metrics::PHASE_BUILD_NS);
            DkIndex::build(&g, mine_requirements(&queries))
        };
        {
            let _span = telemetry::Span::start(&telemetry::metrics::PHASE_QUERY_NS);
            let mut evaluator = IndexEvaluator::new(dk.index(), &g);
            for q in &queries {
                evaluator.evaluate(q);
            }
        }
        if !was_enabled {
            telemetry::disable();
        }
        let _ = writeln!(
            out,
            "\ntelemetry (D(k) build + {} queries, {} index nodes):",
            queries.len(),
            dk.size()
        );
        out.push_str(&telemetry::snapshot().render_text());
    }
    Ok(out)
}

fn cmd_dot(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path] = parsed.positional[..] else {
        return Err(CliError::usage("dot expects exactly one XML file"));
    };
    let g = load_xml(path, &parsed.idrefs)?;
    Ok(dkindex_graph::dot::to_dot(&g))
}

fn cmd_build(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path] = parsed.positional[..] else {
        return Err(CliError::usage("build expects exactly one XML file"));
    };
    let out_path = parsed
        .out
        .ok_or_else(|| CliError::usage("build needs --out <index.dki>"))?;
    let g = load_xml(path, &parsed.idrefs)?;

    let mut reqs = match parsed.uniform {
        Some(k) => Requirements::uniform(k),
        None => Requirements::new(),
    };
    for (label, k) in &parsed.reqs {
        reqs.raise(label, *k);
    }
    if let Some(qfile) = parsed.queries {
        let queries = read_query_file(qfile)?;
        let mined = mine_requirements(&queries);
        for (label, k) in mined.iter() {
            reqs.raise(label, k);
        }
        reqs.raise_floor(mined.floor());
    }

    let dk = DkIndex::build(&g, reqs);
    let bytes = save_index(&dk, &g, out_path)?;
    Ok(format!(
        "indexed {} data nodes into {} index nodes -> {out_path} ({bytes} bytes)\n",
        g.node_count(),
        dk.size(),
    ))
}

fn cmd_info(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path] = parsed.positional[..] else {
        return Err(CliError::usage("info expects exactly one index file"));
    };
    let (dk, g) = load_index(path)?;
    let mut out = String::new();
    let _ = writeln!(out, "data graph: {}", GraphStats::of(&g));
    let _ = write!(out, "{}", dkindex_core::IndexStats::of(dk.index(), &g));
    Ok(out)
}

fn cmd_query(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path, expr_text] = parsed.positional[..] else {
        return Err(CliError::usage("query expects <index.dki> <path-expression>"));
    };
    let (dk, g) = load_index_graceful(path)?;
    let expr = parse(expr_text).map_err(|e| CliError::Query(e.to_string()))?;
    let mut evaluator = IndexEvaluator::new(dk.index(), &g);
    let out = match parsed.budget {
        // Bounded execution: a typed abort, never a partial answer.
        Some(budget) => evaluator
            .evaluate_bounded(&expr, budget)
            .map_err(|e| CliError::Aborted(e.to_string()))?,
        None => evaluator.evaluate(&expr),
    };
    let mut text = String::new();
    let _ = writeln!(
        text,
        "{} match(es), cost {} ({} index + {} data visits){}",
        out.matches.len(),
        out.cost.total(),
        out.cost.index_visits,
        out.cost.data_visits,
        if out.validated { ", validated" } else { "" }
    );
    for n in out.matches.iter().take(20) {
        let _ = writeln!(text, "  node {} ({})", n.index(), g.label_name(*n));
    }
    if out.matches.len() > 20 {
        let _ = writeln!(text, "  ... and {} more", out.matches.len() - 20);
    }
    Ok(text)
}

fn cmd_twig(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path, twig_text] = parsed.positional[..] else {
        return Err(CliError::usage("twig expects <doc.xml> <twig-query>"));
    };
    let g = load_xml(path, &parsed.idrefs)?;
    let twig = parse_twig(twig_text).map_err(|e| CliError::Query(e.to_string()))?;
    let fb = FbIndex::build(&g);
    let (matches, visited) = fb.evaluate_twig(&twig);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "{} match(es) via F&B-index ({} states, {} visits)",
        matches.len(),
        fb.size(),
        visited
    );
    for n in matches.iter().take(20) {
        let _ = writeln!(text, "  node {} ({})", n.index(), g.label_name(*n));
    }
    Ok(text)
}

fn cmd_add_edge(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path, from, to] = parsed.positional[..] else {
        return Err(CliError::usage("add-edge expects <index.dki> <from-id> <to-id>"));
    };
    let out_path = parsed
        .out
        .ok_or_else(|| CliError::usage("add-edge needs --out <index.dki>"))?;
    let (mut dk, mut g) = load_index(path)?;
    let from: usize = from
        .parse()
        .map_err(|_| CliError::usage("from-id must be a number"))?;
    let to: usize = to
        .parse()
        .map_err(|_| CliError::usage("to-id must be a number"))?;
    if from >= g.node_count() || to >= g.node_count() {
        return Err(CliError::usage(format!(
            "node ids must be < {} (data node count)",
            g.node_count()
        )));
    }
    let record = WalRecord::AddEdge {
        from: NodeId::from_index(from),
        to: NodeId::from_index(to),
    };
    // Durability ordering: log the update before applying it, so a crash
    // between the two leaves a WAL that replays to the intended state.
    let mut wal_note = String::new();
    if let Some(wal_path) = parsed.wal {
        let mut writer = if fs::metadata(wal_path).is_ok() {
            WalWriter::open(std::path::Path::new(wal_path))
                .map_err(|e| CliError::invalid(wal_path, e))?
        } else {
            WalWriter::create(std::path::Path::new(wal_path))
                .map_err(|e| CliError::io(wal_path, e))?
        };
        writer
            .append(&record)
            .map_err(|e| CliError::io(wal_path, e))?;
        wal_note = format!("; logged to {wal_path}");
    }
    let outcome = dk.add_edge(&mut g, NodeId::from_index(from), NodeId::from_index(to));
    save_index(&dk, &g, out_path)?;
    Ok(format!(
        "added edge {from} -> {to}; target similarity now {}, {} node(s) lowered -> {out_path}{wal_note}\n",
        outcome.new_similarity, outcome.lowered
    ))
}

fn cmd_add_file(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [index_path, doc_path] = parsed.positional[..] else {
        return Err(CliError::usage("add-file expects <index.dki> <doc.xml>"));
    };
    let out_path = parsed
        .out
        .ok_or_else(|| CliError::usage("add-file needs --out <index.dki>"))?;
    let (mut dk, mut g) = load_index(index_path)?;
    let sub = load_xml(doc_path, &parsed.idrefs)?;
    let before = g.node_count();
    dk.add_subgraph(&mut g, &sub);
    save_index(&dk, &g, out_path)?;
    Ok(format!(
        "inserted {} new data nodes (now {}); index has {} nodes -> {out_path}\n",
        g.node_count() - before,
        g.node_count(),
        dk.size()
    ))
}

fn cmd_tune(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [index_path] = parsed.positional[..] else {
        return Err(CliError::usage("tune expects exactly one index file"));
    };
    let out_path = parsed
        .out
        .ok_or_else(|| CliError::usage("tune needs --out <index.dki>"))?;
    let qfile = parsed
        .queries
        .ok_or_else(|| CliError::usage("tune needs --queries <file>"))?;
    let (mut dk, g) = load_index(index_path)?;
    let queries = read_query_file(qfile)?;
    let mined = mine_requirements(&queries);
    let before = dk.size();
    let report = if mined.max_requirement() >= dk.requirements().max_requirement() {
        // Load got deeper (or equal): merge and promote.
        let mut merged = dk.requirements().clone();
        for (label, k) in mined.iter() {
            merged.raise(label, k);
        }
        merged.raise_floor(mined.floor());
        dk.set_requirements_public(merged);
        let splits = dk.promote_to_requirements(&g);
        format!("promoted: {splits} extent splits, size {before} -> {}", dk.size())
    } else {
        // Load got shallower: demote to the mined requirements.
        let saved = dk.demote(mined);
        format!("demoted: {saved} index nodes merged, size {before} -> {}", dk.size())
    };
    save_index(&dk, &g, out_path)?;
    Ok(format!("{report} -> {out_path}\n"))
}

/// `snapshot`: load an index of either format (optionally replaying a WAL
/// on top) and write it as a checksummed `DKSN` snapshot, atomically.
fn cmd_snapshot(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path] = parsed.positional[..] else {
        return Err(CliError::usage("snapshot expects exactly one index file"));
    };
    let out_path = parsed
        .out
        .ok_or_else(|| CliError::usage("snapshot needs --out <snap.dki>"))?;
    let (mut dk, mut g) = load_index(path)?;
    let mut notes = Vec::new();
    if let Some(wal_path) = parsed.wal {
        notes.push(replay_wal_file(&mut dk, &mut g, wal_path)?);
    }
    save_snapshot_file(&dk, &g, std::path::Path::new(out_path))
        .map_err(|e| CliError::io(out_path, e))?;
    let mut out = String::new();
    for note in notes {
        let _ = writeln!(out, "{note}");
    }
    let _ = writeln!(
        out,
        "snapshot of {} data / {} index nodes -> {out_path}",
        g.node_count(),
        dk.size()
    );
    Ok(out)
}

/// `recover`: gracefully load a (possibly damaged) snapshot — rebuilding
/// the index from the data graph where necessary — optionally replay a WAL,
/// and write a fresh snapshot. Only an unrecoverable file (damaged graph
/// section) fails.
fn cmd_recover(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path] = parsed.positional[..] else {
        return Err(CliError::usage("recover expects exactly one snapshot file"));
    };
    let out_path = parsed
        .out
        .ok_or_else(|| CliError::usage("recover needs --out <fixed.dki>"))?;
    let bytes = fs::read(path).map_err(|e| CliError::io(path, e))?;
    let (mut dk, mut g, recovery) = if bytes.starts_with(snapshot::MAGIC) {
        snapshot::load_with_recovery(&bytes).map_err(|e| CliError::invalid(path, e))?
    } else {
        // Legacy files have no per-section checksums to recover with; a
        // strict read either works or is a typed error.
        let (dk, g, _) = load_index_bytes(&bytes).map_err(|e| CliError::invalid(path, e))?;
        (dk, g, snapshot::Recovery::default())
    };
    let mut out = String::new();
    if recovery.is_intact() {
        let _ = writeln!(out, "snapshot intact");
    } else {
        for note in &recovery.notes {
            let _ = writeln!(out, "recovered: {note}");
        }
    }
    if let Some(wal_path) = parsed.wal {
        let note = replay_wal_file(&mut dk, &mut g, wal_path)?;
        let _ = writeln!(out, "{note}");
    }
    save_snapshot_file(&dk, &g, std::path::Path::new(out_path))
        .map_err(|e| CliError::io(out_path, e))?;
    let _ = writeln!(
        out,
        "{} data / {} index nodes -> {out_path}",
        g.node_count(),
        dk.size()
    );
    Ok(out)
}

/// `doctor`: diagnose without repairing. Loads the file (gracefully for
/// snapshots, so section-level damage is reported rather than fatal), runs
/// the invariant auditor, and exits non-zero exactly when the stored index
/// could return wrong answers. With `--wal` the write-ahead log is
/// inspected too: a torn tail is the normal crash signature (recovery
/// truncates it — exit 0), a damaged *committed* record is corruption
/// (exit 5), and a file that is not a WAL at all is corrupt input
/// (exit 4).
fn cmd_doctor(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [path] = parsed.positional[..] else {
        return Err(CliError::usage("doctor expects exactly one index file"));
    };
    let bytes = fs::read(path).map_err(|e| CliError::io(path, e))?;
    let (dk, g, recovery) = if bytes.starts_with(snapshot::MAGIC) {
        snapshot::load_with_recovery(&bytes).map_err(|e| CliError::invalid(path, e))?
    } else {
        let (dk, g, _) = load_index_bytes(&bytes).map_err(|e| CliError::invalid(path, e))?;
        (dk, g, snapshot::Recovery::default())
    };

    let report = audit_dk(&dk, &g, &AuditConfig::default());
    let mut out = String::new();
    let _ = writeln!(out, "{path}: {} data / {} index nodes", g.node_count(), dk.size());
    for note in &recovery.notes {
        let _ = writeln!(out, "  container: {note}");
    }

    let mut wal_corruptions = 0usize;
    if let Some(wal_path) = parsed.wal {
        let wal_bytes = fs::read(wal_path).map_err(|e| CliError::io(wal_path, e))?;
        let inspection =
            wal::inspect_wal(&wal_bytes).map_err(|e| CliError::invalid(wal_path, e))?;
        let _ = writeln!(
            out,
            "{wal_path}: WAL v{}, {} committed record(s), {} uncommitted",
            inspection.version, inspection.committed, inspection.uncommitted
        );
        match inspection.verdict {
            wal::WalVerdict::Clean => {
                let _ = writeln!(out, "  tail: clean (file ends on the committed prefix)");
            }
            wal::WalVerdict::TornTail { valid_len } => {
                let _ = writeln!(
                    out,
                    "  tail: torn after byte {valid_len} (crash signature; recovery \
                     truncates the unacknowledged tail)"
                );
            }
            wal::WalVerdict::Corrupt { index, offset, reason } => {
                let _ = writeln!(
                    out,
                    "  record {index} at byte {offset} is damaged: {reason} \
                     (bit rot or tampering, not a crash)"
                );
                wal_corruptions = 1;
            }
        }
    }
    out.push_str(&report.render_text());

    // A rebuilt/degraded section is storage corruption even though the
    // in-memory index (post-recovery) audits clean; so is a damaged
    // committed WAL record.
    let corruptions = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Corruption)
        .count()
        + recovery.notes.len()
        + wal_corruptions;
    if corruptions > 0 {
        return Err(CliError::Unsound { corruptions, report: out });
    }
    if report.is_clean() {
        let _ = writeln!(out, "index is healthy");
    } else {
        let _ = writeln!(out, "index is degraded but exact (promotion will restore targets)");
    }
    Ok(out)
}

/// `serve`: drive a mixed concurrent query/update workload through the
/// epoch-published serving layer ([`DkServer`]). `--threads` reader threads
/// evaluate the query file round-robin while the maintenance thread applies
/// `--updates` synthetic edge additions in batches of `--batch`, publishing
/// a fresh epoch per batch. The final published state is checked
/// byte-for-byte against a serial replay of the same op sequence; a
/// mismatch is reported as an unsound index (exit 5).
fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [index_path] = parsed.positional[..] else {
        return Err(CliError::usage("serve expects exactly one index file"));
    };
    if let Some(addr) = parsed.listen {
        return cmd_serve_net(index_path, addr, &parsed);
    }
    let qfile = parsed
        .queries
        .ok_or_else(|| CliError::usage("serve needs --queries <file>"))?;
    let threads = parsed.threads.unwrap_or(2).max(1);
    let updates = parsed.updates.unwrap_or(16);
    let batch = parsed.batch.unwrap_or(8).max(1);
    let rounds = parsed.rounds.unwrap_or(50);

    let (dk, g) = load_index_graceful(index_path)?;
    let queries = read_query_file(qfile)?;
    if queries.is_empty() {
        return Err(CliError::usage(format!("{qfile}: no queries to serve")));
    }
    let mut notes = Vec::new();
    let ops: Vec<ServeOp> = if updates > 0 {
        if dkindex_workload::reference_label_pairs(&g).is_empty() {
            notes.push("no reference edges in the data graph; update stream skipped".to_string());
            Vec::new()
        } else {
            dkindex_workload::generate_update_edges(&g, updates, 0x5EE0)
                .into_iter()
                .map(|(from, to)| ServeOp::AddEdge { from, to })
                .collect()
        }
    } else {
        Vec::new()
    };

    let tune_interval = parsed.tune_interval.unwrap_or(0);
    let tune_window = parsed.tune_window.unwrap_or(64);

    // With live tuning off the op sequence is known up front, so the serial
    // oracle can run first; with tuning on the maintenance thread interleaves
    // its own SetRequirements/Demote ops, so the oracle replays the
    // *recorded* actual sequence after the run instead.
    let (initial_dk, initial_g) = (dk.clone(), g.clone());
    let expected = if tune_interval == 0 {
        let mut serial_dk = dk.clone();
        let mut serial_g = g.clone();
        apply_serial(&mut serial_dk, &mut serial_g, &ops);
        Some(snapshot_bytes(&serial_dk, &serial_g))
    } else {
        None
    };

    let server = DkServer::start(
        g,
        dk,
        ServeConfig {
            max_batch: batch,
            threads,
            tune_interval,
            tune_window,
            record_ops: tune_interval > 0,
            ..ServeConfig::default()
        },
    );
    let mut submit_failure: Option<ServeError> = None;
    let answered = std::thread::scope(|s| {
        let mut workers = Vec::new();
        for r in 0..threads {
            let handle = server.handle();
            let queries = &queries;
            workers.push(s.spawn(move || {
                let mut matches = 0usize;
                for round in 0..rounds {
                    let q = &queries[(r + round) % queries.len()];
                    matches += handle.evaluate(q).matches.len();
                }
                matches
            }));
        }
        for op in &ops {
            if let Err(e) = server.submit(op.clone()) {
                submit_failure = Some(e);
                break;
            }
        }
        workers
            .into_iter()
            .map(|w| w.join().expect("reader thread panicked"))
            .sum::<usize>()
    });
    if let Some(e) = submit_failure {
        return Err(CliError::Serve(e));
    }
    let last_epoch = server.flush().map_err(CliError::Serve)?;
    let recorded = server.recorded_ops();
    let tuning = server.handle().tuning_stats();
    let (final_dk, final_g) = server.shutdown().map_err(CliError::Serve)?;

    let expected = match expected {
        Some(bytes) => bytes,
        None => {
            // Tuning runs always record; an absent recording replays to the
            // initial state, which the comparison below then reports.
            let recorded = recorded.unwrap_or_default();
            let mut serial_dk = initial_dk;
            let mut serial_g = initial_g;
            apply_serial(&mut serial_dk, &mut serial_g, &recorded);
            snapshot_bytes(&serial_dk, &serial_g)
        }
    };
    if snapshot_bytes(&final_dk, &final_g) != expected {
        return Err(CliError::Unsound {
            corruptions: 1,
            report: "concurrent serve diverged from serial replay of the same op sequence"
                .to_string(),
        });
    }
    let mut out = String::new();
    for note in notes {
        let _ = writeln!(out, "{note}");
    }
    if let Some(stats) = tuning {
        let _ = writeln!(
            out,
            "live tuning: {} window(s) mined, {} promotion(s), {} demotion(s)",
            stats.windows, stats.promotions, stats.demotions,
        );
    }
    let _ = writeln!(
        out,
        "served {} quer{} x {rounds} round(s) on {threads} reader thread(s): {answered} match(es)",
        queries.len(),
        if queries.len() == 1 { "y" } else { "ies" },
    );
    let _ = writeln!(
        out,
        "applied {} update(s) in batches of {batch}: {last_epoch} epoch(s) published",
        ops.len(),
    );
    let _ = writeln!(
        out,
        "final index has {} nodes; deterministic vs serial replay: ok",
        final_dk.size()
    );
    Ok(out)
}

/// `serve --listen`: expose the index over the DKNP wire protocol
/// (docs/PROTOCOL.md) on a TCP listener. Runs until `--duration-ms`
/// elapses (or stdin reaches EOF when the flag is absent), then drains
/// gracefully: new connects are refused, established connections get the
/// grace window, every admitted update is applied before exit
/// (PROTOCOL.md §7, docs/OPERATIONS.md).
///
/// With `--wal` the server recovers from the log on start (replaying the
/// committed prefix over the loaded index) and runs with durable
/// acknowledgments: every UPDATE_OK means the op's group commit has been
/// fsynced to the log (PROTOCOL.md §8, OPERATIONS.md recovery runbook).
fn cmd_serve_net(index_path: &str, addr: &str, parsed: &Parsed<'_>) -> Result<String, CliError> {
    let batch = parsed.batch.unwrap_or(8).max(1);
    let cfg = ServeConfig {
        max_batch: batch,
        threads: 1,
        tune_interval: parsed.tune_interval.unwrap_or(0),
        tune_window: parsed.tune_window.unwrap_or(64),
        ..ServeConfig::default()
    };
    let (mut dk, mut g) = load_index_graceful(index_path)?;
    let mut wal_notes = Vec::new();
    let writer = match parsed.wal {
        Some(wal_path) => {
            let wal_file = std::path::Path::new(wal_path);
            if fs::metadata(wal_file).is_ok() {
                // Recover first (replays the committed prefix, ignores the
                // unacknowledged tail), then reopen for appending — the
                // writer truncates the torn tail so new commits extend the
                // acknowledged prefix.
                let note = replay_wal_file(&mut dk, &mut g, wal_path)?;
                wal_notes.push(note);
                WalWriter::open(wal_file).map_err(|e| CliError::invalid(wal_path, e))?
            } else {
                wal_notes.push(format!("created WAL at {wal_path}"));
                WalWriter::create(wal_file).map_err(|e| CliError::io(wal_path, e))?
            }
        }
        None => {
            let server = DkServer::start(g, dk, cfg);
            return serve_net_run(server, addr, parsed, Vec::new());
        }
    };
    let server = DkServer::start_logged(g, dk, cfg, Box::new(writer));
    serve_net_run(server, addr, parsed, wal_notes)
}

/// Shared tail of `serve --listen`: bind, run until the stop condition,
/// drain, and render the run summary.
fn serve_net_run(
    server: DkServer,
    addr: &str,
    parsed: &Parsed<'_>,
    wal_notes: Vec<String>,
) -> Result<String, CliError> {
    let durable = server.is_logged();

    let mut cfg = NetConfig::default();
    if let Some(workers) = parsed.workers {
        cfg.workers = workers;
    }
    if let Some(queue) = parsed.accept_queue {
        cfg.accept_queue = queue;
    }
    if let Some(staleness) = parsed.staleness {
        cfg.staleness_threshold = staleness;
    }
    if let Some(budget) = parsed.budget {
        cfg.default_budget = budget;
    }

    let net = NetServer::start(server, addr, cfg).map_err(|e| CliError::io(addr, e))?;
    // Announced on stderr immediately so scripts binding port 0 can read
    // the real address before the run ends.
    eprintln!("dkindex serve: listening on {} (DKNP v1)", net.local_addr());
    let bound = net.local_addr();

    if let Some(ms) = parsed.duration_ms {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    } else {
        // Foreground mode: serve until the operator closes stdin (^D) or
        // the pipe feeding us ends.
        let mut sink = String::new();
        let _ = std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut sink);
    }

    let shutdown = net.shutdown().map_err(CliError::Serve)?;
    let mut out = String::new();
    for note in wal_notes {
        let _ = writeln!(out, "{note}");
    }
    let _ = writeln!(out, "served on {bound}");
    if durable {
        let _ = writeln!(out, "durable acks: every UPDATE_OK was fsynced to the WAL");
    }
    let _ = writeln!(
        out,
        "drained in {} ms; every admitted update applied",
        shutdown.drain.as_millis()
    );
    let _ = writeln!(
        out,
        "final index has {} nodes over {} data nodes",
        shutdown.index.size(),
        shutdown.data.node_count()
    );
    Ok(out)
}

/// `client`: a DKNP client for smoke tests and operations. Actions run in
/// a fixed order on one connection: `--ping`, then `--query` (repeated
/// `--rounds` times), then `--update FROM:TO`, then `--stats`; with no
/// action flags it just performs the handshake and one ping. Server-side
/// refusals map onto the documented exit codes: a typed SHED is exit 8
/// (retry later, PROTOCOL.md §5.2), bad query text is 2, an exhausted
/// budget is 6, protocol-level rejections are 4.
fn cmd_client(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    let [addr] = parsed.positional[..] else {
        return Err(CliError::usage("client expects exactly one server address"));
    };
    let update = parsed
        .update
        .map(|spec| -> Result<(u64, u64), CliError> {
            let (from, to) = spec
                .split_once(':')
                .ok_or_else(|| CliError::usage(format!("--update expects FROM:TO, got {spec:?}")))?;
            let from = from
                .parse()
                .map_err(|_| CliError::usage("--update FROM must be a number"))?;
            let to = to
                .parse()
                .map_err(|_| CliError::usage("--update TO must be a number"))?;
            Ok((from, to))
        })
        .transpose()?;

    let mut client = NetClient::connect(addr).map_err(|e| match e {
        ConnectError::Io(err) => CliError::io(addr, err),
        ConnectError::TimedOut => CliError::io(
            addr,
            std::io::Error::new(std::io::ErrorKind::TimedOut, "connect or handshake timed out"),
        ),
        ConnectError::Shed { retry_after_ms } => CliError::Shed(format!(
            "server shed the connection (queue full); retry after {retry_after_ms} ms"
        )),
        ConnectError::Refused { code, message } => {
            CliError::invalid(addr, format!("handshake refused ({code:?}): {message}"))
        }
        ConnectError::Protocol(message) => CliError::invalid(addr, message),
    })?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "connected to {addr}: DKNP v1, epoch {}",
        client.epoch_at_welcome()
    );

    let no_actions = !parsed.ping && parsed.query.is_none() && update.is_none() && !parsed.stats;
    if parsed.ping || no_actions {
        match reply(client.ping().map_err(|e| CliError::io(addr, e))?)? {
            Frame::Pong { epoch } => {
                let _ = writeln!(out, "pong: epoch {epoch}");
            }
            other => return Err(unexpected(addr, &other)),
        }
    }
    if let Some(text) = parsed.query {
        let budget = parsed.budget.unwrap_or(0).min(u64::from(u32::MAX)) as u32;
        for round in 0..parsed.rounds.unwrap_or(1).max(1) {
            match reply(client.query(text, budget).map_err(|e| CliError::io(addr, e))?)? {
                Frame::Answer {
                    epoch,
                    index_visits,
                    data_visits,
                    validated,
                    match_count,
                    ids,
                } => {
                    if round == 0 {
                        let _ = writeln!(
                            out,
                            "{match_count} match(es) at epoch {epoch} \
                             ({index_visits} index + {data_visits} data visits, validated: {validated})",
                        );
                        for id in ids {
                            let _ = writeln!(out, "  node {id}");
                        }
                        if u64::from(match_count) > 32 {
                            let _ = writeln!(out, "  ... ({match_count} total, first 32 shown)");
                        }
                    }
                }
                other => return Err(unexpected(addr, &other)),
            }
        }
    }
    if let Some((from, to)) = update {
        match reply(client.update(from, to).map_err(|e| CliError::io(addr, e))?)? {
            Frame::UpdateOk { pending } => {
                let _ = writeln!(out, "update {from}->{to} admitted; backlog {pending}");
            }
            other => return Err(unexpected(addr, &other)),
        }
    }
    if parsed.stats {
        match reply(client.stats().map_err(|e| CliError::io(addr, e))?)? {
            Frame::StatsOk { text } => out.push_str(&text),
            other => return Err(unexpected(addr, &other)),
        }
    }
    Ok(out)
}

/// Map server-side refusal frames onto the CLI error matrix
/// (PROTOCOL.md §5–§6): SHED → exit 8 (safe to retry), ERROR by code —
/// bad-query 2, budget-exhausted 6, unavailable 7, the connection-fatal
/// codes 4. Any other frame passes through for the caller to match.
fn reply(frame: Frame) -> Result<Frame, CliError> {
    match frame {
        Frame::Shed {
            reason,
            pending,
            retry_after_ms,
        } => Err(CliError::Shed(format!(
            "server shed the request ({reason:?}, backlog {pending}); retry after {retry_after_ms} ms"
        ))),
        Frame::Error { code, message } => Err(match code {
            ErrorCode::BadQuery => CliError::Query(message),
            ErrorCode::BudgetExhausted => CliError::Aborted(message),
            ErrorCode::Unavailable => CliError::Serve(ServeError::MaintenanceGone),
            ErrorCode::Malformed | ErrorCode::UnsupportedVersion => CliError::Invalid {
                path: "connection".to_string(),
                message,
            },
        }),
        other => Ok(other),
    }
}

fn unexpected(addr: &str, frame: &Frame) -> CliError {
    CliError::invalid(addr, format!("unexpected reply frame {frame:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const DOC: &str = r#"
        <movieDB>
          <director id="d1"><name/><movie id="m1"><title/></movie></director>
          <actor id="a1" idref="m1"><name/></actor>
        </movieDB>"#;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "dkindex-cli-test-{tag}-{}",
                std::process::id()
            ));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn file(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn run(args: &[&str]) -> Result<String, CliError> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn write_doc(dir: &TempDir) -> PathBuf {
        let p = dir.file("doc.xml");
        fs::write(&p, DOC).unwrap();
        p
    }

    #[test]
    fn stats_reports_shape() {
        let dir = TempDir::new("stats");
        let doc = write_doc(&dir);
        let out = run(&["stats", doc.to_str().unwrap()]).unwrap();
        assert!(out.contains("nodes"));
        assert!(out.contains("refs"));
        assert!(out.contains("name"));
    }

    #[test]
    fn dot_emits_digraph() {
        let dir = TempDir::new("dot");
        let doc = write_doc(&dir);
        let out = run(&["dot", doc.to_str().unwrap()]).unwrap();
        assert!(out.starts_with("digraph"));
        assert!(out.contains("style=dashed")); // the idref edge
    }

    #[test]
    fn build_info_query_round_trip() {
        let dir = TempDir::new("biq");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        let built = run(&[
            "build",
            doc.to_str().unwrap(),
            "--out",
            idx.to_str().unwrap(),
            "--req",
            "title=2",
        ])
        .unwrap();
        assert!(built.contains("index nodes"));

        let info = run(&["info", idx.to_str().unwrap()]).unwrap();
        assert!(info.contains("compression"));
        assert!(info.contains("title"));

        let q = run(&["query", idx.to_str().unwrap(), "director.movie.title"]).unwrap();
        assert!(q.contains("1 match(es)"), "{q}");
        assert!(!q.contains("validated"), "title=2 must be sound: {q}");
    }

    #[test]
    fn build_mines_queries_file() {
        let dir = TempDir::new("mine");
        let doc = write_doc(&dir);
        let queries = dir.file("load.txt");
        fs::write(&queries, "# comment\ndirector.movie.title\n\nactor.name\n").unwrap();
        let idx = dir.file("index.dki");
        run(&[
            "build",
            doc.to_str().unwrap(),
            "--out",
            idx.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
        ])
        .unwrap();
        let info = run(&["info", idx.to_str().unwrap()]).unwrap();
        assert!(info.contains("title"));
        let q = run(&["query", idx.to_str().unwrap(), "director.movie.title"]).unwrap();
        assert!(!q.contains("validated"));
    }

    #[test]
    fn add_edge_updates_and_persists() {
        let dir = TempDir::new("edge");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        run(&[
            "build",
            doc.to_str().unwrap(),
            "--out",
            idx.to_str().unwrap(),
            "--uniform",
            "2",
        ])
        .unwrap();
        let idx2 = dir.file("index2.dki");
        let out = run(&[
            "add-edge",
            idx.to_str().unwrap(),
            "2",
            "4",
            "--out",
            idx2.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("added edge 2 -> 4"));
        // The updated index still loads and answers.
        let q = run(&["query", idx2.to_str().unwrap(), "movie"]).unwrap();
        assert!(q.contains("match(es)"));
    }

    #[test]
    fn add_file_grows_index() {
        let dir = TempDir::new("addfile");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        run(&["build", doc.to_str().unwrap(), "--out", idx.to_str().unwrap(), "--uniform", "1"]).unwrap();
        let extra = dir.file("extra.xml");
        fs::write(&extra, "<archive><movie><title/></movie></archive>").unwrap();
        let idx2 = dir.file("index2.dki");
        let out = run(&[
            "add-file",
            idx.to_str().unwrap(),
            extra.to_str().unwrap(),
            "--out",
            idx2.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("inserted 3 new data nodes"), "{out}");
        let q = run(&["query", idx2.to_str().unwrap(), "archive.movie.title"]).unwrap();
        assert!(q.contains("1 match(es)"), "{q}");
    }

    #[test]
    fn twig_command_answers_branching_queries() {
        let dir = TempDir::new("twig");
        let doc = write_doc(&dir);
        let out = run(&["twig", doc.to_str().unwrap(), "director[movie]/name"]).unwrap();
        assert!(out.contains("1 match(es)"), "{out}");
    }

    #[test]
    fn tune_promotes_then_demotes() {
        let dir = TempDir::new("tune");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        run(&["build", doc.to_str().unwrap(), "--out", idx.to_str().unwrap()]).unwrap();

        // Deep load: promote.
        let deep = dir.file("deep.txt");
        fs::write(&deep, "director.movie.title\n").unwrap();
        let idx2 = dir.file("index2.dki");
        let out = run(&[
            "tune", idx.to_str().unwrap(),
            "--queries", deep.to_str().unwrap(),
            "--out", idx2.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("promoted"), "{out}");
        let q = run(&["query", idx2.to_str().unwrap(), "director.movie.title"]).unwrap();
        assert!(!q.contains("validated"), "{q}");

        // Shallow load: demote.
        let shallow = dir.file("shallow.txt");
        fs::write(&shallow, "name\n").unwrap();
        let idx3 = dir.file("index3.dki");
        let out = run(&[
            "tune", idx2.to_str().unwrap(),
            "--queries", shallow.to_str().unwrap(),
            "--out", idx3.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("demoted"), "{out}");
    }

    /// The telemetry recorder is process-global and tests run on parallel
    /// threads; tests that toggle it serialize here.
    fn telemetry_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        LOCK.get_or_init(|| std::sync::Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn stats_with_queries_appends_telemetry_report() {
        let _guard = telemetry_test_lock();
        let dir = TempDir::new("statstel");
        let doc = write_doc(&dir);
        let queries = dir.file("load.txt");
        fs::write(&queries, "director.movie.title\nmovie.title\n").unwrap();
        let out = run(&[
            "stats",
            doc.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("nodes"), "{out}"); // plain stats still present
        assert!(out.contains("telemetry"), "{out}");
        assert!(out.contains("eval.queries"), "{out}");
        assert!(out.contains("dk.constructions"), "{out}");
        assert!(out.contains("phase.build_ns"), "{out}");
        assert!(out.contains("phase.query_ns"), "{out}");
    }

    #[test]
    fn metrics_flag_writes_snapshot_and_leaves_output_unchanged() {
        let _guard = telemetry_test_lock();
        let dir = TempDir::new("metrics");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        let plain = run(&[
            "build",
            doc.to_str().unwrap(),
            "--out",
            idx.to_str().unwrap(),
            "--uniform",
            "1",
        ])
        .unwrap();

        let idx2 = dir.file("index2.dki");
        let metrics = dir.file("METRICS.json");
        let recorded = run(&[
            "build",
            doc.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
            "--out",
            idx2.to_str().unwrap(),
            "--uniform",
            "1",
        ])
        .unwrap();
        // Telemetry observes; it must not change what the command reports
        // (up to the differing output path) or builds.
        assert_eq!(
            plain.replace(idx.to_str().unwrap(), "X"),
            recorded.replace(idx2.to_str().unwrap(), "X")
        );
        assert_eq!(fs::read(&idx).unwrap(), fs::read(&idx2).unwrap());

        let json = fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("\"counters\""), "{json}");
        assert!(json.contains("\"histograms\""), "{json}");
        assert!(json.contains("\"dk.constructions\""), "{json}");
        assert!(!telemetry::is_enabled());
    }

    #[test]
    fn metrics_flag_requires_a_value() {
        let err = run(&["build", "doc.xml", "--metrics"]).unwrap_err();
        assert!(err.to_string().contains("--metrics"), "{err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn helpful_errors_with_typed_exit_codes() {
        assert_eq!(run(&[]).unwrap_err().exit_code(), 2);
        assert_eq!(run(&["frobnicate"]).unwrap_err().exit_code(), 2);
        let err = run(&["build", "nope.xml"]).unwrap_err();
        assert!(err.to_string().contains("--out"));
        assert_eq!(err.exit_code(), 2);
        let err = run(&["query", "missing.dki", "a.b"]).unwrap_err();
        assert!(err.to_string().contains("missing.dki"));
        assert_eq!(err.exit_code(), 3);
        let dir = TempDir::new("err");
        let doc = write_doc(&dir);
        let err = run(&["build", doc.to_str().unwrap(), "--out", "/x", "--req", "bad"])
            .unwrap_err();
        assert!(err.to_string().contains("LABEL=K"));
        assert_eq!(err.exit_code(), 2);
        // A bad query expression against a real index is a syntax error.
        let idx = dir.file("index.dki");
        run(&["build", doc.to_str().unwrap(), "--out", idx.to_str().unwrap()]).unwrap();
        let err = run(&["query", idx.to_str().unwrap(), "movie..title"]).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
    }

    #[test]
    fn corrupt_index_is_a_typed_error_not_a_panic() {
        let dir = TempDir::new("corrupt");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        run(&["build", doc.to_str().unwrap(), "--out", idx.to_str().unwrap()]).unwrap();
        let healthy = fs::read(&idx).unwrap();
        let mut bytes = healthy.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let bad = dir.file("bad.dki");
        fs::write(&bad, &bytes).unwrap();
        // The strict consumer (info) refuses any damage with exit code 4;
        // doctor reports what is wrong with exit code 4 or 5 — nobody panics.
        let err = run(&["info", bad.to_str().unwrap()]).unwrap_err();
        assert_eq!(err.exit_code(), 4, "info: {err}");
        let err = run(&["doctor", bad.to_str().unwrap()]).unwrap_err();
        assert!(err.exit_code() == 4 || err.exit_code() == 5, "{err}");
        // query serves through recovery when it can, but unrecoverable
        // damage (a broken graph section) is still a typed exit-4 error.
        let grph_at = healthy
            .windows(4)
            .position(|w| w == b"GRPH")
            .expect("snapshot has a GRPH section");
        let mut bytes = healthy.clone();
        bytes[grph_at + 16] ^= 0xFF;
        let bad_graph = dir.file("bad-graph.dki");
        fs::write(&bad_graph, &bytes).unwrap();
        let err = run(&["query", bad_graph.to_str().unwrap(), "movie"]).unwrap_err();
        assert_eq!(err.exit_code(), 4, "query: {err}");
    }

    /// End-to-end assertion of the whole exit-code matrix: 0 success,
    /// 2 usage, 3 I/O, 4 corrupt, 5 unsound, 6 aborted — including the
    /// regression for budget aborts on a *recoverable* snapshot, which must
    /// be exit 6 (aborted), not exit 4 (corrupt).
    #[test]
    fn exit_code_matrix_is_asserted_end_to_end() {
        let dir = TempDir::new("exit-matrix");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");

        // 0: a healthy build → query pipeline succeeds.
        run(&["build", doc.to_str().unwrap(), "--out", idx.to_str().unwrap(), "--uniform", "1"])
            .unwrap();
        run(&["query", idx.to_str().unwrap(), "movie.title"]).unwrap();

        // 2: usage errors and query syntax errors.
        assert_eq!(run(&["query", idx.to_str().unwrap()]).unwrap_err().exit_code(), 2);
        assert_eq!(
            run(&["query", idx.to_str().unwrap(), "movie..title"]).unwrap_err().exit_code(),
            2
        );

        // 3: unreadable input file.
        let missing = dir.file("missing.dki");
        assert_eq!(
            run(&["query", missing.to_str().unwrap(), "movie"]).unwrap_err().exit_code(),
            3
        );

        let healthy = fs::read(&idx).unwrap();

        // 4: unrecoverable corruption — damage the GRPH payload; without an
        // intact graph there is nothing to rebuild the index from.
        let grph_at = healthy
            .windows(4)
            .position(|w| w == b"GRPH")
            .expect("snapshot has a GRPH section");
        let mut bytes = healthy.clone();
        bytes[grph_at + 16] ^= 0xFF;
        let bad_graph = dir.file("bad-graph.dki");
        fs::write(&bad_graph, &bytes).unwrap();
        assert_eq!(
            run(&["query", bad_graph.to_str().unwrap(), "movie"]).unwrap_err().exit_code(),
            4
        );

        // 5: recoverable INDX damage — doctor flags the stored index as
        // untrustworthy.
        let mut bytes = healthy.clone();
        let pos = bytes.len() - 12; // inside the INDX payload
        bytes[pos] ^= 0x01;
        let bad_index = dir.file("bad-index.dki");
        fs::write(&bad_index, &bytes).unwrap();
        assert_eq!(
            run(&["doctor", bad_index.to_str().unwrap()]).unwrap_err().exit_code(),
            5
        );

        // 6: a budget abort is exit 6 on a healthy snapshot…
        let err =
            run(&["query", idx.to_str().unwrap(), "movie.title", "--budget", "0"]).unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err}");
        // …and on a recoverable snapshot: query rebuilds the index from the
        // intact graph and the abort keeps its own failure class (the old
        // behavior surfaced this as exit 4).
        let err = run(&[
            "query",
            bad_index.to_str().unwrap(),
            "movie.title",
            "--budget",
            "0",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err}");
        // Sanity: without a budget the recovered snapshot answers normally.
        let out = run(&["query", bad_index.to_str().unwrap(), "movie.title"]).unwrap();
        assert!(out.contains("match(es)"), "{out}");
    }

    #[test]
    fn snapshot_recover_doctor_round_trip() {
        let dir = TempDir::new("srd");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        run(&["build", doc.to_str().unwrap(), "--out", idx.to_str().unwrap(), "--uniform", "1"])
            .unwrap();

        // Healthy: doctor exits zero (Ok) and says so.
        let out = run(&["doctor", idx.to_str().unwrap()]).unwrap();
        assert!(out.contains("healthy"), "{out}");

        // snapshot re-emits a loadable file.
        let snap = dir.file("snap.dki");
        run(&["snapshot", idx.to_str().unwrap(), "--out", snap.to_str().unwrap()]).unwrap();
        let q = run(&["query", snap.to_str().unwrap(), "movie.title"]).unwrap();
        assert!(q.contains("match(es)"), "{q}");

        // Corrupt the index section; recover rebuilds from the graph.
        let healthy = fs::read(&snap).unwrap();
        let mut bytes = healthy.clone();
        let pos = bytes.len() - 12; // inside the INDX payload
        bytes[pos] ^= 0x01;
        let bad = dir.file("bad.dki");
        fs::write(&bad, &bytes).unwrap();
        let err = run(&["doctor", bad.to_str().unwrap()]).unwrap_err();
        assert_eq!(err.exit_code(), 5, "{err}");

        let fixed = dir.file("fixed.dki");
        let out = run(&[
            "recover",
            bad.to_str().unwrap(),
            "--out",
            fixed.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("recovered"), "{out}");
        // The recovered snapshot is byte-identical to the healthy one
        // (deterministic rebuild from the intact graph + requirements).
        assert_eq!(fs::read(&fixed).unwrap(), healthy);
        let out = run(&["doctor", fixed.to_str().unwrap()]).unwrap();
        assert!(out.contains("healthy"), "{out}");
    }

    #[test]
    fn add_edge_logs_to_wal_and_snapshot_replays_it() {
        let dir = TempDir::new("waledge");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        run(&["build", doc.to_str().unwrap(), "--out", idx.to_str().unwrap(), "--uniform", "2"])
            .unwrap();
        let walp = dir.file("updates.wal");
        let idx2 = dir.file("index2.dki");
        let out = run(&[
            "add-edge", idx.to_str().unwrap(), "2", "4",
            "--out", idx2.to_str().unwrap(),
            "--wal", walp.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("logged to"), "{out}");
        // A second logged update appends to the same WAL.
        let idx3 = dir.file("index3.dki");
        run(&[
            "add-edge", idx2.to_str().unwrap(), "6", "3",
            "--out", idx3.to_str().unwrap(),
            "--wal", walp.to_str().unwrap(),
        ])
        .unwrap();
        // snapshot --wal replays the log over the *original* index and must
        // land on the same bytes as the incrementally updated index.
        let replayed = dir.file("replayed.dki");
        let out = run(&[
            "snapshot", idx.to_str().unwrap(),
            "--out", replayed.to_str().unwrap(),
            "--wal", walp.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("replayed 2 WAL record(s)"), "{out}");
        assert_eq!(fs::read(&replayed).unwrap(), fs::read(&idx3).unwrap());
    }

    #[test]
    fn query_budget_aborts_with_typed_error() {
        let dir = TempDir::new("budget");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        run(&["build", doc.to_str().unwrap(), "--out", idx.to_str().unwrap()]).unwrap();
        // A generous budget answers normally…
        let ok = run(&[
            "query", idx.to_str().unwrap(), "director.movie.title",
            "--budget", "100000",
        ])
        .unwrap();
        assert!(ok.contains("match(es)"), "{ok}");
        // …a starved one aborts with the dedicated exit code, not a panic
        // and not a partial answer.
        let err = run(&[
            "query", idx.to_str().unwrap(), "director.movie.title",
            "--budget", "1",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err}");
        assert!(err.to_string().contains("budget"), "{err}");
    }

    #[test]
    fn legacy_index_files_still_load() {
        use dkindex_core::store::save_dk;
        let dir = TempDir::new("legacy");
        let doc = write_doc(&dir);
        let g = load_xml(doc.to_str().unwrap(), &[]).unwrap();
        let dk = DkIndex::build(&g, Requirements::uniform(1));
        let mut bytes = Vec::new();
        save_dk(&dk, &g, &mut bytes).unwrap();
        let legacy = dir.file("legacy.dki");
        fs::write(&legacy, &bytes).unwrap();
        let q = run(&["query", legacy.to_str().unwrap(), "movie"]).unwrap();
        assert!(q.contains("match(es)"), "{q}");
        let out = run(&["doctor", legacy.to_str().unwrap()]).unwrap();
        assert!(out.contains("healthy"), "{out}");
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["--help"]).unwrap();
        assert!(out.contains("usage:"));
        assert!(out.contains("doctor"));
        assert!(out.contains("serve"));
        assert!(out.contains("exit codes"));
    }

    #[test]
    fn serve_runs_a_mixed_workload_deterministically() {
        let dir = TempDir::new("serve");
        // Needs several nodes per referenced label: the update generator
        // only emits edges that do not already exist.
        let doc = dir.file("doc.xml");
        fs::write(
            &doc,
            r#"
            <movieDB>
              <director id="d1"><name/><movie id="m1"><title/></movie>
                                        <movie id="m2"><title/></movie></director>
              <director id="d2"><name/><movie id="m3"><title/></movie></director>
              <actor id="a1" idref="m1"><name/></actor>
              <actor id="a2" idref="m2"><name/></actor>
              <actor id="a3"><name/></actor>
            </movieDB>"#,
        )
        .unwrap();
        let idx = dir.file("index.dki");
        run(&["build", doc.to_str().unwrap(), "--out", idx.to_str().unwrap(), "--uniform", "2"])
            .unwrap();
        let qfile = dir.file("queries.txt");
        fs::write(&qfile, "movie.title\ndirector.movie\nactor\n").unwrap();
        let out = run(&[
            "serve", idx.to_str().unwrap(),
            "--queries", qfile.to_str().unwrap(),
            "--threads", "3",
            "--updates", "6",
            "--batch", "2",
            "--rounds", "20",
        ])
        .unwrap();
        assert!(out.contains("3 reader thread(s)"), "{out}");
        assert!(out.contains("applied 6 update(s)"), "{out}");
        assert!(out.contains("epoch(s) published"), "{out}");
        assert!(out.contains("deterministic vs serial replay: ok"), "{out}");

        // Missing flags are usage errors, and the verb is telemetry-clean.
        assert_eq!(run(&["serve", idx.to_str().unwrap()]).unwrap_err().exit_code(), 2);
        let metrics = dir.file("serve-metrics.json");
        run(&[
            "serve", idx.to_str().unwrap(),
            "--queries", qfile.to_str().unwrap(),
            "--updates", "4",
            "--metrics", metrics.to_str().unwrap(),
        ])
        .unwrap();
        let json = fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("\"serve.epoch_publishes\""), "{json}");
        assert!(json.contains("\"serve.queries\""), "{json}");
    }

    /// Start a [`NetServer`] over the test document's index so the
    /// `client` verb can be driven end-to-end in-process.
    fn start_test_net(dir: &TempDir, cfg: NetConfig) -> NetServer {
        let doc = write_doc(dir);
        let idx = dir.file("index.dki");
        run(&["build", doc.to_str().unwrap(), "--out", idx.to_str().unwrap(), "--uniform", "2",
              "--idref", "idref"])
            .unwrap();
        let (dk, g) = load_index_graceful(idx.to_str().unwrap()).unwrap();
        let server = DkServer::start(g, dk, ServeConfig { max_batch: 4, threads: 1, ..ServeConfig::default() });
        NetServer::start(server, "127.0.0.1:0", cfg).unwrap()
    }

    #[test]
    fn client_round_trips_against_a_net_server() {
        let dir = TempDir::new("client");
        let net = start_test_net(&dir, NetConfig::default());
        let addr = net.local_addr().to_string();

        // No action flags: handshake + one ping.
        let out = run(&["client", &addr]).unwrap();
        assert!(out.contains("DKNP v1, epoch 0"), "{out}");
        assert!(out.contains("pong: epoch 0"), "{out}");

        // Query, update, stats on one connection, in the documented order.
        let out = run(&[
            "client", &addr,
            "--query", "movieDB.actor.name",
            "--update", "1:5",
            "--stats",
        ])
        .unwrap();
        assert!(out.contains("1 match(es) at epoch 0"), "{out}");
        assert!(out.contains("update 1->5 admitted; backlog 1"), "{out}");
        assert!(out.contains("admitted=1"), "{out}");

        // Server-reported errors map onto the documented exit codes:
        // unparseable query text is 2, an exhausted budget is 6.
        assert_eq!(
            run(&["client", &addr, "--query", "movieDB.."]).unwrap_err().exit_code(),
            2
        );
        assert_eq!(
            run(&["client", &addr, "--query", "movieDB.actor.name", "--budget", "1"])
                .unwrap_err()
                .exit_code(),
            6
        );

        // Local usage errors stay usage errors.
        assert_eq!(run(&["client"]).unwrap_err().exit_code(), 2);
        assert_eq!(
            run(&["client", &addr, "--update", "nonsense"]).unwrap_err().exit_code(),
            2
        );

        net.shutdown().unwrap();
        // With the server gone, the transport failure is an I/O error.
        assert_eq!(run(&["client", &addr, "--ping"]).unwrap_err().exit_code(), 3);
    }

    #[test]
    fn client_update_shed_is_exit_code_8() {
        let dir = TempDir::new("client-shed");
        // Threshold 0: the first reserved update already exceeds the
        // allowed backlog, so every UPDATE gets the typed maintenance-lag
        // shed (PROTOCOL.md §5.1) — surfaced by the CLI as exit 8.
        let net = start_test_net(&dir, NetConfig {
            staleness_threshold: 0,
            ..NetConfig::default()
        });
        let addr = net.local_addr().to_string();
        let err = run(&["client", &addr, "--update", "1:5"]).unwrap_err();
        assert_eq!(err.exit_code(), 8, "{err}");
        assert!(err.to_string().contains("retry"), "{err}");
        // Queries still succeed while updates shed.
        run(&["client", &addr, "--query", "movieDB.actor.name"]).unwrap();
        net.shutdown().unwrap();
    }

    #[test]
    fn serve_listen_runs_and_drains() {
        let dir = TempDir::new("serve-net");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        run(&["build", doc.to_str().unwrap(), "--out", idx.to_str().unwrap(), "--uniform", "2"])
            .unwrap();
        let out = run(&[
            "serve", idx.to_str().unwrap(),
            "--listen", "127.0.0.1:0",
            "--workers", "2",
            "--duration-ms", "100",
        ])
        .unwrap();
        assert!(out.contains("served on 127.0.0.1:"), "{out}");
        assert!(out.contains("drained in"), "{out}");
        assert!(out.contains("every admitted update applied"), "{out}");
    }

    /// The `doctor --wal` exit-code matrix: 0 for a clean log *and* for the
    /// torn-tail crash signature (recovery handles it), 3 for a missing
    /// file, 4 for a file that is not a WAL, 5 when a *committed* record is
    /// damaged (bit rot — replay would lose an acknowledged update).
    #[test]
    fn doctor_wal_report_covers_the_exit_code_matrix() {
        let dir = TempDir::new("doctor-wal");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        run(&["build", doc.to_str().unwrap(), "--out", idx.to_str().unwrap(), "--uniform", "1"])
            .unwrap();
        let idx = idx.to_str().unwrap();

        // 3: the WAL path does not exist.
        let missing = dir.file("missing.wal");
        let err = run(&["doctor", idx, "--wal", missing.to_str().unwrap()]).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");

        // 0 + clean: one committed record, file ends on its fence.
        let wal_path = dir.file("log.wal");
        let mut writer = WalWriter::create(&wal_path).unwrap();
        writer
            .append(&WalRecord::AddEdge {
                from: NodeId::from_index(1),
                to: NodeId::from_index(5),
            })
            .unwrap();
        drop(writer);
        let out = run(&["doctor", idx, "--wal", wal_path.to_str().unwrap()]).unwrap();
        assert!(out.contains("WAL v2, 1 committed record(s), 0 uncommitted"), "{out}");
        assert!(out.contains("tail: clean"), "{out}");

        // 0 + torn: a partial record after the last fence is the crash
        // signature, not corruption.
        let healthy = fs::read(&wal_path).unwrap();
        let mut torn = healthy.clone();
        torn.extend_from_slice(&[9, 0, 0, 0, 1]); // length prefix + 1 of 13 framed bytes
        let torn_path = dir.file("torn.wal");
        fs::write(&torn_path, &torn).unwrap();
        let out = run(&["doctor", idx, "--wal", torn_path.to_str().unwrap()]).unwrap();
        assert!(out.contains("tail: torn"), "{out}");

        // 5: a bit flip inside a committed record body fails its CRC.
        let mut rotted = healthy.clone();
        rotted[12] ^= 0x01; // first body byte of the committed record
        let rotted_path = dir.file("rotted.wal");
        fs::write(&rotted_path, &rotted).unwrap();
        let err =
            run(&["doctor", idx, "--wal", rotted_path.to_str().unwrap()]).unwrap_err();
        assert_eq!(err.exit_code(), 5, "{err}");

        // 4: not a WAL at all.
        let junk_path = dir.file("junk.wal");
        fs::write(&junk_path, b"definitely not a WAL").unwrap();
        let err = run(&["doctor", idx, "--wal", junk_path.to_str().unwrap()]).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
    }

    /// `serve --listen --wal` end to end: an UPDATE_OK from a durable
    /// server means the op is on disk — doctor sees it committed with a
    /// clean tail, and a restart with the same `--wal` replays it.
    #[test]
    fn durable_serve_logs_acked_updates_and_recovers_on_restart() {
        let dir = TempDir::new("serve-wal");
        let doc = write_doc(&dir);
        let idx = dir.file("index.dki");
        run(&["build", doc.to_str().unwrap(), "--out", idx.to_str().unwrap(), "--uniform", "2",
              "--idref", "idref"])
            .unwrap();
        let idx = idx.to_str().unwrap();
        let wal_path = dir.file("serve.wal");

        // In-process durable server — the same wiring `serve --listen
        // --wal` uses, but with an inspectable bound address.
        let (dk, g) = load_index_graceful(idx).unwrap();
        let writer = WalWriter::create(&wal_path).unwrap();
        let server = DkServer::start_logged(
            g,
            dk,
            ServeConfig { max_batch: 4, threads: 1, ..ServeConfig::default() },
            Box::new(writer),
        );
        assert!(server.is_logged());
        let net = NetServer::start(server, "127.0.0.1:0", NetConfig::default()).unwrap();
        let addr = net.local_addr().to_string();

        let out = run(&["client", &addr, "--update", "1:5"]).unwrap();
        assert!(out.contains("admitted"), "{out}");
        net.shutdown().unwrap();

        // The acknowledged update is on disk, fenced.
        let out = run(&["doctor", idx, "--wal", wal_path.to_str().unwrap()]).unwrap();
        assert!(out.contains("WAL v2, 1 committed record(s), 0 uncommitted"), "{out}");
        assert!(out.contains("tail: clean"), "{out}");

        // A restart with the same --wal recovers the committed prefix and
        // serves durably again.
        let out = run(&[
            "serve", idx,
            "--listen", "127.0.0.1:0",
            "--wal", wal_path.to_str().unwrap(),
            "--duration-ms", "50",
        ])
        .unwrap();
        assert!(out.contains("replayed 1 WAL record(s)"), "{out}");
        assert!(out.contains("durable acks"), "{out}");
    }
}
