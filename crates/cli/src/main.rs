//! `dkindex` — command-line front-end for the D(k)-index library.
//!
//! ```text
//! dkindex stats <doc.xml> [--queries <file>] [--idref ATTR]...
//! dkindex dot   <doc.xml> [--idref ATTR]...
//! dkindex build <doc.xml> --out <index.dki> [--req LABEL=K]... [--uniform K]
//!               [--queries <file>] [--idref ATTR]...
//! dkindex info  <index.dki>
//! dkindex query <index.dki> <path-expression>
//! dkindex twig  <doc.xml> <twig-query> [--idref ATTR]...
//! dkindex add-edge <index.dki> <from-id> <to-id> --out <index2.dki>
//! ```
//!
//! `build` mines requirements from `--queries` (one path expression per
//! line) and/or explicit `--req label=k` pairs, constructs the D(k)-index
//! and stores graph + index in a single `.dki` file; `query` loads it and
//! evaluates with validation; `add-edge` applies the paper's edge-addition
//! update and re-saves — no rebuild.
//!
//! Every command accepts the global `--metrics <path>` flag: the hot-path
//! telemetry recorder (`dkindex-telemetry`) is enabled for the duration of
//! the command and the snapshot is written to `<path>` as JSON. `stats
//! --queries <file>` additionally runs the build → query pipeline on the
//! document and appends a human-readable telemetry report.

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::from(2)
        }
    }
}
