//! `dkindex` — command-line front-end for the D(k)-index library.
//!
//! ```text
//! dkindex stats <doc.xml> [--queries <file>] [--idref ATTR]...
//! dkindex dot   <doc.xml> [--idref ATTR]...
//! dkindex build <doc.xml> --out <index.dki> [--req LABEL=K]... [--uniform K]
//!               [--queries <file>] [--idref ATTR]...
//! dkindex info  <index.dki>
//! dkindex query <index.dki> <path-expression>
//! dkindex twig  <doc.xml> <twig-query> [--idref ATTR]...
//! dkindex add-edge <index.dki> <from-id> <to-id> --out <index2.dki> [--wal <file>]
//! dkindex snapshot <index.dki> --out <snap.dki> [--wal <file>]
//! dkindex recover  <snap.dki> --out <fixed.dki> [--wal <file>]
//! dkindex doctor   <index.dki>
//! dkindex serve    <index.dki> --queries <file> [--threads N] [--updates N]
//!                  [--batch N] [--rounds N]
//! dkindex serve    <index.dki> --listen <addr> [--workers N] [--accept-queue N]
//!                  [--staleness N] [--budget N] [--batch N] [--duration-ms N]
//! dkindex client   <addr> [--ping] [--query <expr> [--budget N] [--rounds N]]
//!                  [--update FROM:TO] [--stats]
//! ```
//!
//! `build` mines requirements from `--queries` (one path expression per
//! line) and/or explicit `--req label=k` pairs, constructs the D(k)-index
//! and stores graph + index in a single checksummed `.dki` snapshot;
//! `query` loads it and evaluates with validation (optionally under a
//! `--budget` visit cap); `add-edge` applies the paper's edge-addition
//! update — logging it durably first when `--wal` is given — and re-saves;
//! `snapshot`/`recover`/`doctor` are the durability verbs (write a
//! checksummed snapshot, gracefully rebuild a damaged one, audit the stored
//! invariants); `serve` drives a concurrent mixed query/update workload
//! through the epoch-published serving layer and cross-checks the final
//! state against a serial replay; `serve --listen` exposes the same layer
//! over the DKNP wire protocol (docs/PROTOCOL.md) with bounded queues and
//! typed load-shedding (docs/OPERATIONS.md), and `client` is the matching
//! reference client.
//!
//! Every command accepts the global `--metrics <path>` flag: the hot-path
//! telemetry recorder (`dkindex-telemetry`) is enabled for the duration of
//! the command and the snapshot is written to `<path>` as JSON. `stats
//! --queries <file>` additionally runs the build → query pipeline on the
//! document and appends a human-readable telemetry report.
//!
//! Failures never panic: each [`commands::CliError`] class maps to its own
//! exit code (2 usage, 3 I/O, 4 corrupt input, 5 unsound index, 6 aborted
//! query, 7 serve maintenance thread died, 8 request shed — retry later).

#![forbid(unsafe_code)]

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            if e.exit_code() == 2 {
                eprintln!();
                eprintln!("{}", commands::USAGE);
            }
            ExitCode::from(e.exit_code())
        }
    }
}
