//! The A(k)-index (Kaushik et al., ICDE 2002): extents are the k-bisimulation
//! equivalence classes, every index node carries local similarity `k`.
//!
//! Also implements the edge-addition update used as the comparator in the
//! paper's Table 1 — "a variant of the 1-index update algorithm" (§6.2):
//! adding an edge creates a new index node for the target data node, then
//! recursively re-partitions the extents of child index nodes (referring to
//! the data graph) until k-local-similarity is restored, propagating up to
//! distance `k − 1`. The re-partitioning touches data nodes — that expense,
//! contrasted with the D(k) update which only walks the index graph, is the
//! paper's headline update result.

use crate::index_graph::IndexGraph;
use dkindex_graph::{DataGraph, EdgeKind, LabeledGraph, NodeId};
use dkindex_partition::RefineEngine;
use std::collections::{HashMap, HashSet};

/// The A(k)-index.
#[derive(Clone, Debug)]
pub struct AkIndex {
    index: IndexGraph,
    k: usize,
}

/// Work performed by an A(k) edge-addition update, in machine-independent
/// units (data nodes touched while re-partitioning extents). Reported next
/// to wall-clock time in the Table 1 reproduction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateWork {
    /// Data nodes whose parent lists were scanned to recompute signatures.
    pub data_nodes_touched: u64,
    /// Index nodes whose extents were split.
    pub blocks_split: u64,
}

impl std::ops::AddAssign for UpdateWork {
    fn add_assign(&mut self, rhs: UpdateWork) {
        self.data_nodes_touched += rhs.data_nodes_touched;
        self.blocks_split += rhs.blocks_split;
    }
}

impl AkIndex {
    /// Build the A(k)-index of `data` in O(k·m).
    pub fn build(data: &DataGraph, k: usize) -> Self {
        AkIndex::build_with_engine(data, k, &mut RefineEngine::new())
    }

    /// [`Self::build`] on a caller-owned [`RefineEngine`]: repeated builds
    /// reuse its scratch, and `RefineEngine::with_threads(n)` parallelises
    /// the refinement rounds. The index is identical for every engine
    /// configuration.
    pub fn build_with_engine(data: &DataGraph, k: usize, engine: &mut RefineEngine) -> Self {
        let p = engine.k_bisimulation(data, k);
        let sims = vec![k; p.block_count()];
        AkIndex {
            index: IndexGraph::from_data_partition(data, &p, sims),
            k,
        }
    }

    /// The underlying index graph.
    pub fn index(&self) -> &IndexGraph {
        &self.index
    }

    /// The local-similarity parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of index nodes.
    pub fn size(&self) -> usize {
        self.index.size()
    }

    /// Subgraph-addition (document insertion) update. The paper notes that
    /// "the 1-index update algorithm for document insertion can be easily
    /// generalized to apply in the A(k)-index context" (§2); since A(k) is
    /// the uniform-requirement special case of D(k), the generalization is
    /// exactly the D(k) machinery: index the new document alone, graft it
    /// under the root, and re-index the stitched summary (Theorem 2).
    pub fn add_subgraph(&mut self, data: &mut DataGraph, sub: &DataGraph) -> Vec<NodeId> {
        let sub_ak = AkIndex::build(sub, self.k);
        let map = data.graft_under_root(sub);
        let stitched =
            crate::dk::subgraph::stitch(&self.index, sub_ak.index(), sub, &map, data);
        let reqs = crate::requirements::Requirements::uniform(self.k);
        self.index = crate::dk::construct::reindex_dk(&stitched, &reqs);
        map
    }

    /// Edge-addition update (the Table 1 comparator). Adds the data edge
    /// `u → v` to `data` and repairs the index by local re-partitioning.
    ///
    /// The result is a *refinement* of the true A(k)-index — safe and sound
    /// for paths up to length `k`, but possibly over-split, which is exactly
    /// the paper's observation that "the size of the A(k)-index increases
    /// dramatically" under updates (§6.3).
    pub fn add_edge(&mut self, data: &mut DataGraph, u: NodeId, v: NodeId) -> UpdateWork {
        let mut work = UpdateWork::default();
        if !data.add_edge(u, v, EdgeKind::Reference) {
            return work; // duplicate edge: graph unchanged
        }
        if self.k == 0 {
            // A(0): label partition unaffected; just record the index edge.
            let (ui, vi) = (self.index.index_of(u), self.index.index_of(v));
            self.index.add_index_edge(ui, vi);
            return work;
        }

        // Step 1: the target data node becomes its own index node ("when a
        // new edge is added to the A(k)-index graph, it creates a new index
        // node") — unless it already is one.
        let v_inode = self.index.index_of(v);
        work.data_nodes_touched += self.index.extent(v_inode).len() as u64;
        let v_new = if self.index.extent(v_inode).len() > 1 {
            work.blocks_split += 1;
            let moved: HashSet<NodeId> = [v].into_iter().collect();
            self.index.split_extent(v_inode, &moved, self.k, data)
        } else {
            // Singleton: recompute its edges to pick up the new parent.
            let ui = self.index.index_of(u);
            self.index.add_index_edge(ui, v_inode);
            v_inode
        };

        // Step 2: propagate downstream, re-partitioning child extents by
        // parent-index signature, up to distance k-1 from the new node.
        let mut frontier: Vec<NodeId> = vec![v_new];
        for _round in 1..=self.k.saturating_sub(1) {
            let mut touched_inodes: Vec<NodeId> = Vec::new();
            for &f in &frontier {
                for &c in self.index.children_of(f) {
                    if !touched_inodes.contains(&c) {
                        touched_inodes.push(c);
                    }
                }
            }
            let mut next_frontier = Vec::new();
            for inode in touched_inodes {
                let splits = self.repartition_extent(inode, data, &mut work);
                if !splits.is_empty() {
                    next_frontier.extend(splits);
                }
            }
            if next_frontier.is_empty() {
                break; // every child already satisfies k-local-similarity
            }
            frontier = next_frontier;
        }
        work
    }

    /// Split `inode`'s extent by parent-index signature. Returns all
    /// resulting fragments if a split occurred (empty vec otherwise).
    fn repartition_extent(
        &mut self,
        inode: NodeId,
        data: &DataGraph,
        work: &mut UpdateWork,
    ) -> Vec<NodeId> {
        let extent = self.index.extent(inode).to_vec();
        work.data_nodes_touched += extent.len() as u64;
        if extent.len() <= 1 {
            return Vec::new();
        }
        let mut groups: HashMap<Vec<NodeId>, Vec<NodeId>> = HashMap::new();
        for &m in &extent {
            let mut sig: Vec<NodeId> = data
                .parents_of(m)
                .iter()
                .map(|&p| self.index.index_of(p))
                .collect();
            work.data_nodes_touched += data.parents_of(m).len() as u64;
            sig.sort_unstable();
            sig.dedup();
            groups.entry(sig).or_default().push(m);
        }
        if groups.len() <= 1 {
            return Vec::new();
        }
        // Keep the largest group in place; split the rest out.
        let mut group_list: Vec<Vec<NodeId>> = groups.into_values().collect();
        group_list.sort_by_key(|g| std::cmp::Reverse(g.len()));
        let mut fragments = vec![inode];
        for group in group_list.into_iter().skip(1) {
            work.blocks_split += 1;
            let moved: HashSet<NodeId> = group.into_iter().collect();
            let new_node = self.index.split_extent(inode, &moved, self.k, data);
            fragments.push(new_node);
        }
        fragments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate_on_data, IndexEvaluator};
    use dkindex_pathexpr::parse;

    fn build_data() -> DataGraph {
        let mut g = DataGraph::new();
        let d = g.add_labeled_node("director");
        let a = g.add_labeled_node("actor");
        let m1 = g.add_labeled_node("movie");
        let m2 = g.add_labeled_node("movie");
        let t1 = g.add_labeled_node("title");
        let t2 = g.add_labeled_node("title");
        let r = g.root();
        g.add_edge(r, d, EdgeKind::Tree);
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(d, m1, EdgeKind::Tree);
        g.add_edge(a, m2, EdgeKind::Tree);
        g.add_edge(m1, t1, EdgeKind::Tree);
        g.add_edge(m2, t2, EdgeKind::Tree);
        g
    }

    #[test]
    fn ak_sizes_grow_with_k() {
        let g = build_data();
        let mut last = 0;
        for k in 0..4 {
            let ak = AkIndex::build(&g, k);
            ak.index().check_invariants(&g).unwrap();
            assert!(ak.size() >= last);
            last = ak.size();
        }
        // k=0: ROOT, director, actor, movie, title = 5.
        assert_eq!(AkIndex::build(&g, 0).size(), 5);
        // k=1: movies split (director vs actor parents), titles still merged.
        assert_eq!(AkIndex::build(&g, 1).size(), 6);
        // k=2: titles split too.
        assert_eq!(AkIndex::build(&g, 2).size(), 7);
    }

    #[test]
    fn ak_extents_are_k_bisimilar() {
        let g = build_data();
        for k in 0..3 {
            AkIndex::build(&g, k)
                .index()
                .check_extent_bisimilarity(&g, 4)
                .unwrap();
        }
    }

    #[test]
    fn update_preserves_safety_and_exactness() {
        let mut g = build_data();
        let mut ak = AkIndex::build(&g, 2);
        // New reference: actor -> movie-under-director.
        let actor = g.nodes_with_label(g.labels().get("actor").unwrap())[0];
        let m1 = g.nodes_with_label(g.labels().get("movie").unwrap())[0];
        let work = ak.add_edge(&mut g, actor, m1);
        assert!(work.data_nodes_touched > 0);
        ak.index().check_invariants(&g).unwrap();
        // Queries remain exact after the update.
        for expr in ["actor.movie", "actor.movie.title", "director.movie.title"] {
            let e = parse(expr).unwrap();
            let truth = evaluate_on_data(&g, &e).0;
            let out = IndexEvaluator::new(ak.index(), &g).evaluate(&e);
            assert_eq!(out.matches, truth, "{expr}");
        }
    }

    #[test]
    fn updated_index_refines_fresh_ak() {
        let mut g = build_data();
        let mut ak = AkIndex::build(&g, 2);
        let actor = g.nodes_with_label(g.labels().get("actor").unwrap())[0];
        let m1 = g.nodes_with_label(g.labels().get("movie").unwrap())[0];
        ak.add_edge(&mut g, actor, m1);
        let fresh = dkindex_partition::k_bisimulation(&g, 2);
        // The propagate update may over-split but never under-split.
        assert!(ak.index().to_partition().is_refinement_of(&fresh));
    }

    #[test]
    fn update_on_a0_is_trivial() {
        let mut g = build_data();
        let mut a0 = AkIndex::build(&g, 0);
        let before = a0.size();
        let actor = g.nodes_with_label(g.labels().get("actor").unwrap())[0];
        let t1 = g.nodes_with_label(g.labels().get("title").unwrap())[0];
        let work = a0.add_edge(&mut g, actor, t1);
        assert_eq!(work.data_nodes_touched, 0);
        assert_eq!(a0.size(), before);
        a0.index().check_invariants(&g).unwrap();
    }

    #[test]
    fn duplicate_edge_is_a_noop() {
        let mut g = build_data();
        let mut ak = AkIndex::build(&g, 2);
        let d = g.nodes_with_label(g.labels().get("director").unwrap())[0];
        let m1 = g.nodes_with_label(g.labels().get("movie").unwrap())[0];
        // d -> m1 already exists as a tree edge.
        let before = ak.size();
        let work = ak.add_edge(&mut g, d, m1);
        assert_eq!(work, UpdateWork::default());
        assert_eq!(ak.size(), before);
    }

    #[test]
    fn subgraph_addition_matches_rebuild() {
        for k in 0..3 {
            let mut g = build_data();
            let mut ak = AkIndex::build(&g, k);
            let sub = build_data(); // insert a copy of the same document
            ak.add_subgraph(&mut g, &sub);
            ak.index().check_invariants(&g).unwrap();

            let mut g2 = build_data();
            g2.graft_under_root(&build_data());
            let fresh = AkIndex::build(&g2, k);
            assert!(
                ak.index()
                    .to_partition()
                    .same_equivalence(&fresh.index().to_partition()),
                "A({k}) incremental != rebuild"
            );
        }
    }

    #[test]
    fn subgraph_addition_with_new_labels() {
        let mut g = build_data();
        let mut ak = AkIndex::build(&g, 2);
        let mut sub = DataGraph::new();
        let x = sub.add_labeled_node("brand-new-label");
        let sr = sub.root();
        sub.add_edge(sr, x, EdgeKind::Tree);
        let map = ak.add_subgraph(&mut g, &sub);
        ak.index().check_invariants(&g).unwrap();
        let new_node = map[x.index()];
        assert_eq!(g.label_name(new_node), "brand-new-label");
        assert_eq!(ak.index().extent(ak.index().index_of(new_node)), &[new_node]);
    }

    #[test]
    fn update_work_grows_with_k() {
        let mk = |k: usize| {
            let mut g = build_data();
            let mut ak = AkIndex::build(&g, k);
            let actor = g.nodes_with_label(g.labels().get("actor").unwrap())[0];
            let m1 = g.nodes_with_label(g.labels().get("movie").unwrap())[0];
            ak.add_edge(&mut g, actor, m1).data_nodes_touched
        };
        assert!(mk(3) >= mk(1));
    }
}
