//! Invariant auditor for D(k)-indexes — the degradation half of the
//! durability layer.
//!
//! [`audit`] checks a loaded (or long-lived) index against its data graph
//! and reports *named* findings instead of panicking or silently answering
//! wrong. Each finding carries a [`Severity`]:
//!
//! * [`Severity::Corruption`] — the index can return **wrong answers**
//!   (extents don't partition the nodes, a claimed `k` exceeds what the
//!   extents actually satisfy, edges don't project the data graph, …).
//!   [`recover_or_rebuild`] responds by rebuilding the index from the data
//!   graph — graceful degradation, never a panic.
//! * [`Severity::Degraded`] — the index is *correct but below target*
//!   (a block's `k` fell under its requirement, which is legal after edge
//!   updates per §5: updates only lower local similarity). Queries stay
//!   exact; they just validate more. The fix is promotion, not rebuild.
//!
//! The `dkindex doctor` CLI verb runs this audit and exits non-zero exactly
//! when a `Corruption` finding exists.

use crate::dk::construct::DkIndex;
use crate::index_graph::IndexGraph;
use crate::requirements::Requirements;
use dkindex_graph::{DataGraph, LabeledGraph};
use dkindex_telemetry as telemetry;
use std::fmt;

/// The named well-formedness invariants of a D(k)-index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invariant {
    /// Extents are non-empty, disjoint, and cover every data node; the
    /// node→extent map agrees with the extents.
    ExtentPartition,
    /// Every extent member carries the index node's label.
    LabelHomogeneity,
    /// Index edges are exactly the projection of data edges through the
    /// extents (each data edge appears; each index edge is witnessed), and
    /// the parent/child adjacency lists mirror each other.
    EdgeProjection,
    /// Definition 3: `k(A) ≥ k(B) − 1` on every index edge `A → B`.
    StructuralConstraint,
    /// §4.2 stability: each extent's members agree on incoming label paths
    /// up to `k + 1` labels — what Theorem 1 soundness rests on.
    Stability,
    /// Every block's `k` meets its per-label requirement target.
    RequirementCoverage,
    /// The root index node contains the data root and carries its label.
    RootConsistency,
}

impl Invariant {
    /// Stable, human-readable name (used by `dkindex doctor` output).
    pub fn name(&self) -> &'static str {
        match self {
            Invariant::ExtentPartition => "extent-partition",
            Invariant::LabelHomogeneity => "label-homogeneity",
            Invariant::EdgeProjection => "edge-projection",
            Invariant::StructuralConstraint => "structural-constraint",
            Invariant::Stability => "stability",
            Invariant::RequirementCoverage => "requirement-coverage",
            Invariant::RootConsistency => "root-consistency",
        }
    }

    /// Every invariant, in audit order.
    pub fn all() -> [Invariant; 7] {
        [
            Invariant::ExtentPartition,
            Invariant::LabelHomogeneity,
            Invariant::EdgeProjection,
            Invariant::StructuralConstraint,
            Invariant::Stability,
            Invariant::RequirementCoverage,
            Invariant::RootConsistency,
        ]
    }
}

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Correct but below target (more validation work; legal after updates).
    Degraded,
    /// Wrong answers possible; the index must not be trusted.
    Corruption,
}

/// One audit finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which invariant is violated.
    pub invariant: Invariant,
    /// How bad it is.
    pub severity: Severity,
    /// What exactly was found.
    pub detail: String,
}

/// Audit configuration.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// Cap on the `k` checked by the stability invariant (the label-path
    /// comparison is exponential in path length; `SIM_EXACT` nodes would
    /// otherwise be unaffordable).
    pub stability_cap: usize,
    /// Stop collecting findings for one invariant after this many.
    pub max_findings_per_invariant: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            stability_cap: 4,
            max_findings_per_invariant: 8,
        }
    }
}

/// The full audit result.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// All findings, in invariant order.
    pub findings: Vec<Finding>,
}

impl AuditReport {
    /// True when no `Corruption` finding exists (the index may still be
    /// degraded, but every answer it gives is correct).
    pub fn is_sound(&self) -> bool {
        self.findings.iter().all(|f| f.severity != Severity::Corruption)
    }

    /// True when there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings for one invariant.
    pub fn findings_for(&self, invariant: Invariant) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.invariant == invariant)
    }

    /// Per-invariant text table (the `dkindex doctor` output body).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for invariant in Invariant::all() {
            let findings: Vec<&Finding> = self.findings_for(invariant).collect();
            let status = match findings.iter().map(|f| f.severity).max() {
                None => "ok".to_string(),
                Some(Severity::Degraded) => format!("DEGRADED ({})", findings.len()),
                Some(Severity::Corruption) => format!("CORRUPT ({})", findings.len()),
            };
            let _ = writeln!(out, "  {:<24} {status}", invariant.name());
            for f in findings.iter().take(3) {
                let _ = writeln!(out, "    - {}", f.detail);
            }
        }
        out
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render_text())
    }
}

struct Collector {
    findings: Vec<Finding>,
    cap: usize,
}

impl Collector {
    fn push(&mut self, invariant: Invariant, severity: Severity, detail: String) -> bool {
        let count = self
            .findings
            .iter()
            .filter(|f| f.invariant == invariant)
            .count();
        if count >= self.cap {
            return false; // stop scanning this invariant
        }
        self.findings.push(Finding { invariant, severity, detail });
        true
    }
}

/// Audit `index` (with its requirements) against `data`. Never panics on a
/// malformed index: every check bounds-guards its accesses and reports a
/// finding instead.
pub fn audit(
    index: &IndexGraph,
    requirements: &Requirements,
    data: &DataGraph,
    config: &AuditConfig,
) -> AuditReport {
    let span = telemetry::Span::start(&telemetry::metrics::AUDIT_NS);
    let mut c = Collector {
        findings: Vec::new(),
        cap: config.max_findings_per_invariant,
    };

    check_extent_partition(index, data, &mut c);
    check_label_homogeneity(index, data, &mut c);
    check_edge_projection(index, data, &mut c);
    check_structural_constraint(index, &mut c);
    check_stability(index, data, config, &mut c);
    check_requirement_coverage(index, requirements, data, &mut c);
    check_root_consistency(index, data, &mut c);

    telemetry::metrics::AUDIT_RUNS.incr();
    telemetry::metrics::AUDIT_VIOLATIONS.add(c.findings.len() as u64);
    drop(span);
    AuditReport { findings: c.findings }
}

/// [`audit`] for a [`DkIndex`] (index + its own requirements).
pub fn audit_dk(dk: &DkIndex, data: &DataGraph, config: &AuditConfig) -> AuditReport {
    audit(dk.index(), dk.requirements(), data, config)
}

fn check_extent_partition(index: &IndexGraph, data: &DataGraph, c: &mut Collector) {
    let inv = Invariant::ExtentPartition;
    let sev = Severity::Corruption;
    let mut seen = vec![false; data.node_count()];
    for inode in index.node_ids() {
        let extent = index.extent(inode);
        if extent.is_empty() {
            if !c.push(inv, sev, format!("index node {inode:?} has an empty extent")) {
                return;
            }
            continue;
        }
        for &d in extent {
            let Some(slot) = seen.get_mut(d.index()) else {
                if !c.push(inv, sev, format!("extent of {inode:?} references non-existent data node {d:?}")) {
                    return;
                }
                continue;
            };
            if *slot {
                if !c.push(inv, sev, format!("data node {d:?} appears in two extents")) {
                    return;
                }
                continue;
            }
            *slot = true;
            let mapped = (d.index() < index.node_map_len()).then(|| index.index_of(d));
            if mapped != Some(inode)
                && !c.push(inv, sev, format!("node→extent map stale for {d:?}"))
            {
                return;
            }
        }
    }
    for (i, covered) in seen.iter().enumerate() {
        if !covered && !c.push(inv, sev, format!("data node n{i} not covered by any extent")) {
            return;
        }
    }
}

fn check_label_homogeneity(index: &IndexGraph, data: &DataGraph, c: &mut Collector) {
    let inv = Invariant::LabelHomogeneity;
    for inode in index.node_ids() {
        let want = index.labels().name(index.label_of(inode));
        for &d in index.extent(inode) {
            if d.index() >= data.node_count() {
                continue; // already reported by the partition check
            }
            let got = data.label_name(d);
            if got != want
                && !c.push(
                    inv,
                    Severity::Corruption,
                    format!("extent of {inode:?} ({want}) contains {d:?} labeled {got}"),
                )
            {
                return;
            }
        }
    }
}

fn check_edge_projection(index: &IndexGraph, data: &DataGraph, c: &mut Collector) {
    let inv = Invariant::EdgeProjection;
    let sev = Severity::Corruption;
    // Every data edge must appear as an index edge.
    for &(from, to, _) in data.edges() {
        if from.index() >= index.node_map_len() || to.index() >= index.node_map_len() {
            continue; // unreachable after a partition finding; stay safe
        }
        let (fi, ti) = (index.index_of(from), index.index_of(to));
        let msg = format!("data edge {from:?}→{to:?} has no index edge {fi:?}→{ti:?}");
        if fi.index() < index.size()
            && !index.children_of(fi).contains(&ti)
            && !c.push(inv, sev, msg)
        {
            return;
        }
    }
    // Every index edge must be witnessed by a data edge, and the adjacency
    // lists must mirror each other.
    for a in index.node_ids() {
        for &b in index.children_of(a) {
            if b.index() >= index.size() {
                let msg = format!("index edge {a:?}→{b:?} points out of range");
                if !c.push(inv, sev, msg) {
                    return;
                }
                continue;
            }
            if !index.parents_of(b).contains(&a) {
                let msg = format!("index edge {a:?}→{b:?} missing from {b:?}'s parent list");
                if !c.push(inv, sev, msg) {
                    return;
                }
            }
            let witnessed = index.extent(a).iter().any(|&u| {
                u.index() < data.node_count()
                    && data.children_of(u).iter().any(|&v| {
                        v.index() < index.node_map_len() && index.index_of(v) == b
                    })
            });
            if !witnessed {
                let msg = format!("dangling index edge {a:?}→{b:?} (no witnessing data edge)");
                if !c.push(inv, sev, msg) {
                    return;
                }
            }
        }
    }
}

fn check_structural_constraint(index: &IndexGraph, c: &mut Collector) {
    let inv = Invariant::StructuralConstraint;
    for a in index.node_ids() {
        for &b in index.children_of(a) {
            if b.index() >= index.size() {
                continue; // reported by the edge-projection check
            }
            if index.similarity(a).saturating_add(1) < index.similarity(b)
                && !c.push(
                    inv,
                    Severity::Corruption,
                    format!(
                        "edge {a:?}(k={})→{b:?}(k={}) violates k(A) ≥ k(B) − 1",
                        index.similarity(a),
                        index.similarity(b)
                    ),
                )
            {
                return;
            }
        }
    }
}

fn check_stability(
    index: &IndexGraph,
    data: &DataGraph,
    config: &AuditConfig,
    c: &mut Collector,
) {
    use dkindex_graph::traversal::incoming_label_paths_up_to;
    let inv = Invariant::Stability;
    for inode in index.node_ids() {
        let k = index.similarity(inode).min(config.stability_cap);
        let extent = index.extent(inode);
        if extent.len() < 2 || extent.iter().any(|d| d.index() >= data.node_count()) {
            continue;
        }
        // Members with similarity k must agree on incoming label paths of up
        // to k+1 labels (a path of k edges carries k+1 labels).
        let reference = incoming_label_paths_up_to(data, extent[0], k + 1);
        for &m in &extent[1..] {
            if incoming_label_paths_up_to(data, m, k + 1) != reference {
                if !c.push(
                    inv,
                    Severity::Corruption,
                    format!(
                        "extent of {inode:?} claims k={} but {:?} and {m:?} diverge within {k} edges (stale k)",
                        index.similarity(inode),
                        extent[0]
                    ),
                ) {
                    return;
                }
                break; // one finding per extent
            }
        }
    }
}

fn check_requirement_coverage(
    index: &IndexGraph,
    requirements: &Requirements,
    data: &DataGraph,
    c: &mut Collector,
) {
    let inv = Invariant::RequirementCoverage;
    let _ = data;
    for inode in index.node_ids() {
        let label = index.labels().name(index.label_of(inode));
        let target = requirements.get(label);
        if index.similarity(inode) < target
            && !c.push(
                inv,
                Severity::Degraded,
                format!(
                    "{inode:?} ({label}) has k={} below its target {target}",
                    index.similarity(inode)
                ),
            )
        {
            return;
        }
    }
}

fn check_root_consistency(index: &IndexGraph, data: &DataGraph, c: &mut Collector) {
    let inv = Invariant::RootConsistency;
    let sev = Severity::Corruption;
    let root = index.root();
    if root.index() >= index.size() {
        c.push(inv, sev, format!("root index node {root:?} out of range"));
        return;
    }
    if !index.extent(root).contains(&data.root()) {
        c.push(
            inv,
            sev,
            format!("root index node {root:?} does not contain the data root"),
        );
    }
    if data.root().index() < index.node_map_len() && index.index_of(data.root()) != root {
        c.push(
            inv,
            sev,
            "data root maps to a non-root index node".to_string(),
        );
    }
}

/// What [`recover_or_rebuild`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The audit found no corruption; the index was kept as-is.
    Kept,
    /// Corruption was found; the index was rebuilt from the data graph.
    Rebuilt {
        /// Number of corruption findings that triggered the rebuild.
        corruptions: usize,
    },
}

/// Audit `dk`; on any `Corruption` finding, rebuild the index from `data`
/// (keeping the stored requirements) instead of trusting it. Degraded-only
/// findings keep the index — it is still exact, just slower.
pub fn recover_or_rebuild(
    dk: DkIndex,
    data: &DataGraph,
    config: &AuditConfig,
) -> (DkIndex, RecoveryAction, AuditReport) {
    let report = audit_dk(&dk, data, config);
    if report.is_sound() {
        return (dk, RecoveryAction::Kept, report);
    }
    let corruptions = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Corruption)
        .count();
    telemetry::metrics::AUDIT_REBUILDS.incr();
    let rebuilt = DkIndex::build(data, dk.requirements().clone());
    (rebuilt, RecoveryAction::Rebuilt { corruptions }, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::{EdgeKind, NodeId};

    fn sample() -> (DataGraph, DkIndex) {
        let mut g = DataGraph::new();
        let d = g.add_labeled_node("director");
        let m1 = g.add_labeled_node("movie");
        let m2 = g.add_labeled_node("movie");
        let t1 = g.add_labeled_node("title");
        let t2 = g.add_labeled_node("title");
        let a = g.add_labeled_node("actor");
        let r = g.root();
        g.add_edge(r, d, EdgeKind::Tree);
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(d, m1, EdgeKind::Tree);
        g.add_edge(a, m2, EdgeKind::Tree);
        g.add_edge(m1, t1, EdgeKind::Tree);
        g.add_edge(m2, t2, EdgeKind::Tree);
        let dk = DkIndex::build(&g, Requirements::from_pairs([("title", 2)]));
        (g, dk)
    }

    #[test]
    fn healthy_index_is_clean() {
        let (g, dk) = sample();
        let report = audit_dk(&dk, &g, &AuditConfig::default());
        assert!(report.is_clean(), "{report}");
        let (_, action, _) = recover_or_rebuild(dk, &g, &AuditConfig::default());
        assert_eq!(action, RecoveryAction::Kept);
    }

    #[test]
    fn split_extent_corruption_is_detected_and_named() {
        let (g, mut dk) = sample();
        // Craft a "split extent": push a duplicate node holding a data node
        // that already lives in another extent.
        let victim = NodeId::from_index(4); // a title node
        let label = g.label_of(victim);
        let index = dk.index_mut();
        index.push_node(label, vec![victim], 0);
        let report = audit_dk(&dk, &g, &AuditConfig::default());
        assert!(!report.is_sound());
        assert!(
            report.findings_for(Invariant::ExtentPartition).next().is_some(),
            "partition violation must be named: {report}"
        );
    }

    #[test]
    fn stale_k_corruption_is_detected_and_named() {
        let (g, _) = sample();
        // Inflate a block's k beyond what its extent satisfies: the two
        // title nodes differ at k=2 (director vs actor grandparent), so an
        // A(0)-grade index node claiming k=5 is lying.
        let mut dk = DkIndex::build(&g, Requirements::new());
        let title_label = g.labels().get("title").unwrap();
        let index = dk.index_mut();
        let victim = index
            .node_ids()
            .find(|&i| index.label_of(i) == title_label && index.extent(i).len() == 2)
            .expect("A(0) merges both titles");
        // Keep Definition 3 satisfied so only stability flags it.
        index.set_similarity(victim, 5);
        for p in index.node_ids().collect::<Vec<_>>() {
            if index.children_of(p).contains(&victim) {
                index.set_similarity(p, 5);
            }
        }
        let report = audit_dk(&dk, &g, &AuditConfig::default());
        assert!(!report.is_sound());
        let finding = report
            .findings_for(Invariant::Stability)
            .next()
            .expect("stale k must be named");
        assert!(finding.detail.contains("stale k"), "{}", finding.detail);
    }

    #[test]
    fn dangling_index_edge_is_detected_and_named() {
        let (g, mut dk) = sample();
        // Add an index edge no data edge witnesses: actor-block → title-block.
        let index = dk.index_mut();
        let actor = g.labels().get("actor").unwrap();
        let director = g.labels().get("director").unwrap();
        let from = index.node_ids().find(|&i| index.label_of(i) == actor).unwrap();
        let to = index.node_ids().find(|&i| index.label_of(i) == director).unwrap();
        index.add_index_edge(from, to);
        let report = audit_dk(&dk, &g, &AuditConfig::default());
        assert!(!report.is_sound());
        let finding = report
            .findings_for(Invariant::EdgeProjection)
            .next()
            .expect("dangling edge must be named");
        assert!(finding.detail.contains("dangling"), "{}", finding.detail);
    }

    #[test]
    fn below_target_k_is_degraded_not_corrupt() {
        let (g, mut dk) = sample();
        let title = g.labels().get("title").unwrap();
        let index = dk.index_mut();
        let victim = index.node_ids().find(|&i| index.label_of(i) == title).unwrap();
        // Lower below the k=2 target but keep it truthful (any extent is
        // 0-similar to itself; singletons are trivially stable).
        index.set_similarity(victim, 0);
        let report = audit_dk(&dk, &g, &AuditConfig::default());
        assert!(report.is_sound(), "below-target k is not corruption: {report}");
        assert!(!report.is_clean());
        let finding = report
            .findings_for(Invariant::RequirementCoverage)
            .next()
            .expect("coverage gap must be named");
        assert_eq!(finding.severity, Severity::Degraded);
        // Degraded-only: keep the index.
        let (_, action, _) = recover_or_rebuild(dk, &g, &AuditConfig::default());
        assert_eq!(action, RecoveryAction::Kept);
    }

    #[test]
    fn rebuild_restores_a_clean_index() {
        let (g, mut dk) = sample();
        let victim = NodeId::from_index(4);
        let label = g.label_of(victim);
        dk.index_mut().push_node(label, vec![victim], 0);
        let (recovered, action, _) = recover_or_rebuild(dk, &g, &AuditConfig::default());
        assert!(matches!(action, RecoveryAction::Rebuilt { corruptions } if corruptions > 0));
        let report = audit_dk(&recovered, &g, &AuditConfig::default());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn render_text_lists_every_invariant() {
        let (g, dk) = sample();
        let text = audit_dk(&dk, &g, &AuditConfig::default()).render_text();
        for invariant in Invariant::all() {
            assert!(text.contains(invariant.name()), "{text}");
        }
    }
}
