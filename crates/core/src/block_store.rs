//! Persistent, `Arc`-shared block storage for index graphs — the core of
//! the delta-epoch publish path.
//!
//! An [`IndexGraph`](crate::IndexGraph) owns one [`Block`] per index node:
//! the node's label, local similarity `k`, sorted extent, and both
//! adjacency lists. A [`BlockStore`] keeps each block behind an [`Arc`], so
//! cloning a store (and therefore a `DkIndex`) bumps one refcount per block
//! instead of deep-copying extents and adjacency. Mutation goes through
//! [`BlockStore::make_mut`], which copies **only the addressed block** when
//! it is still shared with an older epoch — everything a maintenance batch
//! does not touch stays pointer-identical across epochs.
//!
//! ## COW invariants
//!
//! 1. **Clone is shallow**: `clone()` copies block handles, never block
//!    contents.
//! 2. **Mutation is per-block**: `make_mut(i)` deep-copies block `i` alone,
//!    and only while its `Arc` is shared.
//! 3. **Sharing is observable**: [`BlockStore::ptr_eq_at`] and
//!    [`BlockStore::shared_with`] expose positional pointer identity, which
//!    the sharing regression tests and the `serve.publish.blocks_*`
//!    counters are built on.
//! 4. **Representation never leaks into answers**: a query, snapshot, or
//!    audit sees identical bytes whether its epoch shares every block or
//!    none.
//!
//! This module is inside the `dkindex-analyze` `panic-path` and
//! `nondeterministic-iter` scopes: accessors are `Option`-returning and all
//! iteration is in block-id order.

use dkindex_graph::{LabelId, NodeId};
use std::sync::Arc;

/// Per-index-node state: everything the summary knows about one
/// equivalence class.
#[derive(Clone, Debug)]
pub struct Block {
    /// Label shared by every member of the extent.
    pub label: LabelId,
    /// Local similarity `k` of the node (paper Definition 2).
    pub similarity: usize,
    /// Data nodes summarized by this index node, sorted ascending.
    pub extent: Vec<NodeId>,
    /// Out-neighbors in the index graph.
    pub children: Vec<NodeId>,
    /// In-neighbors in the index graph.
    pub parents: Vec<NodeId>,
}

impl Block {
    /// A block with the given label, extent and similarity and no edges.
    pub fn new(label: LabelId, extent: Vec<NodeId>, similarity: usize) -> Self {
        Block {
            label,
            similarity,
            extent,
            children: Vec::new(),
            parents: Vec::new(),
        }
    }
}

/// An `Arc`-per-block store with copy-on-write mutation. See the module
/// docs for the COW invariants.
#[derive(Clone, Debug, Default)]
pub struct BlockStore {
    blocks: Vec<Arc<Block>>,
}

impl BlockStore {
    /// An empty store.
    pub fn new() -> Self {
        BlockStore { blocks: Vec::new() }
    }

    /// An empty store with room for `n` blocks.
    pub fn with_capacity(n: usize) -> Self {
        BlockStore {
            blocks: Vec::with_capacity(n),
        }
    }

    /// Number of blocks.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the store holds no blocks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Shared view of block `i`, or `None` when out of range.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&Block> {
        self.blocks.get(i).map(Arc::as_ref)
    }

    /// Mutable view of block `i`, or `None` when out of range. When the
    /// block is still shared with another store (an older epoch), it is
    /// deep-copied first — the copy-on-write step (invariant 2).
    #[inline]
    pub fn make_mut(&mut self, i: usize) -> Option<&mut Block> {
        self.blocks.get_mut(i).map(Arc::make_mut)
    }

    /// Append a block, returning its id.
    pub fn push(&mut self, block: Block) -> usize {
        let id = self.blocks.len();
        self.blocks.push(Arc::new(block));
        id
    }

    /// Iterate the blocks in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter().map(Arc::as_ref)
    }

    /// True when block `i` of both stores is the same allocation — i.e.
    /// neither epoch copied it since they diverged.
    pub fn ptr_eq_at(&self, other: &BlockStore, i: usize) -> bool {
        match (self.blocks.get(i), other.blocks.get(i)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Count of positionally pointer-shared blocks with `other` — the
    /// structural-sharing census behind the `serve.publish.blocks_shared` /
    /// `blocks_rebuilt` counters (invariant 3).
    pub fn shared_with(&self, other: &BlockStore) -> usize {
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(k: usize) -> Block {
        Block::new(
            LabelId::from_index(2),
            vec![NodeId::from_index(k)],
            k,
        )
    }

    fn filled(n: usize) -> BlockStore {
        let mut s = BlockStore::with_capacity(n);
        for i in 0..n {
            assert_eq!(s.push(block(i)), i);
        }
        s
    }

    #[test]
    fn push_and_get_round_trip() {
        let s = filled(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(1).unwrap().similarity, 1);
        assert!(s.get(3).is_none());
    }

    #[test]
    fn clone_shares_every_block() {
        let s = filled(5);
        let t = s.clone();
        assert_eq!(t.shared_with(&s), 5);
        for i in 0..5 {
            assert!(t.ptr_eq_at(&s, i));
        }
    }

    #[test]
    fn make_mut_unshares_exactly_one_block() {
        let s = filled(5);
        let mut t = s.clone();
        t.make_mut(2).unwrap().similarity = 99;
        assert_eq!(t.shared_with(&s), 4);
        assert!(!t.ptr_eq_at(&s, 2));
        assert!(t.ptr_eq_at(&s, 1));
        // The older snapshot never observes the write.
        assert_eq!(s.get(2).unwrap().similarity, 2);
        assert_eq!(t.get(2).unwrap().similarity, 99);
    }

    #[test]
    fn make_mut_without_sharing_copies_nothing() {
        let mut s = filled(2);
        let before = s.blocks.first().map(Arc::as_ptr);
        s.make_mut(0).unwrap().similarity = 7;
        let after = s.blocks.first().map(Arc::as_ptr);
        assert_eq!(before, after, "unshared blocks mutate in place");
    }

    #[test]
    fn ptr_eq_at_out_of_range_is_false() {
        let s = filled(2);
        let t = filled(1);
        assert!(!s.ptr_eq_at(&t, 1));
        assert!(!s.ptr_eq_at(&t, 9));
    }

    #[test]
    fn iter_follows_id_order() {
        let s = filled(4);
        let ks: Vec<usize> = s.iter().map(|b| b.similarity).collect();
        assert_eq!(ks, vec![0, 1, 2, 3]);
    }
}
