//! Panic-free byte reading for the durability formats.
//!
//! [`snapshot`](crate::snapshot) and [`wal`](crate::wal) parse
//! attacker-adjacent bytes (truncated files, torn writes, bit flips); the
//! `dkindex-analyze` `panic-path` rule bans slice indexing and `unwrap`
//! there. This cursor is the shared safe substrate: every read returns
//! `Option` and the callers translate `None` into their typed error.

/// A forward-only reader over a byte slice. Reads either consume exactly
/// what they return or leave the cursor untouched and yield `None`.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Cursor<'a> {
    /// Start reading `bytes` from the front.
    pub(crate) fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, offset: 0 }
    }

    /// Bytes consumed so far.
    pub(crate) fn offset(&self) -> usize {
        self.offset
    }

    /// Bytes left to read.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.offset)
    }

    /// Consume and return the next `n` bytes, or `None` (without consuming
    /// anything) when fewer remain.
    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.offset.checked_add(n)?;
        let slice = self.bytes.get(self.offset..end)?;
        self.offset = end;
        Some(slice)
    }

    /// Consume one byte.
    pub(crate) fn u8(&mut self) -> Option<u8> {
        let slice = self.take(1)?;
        slice.first().copied()
    }

    /// Consume a little-endian `u32`.
    pub(crate) fn u32_le(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.array4()?))
    }

    /// Consume four bytes as an array (magic numbers, section tags).
    pub(crate) fn array4(&mut self) -> Option<[u8; 4]> {
        let slice = self.take(4)?;
        let mut out = [0u8; 4];
        for (dst, src) in out.iter_mut().zip(slice) {
            *dst = *src;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_consume_exactly_or_not_at_all() {
        let data = [1u8, 2, 3, 4, 5];
        let mut c = Cursor::new(&data);
        assert_eq!(c.u8(), Some(1));
        assert_eq!(c.u32_le(), Some(u32::from_le_bytes([2, 3, 4, 5])));
        assert_eq!(c.remaining(), 0);
        assert_eq!(c.u8(), None);

        let mut c = Cursor::new(&data);
        assert_eq!(c.take(4).map(<[u8]>::len), Some(4));
        // Only 1 byte left: a 4-byte read fails and consumes nothing.
        assert_eq!(c.array4(), None);
        assert_eq!(c.offset(), 4);
        assert_eq!(c.u8(), Some(5));
    }
}
