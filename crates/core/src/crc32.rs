//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) for the durability layer.
//!
//! The snapshot container and the write-ahead log both checksum their
//! payloads so corruption is *detected* rather than surfacing as a panic or
//! a silently-wrong index. The table is generated at compile time; the whole
//! implementation is dependency-free by design (the container image bans new
//! crates).

const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `bytes` (standard init `!0`, final xor `!0` — matches zlib).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard zlib/IEEE test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"dkindex snapshot payload".to_vec();
        let reference = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut copy = data.clone();
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
