//! The strong DataGuide (Goldman & Widom, VLDB 1997): the deterministic
//! automaton of root-anchored label paths.
//!
//! Built by interpreting the data graph as an NFA and determinizing it
//! (paper §2). Each DataGuide state corresponds to a *set* of data nodes —
//! the targets of one label path from the root — so a data node can appear
//! in many states and, on graph data, the state count can be exponential in
//! the graph size. The paper cites this blow-up as the reason bisimulation
//! summaries are preferred for graphs; [`DataGuideError::TooLarge`] surfaces
//! it instead of hanging.

use dkindex_graph::{DataGraph, LabelId, LabeledGraph, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Error from DataGuide construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataGuideError {
    /// Determinization exceeded the configured state budget.
    TooLarge {
        /// The state budget that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for DataGuideError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataGuideError::TooLarge { limit } => {
                write!(f, "strong DataGuide exceeds {limit} states")
            }
        }
    }
}

impl std::error::Error for DataGuideError {}

/// One DataGuide state: a label and the target set of a label path.
#[derive(Clone, Debug)]
pub struct GuideState {
    /// Label on the incoming path step.
    pub label: LabelId,
    /// Data nodes reachable by the path (this state's target set / extent).
    pub extent: Vec<NodeId>,
}

/// The strong DataGuide.
#[derive(Clone, Debug)]
pub struct DataGuide {
    states: Vec<GuideState>,
    children: Vec<Vec<usize>>,
    root_state: usize,
}

impl DataGuide {
    /// Build the strong DataGuide of `data`, failing if more than
    /// `max_states` states are needed.
    pub fn build(data: &DataGraph, max_states: usize) -> Result<Self, DataGuideError> {
        let mut states: Vec<GuideState> = Vec::new();
        let mut children: Vec<Vec<usize>> = Vec::new();
        let mut memo: HashMap<Vec<NodeId>, usize> = HashMap::new();

        let root_set = vec![data.root()];
        states.push(GuideState {
            label: data.label_of(data.root()),
            extent: root_set.clone(),
        });
        children.push(Vec::new());
        memo.insert(root_set, 0);

        let mut queue = vec![0usize];
        let mut head = 0;
        while head < queue.len() {
            let state = queue[head];
            head += 1;
            // Group successors of the whole target set by label.
            let mut by_label: HashMap<LabelId, Vec<NodeId>> = HashMap::new();
            for &n in &states[state].extent {
                for &c in data.children_of(n) {
                    by_label.entry(data.label_of(c)).or_default().push(c);
                }
            }
            let mut targets: Vec<(LabelId, Vec<NodeId>)> = by_label.into_iter().collect();
            targets.sort_by_key(|&(l, _)| l); // deterministic construction
            for (label, mut set) in targets {
                set.sort_unstable();
                set.dedup();
                let next = match memo.get(&set) {
                    Some(&s) => s,
                    None => {
                        if states.len() >= max_states {
                            return Err(DataGuideError::TooLarge { limit: max_states });
                        }
                        let s = states.len();
                        states.push(GuideState {
                            label,
                            extent: set.clone(),
                        });
                        children.push(Vec::new());
                        memo.insert(set, s);
                        queue.push(s);
                        s
                    }
                };
                children[state].push(next);
            }
        }
        Ok(DataGuide {
            states,
            children,
            root_state: 0,
        })
    }

    /// Number of states — the DataGuide's "index size".
    pub fn size(&self) -> usize {
        self.states.len()
    }

    /// The state reached from the root by following `labels`, if the label
    /// path exists. The DataGuide is deterministic: at most one state.
    pub fn lookup(&self, labels: &[LabelId]) -> Option<&GuideState> {
        let mut state = self.root_state;
        for &l in labels {
            state = *self.children[state]
                .iter()
                .find(|&&c| self.states[c].label == l)?;
        }
        Some(&self.states[state])
    }

    /// Sum of extent sizes — unlike bisimulation summaries, this can exceed
    /// the data node count because extents overlap.
    pub fn total_extent_size(&self) -> usize {
        self.states.iter().map(|s| s.extent.len()).sum()
    }

    /// Evaluate a *root-anchored* regular path expression: the result is the
    /// union of target sets of all guide states reachable from the root by a
    /// word of the language (the word includes the root's own `ROOT` label
    /// as its first symbol, mirroring how label paths anchor at the root).
    ///
    /// Because the DataGuide is built from root paths, it is safe **and**
    /// sound for this query class with no validation — the trade-off against
    /// bisimulation summaries is its potentially exponential size, not
    /// accuracy. Returns the matches and the number of `(state, guide node)`
    /// visits.
    pub fn evaluate_anchored(
        &self,
        nfa: &dkindex_pathexpr::Nfa,
    ) -> (Vec<NodeId>, u64) {
        use dkindex_pathexpr::StateId;
        let closures = nfa.closures();
        let accept = nfa.accept();
        let mut visited = 0u64;
        let mut matches: Vec<NodeId> = Vec::new();
        let mut active =
            vec![false; nfa.state_count() * self.states.len()];
        let mut queue: Vec<(StateId, usize)> = Vec::new();

        // Seed: consume the root state's label from the NFA start.
        let mut start_set = vec![false; nfa.state_count()];
        start_set[nfa.start().index()] = true;
        nfa.eps_close(&mut start_set);
        let root_label = self.states[self.root_state].label;
        let activate = |q: StateId,
                            s: usize,
                            active: &mut Vec<bool>,
                            queue: &mut Vec<(StateId, usize)>,
                            matches: &mut Vec<NodeId>,
                            visited: &mut u64| {
            let slot = q.index() * self.states.len() + s;
            if active[slot] {
                return;
            }
            active[slot] = true;
            *visited += 1;
            if closures[q.index()].contains(&accept) {
                matches.extend_from_slice(&self.states[s].extent);
            }
            queue.push((q, s));
        };
        for (qi, &on) in start_set.iter().enumerate() {
            if !on {
                continue;
            }
            for &(step, target) in nfa.steps_of(StateId::from_index(qi)) {
                if step.matches(root_label) {
                    activate(
                        target,
                        self.root_state,
                        &mut active,
                        &mut queue,
                        &mut matches,
                        &mut visited,
                    );
                }
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let (q, s) = queue[head];
            head += 1;
            for &qc in &closures[q.index()] {
                for &(step, target) in nfa.steps_of(qc) {
                    for &child in &self.children[s] {
                        if step.matches(self.states[child].label) {
                            activate(
                                target,
                                child,
                                &mut active,
                                &mut queue,
                                &mut matches,
                                &mut visited,
                            );
                        }
                    }
                }
            }
        }
        matches.sort_unstable();
        matches.dedup();
        (matches, visited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::EdgeKind;

    fn movie_data() -> DataGraph {
        let mut g = DataGraph::new();
        let d = g.add_labeled_node("director");
        let a = g.add_labeled_node("actor");
        let m1 = g.add_labeled_node("movie");
        let m2 = g.add_labeled_node("movie");
        let t1 = g.add_labeled_node("title");
        let t2 = g.add_labeled_node("title");
        let r = g.root();
        g.add_edge(r, d, EdgeKind::Tree);
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(d, m1, EdgeKind::Tree);
        g.add_edge(a, m2, EdgeKind::Tree);
        g.add_edge(m1, t1, EdgeKind::Tree);
        g.add_edge(m2, t2, EdgeKind::Tree);
        g
    }

    #[test]
    fn lookup_follows_label_paths_exactly() {
        let g = movie_data();
        let guide = DataGuide::build(&g, 1000).unwrap();
        let l = |s: &str| g.labels().get(s).unwrap();
        let hit = guide.lookup(&[l("director"), l("movie"), l("title")]).unwrap();
        assert_eq!(hit.extent.len(), 1);
        assert!(guide.lookup(&[l("director"), l("title")]).is_none());
    }

    #[test]
    fn deterministic_states_dedupe_shared_targets() {
        // Two paths leading to the same node set share a state.
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("a");
        let c = g.add_labeled_node("c");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(r, b, EdgeKind::Tree);
        g.add_edge(a, c, EdgeKind::Tree);
        g.add_edge(b, c, EdgeKind::Reference);
        let guide = DataGuide::build(&g, 1000).unwrap();
        // ROOT, {a,b} (one state: same label, merged target set), {c}.
        assert_eq!(guide.size(), 3);
    }

    #[test]
    fn extents_can_overlap() {
        // Node reachable via two different label paths appears in two states.
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let c = g.add_labeled_node("c");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(r, b, EdgeKind::Tree);
        g.add_edge(a, c, EdgeKind::Tree);
        g.add_edge(b, c, EdgeKind::Reference);
        let guide = DataGuide::build(&g, 1000).unwrap();
        assert!(guide.total_extent_size() > g.node_count() - 1);
    }

    #[test]
    fn anchored_regex_evaluation_is_exact() {
        use dkindex_pathexpr::{parse, Nfa};
        let g = movie_data();
        let guide = DataGuide::build(&g, 1000).unwrap();
        for (expr, anchored) in [
            ("ROOT.director.movie.title", "director.movie.title"),
            ("ROOT._.movie", "_.movie anchored"),
            ("ROOT.(director|actor).movie", ""),
            ("ROOT.director.movie.(title)?", ""),
        ] {
            let _ = anchored;
            let e = parse(expr).unwrap();
            let nfa = Nfa::compile(&e, g.labels());
            let (matches, visited) = guide.evaluate_anchored(&nfa);
            // Ground truth: partial-match evaluation restricted to paths
            // starting at the root = evaluate the same expression directly
            // (expressions here all start with ROOT, which only the root
            // carries, so partial match is root-anchored automatically).
            let truth = {
                use dkindex_pathexpr::{evaluate, LabelIndex};
                let idx = LabelIndex::build(&g);
                evaluate(&g, &nfa, &idx).matches
            };
            assert_eq!(matches, truth, "{expr}");
            assert!(visited > 0, "{expr}");
        }
    }

    #[test]
    fn anchored_star_query_terminates_on_guide_cycles() {
        use dkindex_pathexpr::{parse, Nfa};
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, a, EdgeKind::Reference);
        let guide = DataGuide::build(&g, 100).unwrap();
        let e = parse("ROOT.a.a*").unwrap();
        let nfa = Nfa::compile(&e, g.labels());
        let (matches, _) = guide.evaluate_anchored(&nfa);
        assert_eq!(matches, vec![a]);
    }

    #[test]
    fn state_budget_is_enforced() {
        let g = movie_data();
        let err = DataGuide::build(&g, 2).unwrap_err();
        assert_eq!(err, DataGuideError::TooLarge { limit: 2 });
    }

    #[test]
    fn cycle_terminates() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, a, EdgeKind::Reference);
        let guide = DataGuide::build(&g, 100).unwrap();
        assert_eq!(guide.size(), 2); // {root}, {a} (self-loop reuses {a})
    }
}
