//! Algorithm 1: the Local Similarity Broadcast Algorithm.
//!
//! Query-load requirements alone can violate the D(k) structural constraint
//! (Definition 3): a parent's local similarity may not be more than one less
//! than its child's. Starting from the largest requirement, the broadcast
//! pushes `k − 1` to all parents of every block that requires `k`, repeating
//! with the next largest value until all constraints hold.

use dkindex_graph::LabeledGraph;
use dkindex_partition::{BlockId, Partition};
use std::collections::BinaryHeap;

/// Parent-block adjacency of a partition: for each block, the sorted set of
/// blocks containing parents of its members.
pub fn block_parent_sets<G: LabeledGraph>(g: &G, p: &Partition) -> Vec<Vec<BlockId>> {
    let mut parents: Vec<Vec<BlockId>> = vec![Vec::new(); p.block_count()];
    for node in g.node_ids() {
        let b = p.block_of(node);
        for &q in g.parents_of(node) {
            parents[b.index()].push(p.block_of(q));
        }
    }
    for v in &mut parents {
        v.sort_unstable();
        v.dedup();
    }
    parents
}

/// Run the broadcast over the block graph of `p` (normally the label-split
/// partition), updating `requirements` in place so that for every block edge
/// `A → B`, `requirements[A] ≥ requirements[B] − 1`.
///
/// O(m + t·log t) where `m` is the block-graph edge count and `t` the number
/// of raises — each block's requirement only ever increases, and each raise
/// enqueues once.
pub fn broadcast_requirements<G: LabeledGraph>(
    g: &G,
    p: &Partition,
    requirements: &mut [usize],
) {
    assert_eq!(requirements.len(), p.block_count());
    let parents = block_parent_sets(g, p);
    // Max-heap of (requirement, block); stale entries skipped lazily.
    let mut heap: BinaryHeap<(usize, BlockId)> = requirements
        .iter()
        .enumerate()
        .filter(|&(_, &r)| r > 0)
        .map(|(b, &r)| (r, BlockId::from_index(b)))
        .collect();
    while let Some((r, b)) = heap.pop() {
        if requirements[b.index()] != r {
            continue; // stale entry
        }
        let needed = r - 1;
        for &q in &parents[b.index()] {
            if requirements[q.index()] < needed {
                requirements[q.index()] = needed;
                if needed > 0 {
                    heap.push((needed, q));
                }
            }
        }
    }
}

/// Check the broadcast postcondition on the block graph.
pub fn requirements_consistent<G: LabeledGraph>(
    g: &G,
    p: &Partition,
    requirements: &[usize],
) -> bool {
    let parents = block_parent_sets(g, p);
    (0..p.block_count()).all(|b| {
        parents[b]
            .iter()
            .all(|&q| requirements[q.index()] + 1 >= requirements[b])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::{DataGraph, EdgeKind};

    /// ROOT -> a -> b -> c -> d chain (one node per label).
    fn chain() -> DataGraph {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let c = g.add_labeled_node("c");
        let d = g.add_labeled_node("d");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, b, EdgeKind::Tree);
        g.add_edge(b, c, EdgeKind::Tree);
        g.add_edge(c, d, EdgeKind::Tree);
        g
    }

    fn req_of(g: &DataGraph, p: &Partition, reqs: &[usize], label: &str) -> usize {
        use dkindex_graph::LabeledGraph;
        let l = g.labels().get(label).unwrap();
        let node = g.nodes_with_label(l)[0];
        reqs[p.block_of(node).index()]
    }

    #[test]
    fn paper_example_parent_raised_to_child_minus_one() {
        // §4.2: parent requiring 0 with child requiring 2 → parent reset to 1.
        let g = chain();
        let p = Partition::by_label(&g);
        let mut reqs = vec![0; p.block_count()];
        let l_c = g.labels().get("c").unwrap();
        let c_block = p.block_of(g.nodes_with_label(l_c)[0]);
        reqs[c_block.index()] = 2;
        broadcast_requirements(&g, &p, &mut reqs);
        assert_eq!(req_of(&g, &p, &reqs, "b"), 1);
        assert_eq!(req_of(&g, &p, &reqs, "a"), 0);
        assert_eq!(req_of(&g, &p, &reqs, "c"), 2);
        assert!(requirements_consistent(&g, &p, &reqs));
    }

    #[test]
    fn deep_requirement_cascades_up_the_chain() {
        let g = chain();
        let p = Partition::by_label(&g);
        let mut reqs = vec![0; p.block_count()];
        let l_d = g.labels().get("d").unwrap();
        reqs[p.block_of(g.nodes_with_label(l_d)[0]).index()] = 3;
        broadcast_requirements(&g, &p, &mut reqs);
        assert_eq!(req_of(&g, &p, &reqs, "c"), 2);
        assert_eq!(req_of(&g, &p, &reqs, "b"), 1);
        assert_eq!(req_of(&g, &p, &reqs, "a"), 0);
        assert!(requirements_consistent(&g, &p, &reqs));
    }

    #[test]
    fn existing_higher_requirements_are_kept() {
        let g = chain();
        let p = Partition::by_label(&g);
        let mut reqs = vec![0; p.block_count()];
        let l_b = g.labels().get("b").unwrap();
        let l_c = g.labels().get("c").unwrap();
        reqs[p.block_of(g.nodes_with_label(l_b)[0]).index()] = 4;
        reqs[p.block_of(g.nodes_with_label(l_c)[0]).index()] = 2;
        broadcast_requirements(&g, &p, &mut reqs);
        assert_eq!(req_of(&g, &p, &reqs, "b"), 4); // unchanged: 4 ≥ 2-1
        assert_eq!(req_of(&g, &p, &reqs, "a"), 3); // from b's 4
        assert_eq!(req_of(&g, &p, &reqs, "ROOT"), 2);
    }

    #[test]
    fn cycles_terminate() {
        // a <-> b cycle via reference edge.
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, b, EdgeKind::Tree);
        g.add_edge(b, a, EdgeKind::Reference);
        let p = Partition::by_label(&g);
        let mut reqs = vec![0; p.block_count()];
        let l_b = g.labels().get("b").unwrap();
        reqs[p.block_of(g.nodes_with_label(l_b)[0]).index()] = 5;
        broadcast_requirements(&g, &p, &mut reqs);
        assert!(requirements_consistent(&g, &p, &reqs));
        // a must be ≥ 4 (parent of b), b ≥ 5 stays, a's own parents: root ≥ 3, b ≥ a-1.
        assert!(req_of(&g, &p, &reqs, "a") >= 4);
    }

    #[test]
    fn zero_requirements_are_untouched() {
        let g = chain();
        let p = Partition::by_label(&g);
        let mut reqs = vec![0; p.block_count()];
        broadcast_requirements(&g, &p, &mut reqs);
        assert!(reqs.iter().all(|&r| r == 0));
    }

    #[test]
    fn block_parent_sets_dedup() {
        // Two parents in the same block produce one entry.
        let mut g = DataGraph::new();
        let a1 = g.add_labeled_node("a");
        let a2 = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a1, EdgeKind::Tree);
        g.add_edge(r, a2, EdgeKind::Tree);
        g.add_edge(a1, b, EdgeKind::Tree);
        g.add_edge(a2, b, EdgeKind::Reference);
        let p = Partition::by_label(&g);
        let parents = block_parent_sets(&g, &p);
        let b_block = p.block_of(b);
        assert_eq!(parents[b_block.index()].len(), 1);
    }
}
