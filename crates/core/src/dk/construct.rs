//! Algorithm 2: D(k)-index construction.
//!
//! Start from the label-split partition, repair the requirements with the
//! broadcast algorithm (Algorithm 1), then refine round by round: in round
//! `k`, only blocks whose (inherited) requirement is at least `k` are split
//! against the previous round's partition. After `k_max` rounds every block's
//! extent is `requirement`-bisimilar and the structural constraint of
//! Definition 3 holds, because the broadcast guaranteed
//! `req(parent) ≥ req(child) − 1` and requirements are inherited on splits.

use crate::dk::broadcast::broadcast_requirements;
use crate::index_graph::IndexGraph;
use crate::requirements::Requirements;
use dkindex_graph::{DataGraph, LabeledGraph, NodeId};
use dkindex_partition::{Partition, RefineEngine};
use dkindex_telemetry as telemetry;

/// Compute the D(k) partition of `g` together with the per-block local
/// similarity (the broadcast-adjusted requirement). Generic over
/// [`LabeledGraph`] so the same routine re-indexes an index graph (the
/// subgraph-addition update and the demoting process, via Theorem 2).
pub fn dk_partition<G: LabeledGraph + Sync>(
    g: &G,
    reqs: &Requirements,
) -> (Partition, Vec<usize>) {
    dk_partition_with_options(g, reqs, true)
}

/// [`dk_partition`] with the broadcast step (Algorithm 1) made optional.
///
/// `use_broadcast = false` exists **only** for the ablation experiment that
/// demonstrates why Algorithm 1 is necessary: without it the result can
/// violate the Definition 3 constraint and claim soundness it does not have.
pub fn dk_partition_with_options<G: LabeledGraph + Sync>(
    g: &G,
    reqs: &Requirements,
    use_broadcast: bool,
) -> (Partition, Vec<usize>) {
    dk_partition_with_engine(g, reqs, use_broadcast, &mut RefineEngine::new())
}

/// [`dk_partition_with_options`] running its selective rounds on a
/// caller-owned [`RefineEngine`], so repeated constructions reuse scratch
/// buffers and a multi-threaded engine fans signature computation out.
/// The partition is identical for every engine configuration.
pub fn dk_partition_with_engine<G: LabeledGraph + Sync>(
    g: &G,
    reqs: &Requirements,
    use_broadcast: bool,
    engine: &mut RefineEngine,
) -> (Partition, Vec<usize>) {
    let span = telemetry::Span::start(&telemetry::metrics::DK_CONSTRUCT_NS);
    let p0 = Partition::by_label(g);
    let table = reqs.resolve(g.labels());
    let mut block_req: Vec<usize> = p0
        .block_ids()
        .map(|b| table[g.label_of(p0.members(b)[0]).index()])
        .collect();
    if use_broadcast {
        broadcast_requirements(g, &p0, &mut block_req);
    }
    let k_max = block_req.iter().copied().max().unwrap_or(0);

    let mut p = p0;
    for k in 1..=k_max {
        let req_snapshot = block_req.clone();
        let (next, changed) =
            engine.refine_round_selective(g, &p, |b| req_snapshot[b.index()] >= k);
        if changed {
            // New blocks inherit the requirement of the block they split from.
            let mut next_req = vec![0usize; next.block_count()];
            for b in next.block_ids() {
                let member = next.members(b)[0];
                next_req[b.index()] = req_snapshot[p.block_of(member).index()];
            }
            block_req = next_req;
        }
        p = next;
    }
    drop(span);
    telemetry::metrics::DK_CONSTRUCTIONS.incr();
    telemetry::metrics::DK_CONSTRUCT_ROUNDS.add(k_max as u64);
    telemetry::metrics::DK_BLOCKS_PER_CONSTRUCTION.record(p.block_count() as u64);
    (p, block_req)
}

/// Re-index `base` (an index graph treated as a data graph, per Theorem 2)
/// for `reqs`, with two safety valves beyond the paper's sketch: each merged
/// block's similarity is capped by the *recorded* similarity of its
/// constituent index nodes (edge updates may have lowered them below the
/// requirement — the recorded value is the truthful bound), and the
/// Definition 3 constraint is re-enforced afterwards. Both are no-ops when
/// `base` is a clean D(k)-index, so the Theorem 2 equality is preserved.
pub(crate) fn reindex_dk(base: &IndexGraph, reqs: &Requirements) -> IndexGraph {
    let (p, mut sims) = dk_partition(base, reqs);
    for b in p.block_ids() {
        let min_member = p
            .members(b)
            .iter()
            .map(|&inode| base.similarity(inode))
            .min()
            .expect("blocks are non-empty");
        sims[b.index()] = sims[b.index()].min(min_member);
    }
    let mut merged = IndexGraph::reindex(base, &p, sims);
    crate::dk::demote::enforce_structural_constraint(&mut merged);
    merged
}

/// The D(k)-index: an adaptive structural summary whose per-node local
/// similarities follow the query load (paper §4).
#[derive(Clone, Debug)]
pub struct DkIndex {
    index: IndexGraph,
    requirements: Requirements,
}

impl DkIndex {
    /// Build the D(k)-index of `data` for the given per-label requirements
    /// (Algorithm 2). Empty requirements give the label-split graph; uniform
    /// requirements `k` give exactly the A(k)-index.
    pub fn build(data: &DataGraph, requirements: Requirements) -> Self {
        DkIndex::build_with_engine(data, requirements, &mut RefineEngine::new())
    }

    /// [`Self::build`] on a caller-owned [`RefineEngine`]: repeated builds
    /// reuse its scratch, and `RefineEngine::with_threads(n)` parallelises
    /// the refinement rounds. The index is identical for every engine
    /// configuration.
    pub fn build_with_engine(
        data: &DataGraph,
        requirements: Requirements,
        engine: &mut RefineEngine,
    ) -> Self {
        let (p, sims) = dk_partition_with_engine(data, &requirements, true, engine);
        DkIndex {
            index: IndexGraph::from_data_partition(data, &p, sims),
            requirements,
        }
    }

    /// Sharded construction: [`Self::build`] with the initial refinement
    /// work fanned across `threads` worker threads (`0` = machine
    /// parallelism). The engine's deterministic node-order merge makes the
    /// result byte-identical to the single-threaded build — and to the
    /// retained [`super::dk_partition_reference`] oracle — for every thread
    /// count.
    pub fn build_sharded(data: &DataGraph, requirements: Requirements, threads: usize) -> Self {
        DkIndex::build_with_engine(data, requirements, &mut RefineEngine::with_threads(threads))
    }

    /// Reassemble a D(k)-index from stored parts (the `store` module's
    /// loader, which validates invariants against the loaded data graph).
    pub(crate) fn from_parts(index: IndexGraph, requirements: Requirements) -> Self {
        DkIndex {
            index,
            requirements,
        }
    }

    /// The underlying index graph.
    pub fn index(&self) -> &IndexGraph {
        &self.index
    }

    /// Mutable access for update algorithms within the crate.
    pub(crate) fn index_mut(&mut self) -> &mut IndexGraph {
        &mut self.index
    }

    /// Replace the index graph (used by re-indexing updates).
    pub(crate) fn replace_index(&mut self, index: IndexGraph) {
        self.index = index;
    }

    /// The requirements this index was built/tuned for.
    pub fn requirements(&self) -> &Requirements {
        &self.requirements
    }

    /// Update the stored requirements (demote/promote bookkeeping).
    pub(crate) fn set_requirements(&mut self, reqs: Requirements) {
        self.requirements = reqs;
    }

    /// Number of index nodes (the paper's index size).
    pub fn size(&self) -> usize {
        self.index.size()
    }

    /// The extent of the index node containing `data_node`.
    ///
    /// A data node appended to the graph after construction is not yet
    /// refined into any index block; until the next update or rebuild folds
    /// it in, its extent is the singleton `{data_node}` — returned here as
    /// an owned fallback rather than panicking on the unmapped id.
    pub fn extent_of(&self, data_node: NodeId) -> std::borrow::Cow<'_, [NodeId]> {
        if data_node.index() < self.index.node_map_len() {
            std::borrow::Cow::Borrowed(self.index.extent(self.index.index_of(data_node)))
        } else {
            std::borrow::Cow::Owned(vec![data_node])
        }
    }

    /// Register every data node appended after construction (ids at or past
    /// the index's node map) as a fresh singleton index node with local
    /// similarity 0. Called by the update algorithms before they resolve
    /// node → block mappings, so updates touching fresh nodes never panic.
    pub(crate) fn register_fresh_nodes(&mut self, data: &DataGraph) {
        while self.index.node_map_len() < data.node_count() {
            let n = NodeId::from_index(self.index.node_map_len());
            let label = self.index.intern(data.label_name(n));
            self.index.push_node(label, vec![n], 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::EdgeKind;
    use dkindex_partition::k_bisimulation;

    /// The construction example of the paper's Figure 2: label E requires
    /// local similarity 2, all other labels require 1.
    ///
    /// Graph: ROOT → A₁ → B₁ → E₁ ; ROOT → A₂ → C → E₂ ; B₂ under C.
    /// (A reconstruction exercising the same mechanism: E's requirement 2
    /// forces its parents to ≥ 1, and E nodes split apart at round 2 because
    /// their parents' 1-bisimulation classes differ.)
    fn figure2_like() -> (DataGraph, Vec<NodeId>) {
        let mut g = DataGraph::new();
        let a1 = g.add_labeled_node("A");
        let a2 = g.add_labeled_node("A");
        let b1 = g.add_labeled_node("B");
        let c = g.add_labeled_node("C");
        let b2 = g.add_labeled_node("B");
        let e1 = g.add_labeled_node("E");
        let e2 = g.add_labeled_node("E");
        let r = g.root();
        g.add_edge(r, a1, EdgeKind::Tree);
        g.add_edge(r, a2, EdgeKind::Tree);
        g.add_edge(a1, b1, EdgeKind::Tree);
        g.add_edge(a2, c, EdgeKind::Tree);
        g.add_edge(c, b2, EdgeKind::Tree);
        g.add_edge(b1, e1, EdgeKind::Tree);
        g.add_edge(b2, e2, EdgeKind::Tree);
        (g, vec![a1, a2, b1, c, b2, e1, e2])
    }

    #[test]
    fn empty_requirements_give_label_split() {
        let (g, _) = figure2_like();
        let dk = DkIndex::build(&g, Requirements::new());
        dk.index().check_invariants(&g).unwrap();
        assert_eq!(dk.size(), 5); // ROOT, A, B, C, E
        for i in dk.index().node_ids() {
            assert_eq!(dk.index().similarity(i), 0);
        }
    }

    #[test]
    fn uniform_requirements_equal_ak_index() {
        let (g, _) = figure2_like();
        for k in 0..4 {
            let dk = DkIndex::build(&g, Requirements::uniform(k));
            let ak = k_bisimulation(&g, k);
            assert!(
                dk.index().to_partition().same_equivalence(&ak),
                "D(uniform {k}) != A({k})"
            );
            dk.index().check_invariants(&g).unwrap();
        }
    }

    #[test]
    fn figure2_mixed_requirements() {
        let (g, n) = figure2_like();
        let reqs = Requirements::from_pairs([("A", 1), ("B", 1), ("C", 1), ("E", 2)]);
        let dk = DkIndex::build(&g, reqs);
        dk.index().check_invariants(&g).unwrap();
        let idx = dk.index();
        // E nodes: 1-bisimilar (both have B parents) but their B parents'
        // 1-classes differ (B₁ under A, B₂ under C) → split at round 2.
        let (e1, e2) = (n[5], n[6]);
        assert_ne!(idx.index_of(e1), idx.index_of(e2));
        // B nodes split at round 1 already (parents A vs C).
        let (b1, b2) = (n[2], n[4]);
        assert_ne!(idx.index_of(b1), idx.index_of(b2));
        // A nodes are 1-bisimilar (both under ROOT): stay together.
        let (a1, a2) = (n[0], n[1]);
        assert_eq!(idx.index_of(a1), idx.index_of(a2));
        // Similarities: E blocks get 2, B blocks get 1 (broadcast: ≥ 2-1).
        assert_eq!(idx.similarity(idx.index_of(e1)), 2);
        assert_eq!(idx.similarity(idx.index_of(b1)), 1);
        // Extents truly are as bisimilar as claimed.
        idx.check_extent_bisimilarity(&g, 4).unwrap();
    }

    #[test]
    fn broadcast_inside_construction_repairs_constraints() {
        let (g, _) = figure2_like();
        // Only E requires similarity (2); B/C/A default to 0 → broadcast must
        // raise B (E's parent label) to 1.
        let reqs = Requirements::from_pairs([("E", 2)]);
        let dk = DkIndex::build(&g, reqs);
        dk.index().check_invariants(&g).unwrap(); // includes Definition 3 check
        let idx = dk.index();
        let b_label = g.labels().get("B").unwrap();
        for i in idx.node_ids() {
            if idx.label_of(i) == b_label {
                assert_eq!(idx.similarity(i), 1);
            }
        }
    }

    #[test]
    fn requirement_capped_by_graph_depth_is_harmless() {
        let (g, _) = figure2_like();
        let dk = DkIndex::build(&g, Requirements::uniform(10));
        dk.index().check_invariants(&g).unwrap();
        // Equivalent to the full bisimulation.
        let fix = dkindex_partition::bisimulation_fixpoint(&g);
        assert!(dk.index().to_partition().same_equivalence(&fix));
    }

    #[test]
    fn dk_is_between_a0_and_full_bisimulation() {
        let (g, _) = figure2_like();
        let reqs = Requirements::from_pairs([("E", 2)]);
        let dk = DkIndex::build(&g, reqs);
        let a0 = Partition::by_label(&g);
        let fix = dkindex_partition::bisimulation_fixpoint(&g);
        let p = dk.index().to_partition();
        assert!(p.is_refinement_of(&a0));
        assert!(fix.is_refinement_of(&p));
    }

    #[test]
    fn extent_of_returns_block_members() {
        let (g, n) = figure2_like();
        let dk = DkIndex::build(&g, Requirements::new());
        let extent = dk.extent_of(n[5]); // an E node under label-split
        assert!(extent.contains(&n[5]) && extent.contains(&n[6]));
    }

    #[test]
    fn extent_of_falls_back_to_singleton_for_post_construction_nodes() {
        let (mut g, _) = figure2_like();
        let dk = DkIndex::build(&g, Requirements::new());
        // A node appended after construction has no index block yet: its
        // extent is the singleton fallback, not a panic.
        let fresh = g.add_labeled_node("Z");
        assert_eq!(dk.extent_of(fresh).as_ref(), &[fresh]);
    }
}
