//! The demoting process (paper §5.4).
//!
//! Refinement-style updates grow the index; when size becomes a liability the
//! D(k)-index is shrunk by *lowering* per-label requirements and merging
//! index nodes with the same label. Per Theorem 2 there is no need to
//! reconstruct from the data graph: the current index is a refinement of the
//! target D(k)-index, so the target is obtained by treating the current
//! index graph as a data graph and re-running construction on it —
//! [`IndexGraph::reindex`].
//!
//! Two safety valves beyond the paper's sketch (documented in DESIGN.md):
//! merged blocks' similarities are capped by the *recorded* similarity of
//! their constituents (edge updates may have lowered them below the new
//! requirement), and the Definition 3 constraint is re-enforced afterwards.

use crate::dk::construct::DkIndex;
use crate::index_graph::IndexGraph;
use crate::requirements::Requirements;
use dkindex_graph::{LabeledGraph, NodeId};
use dkindex_telemetry as telemetry;
use std::collections::VecDeque;

impl DkIndex {
    /// Demote to (lower) `new_requirements`, merging index nodes without
    /// touching the data graph. Returns the number of index nodes saved.
    pub fn demote(&mut self, new_requirements: Requirements) -> usize {
        let _span = telemetry::Span::start(&telemetry::metrics::DK_DEMOTE_NS);
        let before = self.size();
        let merged = crate::dk::construct::reindex_dk(self.index(), &new_requirements);
        self.replace_index(merged);
        self.set_requirements(new_requirements);
        let saved = before.saturating_sub(self.size());
        telemetry::metrics::DK_DEMOTIONS.incr();
        telemetry::metrics::DK_DEMOTE_NODES_SAVED.add(saved as u64);
        saved
    }
}

/// Restore Definition 3 (`k(A) ≥ k(B) − 1` on every edge `A → B`) by
/// lowering similarities, worklist-style. A no-op on well-formed indexes.
pub fn enforce_structural_constraint(index: &mut IndexGraph) {
    let mut queue: VecDeque<NodeId> = index.node_ids().collect();
    while let Some(a) = queue.pop_front() {
        let bound = index.similarity(a).saturating_add(1);
        let children: Vec<NodeId> = index.children_of(a).to_vec();
        for b in children {
            if index.similarity(b) > bound {
                index.set_similarity(b, bound);
                queue.push_back(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate_on_data, IndexEvaluator};
    use dkindex_graph::{DataGraph, EdgeKind};
    use dkindex_pathexpr::parse;

    fn data() -> DataGraph {
        let mut g = DataGraph::new();
        let d = g.add_labeled_node("director");
        let a = g.add_labeled_node("actor");
        let m1 = g.add_labeled_node("movie");
        let m2 = g.add_labeled_node("movie");
        let t1 = g.add_labeled_node("title");
        let t2 = g.add_labeled_node("title");
        let r = g.root();
        g.add_edge(r, d, EdgeKind::Tree);
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(d, m1, EdgeKind::Tree);
        g.add_edge(a, m2, EdgeKind::Tree);
        g.add_edge(m1, t1, EdgeKind::Tree);
        g.add_edge(m2, t2, EdgeKind::Tree);
        g
    }

    #[test]
    fn demote_matches_fresh_build_theorem2() {
        let g = data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(2));
        let saved = dk.demote(Requirements::uniform(1));
        assert!(saved > 0);
        dk.index().check_invariants(&g).unwrap();
        let fresh = DkIndex::build(&g, Requirements::uniform(1));
        assert!(dk
            .index()
            .to_partition()
            .same_equivalence(&fresh.index().to_partition()));
    }

    #[test]
    fn demote_to_label_split() {
        let g = data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(3));
        dk.demote(Requirements::new());
        assert_eq!(dk.size(), 5); // ROOT, director, actor, movie, title
        dk.index().check_invariants(&g).unwrap();
    }

    #[test]
    fn demote_after_edge_updates_stays_sound() {
        let mut g = data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(2));
        // Lower similarities with updates first.
        let a = g.nodes_with_label(g.labels().get("actor").unwrap())[0];
        let t1 = g.nodes_with_label(g.labels().get("title").unwrap())[0];
        dk.add_edge(&mut g, a, t1);
        // Now demote: capped similarities must stay truthful.
        dk.demote(Requirements::uniform(1));
        dk.index().check_invariants(&g).unwrap();
        dk.index().check_extent_path_similarity(&g, 4).unwrap();
        for expr in ["movie.title", "actor.title", "director.movie.title"] {
            let e = parse(expr).unwrap();
            let out = IndexEvaluator::new(dk.index(), &g).evaluate(&e);
            assert_eq!(out.matches, evaluate_on_data(&g, &e).0, "{expr}");
        }
    }

    #[test]
    fn demote_then_promote_round_trip() {
        let g = data();
        let reqs2 = Requirements::uniform(2);
        let mut dk = DkIndex::build(&g, reqs2.clone());
        let size2 = dk.size();
        dk.demote(Requirements::new());
        assert!(dk.size() < size2);
        // Promote back up.
        dk.set_requirements(reqs2);
        dk.promote_to_requirements(&g);
        assert_eq!(dk.size(), size2);
        dk.index().check_invariants(&g).unwrap();
    }

    #[test]
    fn enforce_constraint_lowers_violators() {
        let g = data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(2));
        // Manufacture a violation.
        let t1 = g.nodes_with_label(g.labels().get("title").unwrap())[0];
        let t_inode = dk.index().index_of(t1);
        dk.index_mut().set_similarity(t_inode, 50);
        assert!(dk.index().check_invariants(&g).is_err());
        let mut fixed = dk.index().clone();
        enforce_structural_constraint(&mut fixed);
        fixed.check_invariants(&g).unwrap();
    }

    #[test]
    fn demote_is_idempotent() {
        let g = data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(2));
        dk.demote(Requirements::uniform(1));
        let size = dk.size();
        let saved = dk.demote(Requirements::uniform(1));
        assert_eq!(saved, 0);
        assert_eq!(dk.size(), size);
    }
}
