//! Algorithms 4 & 5: the D(k)-index edge-addition update (paper §5.2).
//!
//! Where the A(k)/1-index propagate update re-partitions extents by touching
//! the data graph, the D(k) update never splits anything: it computes the
//! highest local similarity `k_N` that the target index node can *keep*
//! (Algorithm 4, `Update_Local_Similarity` — a label-path comparison walked
//! entirely inside the index graph), assigns it, and lowers downstream
//! neighbors just enough to restore the Definition 3 constraint (Algorithm 5,
//! a breadth-first walk that stops as soon as a node already satisfies its
//! bound). The extents — and therefore the index size — are unchanged;
//! queries pay with more validation until a promoting pass runs.

use crate::dk::construct::DkIndex;
use crate::index_graph::IndexGraph;
use dkindex_graph::{DataGraph, EdgeKind, LabelId, LabeledGraph, NodeId};
use dkindex_telemetry as telemetry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Outcome of a D(k) edge-addition update.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeUpdateOutcome {
    /// The new local similarity assigned to the target index node (`k_N`).
    pub new_similarity: usize,
    /// Index nodes whose similarity the BFS lowered (including the target
    /// if its similarity actually decreased).
    pub lowered: u64,
    /// Index nodes touched by the whole update (Algorithm 4's path-set walk
    /// plus Algorithm 5's BFS) — the machine-independent work measure
    /// reported next to wall-clock in the Table 1 reproduction.
    pub index_nodes_touched: u64,
}

/// Algorithm 4: the maximal `k_N` such that every label path of length `k_N`
/// into `v_inode` *through* `u_inode` already matched `v_inode` in the index
/// graph before the new edge. Must be called **before** inserting the index
/// edge `u_inode → v_inode`.
pub fn update_local_similarity(
    index: &IndexGraph,
    u_inode: NodeId,
    v_inode: NodeId,
    touched: &mut u64,
) -> usize {
    let upbound = index
        .similarity(u_inode)
        .saturating_add(1)
        .min(index.similarity(v_inode));

    // Path sets keyed by label path (outermost label first), valued by the
    // index nodes at which matching node paths start. Ordered maps keep the
    // growth loop's walk deterministic (the `nondeterministic-iter`
    // contract for `core::dk::*`).
    type PathSet = BTreeMap<Vec<LabelId>, BTreeSet<NodeId>>;
    let mut new_paths: PathSet = BTreeMap::new();
    new_paths.insert(vec![index.label_of(u_inode)], [u_inode].into_iter().collect());
    let mut old_paths: PathSet = BTreeMap::new();
    for &p in index.parents_of(v_inode) {
        old_paths
            .entry(vec![index.label_of(p)])
            .or_default()
            .insert(p);
    }
    *touched += 1 + index.parents_of(v_inode).len() as u64;

    let extend = |paths: &PathSet, touched: &mut u64| -> PathSet {
        let mut out: PathSet = BTreeMap::new();
        for (path, starts) in paths {
            for &w in starts {
                for &x in index.parents_of(w) {
                    *touched += 1;
                    let mut longer = Vec::with_capacity(path.len() + 1);
                    longer.push(index.label_of(x));
                    longer.extend_from_slice(path);
                    out.entry(longer).or_default().insert(x);
                }
            }
        }
        out
    };

    let mut k_n = 0;
    while k_n < upbound {
        let subset = new_paths.keys().all(|p| old_paths.contains_key(p));
        if !subset {
            break;
        }
        k_n += 1;
        if k_n == upbound {
            break; // capped: no need to grow the path sets further
        }
        old_paths = extend(&old_paths, touched);
        new_paths = extend(&new_paths, touched);
        if new_paths.is_empty() {
            // No longer paths arrive through U at all: every (vacuously
            // absent) longer path matches; the cap is the only limit left.
            k_n = upbound;
            break;
        }
    }
    k_n
}

/// Algorithm 5: lower downstream similarities to restore Definition 3,
/// stopping at nodes that already satisfy the bound.
fn lower_downstream(index: &mut IndexGraph, start: NodeId, outcome: &mut EdgeUpdateOutcome) {
    let mut queue = VecDeque::new();
    queue.push_back(start);
    while let Some(w) = queue.pop_front() {
        let bound = index.similarity(w).saturating_add(1);
        let children: Vec<NodeId> = index.children_of(w).to_vec();
        for x in children {
            outcome.index_nodes_touched += 1;
            if bound < index.similarity(x) {
                index.set_similarity(x, bound);
                outcome.lowered += 1;
                queue.push_back(x);
            }
            // else: X unchanged — stop propagating through X.
        }
    }
}

impl DkIndex {
    /// Edge-addition update (Algorithms 4+5): add the data edge `u → v` and
    /// adjust local similarities. Never touches the data graph beyond the
    /// edge insertion itself, and never changes extents or index size.
    pub fn add_edge(&mut self, data: &mut DataGraph, u: NodeId, v: NodeId) -> EdgeUpdateOutcome {
        let _span = telemetry::Span::start(&telemetry::metrics::DK_EDGE_UPDATE_NS);
        // Nodes appended to the data graph since construction have no index
        // block yet; fold them in as singletons before resolving u and v.
        self.register_fresh_nodes(data);
        let mut outcome = EdgeUpdateOutcome::default();
        if !data.add_edge(u, v, EdgeKind::Reference) {
            outcome.new_similarity = self.index().similarity(self.index().index_of(v));
            return outcome; // duplicate edge: nothing changes
        }
        let u_inode = self.index().index_of(u);
        let v_inode = self.index().index_of(v);

        let k_n = update_local_similarity(
            self.index(),
            u_inode,
            v_inode,
            &mut outcome.index_nodes_touched,
        );
        outcome.new_similarity = k_n;

        let index = self.index_mut();
        index.add_index_edge(u_inode, v_inode);
        if k_n < index.similarity(v_inode) {
            index.set_similarity(v_inode, k_n);
            outcome.lowered += 1;
        }
        lower_downstream(index, v_inode, &mut outcome);
        telemetry::metrics::DK_EDGE_UPDATES.incr();
        telemetry::metrics::DK_EDGE_NODES_LOWERED.add(outcome.lowered);
        telemetry::metrics::DK_EDGE_NODES_TOUCHED.add(outcome.index_nodes_touched);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate_on_data, IndexEvaluator};
    use crate::requirements::Requirements;
    use dkindex_pathexpr::parse;

    /// The Figure 3 shape: chains a → b → c → d → e of index nodes, plus a
    /// side branch x → c whose `c` node has a *different* ancestry. Under
    /// uniform requirements the c-nodes split into C₁ = {c under b} and
    /// C₂ = {c under x}, and D already has a C₁ parent — the precondition of
    /// the paper's "D's local similarity can stay at 1" example.
    fn figure3_data() -> DataGraph {
        let mut g = DataGraph::new();
        let r = g.root();
        // Two identical chains a -> b -> c -> d -> e.
        for _ in 0..2 {
            let a = g.add_labeled_node("a");
            let b = g.add_labeled_node("b");
            let c = g.add_labeled_node("c");
            let d = g.add_labeled_node("d");
            let e = g.add_labeled_node("e");
            g.add_edge(r, a, EdgeKind::Tree);
            g.add_edge(a, b, EdgeKind::Tree);
            g.add_edge(b, c, EdgeKind::Tree);
            g.add_edge(c, d, EdgeKind::Tree);
            g.add_edge(d, e, EdgeKind::Tree);
        }
        // Side branch: x -> c (a `c` with different ancestry, no children).
        let x = g.add_labeled_node("x");
        let c_side = g.add_labeled_node("c");
        g.add_edge(r, x, EdgeKind::Tree);
        g.add_edge(x, c_side, EdgeKind::Tree);
        g
    }

    fn node(g: &DataGraph, label: &str, nth: usize) -> NodeId {
        g.nodes_with_label(g.labels().get(label).unwrap())[nth]
    }

    /// Regression for the ordered-PathSet rewrite (was `HashMap`/`HashSet`):
    /// the growth loop must walk its path sets in a declared order, so
    /// repeated runs of the same update sequence produce identical
    /// similarities, touch counts, and serialized index bytes in-process —
    /// the byte-identity contract the `nondeterministic-iter` rule guards.
    #[test]
    fn repeated_update_runs_are_byte_identical() {
        let run = || {
            let mut g = figure3_data();
            let mut dk = DkIndex::build(&g, Requirements::uniform(4));
            let mut outcomes = Vec::new();
            for (from_label, from_n, to_label, to_n) in
                [("c", 2, "d", 0), ("a", 0, "e", 1), ("x", 0, "b", 0)]
            {
                let from = node(&g, from_label, from_n);
                let to = node(&g, to_label, to_n);
                let o = dk.add_edge(&mut g, from, to);
                outcomes.push((o.new_similarity, o.lowered, o.index_nodes_touched));
            }
            let mut bytes = Vec::new();
            crate::store::save_dk(&dk, &g, &mut bytes).unwrap();
            (outcomes, bytes)
        };
        let first = run();
        for _ in 0..4 {
            assert_eq!(run(), first, "edge update walk is schedule-dependent");
        }
    }

    #[test]
    fn figure3_new_edge_from_existing_parent_label_keeps_similarity_one() {
        // Paper §5.2: D has a parent labeled c, so adding the side-branch
        // c → d₁ keeps D's local similarity at 1 (not 0): the length-1 label
        // path [c] into D through the new edge already matched D, but the
        // length-2 path [x, c] did not. E is then lowered to 2.
        let mut g = figure3_data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(4));
        let c_side = node(&g, "c", 2); // the c under x
        let d1 = node(&g, "d", 0);
        let outcome = dk.add_edge(&mut g, c_side, d1);
        assert_eq!(outcome.new_similarity, 1);
        let idx = dk.index();
        assert_eq!(idx.similarity(idx.index_of(d1)), 1);
        let e1 = node(&g, "e", 0);
        assert_eq!(idx.similarity(idx.index_of(e1)), 2);
        idx.check_invariants(&g).unwrap();
        idx.check_extent_path_similarity(&g, 5).unwrap();
    }

    #[test]
    fn edge_from_unrelated_label_drops_similarity_to_zero() {
        let mut g = figure3_data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(3));
        // a → e : e's extents have no a-labeled parents.
        let a1 = node(&g, "a", 0);
        let e1 = node(&g, "e", 0);
        let outcome = dk.add_edge(&mut g, a1, e1);
        assert_eq!(outcome.new_similarity, 0);
        let idx = dk.index();
        assert_eq!(idx.similarity(idx.index_of(e1)), 0);
        idx.check_invariants(&g).unwrap();
    }

    #[test]
    fn size_is_unchanged_by_updates() {
        let mut g = figure3_data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(3));
        let before = dk.size();
        for (from, to) in [("a", "e"), ("b", "d"), ("e", "a")] {
            let u = node(&g, from, 0);
            let v = node(&g, to, 1);
            dk.add_edge(&mut g, u, v);
        }
        assert_eq!(dk.size(), before);
        dk.index().check_invariants(&g).unwrap();
    }

    #[test]
    fn queries_remain_exact_after_updates() {
        let mut g = figure3_data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(4));
        let b1 = node(&g, "b", 0);
        let d2 = node(&g, "d", 1);
        dk.add_edge(&mut g, b1, d2);
        for expr in ["a.b.c.d.e", "b.d", "c.d.e", "b.d.e", "_.d"] {
            let e = parse(expr).unwrap();
            let truth = evaluate_on_data(&g, &e).0;
            let out = IndexEvaluator::new(dk.index(), &g).evaluate(&e);
            assert_eq!(out.matches, truth, "{expr}");
        }
    }

    #[test]
    fn lowered_similarities_stay_sound() {
        let mut g = figure3_data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(4));
        let a1 = node(&g, "a", 0);
        let e1 = node(&g, "e", 0);
        dk.add_edge(&mut g, a1, e1);
        // Claimed similarities never exceed actual bisimilarity.
        dk.index().check_extent_path_similarity(&g, 5).unwrap();
    }

    #[test]
    fn bfs_stops_at_satisfied_nodes() {
        let mut g = figure3_data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(4));
        // a → d lowers D to 0 and E to 1.
        let a1 = node(&g, "a", 0);
        let d1 = node(&g, "d", 0);
        let first = dk.add_edge(&mut g, a1, d1);
        assert_eq!(first.new_similarity, 0);
        let e1 = node(&g, "e", 0);
        {
            let idx = dk.index();
            assert_eq!(idx.similarity(idx.index_of(d1)), 0);
            assert_eq!(idx.similarity(idx.index_of(e1)), 1);
        }
        // a → c lowers C₁ to 0; D's bound becomes 1 but D is already at 0,
        // so the BFS stops there and E keeps its value.
        let c1 = node(&g, "c", 0);
        let second = dk.add_edge(&mut g, a1, c1);
        assert_eq!(second.new_similarity, 0);
        let idx = dk.index();
        assert_eq!(idx.similarity(idx.index_of(c1)), 0);
        assert_eq!(idx.similarity(idx.index_of(d1)), 0);
        assert_eq!(idx.similarity(idx.index_of(e1)), 1);
        idx.check_extent_path_similarity(&g, 5).unwrap();
    }

    #[test]
    fn add_edge_on_a_fresh_node_registers_a_singleton() {
        let mut g = figure3_data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(2));
        let size_before = dk.size();
        // A node appended after construction: extent_of falls back to the
        // singleton, and add_edge registers it instead of panicking.
        let fresh = g.add_labeled_node("f");
        assert_eq!(dk.extent_of(fresh).as_ref(), &[fresh]);
        let b1 = node(&g, "b", 0);
        dk.add_edge(&mut g, b1, fresh);
        assert_eq!(dk.size(), size_before + 1);
        assert_eq!(dk.extent_of(fresh).as_ref(), &[fresh]);
        dk.index().check_invariants(&g).unwrap();
        // The fresh node is reachable through the index, exactly.
        let e = parse("b.f").unwrap();
        let out = IndexEvaluator::new(dk.index(), &g).evaluate(&e);
        assert_eq!(out.matches, evaluate_on_data(&g, &e).0);
        assert_eq!(out.matches, vec![fresh]);
        // An update *originating* at a fresh node also registers it.
        let fresh2 = g.add_labeled_node("f");
        let e1 = node(&g, "e", 0);
        dk.add_edge(&mut g, fresh2, e1);
        dk.index().check_invariants(&g).unwrap();
    }

    #[test]
    fn duplicate_edge_is_noop() {
        let mut g = figure3_data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(3));
        let a1 = node(&g, "a", 0);
        let b1 = node(&g, "b", 0);
        let sims_before: Vec<usize> = dk
            .index()
            .node_ids()
            .map(|i| dk.index().similarity(i))
            .collect();
        let outcome = dk.add_edge(&mut g, a1, b1); // a1 → b1 already exists
        assert_eq!(outcome.lowered, 0);
        let sims_after: Vec<usize> = dk
            .index()
            .node_ids()
            .map(|i| dk.index().similarity(i))
            .collect();
        assert_eq!(sims_before, sims_after);
    }

    #[test]
    fn update_touches_only_index_nodes() {
        // The touch counter is bounded by a polynomial in the (small) index
        // size, independent of extent sizes.
        let mut g = figure3_data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(3));
        let a1 = node(&g, "a", 0);
        let e1 = node(&g, "e", 0);
        let outcome = dk.add_edge(&mut g, a1, e1);
        assert!(outcome.index_nodes_touched < 100);
    }

    #[test]
    fn parallel_chain_edge_keeps_full_similarity() {
        // c₁ → d₂ crosses the two identical chains: every label path through
        // C₁ into D already matched D, so k_N reaches the upbound
        // min(k_C₁ + 1, k_D).
        let mut g = figure3_data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(4));
        let c1 = node(&g, "c", 0);
        let d2 = node(&g, "d", 1);
        let idx_kd = dk.index().similarity(dk.index().index_of(d2));
        let idx_kc = dk.index().similarity(dk.index().index_of(c1));
        let outcome = dk.add_edge(&mut g, c1, d2);
        assert_eq!(outcome.new_similarity, idx_kd.min(idx_kc + 1));
        dk.index().check_extent_path_similarity(&g, 5).unwrap();
    }
}
