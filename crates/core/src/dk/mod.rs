//! The D(k)-index: construction (Algorithms 1–2), updates (Algorithms 3–5),
//! and the promoting/demoting tuning processes (paper §4–§5).
//!
//! Map from paper sections to submodules:
//!
//! * §4.1 requirement mining lives in [`crate::mining`]; the per-label
//!   requirements land here as [`crate::Requirements`].
//! * §4.2 Algorithm 1 (broadcast of local similarities along the
//!   Definition 3 constraint) — [`broadcast`].
//! * §4.2 Algorithm 2 (construction by selective refinement rounds) —
//!   [`construct`], with [`dk_partition_reference`] retained in the
//!   import-isolated [`mod@reference`] module as the uninstrumented oracle for
//!   equivalence tests.
//! * §5.1 Algorithm 3 (subgraph addition, Theorem 2) — [`subgraph`].
//! * §5.2 Algorithms 4–5 (edge addition: `Update_Local_Similarity` plus the
//!   BFS similarity lowering) — [`edge_update`].
//! * §5.3 Algorithm 6 (promoting: re-splitting extents to raised
//!   requirements) — [`promote`].
//! * §5.4 demoting (merging via re-indexing, Theorem 2) — [`demote`].
//!
//! Construction, promotion, demotion and edge updates are instrumented with
//! the `dk.*` counters and span histograms of `dkindex_telemetry::metrics`;
//! the recorder is off by default and observationally transparent.

pub mod broadcast;
pub mod construct;
pub mod demote;
pub mod edge_update;
pub mod promote;
pub mod reference;
pub mod subgraph;

pub use broadcast::{block_parent_sets, broadcast_requirements, requirements_consistent};
pub use construct::{
    dk_partition, dk_partition_with_engine, dk_partition_with_options, DkIndex,
};
pub use reference::dk_partition_reference;
pub use demote::enforce_structural_constraint;
pub use edge_update::{update_local_similarity, EdgeUpdateOutcome};
