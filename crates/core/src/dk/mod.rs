//! The D(k)-index: construction (Algorithms 1–2), updates (Algorithms 3–5),
//! and the promoting/demoting tuning processes (paper §4–§5).

pub mod broadcast;
pub mod construct;
pub mod demote;
pub mod edge_update;
pub mod promote;
pub mod subgraph;

pub use broadcast::{block_parent_sets, broadcast_requirements, requirements_consistent};
pub use construct::{
    dk_partition, dk_partition_reference, dk_partition_with_engine, dk_partition_with_options,
    DkIndex,
};
pub use demote::enforce_structural_constraint;
pub use edge_update::{update_local_similarity, EdgeUpdateOutcome};
