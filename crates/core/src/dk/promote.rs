//! Algorithm 6: the promoting process (paper §5.3).
//!
//! Edge updates gradually *lower* local similarities, so more queries trigger
//! validation. The promoting process — run periodically — upgrades an index
//! node's local similarity back up: first its parents are (recursively)
//! promoted to `k_n − 1`, then its extent is split until it is stable with
//! respect to every parent's successor set, exactly as in construction.
//! Batch promotion processes higher targets first so ancestor promotions are
//! shared ("some index node promotions may be saved").

use crate::dk::construct::DkIndex;
use crate::index_graph::IndexGraph;
use dkindex_graph::{DataGraph, LabeledGraph, NodeId};
use dkindex_telemetry as telemetry;
use std::collections::HashSet;

impl DkIndex {
    /// Promote the index node containing `data_node` to local similarity
    /// `k_n`. Returns the number of extent splits performed.
    pub fn promote(&mut self, data: &DataGraph, data_node: NodeId, k_n: usize) -> usize {
        telemetry::metrics::DK_PROMOTE_CALLS.incr();
        let mut splits = 0;
        // A split performed during promotion can move `data_node` into the
        // fresh fragment; re-resolve and continue until its node is raised.
        loop {
            let inode = self.index().index_of(data_node);
            if self.index().similarity(inode) >= k_n {
                telemetry::metrics::DK_PROMOTE_SPLITS.add(splits as u64);
                return splits;
            }
            promote_inode(self.index_mut(), data, inode, k_n, &mut splits, 0);
        }
    }

    /// Promote a batch of `(data node, k)` targets, highest `k` first.
    ///
    /// Duplicate targets — the same data node twice, or two members of the
    /// same extent — describe one promotion, not two: the batch is deduped by
    /// the target's *current* index block (keeping the highest requested `k`
    /// per block) before any split work, so the returned split count matches
    /// a sequential [`DkIndex::promote`] loop over the same targets.
    pub fn promote_batch(&mut self, data: &DataGraph, targets: &[(NodeId, usize)]) -> usize {
        // (block, data node, k); deterministic dedupe: group by block, keep
        // the highest k (ties broken by lowest data-node index).
        let mut ordered: Vec<(NodeId, NodeId, usize)> = targets
            .iter()
            .map(|&(n, k)| (self.index().index_of(n), n, k))
            .collect();
        ordered.sort_by_key(|&(b, n, k)| (b.index(), std::cmp::Reverse(k), n.index()));
        ordered.dedup_by_key(|entry| entry.0);
        ordered.sort_by_key(|&(_, n, k)| (std::cmp::Reverse(k), n.index()));
        let mut splits = 0;
        for (_, n, k) in ordered {
            splits += self.promote(data, n, k);
        }
        splits
    }

    /// Promote every index node whose label carries a requirement in
    /// `self.requirements()` back up to that requirement — the "periodic
    /// tuning" use of the promoting process after a stream of edge updates.
    ///
    /// Iterates until no index node sits below its label's requirement:
    /// promoting one node splits others (its recursive parents), and the
    /// split fragments may themselves still need a raise.
    pub fn promote_to_requirements(&mut self, data: &DataGraph) -> usize {
        let _span = telemetry::Span::start(&telemetry::metrics::DK_PROMOTE_NS);
        let reqs = self.requirements().clone();
        let mut splits = 0;
        loop {
            let table = reqs.resolve(self.index().labels());
            // One representative per lagging index node, highest first.
            let mut targets: Vec<(NodeId, usize)> = Vec::new();
            for inode in self.index().node_ids() {
                let label = self.index().label_of(inode);
                let want = table.get(label.index()).copied().unwrap_or(0);
                if self.index().similarity(inode) < want {
                    targets.push((self.index().extent(inode)[0], want));
                }
            }
            if targets.is_empty() {
                return splits;
            }
            splits += self.promote_batch(data, &targets);
        }
    }
}

/// Recursive promotion of one index node (Algorithm 6).
fn promote_inode(
    index: &mut IndexGraph,
    data: &DataGraph,
    inode: NodeId,
    k_n: usize,
    splits: &mut usize,
    depth: usize,
) {
    if index.similarity(inode) >= k_n {
        return;
    }
    // Defensive bound: k decreases by one per level, so recursion deeper
    // than the initial k_n plus the index diameter indicates a logic error.
    assert!(depth <= 2 * k_n + 64, "promotion recursion runaway");

    // Step 2: promote parents to k_n - 1 (re-reading the parent list each
    // time, since promoting one parent may split others). A node that is its
    // own parent (a self-loop in the index graph) is promoted to k_n - 1
    // like any other parent — the recursion is on a strictly smaller k, so
    // it terminates, and without it the step-3 split would run against a
    // parent of insufficient similarity and claim bisimilarity it lacks.
    if k_n > 0 {
        loop {
            let pending: Option<NodeId> = index
                .parents_of(inode)
                .iter()
                .copied()
                .find(|&w| index.similarity(w) < k_n - 1);
            match pending {
                Some(w) => promote_inode(index, data, w, k_n - 1, splits, depth + 1),
                None => break,
            }
        }
    }

    // Step 3: split extent(inode) against each parent's successor set,
    // iterated to a fixpoint. A single pass over a parent snapshot is not
    // enough: splitting can change a fragment's parent list (and, through
    // index self-loops, the splitter extents themselves), so each fragment
    // is re-checked against its *current* parents until all are stable.
    let mut fragments: Vec<NodeId> = vec![inode];
    'restabilize: loop {
        for i in 0..fragments.len() {
            let f = fragments[i];
            let parents: Vec<NodeId> = index.parents_of(f).to_vec();
            for w in parents {
                // Succ(W) over the data graph.
                let succ: HashSet<NodeId> = index
                    .extent(w)
                    .iter()
                    .flat_map(|&m| data.children_of(m).iter().copied())
                    .collect();
                let inside: HashSet<NodeId> = index
                    .extent(f)
                    .iter()
                    .copied()
                    .filter(|m| succ.contains(m))
                    .collect();
                if !inside.is_empty() && inside.len() < index.extent(f).len() {
                    let new_node = index.split_extent(f, &inside, k_n, data);
                    *splits += 1;
                    fragments.push(new_node);
                    continue 'restabilize;
                }
            }
        }
        break;
    }
    for f in fragments {
        index.set_similarity(f, k_n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate_on_data, IndexEvaluator};
    use crate::requirements::Requirements;
    use dkindex_graph::EdgeKind;
    use dkindex_pathexpr::parse;

    /// director/actor movie graph where titles need k=2 to be exact.
    fn data() -> DataGraph {
        let mut g = DataGraph::new();
        let d = g.add_labeled_node("director");
        let a = g.add_labeled_node("actor");
        let m1 = g.add_labeled_node("movie");
        let m2 = g.add_labeled_node("movie");
        let t1 = g.add_labeled_node("title");
        let t2 = g.add_labeled_node("title");
        let r = g.root();
        g.add_edge(r, d, EdgeKind::Tree);
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(d, m1, EdgeKind::Tree);
        g.add_edge(a, m2, EdgeKind::Tree);
        g.add_edge(m1, t1, EdgeKind::Tree);
        g.add_edge(m2, t2, EdgeKind::Tree);
        g
    }

    #[test]
    fn promote_from_label_split_reaches_requirement() {
        let g = data();
        let mut dk = DkIndex::build(&g, Requirements::new()); // all k = 0
        let t1 = g.nodes_with_label(g.labels().get("title").unwrap())[0];
        let splits = dk.promote(&g, t1, 2);
        assert!(splits > 0);
        let idx = dk.index();
        assert_eq!(idx.similarity(idx.index_of(t1)), 2);
        idx.check_invariants(&g).unwrap();
        idx.check_extent_bisimilarity(&g, 4).unwrap();
    }

    #[test]
    fn promoted_index_equals_fresh_dk() {
        let g = data();
        let mut dk = DkIndex::build(&g, Requirements::new());
        let t1 = g.nodes_with_label(g.labels().get("title").unwrap())[0];
        let t2 = g.nodes_with_label(g.labels().get("title").unwrap())[1];
        dk.promote(&g, t1, 2);
        dk.promote(&g, t2, 2);
        let fresh = DkIndex::build(&g, Requirements::from_pairs([("title", 2)]));
        assert!(dk
            .index()
            .to_partition()
            .same_equivalence(&fresh.index().to_partition()));
    }

    #[test]
    fn promote_is_idempotent() {
        let g = data();
        let mut dk = DkIndex::build(&g, Requirements::new());
        let t1 = g.nodes_with_label(g.labels().get("title").unwrap())[0];
        dk.promote(&g, t1, 2);
        let size = dk.size();
        let splits = dk.promote(&g, t1, 2);
        assert_eq!(splits, 0);
        assert_eq!(dk.size(), size);
    }

    #[test]
    fn promote_restores_soundness_after_edge_updates() {
        let mut g = data();
        let reqs = Requirements::from_pairs([("title", 2)]);
        let mut dk = DkIndex::build(&g, reqs);
        let e = parse("director.movie.title").unwrap();

        // Degrade with an update: new movie under both director and actor.
        let a = g.nodes_with_label(g.labels().get("actor").unwrap())[0];
        let m1 = g.nodes_with_label(g.labels().get("movie").unwrap())[0];
        dk.add_edge(&mut g, a, m1);
        let degraded = IndexEvaluator::new(dk.index(), &g).evaluate(&e);
        assert!(degraded.validated, "update should force validation");

        // Periodic promotion restores requirement-level similarity.
        dk.promote_to_requirements(&g);
        dk.index().check_invariants(&g).unwrap();
        dk.index().check_extent_bisimilarity(&g, 4).unwrap();
        let restored = IndexEvaluator::new(dk.index(), &g).evaluate(&e);
        assert!(!restored.validated, "promotion should remove validation");
        assert_eq!(restored.matches, evaluate_on_data(&g, &e).0);
    }

    #[test]
    fn promote_batch_orders_high_k_first() {
        let g = data();
        let mut dk = DkIndex::build(&g, Requirements::new());
        let t1 = g.nodes_with_label(g.labels().get("title").unwrap())[0];
        let m1 = g.nodes_with_label(g.labels().get("movie").unwrap())[0];
        let splits = dk.promote_batch(&g, &[(m1, 1), (t1, 2)]);
        assert!(splits > 0);
        let idx = dk.index();
        assert!(idx.similarity(idx.index_of(t1)) >= 2);
        assert!(idx.similarity(idx.index_of(m1)) >= 1);
        idx.check_invariants(&g).unwrap();
    }

    #[test]
    fn promote_batch_dedupes_duplicate_and_same_block_targets() {
        let g = data();
        let title = g.labels().get("title").unwrap();
        let movie = g.labels().get("movie").unwrap();
        let t1 = g.nodes_with_label(title)[0];
        let t2 = g.nodes_with_label(title)[1];
        let m1 = g.nodes_with_label(movie)[0];
        // t1 appears twice and t2 shares t1's initial block: three of the
        // five entries describe promotions already covered by another entry.
        let targets = [(t1, 2), (t1, 2), (t2, 2), (t2, 1), (m1, 1)];

        let mut batched = DkIndex::build(&g, Requirements::new());
        let batch_splits = batched.promote_batch(&g, &targets);

        let mut sequential = DkIndex::build(&g, Requirements::new());
        let mut seq_splits = 0;
        for &(n, k) in &targets {
            seq_splits += sequential.promote(&g, n, k);
        }

        assert_eq!(batch_splits, seq_splits, "batch must not double-count splits");
        assert!(batched
            .index()
            .to_partition()
            .same_equivalence(&sequential.index().to_partition()));
        batched.index().check_invariants(&g).unwrap();
    }

    #[test]
    fn promote_on_cyclic_graph_terminates() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, b, EdgeKind::Tree);
        g.add_edge(b, a, EdgeKind::Reference);
        let mut dk = DkIndex::build(&g, Requirements::new());
        dk.promote(&g, b, 3);
        dk.index().check_invariants(&g).unwrap();
        dk.index().check_extent_bisimilarity(&g, 4).unwrap();
    }
}
