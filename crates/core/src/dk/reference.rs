//! The uninstrumented D(k) construction oracle.
//!
//! This module is the baseline that certifies the engine-backed fast path
//! ([`crate::dk::construct::dk_partition_with_engine`] and the sharded
//! builds): equivalence tests demand byte-identical partitions from both.
//! For that comparison to mean anything, the oracle must stay independent
//! of what it checks — it is forbidden (and `dkindex-analyze` enforces)
//! from touching `RefineEngine` or `dkindex_telemetry`. It pays one
//! allocation per node per round ([`dkindex_partition::refine_round_selective`]
//! hashes freshly-built signature vectors), which also makes it the
//! "before" side of the construction benchmark.

use crate::dk::broadcast::broadcast_requirements;
use crate::requirements::Requirements;
use dkindex_graph::LabeledGraph;
use dkindex_partition::Partition;

/// The pre-engine D(k) partition loop, kept verbatim as the oracle for
/// equivalence tests and the before/after construction benchmark. Produces
/// partitions identical to
/// [`dk_partition_with_engine`](crate::dk::construct::dk_partition_with_engine).
pub fn dk_partition_reference<G: LabeledGraph>(
    g: &G,
    reqs: &Requirements,
    use_broadcast: bool,
) -> (Partition, Vec<usize>) {
    let p0 = Partition::by_label(g);
    let table = reqs.resolve(g.labels());
    let mut block_req: Vec<usize> = p0
        .block_ids()
        .map(|b| table[g.label_of(p0.members(b)[0]).index()])
        .collect();
    if use_broadcast {
        broadcast_requirements(g, &p0, &mut block_req);
    }
    let k_max = block_req.iter().copied().max().unwrap_or(0);

    let mut p = p0;
    for k in 1..=k_max {
        let req_snapshot = block_req.clone();
        let (next, changed) = dkindex_partition::refine_round_selective(g, &p, |b| {
            req_snapshot[b.index()] >= k
        });
        if changed {
            // New blocks inherit the requirement of the block they split from.
            let mut next_req = vec![0usize; next.block_count()];
            for b in next.block_ids() {
                let member = next.members(b)[0];
                next_req[b.index()] = req_snapshot[p.block_of(member).index()];
            }
            block_req = next_req;
        }
        p = next;
    }
    (p, block_req)
}
