//! Algorithm 3: the D(k)-index subgraph-addition update (paper §5.1).
//!
//! Inserting a new file into the database = grafting a new subgraph `H`
//! under the root of the data graph. The update (1) builds the D(k)-index
//! `I_H` of `H` with the same per-label requirements, (2) grafts `I_H` under
//! the root of `I_G`, and (3) treats the combined index graph as a data graph
//! and recomputes its D(k)-index, merging extents. Correctness rests on
//! Theorem 2: the D(k)-index built from any refinement of a D(k)-index is
//! the D(k)-index itself — and the stitched graph is such a refinement,
//! because grafting under the root changes no incoming path of an existing
//! node.

use crate::dk::construct::DkIndex;
use crate::index_graph::IndexGraph;
use dkindex_graph::{DataGraph, LabeledGraph, NodeId};

impl DkIndex {
    /// Subgraph-addition update: graft `sub` under `data`'s root and repair
    /// the index without re-reading the old data graph. Returns the mapping
    /// from `sub`'s node ids to the new ids in `data`.
    pub fn add_subgraph(&mut self, data: &mut DataGraph, sub: &DataGraph) -> Vec<NodeId> {
        // Step 1: index the new subgraph alone, same requirements.
        let sub_dk = DkIndex::build(sub, self.requirements().clone());

        // Step 2: graft the data and stitch the two index graphs.
        let map = data.graft_under_root(sub);
        let stitched = stitch(self.index(), sub_dk.index(), sub, &map, data);

        // Step 3: re-index the stitched graph as if it were a data graph
        // (capped re-indexing: see `reindex_dk` — a no-op for clean indexes,
        // truth-preserving when edge updates lowered similarities earlier).
        let reqs = self.requirements().clone();
        self.replace_index(crate::dk::construct::reindex_dk(&stitched, &reqs));
        map
    }
}

/// Graft `sub_index` (the D(k)-index of `sub`) under the root of `base`,
/// remapping extents through `map` (sub node id → data node id). The
/// sub-index's root node is merged into `base`'s root node.
pub(crate) fn stitch(
    base: &IndexGraph,
    sub_index: &IndexGraph,
    sub: &DataGraph,
    map: &[NodeId],
    data: &DataGraph,
) -> IndexGraph {
    let mut stitched = base.clone();
    stitched.grow_node_map(data.node_count());

    // Copy each non-root sub-index node, translating labels and extents.
    let mut inode_map: Vec<NodeId> = vec![stitched.root(); sub_index.node_count()];
    for inode in sub_index.node_ids() {
        if inode == sub_index.root() {
            continue; // merged with the base root
        }
        let name = sub_index.labels().name(sub_index.label_of(inode));
        let label = stitched.intern(name);
        let extent: Vec<NodeId> = sub_index
            .extent(inode)
            .iter()
            .map(|&n| map[n.index()])
            .collect();
        inode_map[inode.index()] =
            stitched.push_node(label, extent, sub_index.similarity(inode));
    }
    // `sub`'s root maps to the data root, which already belongs to the base
    // root's extent; nothing to assign for it.
    let _ = sub;

    // Copy the sub-index edges through the node map.
    for from in sub_index.node_ids() {
        for &to in sub_index.children_of(from) {
            stitched.add_index_edge(inode_map[from.index()], inode_map[to.index()]);
        }
    }
    stitched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::Requirements;
    use dkindex_graph::EdgeKind;

    fn base_data() -> DataGraph {
        let mut g = DataGraph::new();
        let d = g.add_labeled_node("director");
        let m = g.add_labeled_node("movie");
        let t = g.add_labeled_node("title");
        let r = g.root();
        g.add_edge(r, d, EdgeKind::Tree);
        g.add_edge(d, m, EdgeKind::Tree);
        g.add_edge(m, t, EdgeKind::Tree);
        g
    }

    fn new_file() -> DataGraph {
        // A second "document": an actor with a movie (different structure).
        let mut h = DataGraph::new();
        let a = h.add_labeled_node("actor");
        let m = h.add_labeled_node("movie");
        let t = h.add_labeled_node("title");
        let n = h.add_labeled_node("name");
        let r = h.root();
        h.add_edge(r, a, EdgeKind::Tree);
        h.add_edge(a, m, EdgeKind::Tree);
        h.add_edge(m, t, EdgeKind::Tree);
        h.add_edge(a, n, EdgeKind::Tree);
        h
    }

    #[test]
    fn theorem2_update_equals_rebuild() {
        for reqs in [
            Requirements::new(),
            Requirements::uniform(1),
            Requirements::uniform(2),
            Requirements::from_pairs([("title", 2), ("movie", 1)]),
        ] {
            // Incremental path.
            let mut g1 = base_data();
            let mut dk = DkIndex::build(&g1, reqs.clone());
            dk.add_subgraph(&mut g1, &new_file());
            dk.index().check_invariants(&g1).unwrap();

            // From-scratch path on the combined graph.
            let mut g2 = base_data();
            g2.graft_under_root(&new_file());
            let fresh = DkIndex::build(&g2, reqs.clone());

            assert!(
                dk.index()
                    .to_partition()
                    .same_equivalence(&fresh.index().to_partition()),
                "incremental != rebuild for {reqs:?}"
            );
            assert_eq!(dk.size(), fresh.size());
        }
    }

    #[test]
    fn extents_cover_old_and_new_nodes() {
        let mut g = base_data();
        let before = g.node_count();
        let mut dk = DkIndex::build(&g, Requirements::uniform(1));
        let map = dk.add_subgraph(&mut g, &new_file());
        assert_eq!(g.node_count(), before + 4);
        assert_eq!(dk.index().total_extent_size(), g.node_count());
        // The mapping points at real nodes with the right labels.
        assert_eq!(g.label_name(map[1]), "actor");
    }

    #[test]
    fn same_structure_subgraph_merges_into_existing_extents() {
        // Inserting a copy of the existing document: D(k) size unchanged.
        let mut g = base_data();
        let copy = base_data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(2));
        let before = dk.size();
        dk.add_subgraph(&mut g, &copy);
        assert_eq!(dk.size(), before);
        dk.index().check_invariants(&g).unwrap();
        dk.index().check_extent_bisimilarity(&g, 4).unwrap();
    }

    #[test]
    fn repeated_insertions_stay_consistent() {
        let mut g = base_data();
        let mut dk = DkIndex::build(&g, Requirements::from_pairs([("title", 2)]));
        for _ in 0..3 {
            dk.add_subgraph(&mut g, &new_file());
            dk.index().check_invariants(&g).unwrap();
        }
        let fresh = {
            let mut g2 = base_data();
            for _ in 0..3 {
                g2.graft_under_root(&new_file());
            }
            DkIndex::build(&g2, Requirements::from_pairs([("title", 2)]))
        };
        assert_eq!(dk.size(), fresh.size());
    }

    #[test]
    fn queries_exact_after_subgraph_addition() {
        use crate::eval::{evaluate_on_data, IndexEvaluator};
        use dkindex_pathexpr::parse;
        let mut g = base_data();
        let mut dk = DkIndex::build(&g, Requirements::from_pairs([("title", 2)]));
        dk.add_subgraph(&mut g, &new_file());
        for expr in ["movie.title", "actor.movie.title", "director.movie.title", "actor.name"] {
            let e = parse(expr).unwrap();
            let out = IndexEvaluator::new(dk.index(), &g).evaluate(&e);
            assert_eq!(out.matches, evaluate_on_data(&g, &e).0, "{expr}");
        }
    }
}
