//! Query evaluation on index graphs, with the validation process and the
//! paper's cost model (§6.1).
//!
//! A path expression is first evaluated on the (small) index graph. A matched
//! index node is *sound* when its local similarity is at least the query's
//! path length (paper property 3 with the Definition-3 constraint): its whole
//! extent belongs to the answer for free. Otherwise the extent is only a
//! candidate set and each member must be **validated** by a backward walk in
//! the data graph; validation visits are charged to the query — this is why
//! the paper tunes requirements so the query load rarely validates.
//!
//! Cost accounting: `index_visits` counts `(state, node)` activations on the
//! index graph; `data_visits` counts activations during validation walks.
//! Extent members of sound matches are not counted (per §6.1).
//!
//! Every [`IndexEvaluator::evaluate`] call feeds the `eval.*` telemetry
//! metrics (queries, index/data visits, sound extents, validated queries,
//! memo hits, per-query visit histogram and the `eval.query_ns` span);
//! [`IndexEvaluator::evaluate_baseline`] is the retained §6.1 oracle and is
//! deliberately uninstrumented.

use crate::index_graph::IndexGraph;
use dkindex_graph::{DataGraph, LabeledGraph, NodeId};
use dkindex_telemetry as telemetry;
use dkindex_pathexpr::{
    evaluate_baseline, evaluate_bounded_with, evaluate_with, matches_ending_at_baseline,
    matches_ending_at_bounded_with, matches_ending_at_with, EvalArena, LabelIndex, Nfa, PathExpr,
    VisitBudget,
};
use std::collections::HashMap;

/// Cost of one query under the paper's in-memory model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Nodes visited in the index graph.
    pub index_visits: u64,
    /// Data nodes visited during validation.
    pub data_visits: u64,
}

impl QueryCost {
    /// Total nodes visited (the paper's Y axis).
    pub fn total(&self) -> u64 {
        self.index_visits + self.data_visits
    }
}

impl std::ops::Add for QueryCost {
    type Output = QueryCost;
    fn add(self, rhs: QueryCost) -> QueryCost {
        QueryCost {
            index_visits: self.index_visits + rhs.index_visits,
            data_visits: self.data_visits + rhs.data_visits,
        }
    }
}

impl std::ops::AddAssign for QueryCost {
    fn add_assign(&mut self, rhs: QueryCost) {
        *self = *self + rhs;
    }
}

/// Typed abort from [`IndexEvaluator::evaluate_bounded`]: the visit budget
/// ran out before the query completed. Carries the work charged up to the
/// abort for telemetry/reporting; no partial matches are ever exposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryAborted {
    /// The budget the query was given.
    pub budget: u64,
    /// Visits charged before the abort.
    pub cost: QueryCost,
}

impl std::fmt::Display for QueryAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query aborted: visit budget of {} exhausted ({} index visits, {} data visits)",
            self.budget, self.cost.index_visits, self.cost.data_visits
        )
    }
}

impl std::error::Error for QueryAborted {}

/// Result of evaluating a query through an index graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexEvalOutcome {
    /// Matched data nodes, sorted ascending.
    pub matches: Vec<NodeId>,
    /// Visit counts.
    pub cost: QueryCost,
    /// True if any matched index node required validation.
    pub validated: bool,
}

/// Reusable evaluator for one `(index, data)` pair: caches the per-graph
/// label index, owns an [`EvalArena`] so a batch of queries performs zero
/// steady-state allocation, and memoizes validation verdicts per
/// `(query, index node)` — candidates sharing an extent never repeat their
/// backward walks, and replayed verdicts charge the *stored* visit count so
/// `QueryCost` stays identical to recomputation.
///
/// The evaluator borrows `index` and `data` immutably for its whole
/// lifetime, so the memo can never go stale.
pub struct IndexEvaluator<'a> {
    index: &'a IndexGraph,
    data: &'a DataGraph,
    index_labels: LabelIndex,
    arena: EvalArena,
    /// Textual query form → dense id used in memo keys.
    query_ids: HashMap<String, u32>,
    /// `(query id, matched index node)` → (validated hits, data visits).
    validation_memo: HashMap<(u32, NodeId), (Vec<NodeId>, u64)>,
}

impl<'a> IndexEvaluator<'a> {
    /// Build an evaluator over `index` (a summary of `data`).
    pub fn new(index: &'a IndexGraph, data: &'a DataGraph) -> Self {
        IndexEvaluator {
            index,
            data,
            index_labels: LabelIndex::build(index),
            arena: EvalArena::new(),
            query_ids: HashMap::new(),
            validation_memo: HashMap::new(),
        }
    }

    /// Evaluate `expr` through the index, validating approximate matches
    /// against the data graph.
    pub fn evaluate(&mut self, expr: &PathExpr) -> IndexEvalOutcome {
        let span = telemetry::Span::start(&telemetry::metrics::EVAL_QUERY_NS);
        let nfa = Nfa::compile(expr, self.index.labels());
        let on_index = evaluate_with(self.index, &nfa, &self.index_labels, &mut self.arena);

        // Path length in edges (paper's "length m" for l1...l_{m+1}); an
        // unbounded expression (contains *) can never be certified sound.
        let required = expr.max_word_len().map(|labels| labels.saturating_sub(1));

        let mut matches: Vec<NodeId> = Vec::new();
        let mut cost = QueryCost {
            index_visits: on_index.visited,
            data_visits: 0,
        };
        let mut validated = false;
        // Compile against the data interner lazily — only if we validate.
        let mut reversed: Option<Nfa> = None;
        let mut query_id: Option<u32> = None;

        for inode in on_index.matches {
            let sound = match required {
                Some(m) => self.index.similarity(inode) >= m,
                None => false,
            };
            if sound {
                telemetry::metrics::EVAL_SOUND_EXTENTS.incr();
                matches.extend_from_slice(self.index.extent(inode));
                continue;
            }
            validated = true;
            let qid = *query_id.get_or_insert_with(|| {
                let next = self.query_ids.len() as u32;
                *self.query_ids.entry(expr.to_string()).or_insert(next)
            });
            if let Some((hits, visits)) = self.validation_memo.get(&(qid, inode)) {
                // Replay: identical hits AND identical charged visits.
                telemetry::metrics::EVAL_MEMO_HITS.incr();
                cost.data_visits += visits;
                matches.extend_from_slice(hits);
                continue;
            }
            let rev = reversed
                .get_or_insert_with(|| Nfa::compile(expr, self.data.labels()).reverse());
            let mut hits: Vec<NodeId> = Vec::new();
            let mut visits = 0u64;
            for &candidate in self.index.extent(inode) {
                let (hit, visited) =
                    matches_ending_at_with(self.data, rev, candidate, &mut self.arena);
                visits += visited;
                if hit {
                    hits.push(candidate);
                }
            }
            cost.data_visits += visits;
            matches.extend_from_slice(&hits);
            self.validation_memo.insert((qid, inode), (hits, visits));
        }
        matches.sort_unstable();
        matches.dedup();

        telemetry::metrics::EVAL_QUERIES.incr();
        telemetry::metrics::EVAL_INDEX_VISITS.add(cost.index_visits);
        telemetry::metrics::EVAL_DATA_VISITS.add(cost.data_visits);
        if validated {
            telemetry::metrics::EVAL_VALIDATED_QUERIES.incr();
        }
        telemetry::metrics::EVAL_VISITS_PER_QUERY.record(cost.total());
        drop(span);

        IndexEvalOutcome {
            matches,
            cost,
            validated,
        }
    }

    /// [`evaluate`](Self::evaluate) under a visit budget shared across the
    /// index-graph phase and every validation walk.
    ///
    /// While the budget covers the query's cost, the outcome is identical to
    /// the unbounded path (matches, cost *and* validated flag). Once the
    /// budget runs out the query aborts with a typed [`QueryAborted`] —
    /// partial results are discarded, never returned, because a truncated
    /// match set would be silently wrong. Memoized validation verdicts
    /// replay against the budget at their stored visit count, so bounded and
    /// unbounded evaluation stay cost-identical; verdicts are stored only
    /// for *completed* validations, so an aborted query never poisons the
    /// memo.
    pub fn evaluate_bounded(
        &mut self,
        expr: &PathExpr,
        budget: u64,
    ) -> Result<IndexEvalOutcome, QueryAborted> {
        let span = telemetry::Span::start(&telemetry::metrics::EVAL_QUERY_NS);
        let abort = |spent: QueryCost| {
            telemetry::metrics::EVAL_ABORTED_QUERIES.incr();
            QueryAborted { budget, cost: spent }
        };
        let mut remaining = VisitBudget::new(budget);
        let nfa = Nfa::compile(expr, self.index.labels());
        let on_index = match evaluate_bounded_with(
            self.index,
            &nfa,
            &self.index_labels,
            &mut self.arena,
            &mut remaining,
        ) {
            Ok(out) => out,
            Err(e) => {
                return Err(abort(QueryCost {
                    index_visits: e.visited,
                    data_visits: 0,
                }))
            }
        };

        let required = expr.max_word_len().map(|labels| labels.saturating_sub(1));

        let mut matches: Vec<NodeId> = Vec::new();
        let mut cost = QueryCost {
            index_visits: on_index.visited,
            data_visits: 0,
        };
        let mut validated = false;
        let mut reversed: Option<Nfa> = None;
        let mut query_id: Option<u32> = None;

        for inode in on_index.matches {
            let sound = match required {
                Some(m) => self.index.similarity(inode) >= m,
                None => false,
            };
            if sound {
                telemetry::metrics::EVAL_SOUND_EXTENTS.incr();
                matches.extend_from_slice(self.index.extent(inode));
                continue;
            }
            validated = true;
            let qid = *query_id.get_or_insert_with(|| {
                let next = self.query_ids.len() as u32;
                *self.query_ids.entry(expr.to_string()).or_insert(next)
            });
            if let Some((hits, visits)) = self.validation_memo.get(&(qid, inode)) {
                if !remaining.try_charge_many(*visits) {
                    return Err(abort(cost));
                }
                telemetry::metrics::EVAL_MEMO_HITS.incr();
                cost.data_visits += visits;
                matches.extend_from_slice(hits);
                continue;
            }
            let rev = reversed
                .get_or_insert_with(|| Nfa::compile(expr, self.data.labels()).reverse());
            let mut hits: Vec<NodeId> = Vec::new();
            let mut visits = 0u64;
            for &candidate in self.index.extent(inode) {
                match matches_ending_at_bounded_with(
                    self.data,
                    rev,
                    candidate,
                    &mut self.arena,
                    &mut remaining,
                ) {
                    Ok((hit, visited)) => {
                        visits += visited;
                        if hit {
                            hits.push(candidate);
                        }
                    }
                    Err(e) => {
                        cost.data_visits += visits + e.visited;
                        return Err(abort(cost));
                    }
                }
            }
            cost.data_visits += visits;
            matches.extend_from_slice(&hits);
            self.validation_memo.insert((qid, inode), (hits, visits));
        }
        matches.sort_unstable();
        matches.dedup();

        telemetry::metrics::EVAL_QUERIES.incr();
        telemetry::metrics::EVAL_INDEX_VISITS.add(cost.index_visits);
        telemetry::metrics::EVAL_DATA_VISITS.add(cost.data_visits);
        if validated {
            telemetry::metrics::EVAL_VALIDATED_QUERIES.incr();
        }
        telemetry::metrics::EVAL_VISITS_PER_QUERY.record(cost.total());
        drop(span);

        Ok(IndexEvalOutcome {
            matches,
            cost,
            validated,
        })
    }

    /// The pre-arena reference implementation: fresh allocations per query,
    /// no memoization. Kept for equivalence property tests and the
    /// before/after benchmark; `matches`, `cost` and `validated` must stay
    /// byte-identical to [`evaluate`](Self::evaluate).
    pub fn evaluate_baseline(&self, expr: &PathExpr) -> IndexEvalOutcome {
        let nfa = Nfa::compile(expr, self.index.labels());
        let on_index = evaluate_baseline(self.index, &nfa, &self.index_labels);

        let required = expr.max_word_len().map(|labels| labels.saturating_sub(1));

        let mut matches: Vec<NodeId> = Vec::new();
        let mut cost = QueryCost {
            index_visits: on_index.visited,
            data_visits: 0,
        };
        let mut validated = false;
        let mut reversed: Option<Nfa> = None;

        for inode in on_index.matches {
            let sound = match required {
                Some(m) => self.index.similarity(inode) >= m,
                None => false,
            };
            if sound {
                matches.extend_from_slice(self.index.extent(inode));
            } else {
                validated = true;
                let rev = reversed
                    .get_or_insert_with(|| Nfa::compile(expr, self.data.labels()).reverse());
                for &candidate in self.index.extent(inode) {
                    let (hit, visited) = matches_ending_at_baseline(self.data, rev, candidate);
                    cost.data_visits += visited;
                    if hit {
                        matches.push(candidate);
                    }
                }
            }
        }
        matches.sort_unstable();
        matches.dedup();
        IndexEvalOutcome {
            matches,
            cost,
            validated,
        }
    }

    /// Evaluate a whole workload, returning per-query outcomes.
    pub fn evaluate_all(&mut self, exprs: &[PathExpr]) -> Vec<IndexEvalOutcome> {
        exprs.iter().map(|e| self.evaluate(e)).collect()
    }

    /// Average total cost (nodes visited) over a workload — the Y axis of
    /// the paper's figures 4–7.
    pub fn average_cost(&mut self, exprs: &[PathExpr]) -> f64 {
        if exprs.is_empty() {
            return 0.0;
        }
        let total: u64 = exprs
            .iter()
            .map(|e| self.evaluate(e).cost.total())
            .sum();
        total as f64 / exprs.len() as f64
    }
}

/// Ground truth: evaluate `expr` directly on the data graph (no index).
/// Returns matches and the number of data nodes visited.
pub fn evaluate_on_data(data: &DataGraph, expr: &PathExpr) -> (Vec<NodeId>, u64) {
    let nfa = Nfa::compile(expr, data.labels());
    let idx = LabelIndex::build(data);
    let out = dkindex_pathexpr::evaluate(data, &nfa, &idx);
    (out.matches, out.visited)
}

/// Evaluate a workload across `threads` OS threads (index and data are
/// shared immutably; queries are striped round-robin). Outcome order
/// matches `exprs`. Falls back to the sequential path for small workloads.
pub fn evaluate_workload_parallel(
    index: &IndexGraph,
    data: &DataGraph,
    exprs: &[PathExpr],
    threads: usize,
) -> Vec<IndexEvalOutcome> {
    let threads = threads.max(1).min(exprs.len().max(1));
    if threads <= 1 || exprs.len() < 4 {
        return IndexEvaluator::new(index, data).evaluate_all(exprs);
    }
    let mut slots: Vec<Option<IndexEvalOutcome>> = vec![None; exprs.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            handles.push(scope.spawn(move || {
                // Each worker builds its own evaluator — with its own arena
                // and memo — and takes every `threads`-th query.
                let mut evaluator = IndexEvaluator::new(index, data);
                exprs
                    .iter()
                    .enumerate()
                    .skip(t)
                    .step_by(threads)
                    .map(|(i, e)| (i, evaluator.evaluate(e)))
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            for (i, outcome) in handle.join().expect("evaluator workers do not panic") {
                slots[i] = Some(outcome);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every query evaluated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dk::construct::DkIndex;
    use crate::requirements::Requirements;
    use dkindex_graph::EdgeKind;
    use dkindex_pathexpr::parse;

    /// Two movies: one under director, one under actor; titles below.
    fn movie_data() -> DataGraph {
        let mut g = DataGraph::new();
        let d = g.add_labeled_node("director");
        let a = g.add_labeled_node("actor");
        let m1 = g.add_labeled_node("movie");
        let m2 = g.add_labeled_node("movie");
        let t1 = g.add_labeled_node("title");
        let t2 = g.add_labeled_node("title");
        let r = g.root();
        g.add_edge(r, d, EdgeKind::Tree);
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(d, m1, EdgeKind::Tree);
        g.add_edge(a, m2, EdgeKind::Tree);
        g.add_edge(m1, t1, EdgeKind::Tree);
        g.add_edge(m2, t2, EdgeKind::Tree);
        g
    }

    fn assert_same_matches(data: &DataGraph, index: &IndexGraph, expr: &str) {
        let e = parse(expr).unwrap();
        let truth = evaluate_on_data(data, &e).0;
        let out = IndexEvaluator::new(index, data).evaluate(&e);
        assert_eq!(out.matches, truth, "expr {expr}");
    }

    #[test]
    fn sound_index_answers_without_validation() {
        let data = movie_data();
        // title requires 2: director.movie.title (length 2) is sound.
        let dk = DkIndex::build(&data, Requirements::from_pairs([("title", 2)]));
        let e = parse("director.movie.title").unwrap();
        let out = IndexEvaluator::new(dk.index(), &data).evaluate(&e);
        assert!(!out.validated);
        assert_eq!(out.cost.data_visits, 0);
        let truth = evaluate_on_data(&data, &e).0;
        assert_eq!(out.matches, truth);
    }

    #[test]
    fn label_split_index_validates_long_queries() {
        let data = movie_data();
        let dk = DkIndex::build(&data, Requirements::new()); // A(0)
        let e = parse("director.movie.title").unwrap();
        let out = IndexEvaluator::new(dk.index(), &data).evaluate(&e);
        assert!(out.validated);
        assert!(out.cost.data_visits > 0);
        // Validation still returns the exact answer.
        let truth = evaluate_on_data(&data, &e).0;
        assert_eq!(out.matches, truth);
    }

    #[test]
    fn validation_filters_false_positives() {
        let data = movie_data();
        let dk = DkIndex::build(&data, Requirements::new());
        // Both titles share one index node; only t1 matches through director.
        let e = parse("director.movie.title").unwrap();
        let out = IndexEvaluator::new(dk.index(), &data).evaluate(&e);
        assert_eq!(out.matches.len(), 1);
    }

    #[test]
    fn short_queries_are_sound_even_on_label_split() {
        let data = movie_data();
        let dk = DkIndex::build(&data, Requirements::new());
        // Length 0 (single label): always sound (k ≥ 0).
        let e = parse("title").unwrap();
        let out = IndexEvaluator::new(dk.index(), &data).evaluate(&e);
        assert!(!out.validated);
        assert_eq!(out.matches.len(), 2);
    }

    #[test]
    fn star_queries_always_validate_but_stay_exact() {
        let data = movie_data();
        let dk = DkIndex::build(&data, Requirements::uniform(3));
        for expr in ["_*.title", "ROOT._*.movie", "director._*"] {
            assert_same_matches(&data, dk.index(), expr);
            let out = IndexEvaluator::new(dk.index(), &data)
                .evaluate(&parse(expr).unwrap());
            assert!(out.validated, "{expr} must validate (unbounded)");
        }
    }

    #[test]
    fn exactness_across_requirement_levels() {
        let data = movie_data();
        for k in 0..4 {
            let dk = DkIndex::build(&data, Requirements::uniform(k));
            for expr in [
                "movie.title",
                "director.movie.title",
                "actor.movie",
                "ROOT.director",
                "ROOT._.movie.title",
                "movie.(title|name)",
            ] {
                assert_same_matches(&data, dk.index(), expr);
            }
        }
    }

    #[test]
    fn higher_similarity_reduces_total_cost_for_long_queries() {
        let data = movie_data();
        let e = [parse("director.movie.title").unwrap()];
        let a0 = DkIndex::build(&data, Requirements::new());
        let a2 = DkIndex::build(&data, Requirements::uniform(2));
        let cost0 = IndexEvaluator::new(a0.index(), &data).average_cost(&e);
        let cost2 = IndexEvaluator::new(a2.index(), &data).average_cost(&e);
        assert!(
            cost2 < cost0,
            "sound index ({cost2}) should beat validating index ({cost0})"
        );
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let data = movie_data();
        let dk = DkIndex::build(&data, Requirements::uniform(1));
        let exprs: Vec<_> = [
            "movie.title",
            "director.movie.title",
            "actor.movie",
            "ROOT.director",
            "title",
            "movie.(title|name)",
            "_.movie",
            "actor.movie.title",
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect();
        let sequential = IndexEvaluator::new(dk.index(), &data).evaluate_all(&exprs);
        for threads in [1, 2, 3, 8] {
            let parallel = evaluate_workload_parallel(dk.index(), &data, &exprs, threads);
            assert_eq!(parallel.len(), sequential.len());
            for (p, s) in parallel.iter().zip(&sequential) {
                assert_eq!(p.matches, s.matches);
                assert_eq!(p.cost, s.cost);
            }
        }
    }

    #[test]
    fn bounded_evaluation_with_ample_budget_matches_unbounded() {
        let data = movie_data();
        for k in [0, 2] {
            let dk = DkIndex::build(&data, Requirements::uniform(k));
            for expr in [
                "movie.title",
                "director.movie.title",
                "_*.title",
                "title",
                "ghost.label",
            ] {
                let e = parse(expr).unwrap();
                let plain = IndexEvaluator::new(dk.index(), &data).evaluate(&e);
                let bounded = IndexEvaluator::new(dk.index(), &data)
                    .evaluate_bounded(&e, u64::MAX)
                    .expect("ample budget never aborts");
                assert_eq!(plain, bounded, "expr {expr} k {k}");
            }
        }
    }

    #[test]
    fn bounded_evaluation_aborts_below_query_cost() {
        let data = movie_data();
        let dk = DkIndex::build(&data, Requirements::new()); // A(0): validates
        let e = parse("director.movie.title").unwrap();
        let full = IndexEvaluator::new(dk.index(), &data).evaluate(&e);
        assert!(full.validated);
        let total = full.cost.total();
        assert!(total > 0);
        // Every insufficient budget aborts with a typed error; the exact
        // budget succeeds and reproduces the unbounded outcome.
        for limit in [0, 1, total / 2, total - 1] {
            let aborted = IndexEvaluator::new(dk.index(), &data)
                .evaluate_bounded(&e, limit)
                .expect_err("insufficient budget must abort");
            assert_eq!(aborted.budget, limit);
            assert!(aborted.cost.total() <= limit);
        }
        let ok = IndexEvaluator::new(dk.index(), &data)
            .evaluate_bounded(&e, total)
            .expect("exact budget suffices");
        assert_eq!(ok, full);
    }

    #[test]
    fn bounded_evaluation_memo_replay_charges_budget() {
        let data = movie_data();
        let dk = DkIndex::build(&data, Requirements::new());
        let e = parse("director.movie.title").unwrap();
        let mut evaluator = IndexEvaluator::new(dk.index(), &data);
        let first = evaluator.evaluate_bounded(&e, u64::MAX).unwrap();
        // Second run replays memoized verdicts — same outcome, and an
        // insufficient budget still aborts (replays are not free).
        let second = evaluator.evaluate_bounded(&e, first.cost.total()).unwrap();
        assert_eq!(first, second);
        evaluator
            .evaluate_bounded(&e, first.cost.total() - 1)
            .expect_err("memo replay must still charge the budget");
    }

    #[test]
    fn parallel_evaluation_of_empty_workload() {
        let data = movie_data();
        let dk = DkIndex::build(&data, Requirements::new());
        assert!(evaluate_workload_parallel(dk.index(), &data, &[], 4).is_empty());
    }

    #[test]
    fn average_cost_of_empty_workload_is_zero() {
        let data = movie_data();
        let dk = DkIndex::build(&data, Requirements::new());
        assert_eq!(IndexEvaluator::new(dk.index(), &data).average_cost(&[]), 0.0);
    }
}
