//! The F&B-index (Kaushik et al., SIGMOD 2002): the covering index for
//! branching path queries, cited by the D(k) paper's future-work section
//! (reference \[24\]).
//!
//! Extents are the coarsest partition stable under **both** incoming and
//! outgoing structure ([`dkindex_partition::fb_bisimulation`]). F&B
//! equivalence preserves twig matching: two F&B-equivalent nodes satisfy
//! exactly the same branching path queries, so a twig can be evaluated on
//! the (smaller) index graph and the matched extents returned wholesale —
//! no validation ever.
//!
//! ```
//! use dkindex_core::FbIndex;
//! use dkindex_pathexpr::parse_twig;
//! use dkindex_xml::parse_to_graph;
//!
//! let data = parse_to_graph(
//!     "<db><movie><title/><actor/></movie><movie><title/></movie></db>",
//! ).unwrap();
//! let fb = FbIndex::build(&data);
//! let twig = parse_twig("movie[actor]/title").unwrap();
//! let (matches, _) = fb.evaluate_twig(&twig);
//! assert_eq!(matches.len(), 1); // only the movie with an actor
//! ```

use crate::index_graph::{IndexGraph, SIM_EXACT};
use dkindex_graph::{DataGraph, NodeId};
use dkindex_partition::fb_bisimulation;
use dkindex_pathexpr::{evaluate_twig, Twig};

/// The forward-and-backward index.
#[derive(Clone, Debug)]
pub struct FbIndex {
    index: IndexGraph,
}

impl FbIndex {
    /// Build the F&B-index of `data`.
    pub fn build(data: &DataGraph) -> Self {
        let p = fb_bisimulation(data);
        let sims = vec![SIM_EXACT; p.block_count()];
        FbIndex {
            index: IndexGraph::from_data_partition(data, &p, sims),
        }
    }

    /// The underlying index graph.
    pub fn index(&self) -> &IndexGraph {
        &self.index
    }

    /// Number of index nodes.
    pub fn size(&self) -> usize {
        self.index.size()
    }

    /// Evaluate a branching path query through the index: the twig runs on
    /// the index graph and matched extents are unioned. Returns the matches
    /// and the number of index nodes visited.
    pub fn evaluate_twig(&self, twig: &Twig) -> (Vec<NodeId>, u64) {
        let (inodes, visited) = evaluate_twig(&self.index, twig);
        let mut matches: Vec<NodeId> = inodes
            .into_iter()
            .flat_map(|i| self.index.extent(i).iter().copied())
            .collect();
        matches.sort_unstable();
        matches.dedup();
        (matches, visited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_index::OneIndex;
    use dkindex_graph::{EdgeKind, LabeledGraph};
    use dkindex_pathexpr::parse_twig;

    /// movie₁(title, actor/name), movie₂(title) under the root.
    fn data() -> DataGraph {
        let mut g = DataGraph::new();
        let m1 = g.add_labeled_node("movie");
        let m2 = g.add_labeled_node("movie");
        let t1 = g.add_labeled_node("title");
        let t2 = g.add_labeled_node("title");
        let a = g.add_labeled_node("actor");
        let n = g.add_labeled_node("name");
        let r = g.root();
        g.add_edge(r, m1, EdgeKind::Tree);
        g.add_edge(r, m2, EdgeKind::Tree);
        g.add_edge(m1, t1, EdgeKind::Tree);
        g.add_edge(m2, t2, EdgeKind::Tree);
        g.add_edge(m1, a, EdgeKind::Tree);
        g.add_edge(a, n, EdgeKind::Tree);
        g
    }

    #[test]
    fn fb_index_is_valid_summary() {
        let g = data();
        let fb = FbIndex::build(&g);
        fb.index().check_invariants(&g).unwrap();
    }

    #[test]
    fn twigs_on_index_equal_twigs_on_data() {
        let g = data();
        let fb = FbIndex::build(&g);
        for q in [
            "movie/title",
            "movie[actor]/title",
            "movie[actor/name]/title",
            "ROOT/_[actor]",
            "movie[ghost]/title",
            "actor/name",
        ] {
            let twig = parse_twig(q).unwrap();
            let truth = evaluate_twig(&g, &twig).0;
            let (got, _) = fb.evaluate_twig(&twig);
            assert_eq!(got, truth, "{q}");
        }
    }

    #[test]
    fn one_index_is_not_covering_for_twigs() {
        // The backward-only 1-index merges movie₁ and movie₂ (same incoming
        // structure), so twig evaluation on it over-answers — demonstrating
        // why branching queries need F&B.
        let g = data();
        let one = OneIndex::build(&g);
        let twig = parse_twig("movie[actor]/title").unwrap();
        let truth = evaluate_twig(&g, &twig).0;
        let (on_one, _) = evaluate_twig(one.index(), &twig);
        let merged: Vec<NodeId> = on_one
            .into_iter()
            .flat_map(|i| one.index().extent(i).iter().copied())
            .collect();
        assert!(merged.len() > truth.len(), "1-index should over-answer");
        // F&B gets it right.
        let fb = FbIndex::build(&g);
        assert_eq!(fb.evaluate_twig(&twig).0, truth);
    }

    #[test]
    fn fb_refines_one_index_and_sizes_order() {
        let g = data();
        let fb = FbIndex::build(&g);
        let one = OneIndex::build(&g);
        assert!(fb
            .index()
            .to_partition()
            .is_refinement_of(&one.index().to_partition()));
        assert!(fb.size() >= one.size());
        assert!(fb.size() <= g.node_count());
    }

    #[test]
    fn twig_cost_on_index_is_cheaper_on_regular_data() {
        // Many identical movies: the index collapses them, so index-side
        // evaluation visits far fewer nodes.
        let mut g = DataGraph::new();
        let r = g.root();
        for _ in 0..50 {
            let m = g.add_labeled_node("movie");
            let t = g.add_labeled_node("title");
            let a = g.add_labeled_node("actor");
            g.add_edge(r, m, EdgeKind::Tree);
            g.add_edge(m, t, EdgeKind::Tree);
            g.add_edge(m, a, EdgeKind::Tree);
        }
        let fb = FbIndex::build(&g);
        let twig = parse_twig("movie[actor]/title").unwrap();
        let (_, data_cost) = evaluate_twig(&g, &twig);
        let (matches, index_cost) = fb.evaluate_twig(&twig);
        assert_eq!(matches.len(), 50);
        assert!(index_cost * 10 < data_cost, "{index_cost} !<< {data_cost}");
    }
}
