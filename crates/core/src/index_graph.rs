//! The index graph: a structural summary with extents and per-node local
//! similarities (paper §3–§4).
//!
//! An [`IndexGraph`] has one node per equivalence class of the data graph;
//! each index node carries its *extent* (the set of data nodes it summarizes),
//! its label, and its *local similarity* `k` (its extent is guaranteed to be
//! k-bisimilar). An edge `A → B` exists iff some data edge runs from a member
//! of `extent(A)` to a member of `extent(B)`.
//!
//! `IndexGraph` implements [`LabeledGraph`], so path expressions evaluate on
//! it with the same engine used for data graphs, and — crucially for the
//! D(k) update machinery — an index graph can itself be *re-indexed* like a
//! data graph ([`IndexGraph::reindex`]), the operation behind the paper's
//! Theorem 2, the subgraph-addition update and the demoting process.

use crate::block_store::{Block, BlockStore};
use dkindex_graph::{DataGraph, LabelId, LabelInterner, LabeledGraph, NodeId, SegVec};
use dkindex_partition::Partition;
use std::collections::HashSet;
use std::sync::Arc;

/// Local similarity value representing "exactly bisimilar" (the 1-index):
/// sound for a path expression of any length. Large but safe under `+ 1`.
pub const SIM_EXACT: usize = usize::MAX / 4;

/// A structural summary of a data graph.
///
/// All per-index-node state (label, similarity, extent, adjacency) lives in
/// one [`Block`] per node inside an `Arc`-shared [`BlockStore`], and the
/// node→block map is a segment-shared [`SegVec`]. Cloning an `IndexGraph`
/// is therefore a copy-on-write snapshot: the clone shares every block with
/// the original until one of them mutates it, which is what lets the serve
/// layer publish a maintenance batch by rebuilding only the blocks the
/// batch touched ([`IndexGraph::shared_blocks_with`] measures this).
#[derive(Clone, Debug)]
pub struct IndexGraph {
    /// One block per index node: label, similarity, extent, adjacency.
    blocks: BlockStore,
    /// data node -> index node containing it.
    node_to_index: SegVec<NodeId>,
    interner: Arc<LabelInterner>,
    root: NodeId,
    edge_count: usize,
    /// Bumped on every mutation; lets caches detect staleness.
    version: u64,
}

impl IndexGraph {
    /// Build an index graph from a partition of `g`'s nodes. `similarity[b]`
    /// is the local similarity of block `b` (same indexing as the partition's
    /// blocks). Every extent is the block's member list.
    pub fn from_data_partition(g: &DataGraph, partition: &Partition, similarity: Vec<usize>) -> Self {
        assert_eq!(partition.node_count(), g.node_count());
        assert_eq!(similarity.len(), partition.block_count());
        let nblocks = partition.block_count();

        let mut blocks = BlockStore::with_capacity(nblocks);
        for (b, k) in partition.block_ids().zip(similarity) {
            let members = partition.members(b);
            blocks.push(Block::new(g.label_of(members[0]), members.to_vec(), k));
        }

        let node_to_index: SegVec<NodeId> = (0..g.node_count())
            .map(|i| NodeId::from_index(partition.block_of(NodeId::from_index(i)).index()))
            .collect();

        let mut index = IndexGraph {
            blocks,
            root: NodeId::from_index(partition.block_of(g.root()).index()),
            node_to_index,
            interner: g.labels_shared(),
            edge_count: 0,
            version: 0,
        };
        for &(from, to, _) in g.edges() {
            let (fi, ti) = (index.index_of(from), index.index_of(to));
            index.add_index_edge(fi, ti);
        }
        index
    }

    /// Re-index: treat `base` itself as a data graph, partition *its* nodes,
    /// and merge extents. Used by the subgraph-addition update and the
    /// demoting process (paper Theorem 2: the D(k)-index of any refinement of
    /// a D(k)-index is the D(k)-index itself).
    pub fn reindex(base: &IndexGraph, partition: &Partition, similarity: Vec<usize>) -> Self {
        assert_eq!(partition.node_count(), base.node_count());
        assert_eq!(similarity.len(), partition.block_count());
        let nblocks = partition.block_count();

        let mut blocks = BlockStore::with_capacity(nblocks);
        // The node map starts as a shallow snapshot of base's; only segments
        // whose nodes move between blocks are copied below.
        let mut node_to_index = base.node_to_index.clone();
        for (b, k) in partition.block_ids().zip(similarity) {
            let members = partition.members(b);
            let label = base.label_of(members[0]);
            let mut extent = Vec::new();
            for &inode in members {
                extent.extend_from_slice(base.extent(inode));
            }
            extent.sort_unstable();
            extent.dedup();
            let bi = blocks.len();
            for &d in &extent {
                if let Some(slot) = node_to_index.get_mut(d.index()) {
                    *slot = NodeId::from_index(bi);
                }
            }
            blocks.push(Block::new(label, extent, k));
        }

        let mut index = IndexGraph {
            blocks,
            root: NodeId::from_index(
                partition.block_of(base.root()).index(),
            ),
            node_to_index,
            interner: Arc::clone(&base.interner),
            edge_count: 0,
            version: 0,
        };
        // Edges: project base's edges through the partition.
        for from in base.node_ids() {
            for &to in base.children_of(from) {
                let fi = NodeId::from_index(partition.block_of(from).index());
                let ti = NodeId::from_index(partition.block_of(to).index());
                index.add_index_edge(fi, ti);
            }
        }
        index
    }

    /// Reassemble an index graph from stored parts (the `store` module's
    /// loader). Extents must partition `0..data_nodes`; edges and the root
    /// are attached afterwards via [`IndexGraph::add_index_edge`] and
    /// [`IndexGraph::set_root`].
    pub(crate) fn from_stored_parts(
        interner: LabelInterner,
        labels: Vec<LabelId>,
        similarity: Vec<usize>,
        extents: Vec<Vec<NodeId>>,
        data_nodes: usize,
    ) -> IndexGraph {
        assert_eq!(labels.len(), similarity.len());
        assert_eq!(labels.len(), extents.len());
        let mut node_to_index: SegVec<NodeId> = std::iter::repeat_n(NodeId::from_index(0), data_nodes)
            .collect();
        let mut blocks = BlockStore::with_capacity(labels.len());
        for ((label, k), mut extent) in labels.into_iter().zip(similarity).zip(extents) {
            extent.sort_unstable();
            let i = blocks.len();
            for &d in &extent {
                if let Some(slot) = node_to_index.get_mut(d.index()) {
                    *slot = NodeId::from_index(i);
                }
            }
            blocks.push(Block::new(label, extent, k));
        }
        IndexGraph {
            blocks,
            node_to_index,
            interner: Arc::new(interner),
            root: NodeId::from_index(0),
            edge_count: 0,
            version: 0,
        }
    }

    /// Set the root index node (store loading only).
    pub(crate) fn set_root(&mut self, root: NodeId) {
        assert!(root.index() < self.size());
        self.root = root;
    }

    /// Shared view of `inode`'s block.
    #[inline]
    fn block(&self, inode: NodeId) -> &Block {
        self.blocks
            .get(inode.index())
            .expect("index node out of range")
    }

    /// Copy-on-write view of `inode`'s block: deep-copies the one block iff
    /// it is still shared with an older snapshot.
    #[inline]
    fn block_mut(&mut self, inode: NodeId) -> &mut Block {
        self.blocks
            .make_mut(inode.index())
            .expect("index node out of range")
    }

    /// Number of index nodes — the paper's "index size" (X axis of figs 4–7).
    #[inline]
    pub fn size(&self) -> usize {
        self.blocks.len()
    }

    /// The extent of index node `inode` (sorted data node ids).
    #[inline]
    pub fn extent(&self, inode: NodeId) -> &[NodeId] {
        &self.block(inode).extent
    }

    /// The index node containing data node `data_node`.
    #[inline]
    pub fn index_of(&self, data_node: NodeId) -> NodeId {
        *self
            .node_to_index
            .get(data_node.index())
            .expect("data node out of range")
    }

    /// Length of the node→extent map (equals the data graph's node count on
    /// a healthy index; the auditor bounds-checks against this instead of
    /// assuming it).
    #[inline]
    pub fn node_map_len(&self) -> usize {
        self.node_to_index.len()
    }

    /// Local similarity of `inode`.
    #[inline]
    pub fn similarity(&self, inode: NodeId) -> usize {
        self.block(inode).similarity
    }

    /// Set the local similarity of `inode`. Writing the value already stored
    /// is a true no-op, so it neither bumps the version nor unshares the
    /// block from older epochs.
    #[inline]
    pub fn set_similarity(&mut self, inode: NodeId, k: usize) {
        if self.block(inode).similarity != k {
            self.block_mut(inode).similarity = k;
            self.version += 1;
        }
    }

    /// Structural-sharing census against an older snapshot of this index:
    /// `(shared, rebuilt)` where `shared` counts blocks still
    /// pointer-identical to `prev`'s and `rebuilt` is the remainder of this
    /// index's blocks (copied-on-write or freshly pushed). Feeds the
    /// `serve.publish.blocks_shared` / `blocks_rebuilt` counters.
    pub fn shared_blocks_with(&self, prev: &IndexGraph) -> (usize, usize) {
        let shared = self.blocks.shared_with(&prev.blocks);
        (shared, self.size() - shared)
    }

    /// True when `inode`'s block is the same allocation in both snapshots —
    /// the per-block probe behind the sharing regression tests.
    pub fn block_ptr_eq(&self, prev: &IndexGraph, inode: NodeId) -> bool {
        self.blocks.ptr_eq_at(&prev.blocks, inode.index())
    }

    /// Monotone mutation counter: two equal versions of the same index
    /// guarantee identical structure and similarities, so cached query
    /// results remain valid exactly while the version is unchanged.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Approximate resident size in bytes (adjacency + extents + tables);
    /// reported alongside node counts by the size experiments.
    pub fn approx_bytes(&self) -> usize {
        let per_node = std::mem::size_of::<LabelId>() + std::mem::size_of::<usize>();
        let adj: usize = self
            .blocks
            .iter()
            .map(|b| (b.children.len() + b.parents.len()) * std::mem::size_of::<NodeId>())
            .sum();
        let extents: usize = self
            .blocks
            .iter()
            .map(|b| b.extent.len() * std::mem::size_of::<NodeId>())
            .sum();
        self.size() * per_node + adj + extents + self.node_to_index.len() * 4
    }

    /// Sum of extent sizes (must equal the data graph's node count).
    pub fn total_extent_size(&self) -> usize {
        self.blocks.iter().map(|b| b.extent.len()).sum()
    }

    /// Add an index edge, deduplicating. Returns true if newly added.
    pub fn add_index_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        if self.block(from).children.contains(&to) {
            return false;
        }
        self.block_mut(from).children.push(to);
        self.block_mut(to).parents.push(from);
        self.edge_count += 1;
        self.version += 1;
        true
    }

    /// Grow the data-node→index-node map to cover `n` data nodes (new slots
    /// are filled by subsequent splits/assignments). Needed when the data
    /// graph grows (subgraph addition).
    pub fn grow_node_map(&mut self, n: usize) {
        if self.node_to_index.len() < n {
            self.node_to_index.resize(n, NodeId::from_index(0));
        }
    }

    /// Directly assign a data node to an index node and append it to the
    /// extent (used when stitching a sub-index under this index).
    pub fn assign_data_node(&mut self, data_node: NodeId, inode: NodeId) {
        self.grow_node_map(data_node.index() + 1);
        if let Some(slot) = self.node_to_index.get_mut(data_node.index()) {
            *slot = inode;
        }
        // Probe on the shared view first so a node already present does not
        // copy the block.
        if let Err(pos) = self.block(inode).extent.binary_search(&data_node) {
            self.block_mut(inode).extent.insert(pos, data_node);
            self.version += 1;
        }
    }

    /// Append a fresh index node with the given label, extent and similarity
    /// (edges must be added separately). Returns its id.
    pub fn push_node(&mut self, label: LabelId, mut extent: Vec<NodeId>, similarity: usize) -> NodeId {
        extent.sort_unstable();
        let id = NodeId::from_index(self.blocks.len());
        for &d in &extent {
            self.grow_node_map(d.index() + 1);
            if let Some(slot) = self.node_to_index.get_mut(d.index()) {
                *slot = id;
            }
        }
        self.blocks.push(Block::new(label, extent, similarity));
        self.version += 1;
        id
    }

    /// Intern a label in this index's interner (kept in sync with the data
    /// graph when new labels appear through updates). Copies the interner on
    /// write only when it is shared and the label is genuinely new.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(id) = self.interner.get(name) {
            return id;
        }
        Arc::make_mut(&mut self.interner).intern(name)
    }

    /// Split `target`'s extent: members in `moved` go to a fresh index node
    /// (same label, similarity `new_similarity` for **both** fragments), and
    /// the edges of both fragments are recomputed from the data graph's
    /// adjacency of their members. Neighbors' edge lists are fixed up.
    ///
    /// Returns the new index node. Panics if `moved` is empty or covers the
    /// whole extent (no split).
    pub fn split_extent(
        &mut self,
        target: NodeId,
        moved: &HashSet<NodeId>,
        new_similarity: usize,
        data: &DataGraph,
    ) -> NodeId {
        let old_extent = std::mem::take(&mut self.block_mut(target).extent);
        assert!(!moved.is_empty(), "split with empty moved set");
        assert!(
            moved.len() < old_extent.len(),
            "split must leave both fragments non-empty"
        );
        let (moved_members, kept): (Vec<NodeId>, Vec<NodeId>) =
            old_extent.into_iter().partition(|m| moved.contains(m));
        assert_eq!(moved_members.len(), moved.len(), "moved ⊄ extent");
        {
            let target_block = self.block_mut(target);
            target_block.extent = kept;
            target_block.similarity = new_similarity;
        }
        self.version += 1;

        let label = self.block(target).label;
        let new_node = self.push_node(label, moved_members, new_similarity);

        // Drop every edge incident to `target`; recompute for both fragments.
        self.drop_edges_of(target);
        self.recompute_edges_from_data(target, data);
        self.recompute_edges_from_data(new_node, data);
        new_node
    }

    /// Remove all edges incident to `inode` from the adjacency lists.
    fn drop_edges_of(&mut self, inode: NodeId) {
        let children = std::mem::take(&mut self.block_mut(inode).children);
        for c in children {
            if let Some(neighbor) = self.blocks.make_mut(c.index()) {
                if let Some(pos) = neighbor.parents.iter().position(|&p| p == inode) {
                    neighbor.parents.swap_remove(pos);
                    self.edge_count -= 1;
                }
            }
        }
        let parents = std::mem::take(&mut self.block_mut(inode).parents);
        for p in parents {
            if let Some(neighbor) = self.blocks.make_mut(p.index()) {
                if let Some(pos) = neighbor.children.iter().position(|&c| c == inode) {
                    neighbor.children.swap_remove(pos);
                    self.edge_count -= 1;
                }
            }
        }
    }

    /// Recompute `inode`'s incident edges by scanning its extent's data
    /// adjacency. Cost is proportional to the extent size and degree — the
    /// locality that makes splits cheap.
    fn recompute_edges_from_data(&mut self, inode: NodeId, data: &DataGraph) {
        let extent = std::mem::take(&mut self.block_mut(inode).extent);
        for &m in &extent {
            for &p in data.parents_of(m) {
                let pi = self.index_of(p);
                self.add_index_edge(pi, inode);
            }
            for &c in data.children_of(m) {
                let ci = self.index_of(c);
                self.add_index_edge(inode, ci);
            }
        }
        self.block_mut(inode).extent = extent;
    }

    /// Reconstruct the partition of data nodes induced by the extents
    /// (block ids == index node ids).
    pub fn to_partition(&self) -> Partition {
        Partition::from_block_of(
            self.node_to_index
                .iter()
                .map(|&i| dkindex_partition::BlockId::from_index(i.index()))
                .collect(),
        )
    }

    /// Verify the index invariants against `data`:
    /// 1. extents partition the data nodes;
    /// 2. extents are label-homogeneous and match the index node's label;
    /// 3. index edges = projection of data edges (both directions);
    /// 4. the D(k) structural constraint `k(A) ≥ k(B) − 1` on every edge
    ///    `A → B` (Definition 3).
    pub fn check_invariants(&self, data: &DataGraph) -> Result<(), String> {
        // 1 & 2.
        let mut seen = vec![false; data.node_count()];
        for inode in self.node_ids() {
            let extent = self.extent(inode);
            if extent.is_empty() {
                return Err(format!("index node {inode:?} has empty extent"));
            }
            for &d in extent {
                if seen[d.index()] {
                    return Err(format!("data node {d:?} in two extents"));
                }
                seen[d.index()] = true;
                if data.label_of(d) != self.label_of(inode) {
                    return Err(format!("extent of {inode:?} not label-homogeneous"));
                }
                if self.index_of(d) != inode {
                    return Err(format!("node_to_index stale for {d:?}"));
                }
            }
        }
        if let Some(i) = seen.iter().position(|&s| !s) {
            return Err(format!("data node n{i} not covered by any extent"));
        }
        // 3. Every data edge appears; every index edge is witnessed.
        for &(from, to, _) in data.edges() {
            let (fi, ti) = (self.index_of(from), self.index_of(to));
            if !self.children_of(fi).contains(&ti) {
                return Err(format!("missing index edge {fi:?}->{ti:?}"));
            }
        }
        for a in self.node_ids() {
            for &b in self.children_of(a) {
                let witnessed = self.extent(a).iter().any(|&u| {
                    data.children_of(u)
                        .iter()
                        .any(|&v| self.index_of(v) == b)
                });
                if !witnessed {
                    return Err(format!("unwitnessed index edge {a:?}->{b:?}"));
                }
            }
        }
        // 4. Structural constraint.
        for a in self.node_ids() {
            for &b in self.children_of(a) {
                if self.similarity(a).saturating_add(1) < self.similarity(b) {
                    return Err(format!(
                        "D(k) constraint violated on {a:?}(k={})->{b:?}(k={})",
                        self.similarity(a),
                        self.similarity(b)
                    ));
                }
            }
        }
        Ok(())
    }

    /// Check that every extent's members share the same set of incoming
    /// label paths up to `similarity(inode) + 1` labels — the invariant that
    /// Theorem 1 soundness actually rests on, and the one the D(k)
    /// edge-addition update maintains (Algorithm 4 reasons about label
    /// paths, which k-bisimilarity implies but is strictly stronger than).
    /// Expensive; tests only. `cap` bounds the checked similarity.
    pub fn check_extent_path_similarity(
        &self,
        data: &DataGraph,
        cap: usize,
    ) -> Result<(), String> {
        use dkindex_graph::traversal::incoming_label_paths_up_to;
        for inode in self.node_ids() {
            let k = self.similarity(inode).min(cap);
            let extent = self.extent(inode);
            if extent.len() < 2 {
                continue;
            }
            // A node with similarity k must agree on label paths of up to
            // k+1 labels (a path of k edges has k+1 labels).
            let reference = incoming_label_paths_up_to(data, extent[0], k + 1);
            for &m in &extent[1..] {
                let paths = incoming_label_paths_up_to(data, m, k + 1);
                if paths != reference {
                    return Err(format!(
                        "extent of {inode:?} (k={k}) has diverging label paths: {:?} vs {:?}",
                        extent[0], m
                    ));
                }
            }
        }
        Ok(())
    }

    /// Check that every extent really is `similarity(inode)`-bisimilar in
    /// `data` (expensive; tests only). `cap` bounds the checked k to keep
    /// `SIM_EXACT` nodes affordable.
    pub fn check_extent_bisimilarity(&self, data: &DataGraph, cap: usize) -> Result<(), String> {
        use dkindex_partition::KBisimTable;
        let max_k = self
            .node_ids()
            .map(|i| self.similarity(i).min(cap))
            .max()
            .unwrap_or(0);
        // One table per distinct k in use.
        for k in 0..=max_k {
            let table = KBisimTable::compute(data, k);
            for inode in self.node_ids() {
                if self.similarity(inode).min(cap) != k {
                    continue;
                }
                let extent = self.extent(inode);
                for w in extent.windows(2) {
                    if !table.bisimilar(w[0], w[1]) {
                        return Err(format!(
                            "extent of {inode:?} not {k}-bisimilar: {:?} vs {:?}",
                            w[0], w[1]
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl LabeledGraph for IndexGraph {
    #[inline]
    fn node_count(&self) -> usize {
        self.blocks.len()
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.edge_count
    }

    #[inline]
    fn label_of(&self, node: NodeId) -> LabelId {
        self.block(node).label
    }

    #[inline]
    fn children_of(&self, node: NodeId) -> &[NodeId] {
        &self.block(node).children
    }

    #[inline]
    fn parents_of(&self, node: NodeId) -> &[NodeId] {
        &self.block(node).parents
    }

    #[inline]
    fn root(&self) -> NodeId {
        self.root
    }

    #[inline]
    fn labels(&self) -> &LabelInterner {
        &self.interner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::EdgeKind;
    use dkindex_partition::k_bisimulation;

    fn small() -> DataGraph {
        let mut g = DataGraph::new();
        let a1 = g.add_labeled_node("a");
        let a2 = g.add_labeled_node("a");
        let b1 = g.add_labeled_node("b");
        let b2 = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a1, EdgeKind::Tree);
        g.add_edge(r, a2, EdgeKind::Tree);
        g.add_edge(a1, b1, EdgeKind::Tree);
        g.add_edge(a2, b2, EdgeKind::Tree);
        g.add_edge(b1, b2, EdgeKind::Reference);
        g
    }

    #[test]
    fn from_partition_builds_consistent_summary() {
        let g = small();
        let p = k_bisimulation(&g, 1);
        let sims = vec![1; p.block_count()];
        let idx = IndexGraph::from_data_partition(&g, &p, sims);
        idx.check_invariants(&g).unwrap();
        assert_eq!(idx.total_extent_size(), g.node_count());
        // b1 and b2 differ at k=1 (b2 has a b-labeled parent).
        assert!(idx.size() >= 4);
    }

    #[test]
    fn label_split_index_has_one_node_per_label() {
        let g = small();
        let p = Partition::by_label(&g);
        let idx = IndexGraph::from_data_partition(&g, &p, vec![0; p.block_count()]);
        idx.check_invariants(&g).unwrap();
        assert_eq!(idx.size(), 3); // ROOT, a, b
        let a_label = g.labels().get("a").unwrap();
        let a_inode = idx
            .node_ids()
            .find(|&i| idx.label_of(i) == a_label)
            .unwrap();
        assert_eq!(idx.extent(a_inode).len(), 2);
    }

    #[test]
    fn index_edges_project_data_edges() {
        let g = small();
        let p = Partition::by_label(&g);
        let idx = IndexGraph::from_data_partition(&g, &p, vec![0; p.block_count()]);
        // Label graph: ROOT->a, a->b, b->b (via reference b1->b2).
        assert_eq!(idx.edge_count(), 3);
        let b_label = g.labels().get("b").unwrap();
        let b = idx.node_ids().find(|&i| idx.label_of(i) == b_label).unwrap();
        assert!(idx.children_of(b).contains(&b)); // self loop
    }

    #[test]
    fn split_extent_keeps_invariants() {
        let g = small();
        let p = Partition::by_label(&g);
        let mut idx = IndexGraph::from_data_partition(&g, &p, vec![0; p.block_count()]);
        let b_label = g.labels().get("b").unwrap();
        let b = idx.node_ids().find(|&i| idx.label_of(i) == b_label).unwrap();
        let b2 = idx.extent(b)[1];
        let moved: HashSet<NodeId> = [b2].into_iter().collect();
        let new_node = idx.split_extent(b, &moved, 1, &g);
        assert_eq!(idx.extent(new_node), &[b2]);
        assert_eq!(idx.extent(b).len(), 1);
        assert_eq!(idx.similarity(b), 1);
        assert_eq!(idx.similarity(new_node), 1);
        idx.check_invariants(&g).unwrap();
    }

    #[test]
    #[should_panic(expected = "both fragments")]
    fn split_everything_panics() {
        let g = small();
        let p = Partition::by_label(&g);
        let mut idx = IndexGraph::from_data_partition(&g, &p, vec![0; p.block_count()]);
        let b_label = g.labels().get("b").unwrap();
        let b = idx.node_ids().find(|&i| idx.label_of(i) == b_label).unwrap();
        let moved: HashSet<NodeId> = idx.extent(b).iter().copied().collect();
        idx.split_extent(b, &moved, 1, &g);
    }

    #[test]
    fn reindex_merges_extents_back() {
        let g = small();
        // Fine partition: full bisimulation.
        let fine = dkindex_partition::bisimulation_fixpoint(&g);
        let fine_idx =
            IndexGraph::from_data_partition(&g, &fine, vec![SIM_EXACT; fine.block_count()]);
        // Re-index the fine index by label only: must equal the label-split
        // index of g (Theorem 2 in miniature).
        let relabel = Partition::by_label(&fine_idx);
        let coarse = IndexGraph::reindex(&fine_idx, &relabel, vec![0; relabel.block_count()]);
        coarse.check_invariants(&g).unwrap();
        assert_eq!(coarse.size(), 3);
    }

    #[test]
    fn to_partition_round_trips() {
        let g = small();
        let p = k_bisimulation(&g, 2);
        let idx = IndexGraph::from_data_partition(&g, &p, vec![2; p.block_count()]);
        assert!(idx.to_partition().same_equivalence(&p));
    }

    #[test]
    fn extent_bisimilarity_checker_accepts_correct_sims() {
        let g = small();
        let p = k_bisimulation(&g, 1);
        let idx = IndexGraph::from_data_partition(&g, &p, vec![1; p.block_count()]);
        idx.check_extent_bisimilarity(&g, 4).unwrap();
    }

    #[test]
    fn extent_bisimilarity_checker_rejects_inflated_sims() {
        let g = small();
        let p = Partition::by_label(&g);
        // Claim k=1 on the label-split index: false for the b block.
        let idx = IndexGraph::from_data_partition(&g, &p, vec![1; p.block_count()]);
        assert!(idx.check_extent_bisimilarity(&g, 4).is_err());
    }

    #[test]
    fn structural_constraint_detects_violation() {
        let g = small();
        let p = Partition::by_label(&g);
        let mut idx = IndexGraph::from_data_partition(&g, &p, vec![0; p.block_count()]);
        let b_label = g.labels().get("b").unwrap();
        let b = idx.node_ids().find(|&i| idx.label_of(i) == b_label).unwrap();
        idx.set_similarity(b, 5); // parent a still has k=0: violates 0 ≥ 5-1
        assert!(idx.check_invariants(&g).is_err());
    }
}
