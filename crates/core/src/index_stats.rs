//! Index statistics: compression ratios, similarity and extent-size
//! distributions, per-label breakdowns. Used by the CLI's `info` command and
//! the experiment harness, and handy for deciding when to run the demoting
//! process ("when its size becomes a disadvantage", paper §5.4).
//!
//! ```
//! use dkindex_core::{index_stats::IndexStats, DkIndex, Requirements};
//! use dkindex_xml::parse_to_graph;
//!
//! let data = parse_to_graph("<db><a/><a/><b/></db>").unwrap();
//! let dk = DkIndex::build(&data, Requirements::new());
//! let stats = IndexStats::of(dk.index(), &data);
//! assert_eq!(stats.index_nodes, 4); // ROOT, db, a, b
//! assert!(stats.compression_ratio() > 1.0);
//! ```

use crate::index_graph::IndexGraph;
use dkindex_graph::{DataGraph, LabeledGraph};
use std::collections::BTreeMap;
use std::fmt;

/// Per-label summary: similarity range and node/extent counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelStats {
    /// Smallest local similarity among this label's index nodes.
    pub min_similarity: usize,
    /// Largest local similarity among this label's index nodes.
    pub max_similarity: usize,
    /// Number of index nodes with this label.
    pub index_nodes: usize,
    /// Number of data nodes with this label.
    pub data_nodes: usize,
}

/// Aggregate statistics of an index graph relative to its data graph.
#[derive(Clone, Debug)]
pub struct IndexStats {
    /// Number of index nodes.
    pub index_nodes: usize,
    /// Number of index edges.
    pub index_edges: usize,
    /// Number of data nodes summarized.
    pub data_nodes: usize,
    /// Largest extent.
    pub max_extent: usize,
    /// Number of singleton extents (no compression for these nodes).
    pub singleton_extents: usize,
    /// Approximate resident bytes of the index.
    pub approx_bytes: usize,
    /// Per-label breakdown, sorted by label name.
    pub per_label: BTreeMap<String, LabelStats>,
}

impl IndexStats {
    /// Compute statistics for `index` over `data`.
    pub fn of(index: &IndexGraph, data: &DataGraph) -> Self {
        let mut per_label: BTreeMap<String, LabelStats> = BTreeMap::new();
        let mut max_extent = 0;
        let mut singleton_extents = 0;
        for inode in index.node_ids() {
            let extent_len = index.extent(inode).len();
            max_extent = max_extent.max(extent_len);
            singleton_extents += usize::from(extent_len == 1);
            let name = index.labels().name(index.label_of(inode)).to_string();
            let k = index.similarity(inode);
            let entry = per_label.entry(name).or_insert(LabelStats {
                min_similarity: usize::MAX,
                max_similarity: 0,
                index_nodes: 0,
                data_nodes: 0,
            });
            entry.min_similarity = entry.min_similarity.min(k);
            entry.max_similarity = entry.max_similarity.max(k);
            entry.index_nodes += 1;
            entry.data_nodes += extent_len;
        }
        IndexStats {
            index_nodes: index.size(),
            index_edges: index.edge_count(),
            data_nodes: data.node_count(),
            max_extent,
            singleton_extents,
            approx_bytes: index.approx_bytes(),
            per_label,
        }
    }

    /// Data nodes per index node — how much the summary compresses.
    pub fn compression_ratio(&self) -> f64 {
        if self.index_nodes == 0 {
            0.0
        } else {
            self.data_nodes as f64 / self.index_nodes as f64
        }
    }

    /// Histogram of local similarities, ascending, over labels whose index
    /// nodes share one similarity (after fresh construction that is all of
    /// them; after updates, mixed-range labels are omitted — walk the index
    /// directly for an exact per-node histogram).
    pub fn similarity_histogram(&self) -> Vec<(usize, usize)> {
        let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
        for stats in self.per_label.values() {
            if stats.min_similarity == stats.max_similarity {
                *hist.entry(stats.min_similarity).or_default() += stats.index_nodes;
            }
        }
        hist.into_iter().collect()
    }
}

impl fmt::Display for IndexStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} index nodes / {} edges over {} data nodes ({:.1}x compression, {:.1} KiB)",
            self.index_nodes,
            self.index_edges,
            self.data_nodes,
            self.compression_ratio(),
            self.approx_bytes as f64 / 1024.0
        )?;
        writeln!(
            f,
            "extents: max {}, {} singleton(s)",
            self.max_extent, self.singleton_extents
        )?;
        writeln!(f, "per-label local similarities (min..max, index nodes, data nodes):")?;
        for (name, s) in &self.per_label {
            writeln!(
                f,
                "  {name:<24} {}..{}  ({} / {})",
                s.min_similarity, s.max_similarity, s.index_nodes, s.data_nodes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dk::construct::DkIndex;
    use crate::requirements::Requirements;
    use dkindex_graph::EdgeKind;

    fn data() -> DataGraph {
        let mut g = DataGraph::new();
        let r = g.root();
        for _ in 0..4 {
            let m = g.add_labeled_node("movie");
            let t = g.add_labeled_node("title");
            g.add_edge(r, m, EdgeKind::Tree);
            g.add_edge(m, t, EdgeKind::Tree);
        }
        g
    }

    #[test]
    fn counts_are_consistent() {
        let g = data();
        let dk = DkIndex::build(&g, Requirements::new());
        let stats = IndexStats::of(dk.index(), &g);
        assert_eq!(stats.index_nodes, 3); // ROOT, movie, title
        assert_eq!(stats.data_nodes, 9);
        assert_eq!(stats.max_extent, 4);
        assert_eq!(stats.singleton_extents, 1); // ROOT
        let total_extents: usize = stats.per_label.values().map(|s| s.data_nodes).sum();
        assert_eq!(total_extents, stats.data_nodes);
        assert!(stats.compression_ratio() > 2.9);
    }

    #[test]
    fn per_label_similarity_ranges() {
        let g = data();
        let dk = DkIndex::build(&g, Requirements::from_pairs([("title", 1)]));
        let stats = IndexStats::of(dk.index(), &g);
        let title = &stats.per_label["title"];
        assert_eq!(title.min_similarity, 1);
        assert_eq!(title.max_similarity, 1);
        let movie = &stats.per_label["movie"];
        assert_eq!(movie.min_similarity, 0); // broadcast: 1-1 = 0
    }

    #[test]
    fn display_is_informative() {
        let g = data();
        let dk = DkIndex::build(&g, Requirements::new());
        let text = IndexStats::of(dk.index(), &g).to_string();
        assert!(text.contains("compression"));
        assert!(text.contains("movie"));
        assert!(text.contains("0..0"));
    }

    #[test]
    fn similarity_histogram_counts_uniform_labels() {
        let g = data();
        let dk = DkIndex::build(&g, Requirements::new());
        let stats = IndexStats::of(dk.index(), &g);
        let hist = stats.similarity_histogram();
        assert_eq!(hist, vec![(0, 3)]);
    }
}
