//! Deterministic fail-point storage for the crash-recovery torture harness.
//!
//! [`SimDisk`] is an in-memory [`crate::wal::WalStore`] that models the two
//! layers a real WAL file lives in: the *cache* (everything written) and
//! *stable storage* (everything synced). A [`FailPlan`] injects the two
//! failure shapes that matter for a write-ahead log:
//!
//! * **fsync failure** — the Nth sync returns a typed error and stable
//!   storage does not advance (the fsyncgate model: once a sync has failed,
//!   the device is treated as dying and every later call fails too —
//!   retrying a failed fsync and believing the second `Ok` is the classic
//!   durability bug this layer exists to catch);
//! * **torn write** — the Nth write persists only its first K bytes into
//!   the cache and then errors, modeling a crash partway through a
//!   `write(2)`.
//!
//! After a simulated crash, the surviving file is `durable()` plus *any
//! prefix* of the unsynced cached tail ([`SimDisk::crash_view`]) — the
//! kernel may have written back some of the page cache before the crash,
//! but this layer assumes write-back preserves append order (a prefix, not
//! an arbitrary byte subset). The torture harness in `bench::crash` sweeps
//! `extra` over every offset of that tail, so every possible surviving
//! file is decoded and replayed.
//!
//! Everything here is deterministic: no clocks, no OS state, no
//! randomness. Seeding lives in the harness (which picks the plans); this
//! module only executes them. It is inside the analyzer's panic-path and
//! determinism scopes like the WAL it stands in for.

use crate::wal::WalStore;
use std::io;
use std::sync::{Arc, Mutex, PoisonError};

/// Which injected failures a [`SimDisk`] executes, chosen by the harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct FailPlan {
    /// Fail the Nth `sync` call (0-based). Stable storage does not advance
    /// and the disk goes sticky-failed.
    pub fail_sync_at: Option<u64>,
    /// Tear the Nth `write` call (0-based): persist only the first K bytes
    /// of the buffer into the cache, then error and go sticky-failed.
    pub torn_write_at: Option<(u64, usize)>,
}

impl FailPlan {
    /// A plan with no injected failures (the healthy-disk baseline).
    pub fn none() -> FailPlan {
        FailPlan::default()
    }
}

/// In-memory two-layer disk with fail-point injection. See the module docs
/// for the model.
#[derive(Debug)]
pub struct SimDisk {
    cached: Vec<u8>,
    durable_len: usize,
    plan: FailPlan,
    writes: u64,
    syncs: u64,
    failed: bool,
}

impl SimDisk {
    /// A fresh, empty disk executing `plan`.
    pub fn new(plan: FailPlan) -> SimDisk {
        SimDisk {
            cached: Vec::new(),
            durable_len: 0,
            plan,
            writes: 0,
            syncs: 0,
            failed: false,
        }
    }

    /// Bytes guaranteed on stable storage (survive any crash).
    pub fn durable(&self) -> &[u8] {
        self.cached.get(..self.durable_len).unwrap_or(&self.cached)
    }

    /// Everything written, synced or not — the page-cache view.
    pub fn cached(&self) -> &[u8] {
        &self.cached
    }

    /// Cached bytes not yet on stable storage.
    pub fn unsynced_len(&self) -> usize {
        self.cached.len().saturating_sub(self.durable_len)
    }

    /// The file as a crash would leave it: stable storage plus the first
    /// `extra` bytes of the unsynced tail (clamped). The harness sweeps
    /// `extra` over `0..=unsynced_len()`.
    pub fn crash_view(&self, extra: usize) -> Vec<u8> {
        let len = self
            .durable_len
            .saturating_add(extra.min(self.unsynced_len()))
            .min(self.cached.len());
        self.cached.get(..len).unwrap_or(&self.cached).to_vec()
    }

    /// `write` calls observed so far (torn or not).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// `sync` calls observed so far (failed or not).
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Has an injected failure fired (disk is sticky-failed)?
    pub fn failed(&self) -> bool {
        self.failed
    }

    fn sticky(&self) -> io::Result<()> {
        if self.failed {
            return Err(io::Error::other("simulated disk failed earlier"));
        }
        Ok(())
    }
}

impl WalStore for SimDisk {
    fn write_all_bytes(&mut self, buf: &[u8]) -> io::Result<()> {
        self.sticky()?;
        let this_write = self.writes;
        self.writes += 1;
        if let Some((at, keep)) = self.plan.torn_write_at {
            if this_write == at {
                let kept = buf.get(..keep.min(buf.len())).unwrap_or(buf);
                self.cached.extend_from_slice(kept);
                self.failed = true;
                return Err(io::Error::other(format!(
                    "simulated torn write: {} of {} bytes persisted",
                    kept.len(),
                    buf.len()
                )));
            }
        }
        self.cached.extend_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.sticky()?;
        let this_sync = self.syncs;
        self.syncs += 1;
        if self.plan.fail_sync_at == Some(this_sync) {
            self.failed = true;
            return Err(io::Error::other("simulated fsync failure"));
        }
        self.durable_len = self.cached.len();
        Ok(())
    }
}

/// A cloneable handle over one [`SimDisk`], so the torture harness can keep
/// inspecting crash views while a `WalWriter` (possibly on the serve
/// maintenance thread) owns the other handle.
#[derive(Clone, Debug)]
pub struct SharedDisk {
    inner: Arc<Mutex<SimDisk>>,
}

impl SharedDisk {
    /// A fresh shared disk executing `plan`.
    pub fn new(plan: FailPlan) -> SharedDisk {
        SharedDisk { inner: Arc::new(Mutex::new(SimDisk::new(plan))) }
    }

    /// Run `f` against the disk under the lock (used by the harness to take
    /// crash views and read counters).
    pub fn view<R>(&self, f: impl FnOnce(&SimDisk) -> R) -> R {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        f(&guard)
    }
}

impl WalStore for SharedDisk {
    fn write_all_bytes(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        guard.write_all_bytes(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        guard.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_disk_advances_durable_on_sync() {
        let mut d = SimDisk::new(FailPlan::none());
        d.write_all_bytes(b"abc").unwrap();
        assert_eq!(d.durable(), b"");
        assert_eq!(d.cached(), b"abc");
        d.sync().unwrap();
        assert_eq!(d.durable(), b"abc");
        d.write_all_bytes(b"de").unwrap();
        assert_eq!(d.durable(), b"abc");
        assert_eq!(d.unsynced_len(), 2);
        assert_eq!(d.crash_view(0), b"abc");
        assert_eq!(d.crash_view(1), b"abcd");
        assert_eq!(d.crash_view(99), b"abcde");
    }

    #[test]
    fn failed_sync_is_sticky_and_keeps_durable_frozen() {
        let mut d = SimDisk::new(FailPlan { fail_sync_at: Some(1), torn_write_at: None });
        d.write_all_bytes(b"abc").unwrap();
        d.sync().unwrap();
        d.write_all_bytes(b"def").unwrap();
        assert!(d.sync().is_err(), "second sync is planned to fail");
        assert_eq!(d.durable(), b"abc", "failed sync must not advance durability");
        assert!(d.failed());
        // fsyncgate: a retry must NOT report success.
        assert!(d.sync().is_err());
        assert!(d.write_all_bytes(b"x").is_err());
    }

    #[test]
    fn torn_write_keeps_a_prefix_and_errors() {
        let mut d = SimDisk::new(FailPlan { fail_sync_at: None, torn_write_at: Some((1, 2)) });
        d.write_all_bytes(b"abc").unwrap();
        let err = d.write_all_bytes(b"defg").unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        assert_eq!(d.cached(), b"abcde", "only the first 2 bytes of write 1 persist");
        assert!(d.sync().is_err(), "disk is sticky-failed after the tear");
        assert_eq!(d.durable(), b"");
    }

    #[test]
    fn shared_disk_delegates_and_views() {
        let shared = SharedDisk::new(FailPlan::none());
        let mut writer_handle = shared.clone();
        writer_handle.write_all_bytes(b"xy").unwrap();
        writer_handle.sync().unwrap();
        assert_eq!(shared.view(|d| d.durable().to_vec()), b"xy");
        assert_eq!(shared.view(|d| (d.writes(), d.syncs())), (1, 1));
    }
}
