//! The label-split index: one index node per label, "the simplest index
//! graph" (paper §4.1) — a D(k)-index with every local similarity 0, and
//! identical to the A(0)-index.

use crate::index_graph::IndexGraph;
use dkindex_graph::DataGraph;
use dkindex_partition::Partition;

/// Build the label-split index of `data`.
pub fn label_split_index(data: &DataGraph) -> IndexGraph {
    let p = Partition::by_label(data);
    let sims = vec![0; p.block_count()];
    IndexGraph::from_data_partition(data, &p, sims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::{EdgeKind, LabeledGraph};

    #[test]
    fn one_node_per_used_label() {
        let mut g = DataGraph::new();
        let a1 = g.add_labeled_node("a");
        let a2 = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a1, EdgeKind::Tree);
        g.add_edge(r, a2, EdgeKind::Tree);
        g.add_edge(a1, b, EdgeKind::Tree);
        let idx = label_split_index(&g);
        idx.check_invariants(&g).unwrap();
        assert_eq!(idx.size(), 3);
        assert!(idx.node_ids().all(|i| idx.similarity(i) == 0));
    }

    #[test]
    fn matches_a0_of_dk() {
        use crate::dk::construct::DkIndex;
        use crate::requirements::Requirements;
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, b, EdgeKind::Tree);
        let ls = label_split_index(&g);
        let dk = DkIndex::build(&g, Requirements::new());
        assert!(ls.to_partition().same_equivalence(&dk.index().to_partition()));
    }
}
