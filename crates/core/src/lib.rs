//! # dkindex-core
//!
//! Structural summaries for graph-structured data — the primary contribution
//! of "D(k)-Index: An Adaptive Structural Summary for Graph-Structured Data"
//! (SIGMOD 2003) together with the baselines it is evaluated against:
//!
//! * [`IndexGraph`] — the common summary representation: extents, per-node
//!   local similarity, and the Definition 3 structural constraint.
//! * [`DkIndex`] — the adaptive D(k)-index: broadcast (Algorithm 1),
//!   construction (Algorithm 2), subgraph-addition update (Algorithm 3),
//!   edge-addition update (Algorithms 4–5), and the promoting (Algorithm 6)
//!   and demoting tuning processes.
//! * [`AkIndex`] — the A(k)-index baseline with the propagate-style edge
//!   update used as the comparator in the paper's Table 1.
//! * [`OneIndex`] — the 1-index (full bisimulation).
//! * [`label_split_index`] — the label-split graph (= A(0)).
//! * [`DataGuide`] — the strong DataGuide (related-work baseline).
//! * [`IndexEvaluator`] — query evaluation with the validation process and
//!   the paper's node-visit cost model (§6.1).
//! * [`mine_requirements`] — query-load mining into per-label requirements.
//!
//! ## Example
//!
//! ```
//! use dkindex_core::{DkIndex, IndexEvaluator, Requirements};
//! use dkindex_graph::{DataGraph, EdgeKind};
//! use dkindex_pathexpr::parse;
//!
//! let mut g = DataGraph::new();
//! let d = g.add_labeled_node("director");
//! let m = g.add_labeled_node("movie");
//! let t = g.add_labeled_node("title");
//! let root = dkindex_graph::LabeledGraph::root(&g);
//! g.add_edge(root, d, EdgeKind::Tree);
//! g.add_edge(d, m, EdgeKind::Tree);
//! g.add_edge(m, t, EdgeKind::Tree);
//!
//! let dk = DkIndex::build(&g, Requirements::from_pairs([("title", 2)]));
//! let out = IndexEvaluator::new(dk.index(), &g)
//!     .evaluate(&parse("director.movie.title").unwrap());
//! assert_eq!(out.matches, vec![t]);
//! assert!(!out.validated); // sound: title's local similarity covers length 2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod akindex;
pub mod audit;
pub mod block_store;
pub(crate) mod bytes;
pub mod crc32;
pub mod dataguide;
pub mod dk;
pub mod eval;
pub mod fbindex;
pub mod index_graph;
pub mod index_stats;
pub mod io_fail;
pub mod label_split;
pub mod load_monitor;
pub mod mining;
pub mod one_index;
pub mod prepared;
pub mod requirements;
pub mod serve;
pub mod serve_ops;
pub mod snapshot;
pub mod store;
pub mod tuner;
pub mod wal;

pub use akindex::{AkIndex, UpdateWork};
pub use audit::{audit, audit_dk, recover_or_rebuild, AuditConfig, AuditReport, Finding, Invariant, RecoveryAction, Severity};
pub use block_store::{Block, BlockStore};
pub use dataguide::{DataGuide, DataGuideError};
pub use dk::{DkIndex, EdgeUpdateOutcome};
pub use eval::{evaluate_on_data, evaluate_workload_parallel, IndexEvalOutcome, IndexEvaluator, QueryAborted, QueryCost};
pub use fbindex::FbIndex;
pub use index_graph::{IndexGraph, SIM_EXACT};
pub use index_stats::IndexStats;
pub use io_fail::{FailPlan, SharedDisk, SimDisk};
pub use label_split::label_split_index;
pub use load_monitor::{LoadMonitor, LoadWindow};
pub use mining::{mine_requirements, mine_requirements_weighted};
pub use one_index::OneIndex;
pub use prepared::{CachedEvaluator, PreparedQuery};
pub use requirements::Requirements;
pub use serve::{
    DkServer, DurableAck, Epoch, MaintenanceGate, ServeConfig, ServeError, ServeHandle, Submitter,
    TuneStats,
};
pub use serve_ops::{apply_serial, ServeOp};
pub use snapshot::{load_with_recovery, read_snapshot, save_snapshot_file, snapshot_bytes, write_snapshot, Recovery, SnapshotError, SnapshotFormat};
pub use tuner::{plan_tuning, AdaptiveTuner, ObservedLoad, TunerConfig, TuningAction, TuningPlan};
pub use wal::{
    inspect_wal, BatchLog, ReplayReport, WalError, WalInspection, WalRecord, WalStore, WalTail,
    WalVerdict, WalWriter,
};
