//! Lock-free query-load monitoring for the live tuning loop.
//!
//! [`LoadMonitor`] is the observation half of the serve-path adaptive loop
//! (paper §5.3/§5.4/§7, ARCHITECTURE.md "Live tuning"): epoch readers feed
//! it on every [`crate::serve::Epoch::evaluate`] and the maintenance
//! thread periodically [`LoadMonitor::harvest`]s the window, mines
//! requirements from it, and enqueues promote/demote work as ordinary
//! serve ops.
//!
//! Two constraints shape the design:
//!
//! * **No reader-side locking.** Recording a query must never serialize
//!   readers against each other or against the maintenance thread. Every
//!   cell is an `AtomicU64` bumped with `Relaxed` ordering, and the cells
//!   are *sharded*: each recording thread picks a shard by hashing its
//!   thread id, so two readers on different shards never contend on a
//!   cache line. The label universe is fixed while serving (node counts
//!   never change, see `core::serve`), so the per-label table is a dense
//!   `label × length` matrix sized once at construction — recording is two
//!   array index computations and a fetch-add.
//! * **Deterministic harvest.** [`LoadMonitor::harvest`] drains every cell
//!   with `swap(0)` and folds the shards into one [`LoadWindow`]. The
//!   window's [`LoadWindow::weighted_queries`] synthesizes one
//!   representative linear query per occupied `(label, length)` cell in
//!   `(label id, length)` order — a *sorted* mining input, so the same
//!   window always mines the same requirements (the serial-replay oracle
//!   depends on the decision being a pure function of the window).
//!
//! What is recorded per query: the query's maximum word length bucketed
//! against each result label it can end at (the §6.1 attribution: a query
//! of length `p` ending at label `A` demands `k_A ≥ p − 1`), wildcard
//! endings per length (blanket load, attributed to the requirement
//! *floor*), plus validation and memo hit/miss counters. Unbounded queries
//! (`R*` tails) have no finite length requirement and only feed the
//! hit/miss counters, mirroring what the requirement miner would do with
//! them. Lengths beyond [`LoadMonitor::MAX_TRACKED_LEN`] clamp to the top
//! bucket: a deeper-than-tracked query still registers as "deep", it just
//! cannot demand a requirement beyond the cap.

use dkindex_graph::LabelInterner;
use dkindex_pathexpr::PathExpr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One shard of counters. Shards exist only to spread reader traffic
/// across cache lines; their contents are summed at harvest.
#[derive(Debug)]
struct Shard {
    /// `label.index() * MAX_TRACKED_LEN + (len - 1)` → occurrences.
    label_len: Vec<AtomicU64>,
    /// `(len - 1)` → occurrences of wildcard-ending queries of length `len`.
    wildcard_len: Vec<AtomicU64>,
    /// Queries whose outcome required validation.
    validated: AtomicU64,
    /// Queries answered soundly (no validation).
    sound: AtomicU64,
    /// Queries answered from the per-epoch memo.
    memo_hits: AtomicU64,
    /// Queries that ran the evaluator.
    memo_misses: AtomicU64,
}

impl Shard {
    fn new(labels: usize) -> Shard {
        Shard {
            label_len: (0..labels * LoadMonitor::MAX_TRACKED_LEN)
                .map(|_| AtomicU64::new(0))
                .collect(),
            wildcard_len: (0..LoadMonitor::MAX_TRACKED_LEN)
                .map(|_| AtomicU64::new(0))
                .collect(),
            validated: AtomicU64::new(0),
            sound: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
        }
    }
}

/// Sharded, lock-free query-load counters shared between epoch readers
/// (writers) and the maintenance thread (the sole harvester).
#[derive(Debug)]
pub struct LoadMonitor {
    labels: Arc<LabelInterner>,
    shards: Vec<Shard>,
}

impl LoadMonitor {
    /// Longest query length (in words) tracked exactly; deeper queries
    /// clamp into the top bucket. Mined requirements are therefore capped
    /// at `MAX_TRACKED_LEN - 1`, which is far beyond any index depth the
    /// demote hysteresis would sustain.
    pub const MAX_TRACKED_LEN: usize = 16;

    /// Number of shards. A small power of two: enough to keep a handful of
    /// reader threads off each other's cache lines without bloating the
    /// harvest scan.
    const SHARDS: usize = 8;

    /// Build a monitor over `labels` — the label universe of the served
    /// data graph, fixed for the server's lifetime.
    pub fn new(labels: Arc<LabelInterner>) -> LoadMonitor {
        let n = labels.len();
        LoadMonitor {
            labels,
            shards: (0..LoadMonitor::SHARDS).map(|_| Shard::new(n)).collect(),
        }
    }

    /// The shard the calling thread records into. Thread ids are stable
    /// for a thread's lifetime, so each reader keeps hitting one shard.
    fn shard(&self) -> &Shard {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        let idx = (h.finish() as usize) % self.shards.len().max(1);
        // The modulo above keeps `idx` in range; `.get` keeps the reader
        // path free of panic edges even so.
        self.shards.get(idx).unwrap_or(&self.shards[0])
    }

    /// Record one evaluated query: its length against every result label
    /// it can end at, plus the validation and memo outcome. Lock-free —
    /// relaxed fetch-adds on the caller's shard.
    pub fn record(&self, query: &PathExpr, validated: bool, memo_hit: bool) {
        let shard = self.shard();
        if validated {
            shard.validated.fetch_add(1, Ordering::Relaxed);
        } else {
            shard.sound.fetch_add(1, Ordering::Relaxed);
        }
        if memo_hit {
            shard.memo_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            shard.memo_misses.fetch_add(1, Ordering::Relaxed);
        }
        // Unbounded queries demand no finite requirement — the miner
        // skips them, so the histogram does too.
        let Some(len) = query.max_word_len() else { return };
        if len == 0 {
            return;
        }
        let bucket = len.min(LoadMonitor::MAX_TRACKED_LEN) - 1;
        let last = query.last_labels();
        if last.wildcard {
            if let Some(cell) = shard.wildcard_len.get(bucket) {
                cell.fetch_add(1, Ordering::Relaxed);
            }
        }
        for label in &last.labels {
            // A result label outside the served graph's universe can never
            // be matched, so there is nothing to tune for it.
            let Some(id) = self.labels.get(label) else { continue };
            let cell = id.index() * LoadMonitor::MAX_TRACKED_LEN + bucket;
            if let Some(cell) = shard.label_len.get(cell) {
                cell.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drain every counter (swap to zero) and fold the shards into one
    /// [`LoadWindow`]. Called by the maintenance thread; concurrent
    /// records land in either the returned window or the next one, never
    /// both, never neither.
    pub fn harvest(&self) -> LoadWindow {
        let n = self.labels.len();
        let mut window = LoadWindow {
            labels: Arc::clone(&self.labels),
            label_len: vec![0; n * LoadMonitor::MAX_TRACKED_LEN],
            wildcard_len: vec![0; LoadMonitor::MAX_TRACKED_LEN],
            validated: 0,
            sound: 0,
            memo_hits: 0,
            memo_misses: 0,
        };
        for shard in &self.shards {
            for (sum, cell) in window.label_len.iter_mut().zip(&shard.label_len) {
                *sum += cell.swap(0, Ordering::Relaxed);
            }
            for (sum, cell) in window.wildcard_len.iter_mut().zip(&shard.wildcard_len) {
                *sum += cell.swap(0, Ordering::Relaxed);
            }
            window.validated += shard.validated.swap(0, Ordering::Relaxed);
            window.sound += shard.sound.swap(0, Ordering::Relaxed);
            window.memo_hits += shard.memo_hits.swap(0, Ordering::Relaxed);
            window.memo_misses += shard.memo_misses.swap(0, Ordering::Relaxed);
        }
        window
    }
}

/// One harvested observation window: plain (non-atomic) sums, owned by the
/// maintenance thread. Windows [`LoadWindow::merge`] so a harvest that is
/// still below the configured window size can accumulate into the next
/// one instead of being discarded.
#[derive(Clone, Debug)]
pub struct LoadWindow {
    labels: Arc<LabelInterner>,
    label_len: Vec<u64>,
    wildcard_len: Vec<u64>,
    /// Queries whose outcome required validation.
    pub validated: u64,
    /// Queries answered soundly.
    pub sound: u64,
    /// Queries answered from the per-epoch memo.
    pub memo_hits: u64,
    /// Queries that ran the evaluator.
    pub memo_misses: u64,
}

impl LoadWindow {
    /// Queries recorded into the length histogram (bounded queries only —
    /// the population the requirement miner will see).
    pub fn recorded(&self) -> u64 {
        // Wildcard endings and label endings of the same query both count
        // it; use the larger axis as the histogram population rather than
        // double-counting.
        let by_label: u64 = self.label_len.iter().sum();
        let by_wildcard: u64 = self.wildcard_len.iter().sum();
        by_label.max(by_wildcard)
    }

    /// True when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded() == 0 && self.validated == 0 && self.sound == 0
    }

    /// Fold `other` into this window (cell-wise sums). Both windows must
    /// come from the same monitor; mismatched tables merge the shared
    /// prefix, which cannot happen for a fixed label universe.
    pub fn merge(&mut self, other: &LoadWindow) {
        for (sum, v) in self.label_len.iter_mut().zip(&other.label_len) {
            *sum += v;
        }
        for (sum, v) in self.wildcard_len.iter_mut().zip(&other.wildcard_len) {
            *sum += v;
        }
        self.validated += other.validated;
        self.sound += other.sound;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
    }

    /// Synthesize the weighted query multiset this window represents, in
    /// `(label id, length)` order — a deterministic input for
    /// [`crate::mining::mine_requirements_weighted`]. Each occupied cell
    /// becomes one representative linear query: `len - 1` wildcards
    /// followed by the result label (or `len` wildcards for the
    /// wildcard-ending cells), which demands exactly the requirement the
    /// recorded queries did.
    pub fn weighted_queries(&self) -> Vec<(PathExpr, u64)> {
        let mut out = Vec::new();
        let rows = self.label_len.chunks(LoadMonitor::MAX_TRACKED_LEN);
        for ((_, name), row) in self.labels.iter().zip(rows) {
            for (bucket, &count) in row.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let mut expr = PathExpr::label(name);
                for _ in 0..bucket {
                    expr = PathExpr::seq(PathExpr::Wildcard, expr);
                }
                out.push((expr, count));
            }
        }
        for (bucket, &count) in self.wildcard_len.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let mut expr = PathExpr::Wildcard;
            for _ in 0..bucket {
                expr = PathExpr::seq(PathExpr::Wildcard, expr);
            }
            out.push((expr, count));
        }
        out
    }

    /// The labels this window observed as result labels (any length, any
    /// support), plus whether wildcard endings were observed — the decay
    /// gate for the tuning policy's demotion path.
    pub fn observed(&self) -> crate::tuner::ObservedLoad {
        let mut observed = crate::tuner::ObservedLoad::default();
        let rows = self.label_len.chunks(LoadMonitor::MAX_TRACKED_LEN);
        for ((_, name), row) in self.labels.iter().zip(rows) {
            if row.iter().any(|&c| c > 0) {
                observed.labels.insert(name.to_string());
            }
        }
        observed.wildcard = self.wildcard_len.iter().any(|&c| c > 0);
        observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mining::{mine_requirements, mine_requirements_weighted};
    use dkindex_graph::{DataGraph, LabeledGraph};
    use dkindex_pathexpr::parse;

    fn graph() -> DataGraph {
        let mut g = DataGraph::new();
        let m = g.add_labeled_node("movie");
        let t = g.add_labeled_node("title");
        let r = g.root();
        g.add_edge(r, m, dkindex_graph::EdgeKind::Tree);
        g.add_edge(m, t, dkindex_graph::EdgeKind::Tree);
        g
    }

    #[test]
    fn recorded_queries_mine_like_the_original_load() {
        let g = graph();
        let monitor = LoadMonitor::new(g.labels_shared());
        let queries = [
            parse("movie.title").unwrap(),
            parse("movie.title").unwrap(),
            parse("title").unwrap(),
            parse("movie").unwrap(),
        ];
        for q in &queries {
            monitor.record(q, false, false);
        }
        let window = monitor.harvest();
        assert_eq!(window.recorded(), 4);
        let mined = mine_requirements_weighted(&window.weighted_queries(), 0);
        let direct = mine_requirements(&queries);
        assert_eq!(mined.get("title"), direct.get("title"));
        assert_eq!(mined.get("movie"), direct.get("movie"));
        assert_eq!(mined.floor(), direct.floor());
    }

    #[test]
    fn harvest_drains_the_window() {
        let g = graph();
        let monitor = LoadMonitor::new(g.labels_shared());
        monitor.record(&parse("movie.title").unwrap(), true, false);
        let first = monitor.harvest();
        assert_eq!(first.recorded(), 1);
        assert_eq!(first.validated, 1);
        let second = monitor.harvest();
        assert!(second.is_empty());
        assert_eq!(second.recorded(), 0);
    }

    #[test]
    fn wildcard_endings_feed_the_floor() {
        let g = graph();
        let monitor = LoadMonitor::new(g.labels_shared());
        monitor.record(&parse("movie._").unwrap(), false, false);
        let window = monitor.harvest();
        let observed = window.observed();
        assert!(observed.wildcard);
        let mined = mine_requirements_weighted(&window.weighted_queries(), 0);
        assert_eq!(mined.floor(), 1);
    }

    #[test]
    fn unbounded_queries_only_count_outcomes() {
        let g = graph();
        let monitor = LoadMonitor::new(g.labels_shared());
        monitor.record(&parse("movie*.title*").unwrap(), false, true);
        let window = monitor.harvest();
        assert_eq!(window.recorded(), 0);
        assert_eq!(window.memo_hits, 1);
    }

    #[test]
    fn unknown_labels_are_ignored() {
        let g = graph();
        let monitor = LoadMonitor::new(g.labels_shared());
        monitor.record(&parse("movie.nosuchlabel").unwrap(), false, false);
        let window = monitor.harvest();
        assert_eq!(window.recorded(), 0);
        assert!(window.observed().labels.is_empty());
    }

    #[test]
    fn windows_merge_cell_wise() {
        let g = graph();
        let monitor = LoadMonitor::new(g.labels_shared());
        monitor.record(&parse("movie.title").unwrap(), false, false);
        let mut acc = monitor.harvest();
        monitor.record(&parse("movie.title").unwrap(), true, false);
        acc.merge(&monitor.harvest());
        assert_eq!(acc.recorded(), 2);
        assert_eq!(acc.validated, 1);
        let mined = mine_requirements_weighted(&acc.weighted_queries(), 2);
        assert_eq!(mined.get("title"), 1);
    }

    #[test]
    fn deep_queries_clamp_to_the_top_bucket() {
        let g = graph();
        let monitor = LoadMonitor::new(g.labels_shared());
        let deep = "_.".repeat(30) + "title";
        monitor.record(&parse(&deep).unwrap(), false, false);
        let window = monitor.harvest();
        assert_eq!(window.recorded(), 1);
        let mined = mine_requirements_weighted(&window.weighted_queries(), 0);
        assert_eq!(mined.get("title"), LoadMonitor::MAX_TRACKED_LEN - 1);
    }
}
