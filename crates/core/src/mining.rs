//! Query-load mining: deriving per-label local-similarity requirements from
//! a workload of path expressions (paper §6.1).
//!
//! "We set a label's local similarity requirement to be the longest length of
//! test path queries less one such that no validation will be needed for
//! evaluation on it." A query of `p` labels has path length `p − 1` (edges);
//! with the Definition 3 constraint, soundness needs the *result* node's
//! local similarity to reach that length, so each label a query can return
//! gets requirement `max(p) − 1` over the queries returning it.

use crate::requirements::Requirements;
use dkindex_pathexpr::PathExpr;

/// Mine requirements from a query load (each query weighted equally).
///
/// * Queries ending in a wildcard raise the floor for every label.
/// * Unbounded queries (containing `*`) are skipped: no finite similarity
///   makes them validation-free, and the paper's workloads contain none.
pub fn mine_requirements(queries: &[PathExpr]) -> Requirements {
    let mut reqs = Requirements::new();
    for q in queries {
        let Some(p) = q.max_word_len() else {
            continue; // unbounded
        };
        let needed = p.saturating_sub(1);
        if needed == 0 {
            continue;
        }
        let last = q.last_labels();
        if last.wildcard {
            reqs.raise_floor(needed);
        }
        for label in &last.labels {
            reqs.raise(label, needed);
        }
    }
    reqs
}

/// Mine requirements from a weighted query load, ignoring queries whose
/// frequency falls below `min_support` — "the choice of k_A should guarantee
/// that the majority of queries accessing A are ≤ k_A in length" (§4.1):
/// rare long queries are cheaper to validate than to index for.
pub fn mine_requirements_weighted(
    queries: &[(PathExpr, u64)],
    min_support: u64,
) -> Requirements {
    // A weight of zero means the query was never observed, so it carries no
    // support regardless of the threshold: mining over the weighted load is
    // exactly mining over its multiset expansion.
    let supported: Vec<PathExpr> = queries
        .iter()
        .filter(|&&(_, w)| w > 0 && w >= min_support)
        .map(|(q, _)| q.clone())
        .collect();
    mine_requirements(&supported)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_pathexpr::parse;

    #[test]
    fn linear_paths_set_last_label_requirement() {
        let qs = vec![
            parse("director.movie.title").unwrap(),
            parse("movie.title").unwrap(),
            parse("actor.name").unwrap(),
        ];
        let r = mine_requirements(&qs);
        assert_eq!(r.get("title"), 2); // longest query: 3 labels → length 2
        assert_eq!(r.get("name"), 1);
        assert_eq!(r.get("movie"), 0); // never a result label
    }

    #[test]
    fn optional_parts_use_max_length() {
        let qs = vec![parse("movieDB.(_)?.movie.actor.name").unwrap()];
        let r = mine_requirements(&qs);
        assert_eq!(r.get("name"), 4); // max 5 labels → length 4
    }

    #[test]
    fn wildcard_tail_raises_floor() {
        let qs = vec![parse("movie._").unwrap()];
        let r = mine_requirements(&qs);
        assert_eq!(r.floor(), 1);
        assert_eq!(r.get("anything"), 1);
    }

    #[test]
    fn alternation_raises_all_branch_tails() {
        let qs = vec![parse("movie.(title|year)").unwrap()];
        let r = mine_requirements(&qs);
        assert_eq!(r.get("title"), 1);
        assert_eq!(r.get("year"), 1);
    }

    #[test]
    fn unbounded_queries_are_skipped() {
        let qs = vec![parse("movie.title*").unwrap()];
        let r = mine_requirements(&qs);
        // title* can end in `movie` (nullable tail) — movie gets a
        // requirement only if the expression were bounded; it is not.
        assert_eq!(r.max_requirement(), 0);
    }

    #[test]
    fn single_label_queries_need_nothing() {
        let qs = vec![parse("title").unwrap()];
        assert_eq!(mine_requirements(&qs).max_requirement(), 0);
    }

    /// Property: with `min_support` 0 the weighted miner is exactly the
    /// unweighted miner over the multiset expansion (each query repeated
    /// `weight` times) — weights select, they never scale requirements.
    /// Seeded pseudo-random workloads over a mixed query pool, many draws.
    #[test]
    fn zero_support_weighted_mining_equals_multiset_expansion() {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let pool: Vec<PathExpr> = [
            "title",
            "movie.title",
            "director.movie.title",
            "movieDB.(_)?.movie.actor.name",
            "movie.(title|year)",
            "movie._",
            "a.b.c.d.e",
            "movie.title*",
            "_._.year",
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect();
        let mut rng = 0xD11E_5EEDu64;
        for _ in 0..200 {
            let n = 1 + (splitmix64(&mut rng) as usize % pool.len());
            let weighted: Vec<(PathExpr, u64)> = (0..n)
                .map(|_| {
                    let q = pool[splitmix64(&mut rng) as usize % pool.len()].clone();
                    (q, splitmix64(&mut rng) % 5) // weight 0..=4, zeros allowed
                })
                .collect();
            let expanded: Vec<PathExpr> = weighted
                .iter()
                .flat_map(|(q, w)| std::iter::repeat_n(q.clone(), *w as usize))
                .collect();
            assert_eq!(
                mine_requirements_weighted(&weighted, 0),
                mine_requirements(&expanded),
                "diverged on workload {weighted:?}"
            );
        }
    }

    #[test]
    fn weighted_mining_drops_rare_queries() {
        let qs = vec![
            (parse("a.b.c.d.e").unwrap(), 1),   // rare long query
            (parse("movie.title").unwrap(), 99), // common short query
        ];
        let r = mine_requirements_weighted(&qs, 10);
        assert_eq!(r.get("e"), 0);
        assert_eq!(r.get("title"), 1);
        let all = mine_requirements_weighted(&qs, 0);
        assert_eq!(all.get("e"), 4);
    }
}
