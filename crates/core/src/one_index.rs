//! The 1-index (Milo & Suciu): extents are the full bisimulation equivalence
//! classes. Safe and sound for path expressions of any length — and usually
//! much larger than an A(k) or D(k) index, which is why the paper relaxes it.

use crate::index_graph::{IndexGraph, SIM_EXACT};
use dkindex_graph::DataGraph;
use dkindex_partition::paige_tarjan;

/// The 1-index.
#[derive(Clone, Debug)]
pub struct OneIndex {
    index: IndexGraph,
}

impl OneIndex {
    /// Build the 1-index via the Paige–Tarjan coarsest refinement
    /// (O(m log n), the construction the paper cites in §4.1).
    pub fn build(data: &DataGraph) -> Self {
        let p = paige_tarjan(data);
        let sims = vec![SIM_EXACT; p.block_count()];
        OneIndex {
            index: IndexGraph::from_data_partition(data, &p, sims),
        }
    }

    /// The underlying index graph.
    pub fn index(&self) -> &IndexGraph {
        &self.index
    }

    /// Number of index nodes.
    pub fn size(&self) -> usize {
        self.index.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::akindex::AkIndex;
    use crate::eval::{evaluate_on_data, IndexEvaluator};
    use dkindex_graph::{EdgeKind, LabeledGraph};
    use dkindex_pathexpr::parse;

    fn data() -> DataGraph {
        let mut g = DataGraph::new();
        let d = g.add_labeled_node("director");
        let a = g.add_labeled_node("actor");
        let m1 = g.add_labeled_node("movie");
        let m2 = g.add_labeled_node("movie");
        let t1 = g.add_labeled_node("title");
        let t2 = g.add_labeled_node("title");
        let r = g.root();
        g.add_edge(r, d, EdgeKind::Tree);
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(d, m1, EdgeKind::Tree);
        g.add_edge(a, m2, EdgeKind::Tree);
        g.add_edge(m1, t1, EdgeKind::Tree);
        g.add_edge(m2, t2, EdgeKind::Tree);
        g.add_edge(m2, m1, EdgeKind::Reference);
        g
    }

    #[test]
    fn one_index_is_always_sound() {
        let g = data();
        let one = OneIndex::build(&g);
        one.index().check_invariants(&g).unwrap();
        for expr in [
            "director.movie.title",
            "actor.movie.movie.title",
            "ROOT._._.title",
        ] {
            let e = parse(expr).unwrap();
            let out = IndexEvaluator::new(one.index(), &g).evaluate(&e);
            assert!(!out.validated, "{expr} should not validate on the 1-index");
            assert_eq!(out.matches, evaluate_on_data(&g, &e).0, "{expr}");
        }
    }

    #[test]
    fn one_index_refines_every_ak() {
        let g = data();
        let one = OneIndex::build(&g);
        for k in 0..4 {
            let ak = AkIndex::build(&g, k);
            assert!(one
                .index()
                .to_partition()
                .is_refinement_of(&ak.index().to_partition()));
            assert!(one.size() >= ak.size());
        }
    }

    #[test]
    fn one_index_never_larger_than_data() {
        let g = data();
        assert!(OneIndex::build(&g).size() <= g.node_count());
    }
}
