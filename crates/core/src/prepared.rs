//! Prepared queries and a version-aware result cache — an implementation of
//! the paper's second future-work direction (§7): "Currently, the update and
//! evaluation processes are executed independently. Potentially, they can be
//! combined to speed up the D(k)-index's processing of path queries."
//!
//! * [`PreparedQuery`] compiles a path expression once (forward NFA against
//!   the index alphabet, reversed NFA against the data alphabet, soundness
//!   bound), so repeated evaluation skips parsing and compilation.
//! * [`CachedEvaluator`] memoizes full query results keyed by the query
//!   text, invalidating on [`IndexGraph::version`] changes — the update
//!   algorithms bump the version, so an edge addition transparently evicts
//!   exactly when cached answers could have changed.
//!
//! ```
//! use dkindex_core::{CachedEvaluator, DkIndex, Requirements};
//! use dkindex_pathexpr::parse;
//! use dkindex_xml::parse_to_graph;
//!
//! let data = parse_to_graph("<db><movie><title/></movie></db>").unwrap();
//! let dk = DkIndex::build(&data, Requirements::uniform(1));
//! let mut cache = CachedEvaluator::new(dk.index());
//! let q = parse("movie.title").unwrap();
//! let miss = cache.evaluate(dk.index(), &data, &q);
//! let hit = cache.evaluate(dk.index(), &data, &q);
//! assert_eq!(hit.matches, miss.matches);
//! assert_eq!(hit.cost.total(), 0); // served from the cache
//! ```

use crate::eval::{IndexEvalOutcome, QueryCost};
use crate::index_graph::IndexGraph;
use dkindex_graph::{DataGraph, LabeledGraph, NodeId};
use dkindex_pathexpr::{evaluate_with, matches_ending_at_with, EvalArena, LabelIndex, Nfa, PathExpr};
use std::collections::HashMap;

/// A path expression compiled for one `(index, data)` label alphabet pair.
#[derive(Clone, Debug)]
pub struct PreparedQuery {
    expr: PathExpr,
    forward: Nfa,
    reversed: Nfa,
    /// Path length (edges) the result node's similarity must reach for
    /// soundness; `None` when unbounded (always validate).
    required: Option<usize>,
}

impl PreparedQuery {
    /// Compile `expr` against the alphabets of `index` and `data`.
    pub fn new(expr: PathExpr, index: &IndexGraph, data: &DataGraph) -> Self {
        let forward = Nfa::compile(&expr, index.labels());
        let reversed = Nfa::compile(&expr, data.labels()).reverse();
        let required = expr.max_word_len().map(|labels| labels.saturating_sub(1));
        PreparedQuery {
            expr,
            forward,
            reversed,
            required,
        }
    }

    /// The source expression.
    pub fn expr(&self) -> &PathExpr {
        &self.expr
    }

    /// Evaluate against the pair it was prepared for. `index_labels` must be
    /// `LabelIndex::build(index)` (shared across queries by the caller).
    pub fn evaluate(
        &self,
        index: &IndexGraph,
        data: &DataGraph,
        index_labels: &LabelIndex,
    ) -> IndexEvalOutcome {
        let mut arena = EvalArena::new();
        self.evaluate_in(index, data, index_labels, &mut arena)
    }

    /// [`Self::evaluate`] with caller-owned scratch: a batch of prepared
    /// queries sharing one [`EvalArena`] allocates nothing per query once the
    /// arena has grown to the workload's high-water mark.
    pub fn evaluate_in(
        &self,
        index: &IndexGraph,
        data: &DataGraph,
        index_labels: &LabelIndex,
        arena: &mut EvalArena,
    ) -> IndexEvalOutcome {
        let on_index = evaluate_with(index, &self.forward, index_labels, arena);
        let mut matches: Vec<NodeId> = Vec::new();
        let mut cost = QueryCost {
            index_visits: on_index.visited,
            data_visits: 0,
        };
        let mut validated = false;
        for inode in on_index.matches {
            let sound = match self.required {
                Some(m) => index.similarity(inode) >= m,
                None => false,
            };
            if sound {
                matches.extend_from_slice(index.extent(inode));
            } else {
                validated = true;
                for &candidate in index.extent(inode) {
                    let (hit, visited) =
                        matches_ending_at_with(data, &self.reversed, candidate, arena);
                    cost.data_visits += visited;
                    if hit {
                        matches.push(candidate);
                    }
                }
            }
        }
        matches.sort_unstable();
        matches.dedup();
        IndexEvalOutcome {
            matches,
            cost,
            validated,
        }
    }
}

/// A query evaluator with compiled-query and result caches, both invalidated
/// when the index version moves (i.e. after any update algorithm ran).
pub struct CachedEvaluator {
    index_labels: LabelIndex,
    version: u64,
    prepared: HashMap<String, PreparedQuery>,
    results: HashMap<String, IndexEvalOutcome>,
    arena: EvalArena,
    hits: u64,
    misses: u64,
}

impl CachedEvaluator {
    /// Create a cache bound to the current state of `index`.
    pub fn new(index: &IndexGraph) -> Self {
        CachedEvaluator {
            index_labels: LabelIndex::build(index),
            version: index.version(),
            prepared: HashMap::new(),
            results: HashMap::new(),
            arena: EvalArena::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Evaluate `expr`, reusing a cached result when the index is unchanged
    /// since it was computed. Cached hits cost zero node visits — the "skip
    /// re-evaluation entirely" payoff of coupling updates with evaluation.
    pub fn evaluate(
        &mut self,
        index: &IndexGraph,
        data: &DataGraph,
        expr: &PathExpr,
    ) -> IndexEvalOutcome {
        if index.version() != self.version {
            // The index changed under us: drop everything tied to it.
            self.version = index.version();
            self.index_labels = LabelIndex::build(index);
            self.prepared.clear();
            self.results.clear();
        }
        let key = expr.to_string();
        if let Some(cached) = self.results.get(&key) {
            self.hits += 1;
            let mut reply = cached.clone();
            reply.cost = QueryCost::default(); // answered from the cache
            return reply;
        }
        self.misses += 1;
        let prepared = self
            .prepared
            .entry(key.clone())
            .or_insert_with(|| PreparedQuery::new(expr.clone(), index, data));
        let outcome = prepared.evaluate_in(index, data, &self.index_labels, &mut self.arena);
        self.results.insert(key, outcome.clone());
        outcome
    }

    /// `(cache hits, cache misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dk::construct::DkIndex;
    use crate::eval::{evaluate_on_data, IndexEvaluator};
    use crate::requirements::Requirements;
    use dkindex_graph::EdgeKind;
    use dkindex_pathexpr::parse;

    fn data() -> DataGraph {
        let mut g = DataGraph::new();
        let d = g.add_labeled_node("director");
        let a = g.add_labeled_node("actor");
        let m1 = g.add_labeled_node("movie");
        let m2 = g.add_labeled_node("movie");
        let t1 = g.add_labeled_node("title");
        let t2 = g.add_labeled_node("title");
        let r = g.root();
        g.add_edge(r, d, EdgeKind::Tree);
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(d, m1, EdgeKind::Tree);
        g.add_edge(a, m2, EdgeKind::Tree);
        g.add_edge(m1, t1, EdgeKind::Tree);
        g.add_edge(m2, t2, EdgeKind::Tree);
        g
    }

    #[test]
    fn prepared_matches_ad_hoc_evaluation() {
        let g = data();
        let dk = DkIndex::build(&g, Requirements::uniform(1));
        let labels = LabelIndex::build(dk.index());
        for q in ["movie.title", "director.movie.title", "ghost", "_.movie"] {
            let expr = parse(q).unwrap();
            let prepared = PreparedQuery::new(expr.clone(), dk.index(), &g);
            let a = prepared.evaluate(dk.index(), &g, &labels);
            let b = IndexEvaluator::new(dk.index(), &g).evaluate(&expr);
            assert_eq!(a.matches, b.matches, "{q}");
            assert_eq!(a.cost, b.cost, "{q}");
            assert_eq!(a.validated, b.validated, "{q}");
        }
    }

    #[test]
    fn cache_hits_are_free_and_correct() {
        let g = data();
        let dk = DkIndex::build(&g, Requirements::uniform(1));
        let mut cache = CachedEvaluator::new(dk.index());
        let q = parse("director.movie.title").unwrap();
        let first = cache.evaluate(dk.index(), &g, &q);
        assert!(first.cost.total() > 0);
        let second = cache.evaluate(dk.index(), &g, &q);
        assert_eq!(second.matches, first.matches);
        assert_eq!(second.cost.total(), 0);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn updates_invalidate_the_cache() {
        let mut g = data();
        let mut dk = DkIndex::build(&g, Requirements::uniform(2));
        let mut cache = CachedEvaluator::new(dk.index());
        let q = parse("actor.movie.title").unwrap();
        let before = cache.evaluate(dk.index(), &g, &q);

        // Update: director also references actor's movie's title... add an
        // edge that changes the answer of the cached query.
        let actor = g.nodes_with_label(g.labels().get("actor").unwrap())[0];
        let t1 = g.nodes_with_label(g.labels().get("title").unwrap())[0];
        let m1 = g.nodes_with_label(g.labels().get("movie").unwrap())[0];
        let _ = t1;
        dk.add_edge(&mut g, actor, m1);

        let after = cache.evaluate(dk.index(), &g, &q);
        assert_ne!(before.matches, after.matches, "stale answer served");
        assert_eq!(after.matches, evaluate_on_data(&g, &q).0);
        // The refresh was a miss, not a hit.
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn promote_invalidates_too() {
        let g = data();
        let mut dk = DkIndex::build(&g, Requirements::new());
        let mut cache = CachedEvaluator::new(dk.index());
        let q = parse("director.movie.title").unwrap();
        let v1 = cache.evaluate(dk.index(), &g, &q);
        assert!(v1.validated);
        let t1 = g.nodes_with_label(g.labels().get("title").unwrap())[0];
        dk.promote(&g, t1, 2);
        let v2 = cache.evaluate(dk.index(), &g, &q);
        assert!(!v2.validated, "promotion must be visible through the cache");
        assert_eq!(v2.matches, v1.matches);
    }

    #[test]
    fn distinct_queries_do_not_collide() {
        let g = data();
        let dk = DkIndex::build(&g, Requirements::uniform(2));
        let mut cache = CachedEvaluator::new(dk.index());
        let a = cache.evaluate(dk.index(), &g, &parse("movie.title").unwrap());
        let b = cache.evaluate(dk.index(), &g, &parse("actor.movie").unwrap());
        assert_ne!(a.matches, b.matches);
    }
}
