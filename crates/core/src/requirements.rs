//! Per-label local-similarity requirements, mined from the query load.
//!
//! "The local similarity requirement for each label can be obtained from the
//! query load. The default local similarity requirements of those labels
//! that never appear in the query load are set to zero." (paper §4.2)
//!
//! Requirements are keyed by label *name* (not id) so one requirements table
//! can be applied to a data graph, to a freshly built sub-index, or to an
//! index graph being re-indexed, regardless of interner identity.

use dkindex_graph::LabelInterner;
use std::collections::HashMap;

/// Per-label local-similarity requirements (default 0 per label).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Requirements {
    by_name: HashMap<String, usize>,
    /// A floor applied to *every* label (used when a query can return any
    /// label, e.g. it ends in a wildcard).
    floor: usize,
}

impl Requirements {
    /// Empty requirements: every label requires similarity 0, producing the
    /// label-split index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Uniform requirement `k` for every label — the A(k)-index as a special
    /// case of the D(k)-index (paper Definition 3 discussion).
    pub fn uniform(k: usize) -> Self {
        Requirements {
            by_name: HashMap::new(),
            floor: k,
        }
    }

    /// Raise `label`'s requirement to at least `k`.
    pub fn raise(&mut self, label: &str, k: usize) {
        let entry = self.by_name.entry(label.to_string()).or_insert(0);
        *entry = (*entry).max(k);
    }

    /// Raise the floor applied to every label to at least `k`.
    pub fn raise_floor(&mut self, k: usize) {
        self.floor = self.floor.max(k);
    }

    /// The requirement for `label`.
    pub fn get(&self, label: &str) -> usize {
        self.by_name.get(label).copied().unwrap_or(0).max(self.floor)
    }

    /// The floor applied to every label.
    pub fn floor(&self) -> usize {
        self.floor
    }

    /// Resolve to a dense per-`LabelId` table for `interner`.
    pub fn resolve(&self, interner: &LabelInterner) -> Vec<usize> {
        interner.iter().map(|(_, name)| self.get(name)).collect()
    }

    /// Largest requirement mentioned (including the floor).
    pub fn max_requirement(&self) -> usize {
        self.by_name
            .values()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.floor)
    }

    /// Iterate over explicitly raised `(label, k)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> {
        self.by_name.iter().map(|(n, &k)| (n.as_str(), k))
    }

    /// Build from explicit `(label, k)` pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, usize)>) -> Self {
        let mut r = Requirements::new();
        for (name, k) in pairs {
            r.raise(name, k);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let r = Requirements::new();
        assert_eq!(r.get("anything"), 0);
        assert_eq!(r.max_requirement(), 0);
    }

    #[test]
    fn raise_is_max_merge() {
        let mut r = Requirements::new();
        r.raise("title", 2);
        r.raise("title", 1);
        assert_eq!(r.get("title"), 2);
        r.raise("title", 4);
        assert_eq!(r.get("title"), 4);
    }

    #[test]
    fn floor_applies_to_every_label() {
        let mut r = Requirements::from_pairs([("a", 3)]);
        r.raise_floor(1);
        assert_eq!(r.get("a"), 3);
        assert_eq!(r.get("b"), 1);
        assert_eq!(r.max_requirement(), 3);
    }

    #[test]
    fn uniform_is_a_floor() {
        let r = Requirements::uniform(2);
        assert_eq!(r.get("x"), 2);
        assert_eq!(r.get("y"), 2);
        assert_eq!(r.max_requirement(), 2);
    }

    #[test]
    fn resolve_follows_interner_order() {
        let mut interner = LabelInterner::new();
        let a = interner.intern("a");
        let b = interner.intern("b");
        let r = Requirements::from_pairs([("a", 2), ("b", 1)]);
        let table = r.resolve(&interner);
        assert_eq!(table[a.index()], 2);
        assert_eq!(table[b.index()], 1);
        assert_eq!(table[0], 0); // ROOT
    }
}
