//! Concurrent serving: epoch-published D(k)-indexes with a single
//! maintenance thread.
//!
//! The paper's update and tuning algorithms (§5) all take `&mut` access to
//! one [`DkIndex`]; this module turns that single-writer discipline into a
//! concurrent read path without changing any algorithm:
//!
//! ```text
//!           readers (N threads)                maintenance (1 thread)
//!   ┌────────────────────────────┐      ┌──────────────────────────────┐
//!   │ epoch = handle.epoch()     │      │ recv op, drain up to a batch │
//!   │ answer = epoch.evaluate(q) │      │ apply ops in order on the    │
//!   │   (memo hit or evaluator)  │      │   owned DkIndex + DataGraph  │
//!   └────────────▲───────────────┘      │ publish Arc<Epoch> (id + 1)  │
//!                │     lock-free reads  └──────────────┬───────────────┘
//!                └──────── RwLock<Arc<Epoch>> ◄────────┘  swap on publish
//! ```
//!
//! * **Epoch publication**: the current [`Epoch`] — an immutable snapshot of
//!   index + data graph — sits behind a `RwLock<Arc<Epoch>>` used only as an
//!   atomic pointer swap (the write lock is held for one `Arc` store, never
//!   across any work). Readers clone the `Arc` and evaluate against their
//!   epoch without further synchronization; a reader holding an old epoch
//!   keeps a fully consistent view until it drops it.
//! * **Maintenance batching**: one thread owns the mutable index. It blocks
//!   on an op channel, drains up to [`ServeConfig::max_batch`] queued ops,
//!   applies them **in submission order** (edge updates, promotions,
//!   demotions, tuning), then publishes a fresh epoch. Because application
//!   order equals submission order, an N-thread serve run ends in exactly
//!   the state of a serial run over the same op sequence — snapshot bytes
//!   and all.
//! * **Cache invalidation contract**: each epoch carries its own query memo
//!   keyed by the query alone — the epoch *is* the other half of the
//!   `(epoch, query)` key. Publishing a new epoch drops the whole memo with
//!   the superseded `Arc`, so a stale cached answer is impossible by
//!   construction, not by bookkeeping.
//!
//! Telemetry: `serve.epoch_publishes`, `serve.batch_ops`, `serve.queries`,
//! `serve.stale_epoch_reads`, `serve.cache_hits`/`serve.cache_misses`, and
//! the `serve.publish_ns` span.

use crate::dk::construct::DkIndex;
use crate::eval::{IndexEvalOutcome, IndexEvaluator};
use crate::requirements::Requirements;
use dkindex_graph::{DataGraph, LabeledGraph, NodeId};
use dkindex_pathexpr::PathExpr;
use dkindex_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// Knobs for a [`DkServer`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum operations applied per maintenance batch (one epoch publish
    /// per batch). `1` publishes after every op; larger batches amortize the
    /// publish cost under update-heavy load.
    pub max_batch: usize,
    /// Worker threads for the sharded initial construction
    /// ([`DkIndex::build_sharded`]); `0` means machine parallelism.
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 64,
            threads: 1,
        }
    }
}

/// A maintenance operation, applied by the single maintenance thread in
/// submission order.
#[derive(Clone, Debug)]
pub enum ServeOp {
    /// The paper's edge-addition update (Algorithms 4–5).
    AddEdge {
        /// Source data node.
        from: NodeId,
        /// Target data node.
        to: NodeId,
    },
    /// Promote the block containing `node` to local similarity `k`
    /// (Algorithm 6).
    Promote {
        /// A data node identifying the target block.
        node: NodeId,
        /// Requested local similarity.
        k: usize,
    },
    /// Run the full promoting pass against the stored requirements.
    PromoteToRequirements,
    /// Demote the index to the given requirements.
    Demote(Requirements),
    /// Replace the stored requirements and promote up to them (the tuner's
    /// promotion action).
    SetRequirements(Requirements),
}

/// An immutable published snapshot: index + data graph + per-epoch memo.
///
/// The memo is keyed by the query alone because the epoch itself is the
/// other key half — it dies wholesale when the epoch's last `Arc` drops, so
/// it can never serve an answer computed against different data.
#[derive(Debug)]
pub struct Epoch {
    id: u64,
    dk: DkIndex,
    data: DataGraph,
    memo: Mutex<HashMap<PathExpr, IndexEvalOutcome>>,
}

impl Epoch {
    fn new(id: u64, dk: DkIndex, data: DataGraph) -> Self {
        Epoch {
            id,
            dk,
            data,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// This epoch's publication number (0 for the initial build).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The index as of this epoch.
    pub fn index(&self) -> &DkIndex {
        &self.dk
    }

    /// The data graph as of this epoch.
    pub fn data(&self) -> &DataGraph {
        &self.data
    }

    /// Evaluate `query` against this epoch, consulting the per-epoch memo
    /// first. Exact with respect to this epoch's data graph.
    pub fn evaluate(&self, query: &PathExpr) -> IndexEvalOutcome {
        telemetry::metrics::SERVE_QUERIES.incr();
        if let Some(hit) = self
            .memo
            .lock()
            .expect("epoch memo lock poisoned")
            .get(query)
            .cloned()
        {
            telemetry::metrics::SERVE_CACHE_HITS.incr();
            return hit;
        }
        telemetry::metrics::SERVE_CACHE_MISSES.incr();
        let out = IndexEvaluator::new(self.dk.index(), &self.data).evaluate(query);
        self.memo
            .lock()
            .expect("epoch memo lock poisoned")
            .insert(query.clone(), out.clone());
        out
    }
}

/// A cloneable reader handle: grabs the current epoch lock-free (one
/// uncontended `RwLock` read to clone an `Arc`) and evaluates against it.
#[derive(Clone)]
pub struct ServeHandle {
    current: Arc<RwLock<Arc<Epoch>>>,
}

impl ServeHandle {
    /// The currently published epoch. The returned `Arc` stays fully
    /// consistent even if the maintenance thread publishes successors.
    pub fn epoch(&self) -> Arc<Epoch> {
        Arc::clone(&self.current.read().expect("epoch lock poisoned"))
    }

    /// Evaluate `query` against the current epoch. The answer is exact for
    /// the epoch it was computed on; if a publish raced the evaluation the
    /// read is counted as stale (`serve.stale_epoch_reads`) but never wrong.
    pub fn evaluate(&self, query: &PathExpr) -> IndexEvalOutcome {
        let epoch = self.epoch();
        let out = epoch.evaluate(query);
        if self.current.read().expect("epoch lock poisoned").id != epoch.id {
            telemetry::metrics::SERVE_STALE_EPOCH_READS.incr();
        }
        out
    }
}

enum Msg {
    Op(ServeOp),
    Flush(mpsc::Sender<u64>),
    Shutdown,
}

/// The concurrent serving layer: spawn with [`DkServer::start`] (or
/// [`DkServer::build_and_start`] for a sharded fresh build), hand
/// [`ServeHandle`]s to reader threads, feed updates through
/// [`DkServer::submit`], and [`DkServer::shutdown`] to reclaim the final
/// state.
pub struct DkServer {
    handle: ServeHandle,
    tx: mpsc::Sender<Msg>,
    join: Option<JoinHandle<(DkIndex, DataGraph)>>,
}

impl DkServer {
    /// Publish `(dk, data)` as epoch 0 and spawn the maintenance thread.
    pub fn start(data: DataGraph, dk: DkIndex, config: ServeConfig) -> DkServer {
        let epoch0 = Arc::new(Epoch::new(0, dk.clone(), data.clone()));
        let current = Arc::new(RwLock::new(epoch0));
        let handle = ServeHandle {
            current: Arc::clone(&current),
        };
        telemetry::metrics::SERVE_EPOCH_PUBLISHES.incr();
        let (tx, rx) = mpsc::channel();
        let max_batch = config.max_batch.max(1);
        let join = std::thread::spawn(move || maintenance_loop(dk, data, rx, current, max_batch));
        DkServer {
            handle,
            tx,
            join: Some(join),
        }
    }

    /// Build the index with sharded construction
    /// ([`DkIndex::build_sharded`] over `config.threads` workers), then
    /// [`DkServer::start`] serving it.
    pub fn build_and_start(
        data: DataGraph,
        requirements: Requirements,
        config: ServeConfig,
    ) -> DkServer {
        let dk = DkIndex::build_sharded(&data, requirements, config.threads);
        DkServer::start(data, dk, config)
    }

    /// A cloneable reader handle.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Enqueue a maintenance operation. Ops are applied in submission order
    /// by the maintenance thread, batched, and become visible atomically at
    /// the next epoch publish.
    pub fn submit(&self, op: ServeOp) {
        self.tx
            .send(Msg::Op(op))
            .expect("maintenance thread is alive while the server exists");
    }

    /// Block until every previously submitted op has been applied and
    /// published; returns the epoch id current after the drain.
    pub fn flush(&self) -> u64 {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .send(Msg::Flush(ack_tx))
            .expect("maintenance thread is alive while the server exists");
        ack_rx
            .recv()
            .expect("maintenance thread acknowledges flushes")
    }

    /// Stop the maintenance thread after it drains all previously submitted
    /// ops, returning the final index and data graph (for snapshotting —
    /// determinism tests compare these bytes against a serial run).
    pub fn shutdown(mut self) -> (DkIndex, DataGraph) {
        let _ = self.tx.send(Msg::Shutdown);
        self.join
            .take()
            .expect("shutdown is the only taker")
            .join()
            .expect("maintenance thread never panics")
    }
}

impl Drop for DkServer {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = join.join();
        }
    }
}

/// The single-writer loop: block for one message, drain the channel up to
/// `max_batch` ops, apply them in submission order, publish one new epoch
/// per non-empty batch, acknowledge flushes, and hand the owned state back
/// on shutdown.
fn maintenance_loop(
    mut dk: DkIndex,
    mut data: DataGraph,
    rx: mpsc::Receiver<Msg>,
    current: Arc<RwLock<Arc<Epoch>>>,
    max_batch: usize,
) -> (DkIndex, DataGraph) {
    let mut epoch_id = 0u64;
    loop {
        let Ok(first) = rx.recv() else {
            // Every sender dropped without a Shutdown: nothing more can
            // arrive, the final state is whatever was last published.
            return (dk, data);
        };
        let mut batch: Vec<ServeOp> = Vec::new();
        let mut flushes: Vec<mpsc::Sender<u64>> = Vec::new();
        let mut shutdown = false;
        let mut staged = Some(first);
        loop {
            match staged.take() {
                Some(Msg::Op(op)) => batch.push(op),
                Some(Msg::Flush(ack)) => flushes.push(ack),
                Some(Msg::Shutdown) => {
                    shutdown = true;
                    break;
                }
                None => unreachable!("staged is always set when the inner loop runs"),
            }
            if batch.len() >= max_batch {
                break;
            }
            match rx.try_recv() {
                Ok(m) => staged = Some(m),
                Err(_) => break,
            }
        }
        if !batch.is_empty() {
            let span = telemetry::Span::start(&telemetry::metrics::SERVE_PUBLISH_NS);
            telemetry::metrics::SERVE_BATCH_OPS.record(batch.len() as u64);
            for op in batch.drain(..) {
                apply(&mut dk, &mut data, op);
            }
            epoch_id += 1;
            let fresh = Arc::new(Epoch::new(epoch_id, dk.clone(), data.clone()));
            *current.write().expect("epoch lock poisoned") = fresh;
            drop(span);
            telemetry::metrics::SERVE_EPOCH_PUBLISHES.incr();
        }
        for ack in flushes.drain(..) {
            let _ = ack.send(epoch_id);
        }
        if shutdown {
            return (dk, data);
        }
    }
}

/// Apply one op on the owned mutable state. Edge updates naming a node that
/// does not exist in the data graph are skipped (deterministically — the
/// serial oracle sees the same sequence), so a bad op cannot take the
/// maintenance thread down.
fn apply(dk: &mut DkIndex, data: &mut DataGraph, op: ServeOp) {
    match op {
        ServeOp::AddEdge { from, to } => {
            if from.index() < data.node_count() && to.index() < data.node_count() {
                dk.add_edge(data, from, to);
            }
        }
        ServeOp::Promote { node, k } => {
            if node.index() < data.node_count() {
                dk.promote(data, node, k);
            }
        }
        ServeOp::PromoteToRequirements => {
            dk.promote_to_requirements(data);
        }
        ServeOp::Demote(reqs) => {
            dk.demote(reqs);
        }
        ServeOp::SetRequirements(reqs) => {
            dk.set_requirements_public(reqs);
            dk.promote_to_requirements(data);
        }
    }
}

/// Apply `ops` serially to `(dk, data)` — the single-threaded oracle used by
/// the determinism tests: an N-thread serve run over the same submission
/// order must end byte-identical to this.
pub fn apply_serial(dk: &mut DkIndex, data: &mut DataGraph, ops: &[ServeOp]) {
    for op in ops {
        apply(dk, data, op.clone());
    }
}
