//! Concurrent serving: epoch-published D(k)-indexes with a single
//! maintenance thread.
//!
//! The paper's update and tuning algorithms (§5) all take `&mut` access to
//! one [`DkIndex`]; this module turns that single-writer discipline into a
//! concurrent read path without changing any algorithm:
//!
//! ```text
//!           readers (N threads)                maintenance (1 thread)
//!   ┌────────────────────────────┐      ┌──────────────────────────────┐
//!   │ epoch = handle.epoch()     │      │ recv op, drain up to a batch │
//!   │ answer = epoch.evaluate(q) │      │ apply ops in order on the    │
//!   │   (memo hit or evaluator)  │      │   owned DkIndex + DataGraph  │
//!   └────────────▲───────────────┘      │ publish Arc<Epoch> (id + 1)  │
//!                │     lock-free reads  └──────────────┬───────────────┘
//!                └──────── RwLock<Arc<Epoch>> ◄────────┘  swap on publish
//! ```
//!
//! * **Epoch publication**: the current [`Epoch`] — an immutable snapshot of
//!   index + data graph — sits behind a `RwLock<Arc<Epoch>>` used only as an
//!   atomic pointer swap (the write lock is held for one `Arc` store, never
//!   across any work). Readers clone the `Arc` and evaluate against their
//!   epoch without further synchronization; a reader holding an old epoch
//!   keeps a fully consistent view until it drops it.
//! * **Maintenance batching**: one thread owns the mutable index. It blocks
//!   on an op channel, drains up to [`ServeConfig::max_batch`] queued ops,
//!   applies them **in submission order** (edge updates, promotions,
//!   demotions, tuning), then publishes a fresh epoch. Because application
//!   order equals submission order, an N-thread serve run ends in exactly
//!   the state of a serial run over the same op sequence — snapshot bytes
//!   and all. The serial fold itself lives in [`crate::serve_ops`], kept
//!   import-isolated from this module so it can act as its oracle.
//! * **Cache invalidation contract**: each epoch carries its own query memo
//!   keyed by the query alone — the epoch *is* the other half of the
//!   `(epoch, query)` key. Publishing a new epoch drops the whole memo with
//!   the superseded `Arc`, so a stale cached answer is impossible by
//!   construction, not by bookkeeping.
//! * **No panic paths**: this module is in the `dkindex-analyze`
//!   `panic-path` scope. Lock poisoning is recovered
//!   (`PoisonError::into_inner` — every critical section leaves the guarded
//!   value consistent, so a panic elsewhere never invalidates it), and a
//!   dead maintenance thread surfaces as [`ServeError::MaintenanceGone`]
//!   instead of a panic in the caller's thread.
//!
//! * **Delta publish**: `DkIndex` and `DataGraph` are copy-on-write
//!   snapshots (`Arc`-per-block index storage, segment-shared adjacency), so
//!   the `dk.clone()`/`data.clone()` at publish time copies only the blocks
//!   and segments the batch actually touched; everything else is shared
//!   pointer-identically with the previous epoch. The
//!   `serve.publish.blocks_shared` / `serve.publish.blocks_rebuilt` counters
//!   record the split on every publish. See ARCHITECTURE.md §5 for the
//!   delta-epoch diagram and the COW invariants.
//!
//! Telemetry: `serve.epoch_publishes`, `serve.batch_ops`, `serve.queries`,
//! `serve.stale_epoch_reads`, `serve.cache_hits`/`serve.cache_misses`,
//! `serve.publish.blocks_shared`/`serve.publish.blocks_rebuilt`, and the
//! `serve.publish_ns` span.

use crate::dk::construct::DkIndex;
use crate::eval::{IndexEvalOutcome, IndexEvaluator};
use crate::load_monitor::{LoadMonitor, LoadWindow};
use crate::mining::mine_requirements_weighted;
use crate::requirements::Requirements;
use crate::tuner::{plan_tuning, TuningPlan};
pub use crate::serve_ops::{apply_serial, ServeOp};
pub use crate::wal::BatchLog;
use dkindex_graph::DataGraph;
use dkindex_pathexpr::PathExpr;
use dkindex_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;

/// Knobs for a [`DkServer`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum operations applied per maintenance batch (one epoch publish
    /// per batch). `1` publishes after every op; larger batches amortize the
    /// publish cost under update-heavy load.
    pub max_batch: usize,
    /// Worker threads for the sharded initial construction
    /// ([`DkIndex::build_sharded`]); `0` means machine parallelism.
    pub threads: usize,
    /// Live tuning cadence: harvest the [`LoadMonitor`] every this many
    /// published batches and enqueue the mined promote/demote work as
    /// ordinary serve ops. `0` (the default) disables live tuning — the
    /// serve loop then has no monitor and readers record nothing.
    pub tune_interval: usize,
    /// Minimum recorded queries a harvest must have accumulated before the
    /// tuner acts on it; smaller harvests merge into the next one, so a
    /// slow trickle of queries still tunes eventually.
    pub tune_window: usize,
    /// Minimum occurrences within a window for a query shape to influence
    /// the mined requirements (the §4.1 "majority" filter; see
    /// [`crate::tuner::TunerConfig::min_support`]).
    pub tune_min_support: u64,
    /// Demotion hysteresis (see [`crate::tuner::TunerConfig::demote_slack`]).
    pub tune_demote_slack: usize,
    /// Record every applied op in submission order for the serial-replay
    /// determinism oracle ([`DkServer::recorded_ops`]). Off by default:
    /// the recording grows with the run.
    pub record_ops: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 64,
            threads: 1,
            tune_interval: 0,
            tune_window: 64,
            tune_min_support: 2,
            tune_demote_slack: 1,
            record_ops: false,
        }
    }
}

/// Shared live-tuning state: the lock-free [`LoadMonitor`] epoch readers
/// feed, plus the counters the STATS surface reports. Present only when
/// [`ServeConfig::tune_interval`] is non-zero.
#[derive(Debug)]
pub struct TuneState {
    monitor: LoadMonitor,
    windows: AtomicU64,
    promotions: AtomicU64,
    demotions: AtomicU64,
}

impl TuneState {
    fn new(monitor: LoadMonitor) -> TuneState {
        TuneState {
            monitor,
            windows: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
        }
    }
}

/// A point-in-time view of the live tuner's activity, readable from any
/// thread via [`ServeHandle::tuning_stats`] (the network front-end's STATS
/// frame renders these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TuneStats {
    /// Harvested windows that were large enough to mine.
    pub windows: u64,
    /// Tuning passes that enqueued a promotion (`SetRequirements`).
    pub promotions: u64,
    /// Tuning passes that enqueued a demotion (`Demote`).
    pub demotions: u64,
}

/// A serve-layer failure surfaced to callers as a typed error rather than a
/// panic (the `panic-path` contract of this module).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The maintenance thread is gone — it panicked while applying an op or
    /// was already asked to shut down — so the operation can never be
    /// applied or acknowledged.
    MaintenanceGone,
    /// The write-ahead log could not durably commit the batch containing
    /// this operation. The batch was **not** applied (the in-memory state
    /// stays equal to the replay of the committed WAL prefix) and the WAL
    /// is abandoned — a failed fsync is never retried — so every later
    /// update on this server fails the same way until it is restarted and
    /// recovered.
    WalFailed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::MaintenanceGone => {
                write!(f, "serve maintenance thread is gone; op cannot be applied")
            }
            ServeError::WalFailed => {
                write!(f, "write-ahead log failed; update not applied (not durable)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// An immutable published snapshot: index + data graph + per-epoch memo.
///
/// The memo is keyed by the query alone because the epoch itself is the
/// other key half — it dies wholesale when the epoch's last `Arc` drops, so
/// it can never serve an answer computed against different data.
#[derive(Debug)]
pub struct Epoch {
    id: u64,
    ops_applied: u64,
    dk: DkIndex,
    data: DataGraph,
    memo: Mutex<HashMap<PathExpr, Arc<IndexEvalOutcome>>>,
    /// Live-tuning state shared across every epoch of one server; readers
    /// record each evaluated query into its monitor, lock-free.
    tune: Option<Arc<TuneState>>,
}

impl Epoch {
    fn new(
        id: u64,
        ops_applied: u64,
        dk: DkIndex,
        data: DataGraph,
        tune: Option<Arc<TuneState>>,
    ) -> Self {
        Epoch {
            id,
            ops_applied,
            dk,
            data,
            memo: Mutex::new(HashMap::new()),
            tune,
        }
    }

    /// Feed the load monitor (when live tuning is on) with one evaluated
    /// query and bump the observation telemetry. Lock-free.
    fn observe(&self, query: &PathExpr, validated: bool, memo_hit: bool) {
        if let Some(tune) = &self.tune {
            tune.monitor.record(query, validated, memo_hit);
            telemetry::metrics::TUNER_LIVE_QUERIES.incr();
            if validated {
                telemetry::metrics::TUNER_LIVE_VALIDATIONS.incr();
            }
        }
    }

    /// This epoch's publication number (0 for the initial build).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Cumulative [`ServeOp`]s applied up to and including this epoch's
    /// publish (0 for the initial build). A front-end that counts its own
    /// submissions can subtract this to get the maintenance backlog — the
    /// epoch-staleness measure the network layer's load-shedding is keyed
    /// on (`dkindex-server`, ARCHITECTURE.md §7).
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// The index as of this epoch.
    pub fn index(&self) -> &DkIndex {
        &self.dk
    }

    /// The data graph as of this epoch.
    pub fn data(&self) -> &DataGraph {
        &self.data
    }

    /// Evaluate `query` against this epoch, consulting the per-epoch memo
    /// first. Exact with respect to this epoch's data graph. A poisoned memo
    /// lock is recovered: the memo only ever holds fully-inserted answers,
    /// so the map stays valid even if another reader panicked mid-query.
    ///
    /// The memo stores `Arc<IndexEvalOutcome>`, so a hit is one refcount
    /// bump and the miss path pays exactly one clone (the query key for the
    /// memo entry) — the outcome itself is never deep-copied.
    pub fn evaluate(&self, query: &PathExpr) -> Arc<IndexEvalOutcome> {
        telemetry::metrics::SERVE_QUERIES.incr();
        if let Some(hit) = self
            .memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(query)
            .map(Arc::clone)
        {
            telemetry::metrics::SERVE_CACHE_HITS.incr();
            self.observe(query, hit.validated, true);
            return hit;
        }
        telemetry::metrics::SERVE_CACHE_MISSES.incr();
        let out = Arc::new(IndexEvaluator::new(self.dk.index(), &self.data).evaluate(query));
        self.observe(query, out.validated, false);
        self.memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(query.clone(), Arc::clone(&out));
        out
    }

    /// Budget-bounded variant of [`Epoch::evaluate`] for per-request
    /// admission control: a memo hit is served for free (the work was
    /// already paid for under an earlier request's budget — replaying the
    /// stored answer costs no graph visits), a miss runs
    /// [`IndexEvaluator::evaluate_bounded`] under `budget` and only a
    /// *successful* outcome is memoized, so an aborted probe can never
    /// poison the cache with a partial answer.
    pub fn evaluate_bounded(
        &self,
        query: &PathExpr,
        budget: u64,
    ) -> Result<Arc<IndexEvalOutcome>, crate::eval::QueryAborted> {
        telemetry::metrics::SERVE_QUERIES.incr();
        if let Some(hit) = self
            .memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(query)
            .map(Arc::clone)
        {
            telemetry::metrics::SERVE_CACHE_HITS.incr();
            self.observe(query, hit.validated, true);
            return Ok(hit);
        }
        telemetry::metrics::SERVE_CACHE_MISSES.incr();
        // An aborted probe is not recorded either: it answered nothing, so
        // it is no evidence of served load (and its outcome is unknown).
        let out = Arc::new(
            IndexEvaluator::new(self.dk.index(), &self.data).evaluate_bounded(query, budget)?,
        );
        self.observe(query, out.validated, false);
        self.memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(query.clone(), Arc::clone(&out));
        Ok(out)
    }
}

/// A cloneable reader handle: grabs the current epoch lock-free (one
/// uncontended `RwLock` read to clone an `Arc`) and evaluates against it.
#[derive(Clone)]
pub struct ServeHandle {
    current: Arc<RwLock<Arc<Epoch>>>,
    tune: Option<Arc<TuneState>>,
}

impl ServeHandle {
    /// The live tuner's activity counters, or `None` when the server runs
    /// without live tuning ([`ServeConfig::tune_interval`] of zero).
    pub fn tuning_stats(&self) -> Option<TuneStats> {
        self.tune.as_ref().map(|t| TuneStats {
            windows: t.windows.load(Ordering::Relaxed),
            promotions: t.promotions.load(Ordering::Relaxed),
            demotions: t.demotions.load(Ordering::Relaxed),
        })
    }

    /// The currently published epoch. The returned `Arc` stays fully
    /// consistent even if the maintenance thread publishes successors. The
    /// epoch lock is only ever held across a single `Arc` load or store, so
    /// a poisoned lock still guards a valid pointer and is recovered.
    pub fn epoch(&self) -> Arc<Epoch> {
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Evaluate `query` against the current epoch. The answer is exact for
    /// the epoch it was computed on; if a publish raced the evaluation the
    /// read is counted as stale (`serve.stale_epoch_reads`) but never wrong.
    pub fn evaluate(&self, query: &PathExpr) -> Arc<IndexEvalOutcome> {
        let epoch = self.epoch();
        let out = epoch.evaluate(query);
        let current_id = self
            .current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .id;
        if current_id != epoch.id {
            telemetry::metrics::SERVE_STALE_EPOCH_READS.incr();
        }
        out
    }
}

/// Acknowledgment channel for one submitted op: the epoch id its batch
/// published under, or the typed reason it will never apply.
type AckSender = mpsc::Sender<Result<u64, ServeError>>;

enum Msg {
    /// An op, optionally carrying an acknowledgment sender the maintenance
    /// thread releases only after the op's batch is durable (WAL-backed
    /// servers) and published.
    Op(ServeOp, Option<AckSender>),
    /// A drain barrier. Resolves `Ok(epoch_id)` only while every
    /// previously submitted op has actually been applied — once a failed
    /// group commit has poisoned the server and batches are being dropped,
    /// flushes resolve `Err(WalFailed)` instead (the flush contract is
    /// "applied", not "attempted").
    Flush(mpsc::Sender<Result<u64, ServeError>>),
    Pause(PauseGate),
    Shutdown,
}

/// Pending acknowledgment for one op submitted with
/// [`DkServer::submit_logged`] / [`Submitter::submit_logged`]. Waiting
/// blocks until the op's batch has been applied and published — and, on a
/// WAL-backed server, group-committed to stable storage first — so an `Ok`
/// is a durable-ack: the update survives a crash (docs/PROTOCOL.md §8).
#[derive(Debug)]
pub struct DurableAck {
    rx: mpsc::Receiver<Result<u64, ServeError>>,
}

impl DurableAck {
    /// Block until the op's batch is acknowledged. `Ok(epoch_id)` is the
    /// epoch that made the op visible; a dead maintenance thread surfaces
    /// as [`ServeError::MaintenanceGone`], a failed group commit as
    /// [`ServeError::WalFailed`].
    pub fn wait(self) -> Result<u64, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::MaintenanceGone))
    }
}

/// The maintenance-side half of a pause: acknowledge parking, then block
/// until the holder drops its resume sender.
struct PauseGate {
    parked: mpsc::Sender<()>,
    resume: mpsc::Receiver<()>,
}

/// Held gate returned by [`DkServer::pause_maintenance`]: while it exists the
/// maintenance thread is parked between batches (ops queue but are not
/// applied, so the backlog grows); dropping it resumes maintenance.
#[doc(hidden)]
#[derive(Debug)]
pub struct MaintenanceGate {
    // Dropping the sender disconnects the receiver the maintenance thread is
    // blocked on, waking it.
    _resume: mpsc::Sender<()>,
}

/// The concurrent serving layer: spawn with [`DkServer::start`] (or
/// [`DkServer::build_and_start`] for a sharded fresh build), hand
/// [`ServeHandle`]s to reader threads, feed updates through
/// [`DkServer::submit`], and [`DkServer::shutdown`] to reclaim the final
/// state.
pub struct DkServer {
    handle: ServeHandle,
    tx: mpsc::Sender<Msg>,
    join: Option<JoinHandle<(DkIndex, DataGraph)>>,
    logged: bool,
    /// Set by the maintenance thread when a group commit fails: the server
    /// drops every later batch, so accepting new ops would lose them
    /// silently. `submit`/`submit_logged` fast-fail on it.
    poisoned: Arc<AtomicBool>,
    /// Applied ops in application order, when [`ServeConfig::record_ops`].
    recorded: Option<Arc<Mutex<Vec<ServeOp>>>>,
}

impl DkServer {
    /// Publish `(dk, data)` as epoch 0 and spawn the maintenance thread.
    pub fn start(data: DataGraph, dk: DkIndex, config: ServeConfig) -> DkServer {
        DkServer::start_inner(data, dk, config, None)
    }

    /// Like [`DkServer::start`], but every maintenance batch is
    /// group-committed to `log` — one write, one fsync — *before* it is
    /// applied, published, or acknowledged. With this constructor an
    /// acknowledgment from [`DkServer::submit_logged`] (and the network
    /// layer's `UPDATE_OK`) means the update is on stable storage.
    pub fn start_logged(
        data: DataGraph,
        dk: DkIndex,
        config: ServeConfig,
        log: Box<dyn BatchLog>,
    ) -> DkServer {
        DkServer::start_inner(data, dk, config, Some(log))
    }

    fn start_inner(
        data: DataGraph,
        dk: DkIndex,
        config: ServeConfig,
        log: Option<Box<dyn BatchLog>>,
    ) -> DkServer {
        // The label universe is fixed while serving, so the monitor's dense
        // per-label table can be sized once, here.
        let tune = (config.tune_interval > 0)
            .then(|| Arc::new(TuneState::new(LoadMonitor::new(data.labels_shared()))));
        let recorded = config
            .record_ops
            .then(|| Arc::new(Mutex::new(Vec::new())));
        let poisoned = Arc::new(AtomicBool::new(false));
        let epoch0 = Arc::new(Epoch::new(0, 0, dk.clone(), data.clone(), tune.clone()));
        let current = Arc::new(RwLock::new(epoch0));
        let handle = ServeHandle {
            current: Arc::clone(&current),
            tune: tune.clone(),
        };
        telemetry::metrics::SERVE_EPOCH_PUBLISHES.incr();
        let (tx, rx) = mpsc::channel();
        let ctx = MaintenanceCtx {
            current,
            max_batch: config.max_batch.max(1),
            wal: log,
            poisoned: Arc::clone(&poisoned),
            recorded: recorded.clone(),
            // The maintenance thread enqueues tuning ops through its own
            // sender so they interleave with client ops at channel order
            // and flow through the WAL/batch/publish path like any op.
            tune: tune.map(|state| LiveTuner {
                state,
                tx: tx.clone(),
                interval: config.tune_interval,
                window: config.tune_window,
                min_support: config.tune_min_support,
                demote_slack: config.tune_demote_slack,
                batches: 0,
                pending: None,
            }),
        };
        let logged = ctx.wal.is_some();
        let join = std::thread::spawn(move || maintenance_loop(dk, data, rx, ctx));
        DkServer {
            handle,
            tx,
            join: Some(join),
            logged,
            poisoned,
            recorded,
        }
    }

    /// The ops applied so far in application order, when the server was
    /// started with [`ServeConfig::record_ops`] — the exact input for the
    /// [`apply_serial`] determinism oracle. With live tuning on, the
    /// recording includes the tuner's `SetRequirements`/`Demote` ops at
    /// their actual interleaved positions. Call after [`DkServer::flush`]
    /// for a recording that covers every acknowledged submission.
    pub fn recorded_ops(&self) -> Option<Vec<ServeOp>> {
        self.recorded
            .as_ref()
            .map(|rec| rec.lock().unwrap_or_else(PoisonError::into_inner).clone())
    }

    /// Was this server started with a write-ahead log
    /// ([`DkServer::start_logged`])? When `true`, acknowledgments imply
    /// durability; front-ends use this to decide whether `UPDATE_OK` must
    /// wait for the group commit.
    pub fn is_logged(&self) -> bool {
        self.logged
    }

    /// Build the index with sharded construction
    /// ([`DkIndex::build_sharded`] over `config.threads` workers), then
    /// [`DkServer::start`] serving it.
    pub fn build_and_start(
        data: DataGraph,
        requirements: Requirements,
        config: ServeConfig,
    ) -> DkServer {
        let dk = DkIndex::build_sharded(&data, requirements, config.threads);
        DkServer::start(data, dk, config)
    }

    /// A cloneable reader handle.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// A cloneable op submitter, decoupled from the owning `DkServer` so
    /// worker threads (e.g. the network front-end's pool) can each hold
    /// their own. Submitting through it is identical to
    /// [`DkServer::submit`]; after [`DkServer::shutdown`] every outstanding
    /// submitter gets [`ServeError::MaintenanceGone`].
    pub fn submitter(&self) -> Submitter {
        Submitter {
            tx: self.tx.clone(),
            poisoned: Arc::clone(&self.poisoned),
        }
    }

    /// Enqueue a maintenance operation. Ops are applied in submission order
    /// by the maintenance thread, batched, and become visible atomically at
    /// the next epoch publish. Fails with [`ServeError::MaintenanceGone`]
    /// when the maintenance thread no longer exists to apply it, and with
    /// [`ServeError::WalFailed`] once a failed group commit has poisoned
    /// the server — a poisoned server drops every batch, so enqueueing
    /// would lose the op silently.
    pub fn submit(&self, op: ServeOp) -> Result<(), ServeError> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(ServeError::WalFailed);
        }
        self.tx
            .send(Msg::Op(op, None))
            .map_err(|_| ServeError::MaintenanceGone)
    }

    /// Enqueue a maintenance operation and return a [`DurableAck`] that
    /// resolves once the op's batch is applied and published — after its
    /// WAL group commit, when this server [`DkServer::is_logged`]. Fails
    /// fast with [`ServeError::WalFailed`] on a poisoned server.
    pub fn submit_logged(&self, op: ServeOp) -> Result<DurableAck, ServeError> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(ServeError::WalFailed);
        }
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .send(Msg::Op(op, Some(ack_tx)))
            .map_err(|_| ServeError::MaintenanceGone)?;
        Ok(DurableAck { rx: ack_rx })
    }

    /// Block until every previously submitted op has been applied and
    /// published; returns the epoch id current after the drain.
    /// [`ServeError::MaintenanceGone`] when the maintenance thread died
    /// before acknowledging, [`ServeError::WalFailed`] when a failed group
    /// commit poisoned the server — then some previously submitted ops
    /// were dropped, so the flush contract cannot be honored.
    pub fn flush(&self) -> Result<u64, ServeError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .send(Msg::Flush(ack_tx))
            .map_err(|_| ServeError::MaintenanceGone)?;
        ack_rx.recv().map_err(|_| ServeError::MaintenanceGone)?
    }

    /// Stop the maintenance thread after it drains all previously submitted
    /// ops, returning the final index and data graph (for snapshotting —
    /// determinism tests compare these bytes against a serial run). Fails
    /// with [`ServeError::MaintenanceGone`] when the maintenance thread
    /// panicked and the final state is unrecoverable.
    pub fn shutdown(mut self) -> Result<(DkIndex, DataGraph), ServeError> {
        // analyze: allow(must-consume) — a send failure means maintenance
        // already exited; the join below surfaces that as MaintenanceGone.
        let _ = self.tx.send(Msg::Shutdown);
        let join = self.join.take().ok_or(ServeError::MaintenanceGone)?;
        join.join().map_err(|_| ServeError::MaintenanceGone)
    }

    /// Test hook: ask the maintenance thread to exit while keeping the
    /// server value alive, so tests can observe the typed
    /// [`ServeError::MaintenanceGone`] surface on subsequent calls.
    #[doc(hidden)]
    pub fn stop_maintenance_for_tests(&self) {
        // analyze: allow(must-consume) — the hook exists to provoke the
        // maintenance-gone state; a failed send means it is already gone.
        let _ = self.tx.send(Msg::Shutdown);
    }

    /// Test hook: park the maintenance thread between batches until the
    /// returned [`MaintenanceGate`] is dropped. Blocks until the thread has
    /// actually parked — once this returns, every subsequently submitted op
    /// queues without being applied, which is how overload tests induce a
    /// deterministic maintenance backlog for the network layer's
    /// epoch-staleness shedding. Dropping the gate resumes maintenance.
    #[doc(hidden)]
    pub fn pause_maintenance(&self) -> Result<MaintenanceGate, ServeError> {
        let (parked_tx, parked_rx) = mpsc::channel();
        let (resume_tx, resume_rx) = mpsc::channel();
        self.tx
            .send(Msg::Pause(PauseGate {
                parked: parked_tx,
                resume: resume_rx,
            }))
            .map_err(|_| ServeError::MaintenanceGone)?;
        parked_rx.recv().map_err(|_| ServeError::MaintenanceGone)?;
        Ok(MaintenanceGate { _resume: resume_tx })
    }
}

/// A cloneable handle for enqueueing maintenance ops, obtained from
/// [`DkServer::submitter`]. Each clone owns its own channel sender, so
/// submitters are freely `Send` across threads.
#[derive(Clone)]
pub struct Submitter {
    tx: mpsc::Sender<Msg>,
    poisoned: Arc<AtomicBool>,
}

impl Submitter {
    /// Enqueue a maintenance operation; same contract as
    /// [`DkServer::submit`] (including the poisoned-server fast-fail).
    pub fn submit(&self, op: ServeOp) -> Result<(), ServeError> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(ServeError::WalFailed);
        }
        self.tx
            .send(Msg::Op(op, None))
            .map_err(|_| ServeError::MaintenanceGone)
    }

    /// Enqueue a maintenance operation with a durable acknowledgment; same
    /// contract as [`DkServer::submit_logged`].
    pub fn submit_logged(&self, op: ServeOp) -> Result<DurableAck, ServeError> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(ServeError::WalFailed);
        }
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .send(Msg::Op(op, Some(ack_tx)))
            .map_err(|_| ServeError::MaintenanceGone)?;
        Ok(DurableAck { rx: ack_rx })
    }
}

impl Drop for DkServer {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            // analyze: allow(must-consume) — best-effort teardown in Drop:
            // a dead maintenance thread is already the state we want.
            let _ = self.tx.send(Msg::Shutdown);
            let _ = join.join();
        }
    }
}

/// What the maintenance loop should do after staging one message.
enum Staged {
    Continue,
    Shutdown,
}

/// Everything the maintenance thread needs besides the owned
/// `(DkIndex, DataGraph)` and its receive channel.
struct MaintenanceCtx {
    current: Arc<RwLock<Arc<Epoch>>>,
    max_batch: usize,
    wal: Option<Box<dyn BatchLog>>,
    /// Mirror of the loop-local `wal_broken` flag shared with
    /// `DkServer`/`Submitter` so their `submit` paths fast-fail instead of
    /// enqueueing ops a poisoned server would drop.
    poisoned: Arc<AtomicBool>,
    /// Sink for the applied-op recording ([`ServeConfig::record_ops`]).
    recorded: Option<Arc<Mutex<Vec<ServeOp>>>>,
    tune: Option<LiveTuner>,
}

/// The maintenance thread's live-tuning loop state. The tuner holds its own
/// sender clone and enqueues its `SetRequirements`/`Demote` decisions as
/// ordinary [`Msg::Op`]s: they interleave with client ops at channel order
/// and flow through the same WAL/batch/publish/ack path, which is what
/// keeps an N-thread tuned run byte-identical under [`apply_serial`] replay
/// of the recorded op sequence. (The held sender means the channel never
/// disconnects on its own; every exit path goes through `Msg::Shutdown`,
/// which both [`DkServer::shutdown`] and `Drop` send.)
struct LiveTuner {
    state: Arc<TuneState>,
    tx: mpsc::Sender<Msg>,
    interval: usize,
    window: usize,
    min_support: u64,
    demote_slack: usize,
    /// Publishes since the last harvest.
    batches: usize,
    /// Harvests too small to act on accumulate here until they jointly
    /// clear the `window` threshold — a slow query trickle still tunes.
    pending: Option<LoadWindow>,
}

impl LiveTuner {
    /// Called after every epoch publish. Every `interval` publishes,
    /// harvest the monitor into the pending window; once the window holds
    /// at least `window` recorded queries, mine it and enqueue the planned
    /// action (if any) through the op channel.
    fn after_publish(&mut self, dk: &DkIndex) {
        self.batches += 1;
        if self.batches < self.interval {
            return;
        }
        self.batches = 0;
        let span = telemetry::Span::start(&telemetry::metrics::TUNER_LIVE_PLAN_NS);
        let harvest = self.state.monitor.harvest();
        if !harvest.is_empty() {
            match self.pending.as_mut() {
                Some(pending) => pending.merge(&harvest),
                None => self.pending = Some(harvest),
            }
        }
        let ready = self
            .pending
            .as_ref()
            .is_some_and(|p| p.recorded() >= self.window as u64);
        if !ready {
            drop(span);
            return;
        }
        let Some(window) = self.pending.take() else {
            drop(span);
            return;
        };
        self.state.windows.fetch_add(1, Ordering::Relaxed);
        telemetry::metrics::TUNER_LIVE_WINDOWS.incr();
        let weighted = window.weighted_queries();
        let observed = window.observed();
        let mined = mine_requirements_weighted(&weighted, self.min_support);
        match plan_tuning(dk.requirements(), &mined, &observed, self.demote_slack) {
            TuningPlan::Promote(reqs) => {
                self.state.promotions.fetch_add(1, Ordering::Relaxed);
                telemetry::metrics::TUNER_LIVE_PROMOTIONS.incr();
                telemetry::metrics::TUNER_LIVE_OPS.incr();
                // analyze: allow(must-consume) — tuner self-enqueue is
                // advisory: a failed send means maintenance is shutting
                // down, and dropping the plan is the correct outcome.
                let _ = self.tx.send(Msg::Op(ServeOp::SetRequirements(reqs), None));
            }
            TuningPlan::Demote(reqs) => {
                self.state.demotions.fetch_add(1, Ordering::Relaxed);
                telemetry::metrics::TUNER_LIVE_DEMOTIONS.incr();
                telemetry::metrics::TUNER_LIVE_OPS.incr();
                // analyze: allow(must-consume) — see the promote arm: a
                // failed tuner send during shutdown is a correct drop.
                let _ = self.tx.send(Msg::Op(ServeOp::Demote(reqs), None));
            }
            TuningPlan::Hold => {}
        }
        drop(span);
    }
}

/// The single-writer loop: block for one message, drain the channel up to
/// `max_batch` ops, group-commit the batch to the WAL when one is attached
/// (write + fence + one fsync — *before* anything is applied or
/// acknowledged), apply the ops in submission order, publish one new epoch
/// per non-empty batch, release the batch's durable acks, acknowledge
/// flushes, run the live-tuning pass, and hand the owned state back on
/// shutdown.
fn maintenance_loop(
    mut dk: DkIndex,
    mut data: DataGraph,
    rx: mpsc::Receiver<Msg>,
    mut ctx: MaintenanceCtx,
) -> (DkIndex, DataGraph) {
    let mut epoch_id = 0u64;
    let mut ops_total = 0u64;
    // Set after a group commit fails. A failed fsync leaves the log in an
    // unknowable state, so it is never retried (the fsyncgate rule): every
    // later batch is dropped with the same typed error until the operator
    // restarts and recovers the server.
    let mut wal_broken = false;
    loop {
        let Ok(first) = rx.recv() else {
            // Every sender dropped without a Shutdown: nothing more can
            // arrive, the final state is whatever was last published.
            return (dk, data);
        };
        let mut batch: Vec<(ServeOp, Option<AckSender>)> = Vec::new();
        let mut flushes: Vec<mpsc::Sender<Result<u64, ServeError>>> = Vec::new();
        let mut pauses: Vec<PauseGate> = Vec::new();
        let mut shutdown = false;
        let mut staged = first;
        loop {
            let stage = stage_message(staged, &mut batch, &mut flushes, &mut pauses);
            if matches!(stage, Staged::Shutdown) {
                shutdown = true;
                break;
            }
            if batch.len() >= ctx.max_batch {
                break;
            }
            match rx.try_recv() {
                Ok(m) => staged = m,
                Err(_) => break,
            }
        }
        if !batch.is_empty() {
            if let Some(log) = ctx.wal.as_mut() {
                // Log only ops `apply` would actually execute (node counts
                // never change while serving, so applicability is decidable
                // up front): the logged stream then replays byte-identically
                // under the *strict* replay, with no skip semantics needed.
                let to_log: Vec<ServeOp> = batch
                    .iter()
                    .filter(|(op, _)| crate::serve_ops::is_applicable(op, &data))
                    .map(|(op, _)| op.clone())
                    .collect();
                let committed = !wal_broken && log.log_batch(&to_log).is_ok();
                if !committed {
                    // Nothing in this batch reached stable storage as a
                    // fenced commit: drop it *unapplied* — the in-memory
                    // state must stay replayable from the committed WAL
                    // prefix — fail every waiting ack with the typed error,
                    // and publish the poisoning so new submits fast-fail
                    // instead of enqueueing ops this loop would drop.
                    wal_broken = true;
                    ctx.poisoned.store(true, Ordering::Release);
                    telemetry::metrics::SERVE_WAL_DROPPED_BATCHES.incr();
                    for (_, ack) in batch.drain(..) {
                        if let Some(ack) = ack {
                            // analyze: allow(must-consume) — a gone receiver
                            // means the submitter stopped waiting; the
                            // failure is already published via `poisoned`.
                            let _ = ack.send(Err(ServeError::WalFailed));
                        }
                    }
                }
            }
        }
        if !batch.is_empty() {
            let span = telemetry::Span::start(&telemetry::metrics::SERVE_PUBLISH_NS);
            telemetry::metrics::SERVE_BATCH_OPS.record(batch.len() as u64);
            ops_total += batch.len() as u64;
            if let Some(rec) = &ctx.recorded {
                // Recorded only for batches that actually apply (a dropped
                // batch above already drained), so the recording is exactly
                // the serial oracle's input.
                let mut rec = rec.lock().unwrap_or_else(PoisonError::into_inner);
                rec.extend(batch.iter().map(|(op, _)| op.clone()));
            }
            let mut acks: Vec<AckSender> = Vec::new();
            for (op, ack) in batch.drain(..) {
                crate::serve_ops::apply(&mut dk, &mut data, op);
                if let Some(ack) = ack {
                    acks.push(ack);
                }
            }
            epoch_id += 1;
            // `dk`/`data` are COW snapshots (Arc-shared blocks and
            // segments), so these clones copy only what the batch above
            // touched — the delta-epoch publish is O(touched), not O(index).
            let fresh = Arc::new(Epoch::new(
                epoch_id,
                ops_total,
                dk.clone(),
                data.clone(),
                ctx.tune.as_ref().map(|t| Arc::clone(&t.state)),
            ));
            {
                // This thread is the only writer, so the epoch read here is
                // exactly the predecessor being superseded.
                let prev =
                    Arc::clone(&ctx.current.read().unwrap_or_else(PoisonError::into_inner));
                let (shared, rebuilt) = fresh.dk.index().shared_blocks_with(prev.dk.index());
                telemetry::metrics::SERVE_PUBLISH_BLOCKS_SHARED.add(shared as u64);
                telemetry::metrics::SERVE_PUBLISH_BLOCKS_REBUILT.add(rebuilt as u64);
            }
            // The write lock is held for this one pointer store; recovery
            // from poisoning is sound because the old Arc is still intact.
            *ctx.current.write().unwrap_or_else(PoisonError::into_inner) = fresh;
            drop(span);
            telemetry::metrics::SERVE_EPOCH_PUBLISHES.incr();
            // Acks release only here — after the WAL group commit *and* the
            // publish — so a released ack means both durable and visible.
            for ack in acks.drain(..) {
                if ctx.wal.is_some() {
                    telemetry::metrics::SERVE_DURABLE_ACKS.incr();
                }
                // analyze: allow(must-consume) — the op is durable and
                // visible whether or not the submitter still listens; a
                // gone receiver must not fail maintenance.
                let _ = ack.send(Ok(epoch_id));
            }
            // Live tuning rides published batches: harvest the monitor on
            // cadence and self-enqueue the mined promote/demote work. A
            // poisoned server stops tuning with everything else — its
            // batches are dropped before this point.
            if let Some(tuner) = ctx.tune.as_mut() {
                tuner.after_publish(&dk);
            }
        }
        for ack in flushes.drain(..) {
            // The flush contract is "every previously submitted op has been
            // *applied*" — once poisoned, batches are being dropped, so a
            // flush must surface the loss instead of acking it away (S1).
            // analyze: allow(must-consume) — flush callers may time out and
            // drop the receiver; the outcome they asked about is decided
            // either way.
            let _ = ack.send(if wal_broken {
                Err(ServeError::WalFailed)
            } else {
                Ok(epoch_id)
            });
        }
        // Park between batches while a pause gate is held: acknowledge so
        // the holder knows nothing further will be applied, then block
        // until the holder drops its resume sender; maintenance resumes
        // with whatever queued meanwhile.
        for gate in pauses.drain(..) {
            // analyze: allow(must-consume) — a dropped gate holder means
            // "resume immediately": the park notification has no reader and
            // the recv below returns Err at once.
            let _ = gate.parked.send(());
            let _ = gate.resume.recv();
        }
        if shutdown {
            return (dk, data);
        }
    }
}

/// Sort one received message into the batch/flush/pause accumulators.
fn stage_message(
    msg: Msg,
    batch: &mut Vec<(ServeOp, Option<AckSender>)>,
    flushes: &mut Vec<mpsc::Sender<Result<u64, ServeError>>>,
    pauses: &mut Vec<PauseGate>,
) -> Staged {
    match msg {
        Msg::Op(op, ack) => batch.push((op, ack)),
        Msg::Flush(ack) => flushes.push(ack),
        Msg::Pause(gate) => pauses.push(gate),
        Msg::Shutdown => return Staged::Shutdown,
    }
    Staged::Continue
}
