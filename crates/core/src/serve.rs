//! Concurrent serving: epoch-published D(k)-indexes with a single
//! maintenance thread.
//!
//! The paper's update and tuning algorithms (§5) all take `&mut` access to
//! one [`DkIndex`]; this module turns that single-writer discipline into a
//! concurrent read path without changing any algorithm:
//!
//! ```text
//!           readers (N threads)                maintenance (1 thread)
//!   ┌────────────────────────────┐      ┌──────────────────────────────┐
//!   │ epoch = handle.epoch()     │      │ recv op, drain up to a batch │
//!   │ answer = epoch.evaluate(q) │      │ apply ops in order on the    │
//!   │   (memo hit or evaluator)  │      │   owned DkIndex + DataGraph  │
//!   └────────────▲───────────────┘      │ publish Arc<Epoch> (id + 1)  │
//!                │     lock-free reads  └──────────────┬───────────────┘
//!                └──────── RwLock<Arc<Epoch>> ◄────────┘  swap on publish
//! ```
//!
//! * **Epoch publication**: the current [`Epoch`] — an immutable snapshot of
//!   index + data graph — sits behind a `RwLock<Arc<Epoch>>` used only as an
//!   atomic pointer swap (the write lock is held for one `Arc` store, never
//!   across any work). Readers clone the `Arc` and evaluate against their
//!   epoch without further synchronization; a reader holding an old epoch
//!   keeps a fully consistent view until it drops it.
//! * **Maintenance batching**: one thread owns the mutable index. It blocks
//!   on an op channel, drains up to [`ServeConfig::max_batch`] queued ops,
//!   applies them **in submission order** (edge updates, promotions,
//!   demotions, tuning), then publishes a fresh epoch. Because application
//!   order equals submission order, an N-thread serve run ends in exactly
//!   the state of a serial run over the same op sequence — snapshot bytes
//!   and all. The serial fold itself lives in [`crate::serve_ops`], kept
//!   import-isolated from this module so it can act as its oracle.
//! * **Cache invalidation contract**: each epoch carries its own query memo
//!   keyed by the query alone — the epoch *is* the other half of the
//!   `(epoch, query)` key. Publishing a new epoch drops the whole memo with
//!   the superseded `Arc`, so a stale cached answer is impossible by
//!   construction, not by bookkeeping.
//! * **No panic paths**: this module is in the `dkindex-analyze`
//!   `panic-path` scope. Lock poisoning is recovered
//!   (`PoisonError::into_inner` — every critical section leaves the guarded
//!   value consistent, so a panic elsewhere never invalidates it), and a
//!   dead maintenance thread surfaces as [`ServeError::MaintenanceGone`]
//!   instead of a panic in the caller's thread.
//!
//! * **Delta publish**: `DkIndex` and `DataGraph` are copy-on-write
//!   snapshots (`Arc`-per-block index storage, segment-shared adjacency), so
//!   the `dk.clone()`/`data.clone()` at publish time copies only the blocks
//!   and segments the batch actually touched; everything else is shared
//!   pointer-identically with the previous epoch. The
//!   `serve.publish.blocks_shared` / `serve.publish.blocks_rebuilt` counters
//!   record the split on every publish. See ARCHITECTURE.md §5 for the
//!   delta-epoch diagram and the COW invariants.
//!
//! Telemetry: `serve.epoch_publishes`, `serve.batch_ops`, `serve.queries`,
//! `serve.stale_epoch_reads`, `serve.cache_hits`/`serve.cache_misses`,
//! `serve.publish.blocks_shared`/`serve.publish.blocks_rebuilt`, and the
//! `serve.publish_ns` span.

use crate::dk::construct::DkIndex;
use crate::eval::{IndexEvalOutcome, IndexEvaluator};
use crate::requirements::Requirements;
pub use crate::serve_ops::{apply_serial, ServeOp};
pub use crate::wal::BatchLog;
use dkindex_graph::DataGraph;
use dkindex_pathexpr::PathExpr;
use dkindex_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;

/// Knobs for a [`DkServer`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum operations applied per maintenance batch (one epoch publish
    /// per batch). `1` publishes after every op; larger batches amortize the
    /// publish cost under update-heavy load.
    pub max_batch: usize,
    /// Worker threads for the sharded initial construction
    /// ([`DkIndex::build_sharded`]); `0` means machine parallelism.
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 64,
            threads: 1,
        }
    }
}

/// A serve-layer failure surfaced to callers as a typed error rather than a
/// panic (the `panic-path` contract of this module).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The maintenance thread is gone — it panicked while applying an op or
    /// was already asked to shut down — so the operation can never be
    /// applied or acknowledged.
    MaintenanceGone,
    /// The write-ahead log could not durably commit the batch containing
    /// this operation. The batch was **not** applied (the in-memory state
    /// stays equal to the replay of the committed WAL prefix) and the WAL
    /// is abandoned — a failed fsync is never retried — so every later
    /// update on this server fails the same way until it is restarted and
    /// recovered.
    WalFailed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::MaintenanceGone => {
                write!(f, "serve maintenance thread is gone; op cannot be applied")
            }
            ServeError::WalFailed => {
                write!(f, "write-ahead log failed; update not applied (not durable)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// An immutable published snapshot: index + data graph + per-epoch memo.
///
/// The memo is keyed by the query alone because the epoch itself is the
/// other key half — it dies wholesale when the epoch's last `Arc` drops, so
/// it can never serve an answer computed against different data.
#[derive(Debug)]
pub struct Epoch {
    id: u64,
    ops_applied: u64,
    dk: DkIndex,
    data: DataGraph,
    memo: Mutex<HashMap<PathExpr, Arc<IndexEvalOutcome>>>,
}

impl Epoch {
    fn new(id: u64, ops_applied: u64, dk: DkIndex, data: DataGraph) -> Self {
        Epoch {
            id,
            ops_applied,
            dk,
            data,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// This epoch's publication number (0 for the initial build).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Cumulative [`ServeOp`]s applied up to and including this epoch's
    /// publish (0 for the initial build). A front-end that counts its own
    /// submissions can subtract this to get the maintenance backlog — the
    /// epoch-staleness measure the network layer's load-shedding is keyed
    /// on (`dkindex-server`, ARCHITECTURE.md §7).
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// The index as of this epoch.
    pub fn index(&self) -> &DkIndex {
        &self.dk
    }

    /// The data graph as of this epoch.
    pub fn data(&self) -> &DataGraph {
        &self.data
    }

    /// Evaluate `query` against this epoch, consulting the per-epoch memo
    /// first. Exact with respect to this epoch's data graph. A poisoned memo
    /// lock is recovered: the memo only ever holds fully-inserted answers,
    /// so the map stays valid even if another reader panicked mid-query.
    ///
    /// The memo stores `Arc<IndexEvalOutcome>`, so a hit is one refcount
    /// bump and the miss path pays exactly one clone (the query key for the
    /// memo entry) — the outcome itself is never deep-copied.
    pub fn evaluate(&self, query: &PathExpr) -> Arc<IndexEvalOutcome> {
        telemetry::metrics::SERVE_QUERIES.incr();
        if let Some(hit) = self
            .memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(query)
            .map(Arc::clone)
        {
            telemetry::metrics::SERVE_CACHE_HITS.incr();
            return hit;
        }
        telemetry::metrics::SERVE_CACHE_MISSES.incr();
        let out = Arc::new(IndexEvaluator::new(self.dk.index(), &self.data).evaluate(query));
        self.memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(query.clone(), Arc::clone(&out));
        out
    }

    /// Budget-bounded variant of [`Epoch::evaluate`] for per-request
    /// admission control: a memo hit is served for free (the work was
    /// already paid for under an earlier request's budget — replaying the
    /// stored answer costs no graph visits), a miss runs
    /// [`IndexEvaluator::evaluate_bounded`] under `budget` and only a
    /// *successful* outcome is memoized, so an aborted probe can never
    /// poison the cache with a partial answer.
    pub fn evaluate_bounded(
        &self,
        query: &PathExpr,
        budget: u64,
    ) -> Result<Arc<IndexEvalOutcome>, crate::eval::QueryAborted> {
        telemetry::metrics::SERVE_QUERIES.incr();
        if let Some(hit) = self
            .memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(query)
            .map(Arc::clone)
        {
            telemetry::metrics::SERVE_CACHE_HITS.incr();
            return Ok(hit);
        }
        telemetry::metrics::SERVE_CACHE_MISSES.incr();
        let out = Arc::new(
            IndexEvaluator::new(self.dk.index(), &self.data).evaluate_bounded(query, budget)?,
        );
        self.memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(query.clone(), Arc::clone(&out));
        Ok(out)
    }
}

/// A cloneable reader handle: grabs the current epoch lock-free (one
/// uncontended `RwLock` read to clone an `Arc`) and evaluates against it.
#[derive(Clone)]
pub struct ServeHandle {
    current: Arc<RwLock<Arc<Epoch>>>,
}

impl ServeHandle {
    /// The currently published epoch. The returned `Arc` stays fully
    /// consistent even if the maintenance thread publishes successors. The
    /// epoch lock is only ever held across a single `Arc` load or store, so
    /// a poisoned lock still guards a valid pointer and is recovered.
    pub fn epoch(&self) -> Arc<Epoch> {
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Evaluate `query` against the current epoch. The answer is exact for
    /// the epoch it was computed on; if a publish raced the evaluation the
    /// read is counted as stale (`serve.stale_epoch_reads`) but never wrong.
    pub fn evaluate(&self, query: &PathExpr) -> Arc<IndexEvalOutcome> {
        let epoch = self.epoch();
        let out = epoch.evaluate(query);
        let current_id = self
            .current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .id;
        if current_id != epoch.id {
            telemetry::metrics::SERVE_STALE_EPOCH_READS.incr();
        }
        out
    }
}

/// Acknowledgment channel for one submitted op: the epoch id its batch
/// published under, or the typed reason it will never apply.
type AckSender = mpsc::Sender<Result<u64, ServeError>>;

enum Msg {
    /// An op, optionally carrying an acknowledgment sender the maintenance
    /// thread releases only after the op's batch is durable (WAL-backed
    /// servers) and published.
    Op(ServeOp, Option<AckSender>),
    Flush(mpsc::Sender<u64>),
    Pause(PauseGate),
    Shutdown,
}

/// Pending acknowledgment for one op submitted with
/// [`DkServer::submit_logged`] / [`Submitter::submit_logged`]. Waiting
/// blocks until the op's batch has been applied and published — and, on a
/// WAL-backed server, group-committed to stable storage first — so an `Ok`
/// is a durable-ack: the update survives a crash (docs/PROTOCOL.md §8).
#[derive(Debug)]
pub struct DurableAck {
    rx: mpsc::Receiver<Result<u64, ServeError>>,
}

impl DurableAck {
    /// Block until the op's batch is acknowledged. `Ok(epoch_id)` is the
    /// epoch that made the op visible; a dead maintenance thread surfaces
    /// as [`ServeError::MaintenanceGone`], a failed group commit as
    /// [`ServeError::WalFailed`].
    pub fn wait(self) -> Result<u64, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::MaintenanceGone))
    }
}

/// The maintenance-side half of a pause: acknowledge parking, then block
/// until the holder drops its resume sender.
struct PauseGate {
    parked: mpsc::Sender<()>,
    resume: mpsc::Receiver<()>,
}

/// Held gate returned by [`DkServer::pause_maintenance`]: while it exists the
/// maintenance thread is parked between batches (ops queue but are not
/// applied, so the backlog grows); dropping it resumes maintenance.
#[doc(hidden)]
#[derive(Debug)]
pub struct MaintenanceGate {
    // Dropping the sender disconnects the receiver the maintenance thread is
    // blocked on, waking it.
    _resume: mpsc::Sender<()>,
}

/// The concurrent serving layer: spawn with [`DkServer::start`] (or
/// [`DkServer::build_and_start`] for a sharded fresh build), hand
/// [`ServeHandle`]s to reader threads, feed updates through
/// [`DkServer::submit`], and [`DkServer::shutdown`] to reclaim the final
/// state.
pub struct DkServer {
    handle: ServeHandle,
    tx: mpsc::Sender<Msg>,
    join: Option<JoinHandle<(DkIndex, DataGraph)>>,
    logged: bool,
}

impl DkServer {
    /// Publish `(dk, data)` as epoch 0 and spawn the maintenance thread.
    pub fn start(data: DataGraph, dk: DkIndex, config: ServeConfig) -> DkServer {
        DkServer::start_inner(data, dk, config, None)
    }

    /// Like [`DkServer::start`], but every maintenance batch is
    /// group-committed to `log` — one write, one fsync — *before* it is
    /// applied, published, or acknowledged. With this constructor an
    /// acknowledgment from [`DkServer::submit_logged`] (and the network
    /// layer's `UPDATE_OK`) means the update is on stable storage.
    pub fn start_logged(
        data: DataGraph,
        dk: DkIndex,
        config: ServeConfig,
        log: Box<dyn BatchLog>,
    ) -> DkServer {
        DkServer::start_inner(data, dk, config, Some(log))
    }

    fn start_inner(
        data: DataGraph,
        dk: DkIndex,
        config: ServeConfig,
        log: Option<Box<dyn BatchLog>>,
    ) -> DkServer {
        let epoch0 = Arc::new(Epoch::new(0, 0, dk.clone(), data.clone()));
        let current = Arc::new(RwLock::new(epoch0));
        let handle = ServeHandle {
            current: Arc::clone(&current),
        };
        telemetry::metrics::SERVE_EPOCH_PUBLISHES.incr();
        let (tx, rx) = mpsc::channel();
        let max_batch = config.max_batch.max(1);
        let logged = log.is_some();
        let join =
            std::thread::spawn(move || maintenance_loop(dk, data, rx, current, max_batch, log));
        DkServer {
            handle,
            tx,
            join: Some(join),
            logged,
        }
    }

    /// Was this server started with a write-ahead log
    /// ([`DkServer::start_logged`])? When `true`, acknowledgments imply
    /// durability; front-ends use this to decide whether `UPDATE_OK` must
    /// wait for the group commit.
    pub fn is_logged(&self) -> bool {
        self.logged
    }

    /// Build the index with sharded construction
    /// ([`DkIndex::build_sharded`] over `config.threads` workers), then
    /// [`DkServer::start`] serving it.
    pub fn build_and_start(
        data: DataGraph,
        requirements: Requirements,
        config: ServeConfig,
    ) -> DkServer {
        let dk = DkIndex::build_sharded(&data, requirements, config.threads);
        DkServer::start(data, dk, config)
    }

    /// A cloneable reader handle.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// A cloneable op submitter, decoupled from the owning `DkServer` so
    /// worker threads (e.g. the network front-end's pool) can each hold
    /// their own. Submitting through it is identical to
    /// [`DkServer::submit`]; after [`DkServer::shutdown`] every outstanding
    /// submitter gets [`ServeError::MaintenanceGone`].
    pub fn submitter(&self) -> Submitter {
        Submitter {
            tx: self.tx.clone(),
        }
    }

    /// Enqueue a maintenance operation. Ops are applied in submission order
    /// by the maintenance thread, batched, and become visible atomically at
    /// the next epoch publish. Fails with [`ServeError::MaintenanceGone`]
    /// when the maintenance thread no longer exists to apply it.
    pub fn submit(&self, op: ServeOp) -> Result<(), ServeError> {
        self.tx
            .send(Msg::Op(op, None))
            .map_err(|_| ServeError::MaintenanceGone)
    }

    /// Enqueue a maintenance operation and return a [`DurableAck`] that
    /// resolves once the op's batch is applied and published — after its
    /// WAL group commit, when this server [`DkServer::is_logged`].
    pub fn submit_logged(&self, op: ServeOp) -> Result<DurableAck, ServeError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .send(Msg::Op(op, Some(ack_tx)))
            .map_err(|_| ServeError::MaintenanceGone)?;
        Ok(DurableAck { rx: ack_rx })
    }

    /// Block until every previously submitted op has been applied and
    /// published; returns the epoch id current after the drain, or
    /// [`ServeError::MaintenanceGone`] when the maintenance thread died
    /// before acknowledging.
    pub fn flush(&self) -> Result<u64, ServeError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .send(Msg::Flush(ack_tx))
            .map_err(|_| ServeError::MaintenanceGone)?;
        ack_rx.recv().map_err(|_| ServeError::MaintenanceGone)
    }

    /// Stop the maintenance thread after it drains all previously submitted
    /// ops, returning the final index and data graph (for snapshotting —
    /// determinism tests compare these bytes against a serial run). Fails
    /// with [`ServeError::MaintenanceGone`] when the maintenance thread
    /// panicked and the final state is unrecoverable.
    pub fn shutdown(mut self) -> Result<(DkIndex, DataGraph), ServeError> {
        let _ = self.tx.send(Msg::Shutdown);
        let join = self.join.take().ok_or(ServeError::MaintenanceGone)?;
        join.join().map_err(|_| ServeError::MaintenanceGone)
    }

    /// Test hook: ask the maintenance thread to exit while keeping the
    /// server value alive, so tests can observe the typed
    /// [`ServeError::MaintenanceGone`] surface on subsequent calls.
    #[doc(hidden)]
    pub fn stop_maintenance_for_tests(&self) {
        let _ = self.tx.send(Msg::Shutdown);
    }

    /// Test hook: park the maintenance thread between batches until the
    /// returned [`MaintenanceGate`] is dropped. Blocks until the thread has
    /// actually parked — once this returns, every subsequently submitted op
    /// queues without being applied, which is how overload tests induce a
    /// deterministic maintenance backlog for the network layer's
    /// epoch-staleness shedding. Dropping the gate resumes maintenance.
    #[doc(hidden)]
    pub fn pause_maintenance(&self) -> Result<MaintenanceGate, ServeError> {
        let (parked_tx, parked_rx) = mpsc::channel();
        let (resume_tx, resume_rx) = mpsc::channel();
        self.tx
            .send(Msg::Pause(PauseGate {
                parked: parked_tx,
                resume: resume_rx,
            }))
            .map_err(|_| ServeError::MaintenanceGone)?;
        parked_rx.recv().map_err(|_| ServeError::MaintenanceGone)?;
        Ok(MaintenanceGate { _resume: resume_tx })
    }
}

/// A cloneable handle for enqueueing maintenance ops, obtained from
/// [`DkServer::submitter`]. Each clone owns its own channel sender, so
/// submitters are freely `Send` across threads.
#[derive(Clone)]
pub struct Submitter {
    tx: mpsc::Sender<Msg>,
}

impl Submitter {
    /// Enqueue a maintenance operation; same contract as
    /// [`DkServer::submit`].
    pub fn submit(&self, op: ServeOp) -> Result<(), ServeError> {
        self.tx
            .send(Msg::Op(op, None))
            .map_err(|_| ServeError::MaintenanceGone)
    }

    /// Enqueue a maintenance operation with a durable acknowledgment; same
    /// contract as [`DkServer::submit_logged`].
    pub fn submit_logged(&self, op: ServeOp) -> Result<DurableAck, ServeError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .send(Msg::Op(op, Some(ack_tx)))
            .map_err(|_| ServeError::MaintenanceGone)?;
        Ok(DurableAck { rx: ack_rx })
    }
}

impl Drop for DkServer {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = join.join();
        }
    }
}

/// What the maintenance loop should do after staging one message.
enum Staged {
    Continue,
    Shutdown,
}

/// The single-writer loop: block for one message, drain the channel up to
/// `max_batch` ops, group-commit the batch to the WAL when one is attached
/// (write + fence + one fsync — *before* anything is applied or
/// acknowledged), apply the ops in submission order, publish one new epoch
/// per non-empty batch, release the batch's durable acks, acknowledge
/// flushes, and hand the owned state back on shutdown.
fn maintenance_loop(
    mut dk: DkIndex,
    mut data: DataGraph,
    rx: mpsc::Receiver<Msg>,
    current: Arc<RwLock<Arc<Epoch>>>,
    max_batch: usize,
    mut wal: Option<Box<dyn BatchLog>>,
) -> (DkIndex, DataGraph) {
    let mut epoch_id = 0u64;
    let mut ops_total = 0u64;
    // Set after a group commit fails. A failed fsync leaves the log in an
    // unknowable state, so it is never retried (the fsyncgate rule): every
    // later batch is dropped with the same typed error until the operator
    // restarts and recovers the server.
    let mut wal_broken = false;
    loop {
        let Ok(first) = rx.recv() else {
            // Every sender dropped without a Shutdown: nothing more can
            // arrive, the final state is whatever was last published.
            return (dk, data);
        };
        let mut batch: Vec<(ServeOp, Option<AckSender>)> = Vec::new();
        let mut flushes: Vec<mpsc::Sender<u64>> = Vec::new();
        let mut pauses: Vec<PauseGate> = Vec::new();
        let mut shutdown = false;
        let mut staged = first;
        loop {
            let stage = stage_message(staged, &mut batch, &mut flushes, &mut pauses);
            if matches!(stage, Staged::Shutdown) {
                shutdown = true;
                break;
            }
            if batch.len() >= max_batch {
                break;
            }
            match rx.try_recv() {
                Ok(m) => staged = m,
                Err(_) => break,
            }
        }
        if !batch.is_empty() {
            if let Some(log) = wal.as_mut() {
                // Log only ops `apply` would actually execute (node counts
                // never change while serving, so applicability is decidable
                // up front): the logged stream then replays byte-identically
                // under the *strict* replay, with no skip semantics needed.
                let to_log: Vec<ServeOp> = batch
                    .iter()
                    .filter(|(op, _)| crate::serve_ops::is_applicable(op, &data))
                    .map(|(op, _)| op.clone())
                    .collect();
                let committed = !wal_broken && log.log_batch(&to_log).is_ok();
                if !committed {
                    // Nothing in this batch reached stable storage as a
                    // fenced commit: drop it *unapplied* — the in-memory
                    // state must stay replayable from the committed WAL
                    // prefix — and fail every waiting ack with the typed
                    // error.
                    wal_broken = true;
                    telemetry::metrics::SERVE_WAL_DROPPED_BATCHES.incr();
                    for (_, ack) in batch.drain(..) {
                        if let Some(ack) = ack {
                            let _ = ack.send(Err(ServeError::WalFailed));
                        }
                    }
                }
            }
        }
        if !batch.is_empty() {
            let span = telemetry::Span::start(&telemetry::metrics::SERVE_PUBLISH_NS);
            telemetry::metrics::SERVE_BATCH_OPS.record(batch.len() as u64);
            ops_total += batch.len() as u64;
            let mut acks: Vec<AckSender> = Vec::new();
            for (op, ack) in batch.drain(..) {
                crate::serve_ops::apply(&mut dk, &mut data, op);
                if let Some(ack) = ack {
                    acks.push(ack);
                }
            }
            epoch_id += 1;
            // `dk`/`data` are COW snapshots (Arc-shared blocks and
            // segments), so these clones copy only what the batch above
            // touched — the delta-epoch publish is O(touched), not O(index).
            let fresh = Arc::new(Epoch::new(epoch_id, ops_total, dk.clone(), data.clone()));
            {
                // This thread is the only writer, so the epoch read here is
                // exactly the predecessor being superseded.
                let prev = Arc::clone(&current.read().unwrap_or_else(PoisonError::into_inner));
                let (shared, rebuilt) = fresh.dk.index().shared_blocks_with(prev.dk.index());
                telemetry::metrics::SERVE_PUBLISH_BLOCKS_SHARED.add(shared as u64);
                telemetry::metrics::SERVE_PUBLISH_BLOCKS_REBUILT.add(rebuilt as u64);
            }
            // The write lock is held for this one pointer store; recovery
            // from poisoning is sound because the old Arc is still intact.
            *current.write().unwrap_or_else(PoisonError::into_inner) = fresh;
            drop(span);
            telemetry::metrics::SERVE_EPOCH_PUBLISHES.incr();
            // Acks release only here — after the WAL group commit *and* the
            // publish — so a released ack means both durable and visible.
            for ack in acks.drain(..) {
                if wal.is_some() {
                    telemetry::metrics::SERVE_DURABLE_ACKS.incr();
                }
                let _ = ack.send(Ok(epoch_id));
            }
        }
        for ack in flushes.drain(..) {
            let _ = ack.send(epoch_id);
        }
        // Park between batches while a pause gate is held: acknowledge so
        // the holder knows nothing further will be applied, then block
        // until the holder drops its resume sender; maintenance resumes
        // with whatever queued meanwhile.
        for gate in pauses.drain(..) {
            let _ = gate.parked.send(());
            let _ = gate.resume.recv();
        }
        if shutdown {
            return (dk, data);
        }
    }
}

/// Sort one received message into the batch/flush/pause accumulators.
fn stage_message(
    msg: Msg,
    batch: &mut Vec<(ServeOp, Option<AckSender>)>,
    flushes: &mut Vec<mpsc::Sender<u64>>,
    pauses: &mut Vec<PauseGate>,
) -> Staged {
    match msg {
        Msg::Op(op, ack) => batch.push((op, ack)),
        Msg::Flush(ack) => flushes.push(ack),
        Msg::Pause(gate) => pauses.push(gate),
        Msg::Shutdown => return Staged::Shutdown,
    }
    Staged::Continue
}
