//! Serve operations and the serial application oracle.
//!
//! [`ServeOp`] is the vocabulary the maintenance thread speaks; `apply`
//! is the one place an op mutates `(DkIndex, DataGraph)`; and
//! [`apply_serial`] folds a whole op sequence single-threadedly. The serve
//! determinism tests compare an N-thread [`crate::serve::DkServer`] run
//! against `apply_serial` over the same submission order — snapshot bytes
//! and all — so this module is an *oracle* and must stay independent of
//! the concurrent machinery it certifies: no `dkindex_telemetry`, no
//! channels, no threads, no epoch lock (`dkindex-analyze` enforces this).

use crate::dk::construct::DkIndex;
use crate::requirements::Requirements;
use dkindex_graph::{DataGraph, LabeledGraph, NodeId};

/// A maintenance operation, applied by the single maintenance thread in
/// submission order.
#[derive(Clone, Debug)]
pub enum ServeOp {
    /// The paper's edge-addition update (Algorithms 4–5).
    AddEdge {
        /// Source data node.
        from: NodeId,
        /// Target data node.
        to: NodeId,
    },
    /// Promote the block containing `node` to local similarity `k`
    /// (Algorithm 6).
    Promote {
        /// A data node identifying the target block.
        node: NodeId,
        /// Requested local similarity.
        k: usize,
    },
    /// Run the full promoting pass against the stored requirements.
    PromoteToRequirements,
    /// Demote the index to the given requirements.
    Demote(Requirements),
    /// Replace the stored requirements and promote up to them (the tuner's
    /// promotion action).
    SetRequirements(Requirements),
}

/// Apply one op on the owned mutable state. Edge updates naming a node that
/// does not exist in the data graph are skipped (deterministically — the
/// serial oracle sees the same sequence), so a bad op cannot take the
/// maintenance thread down.
pub(crate) fn apply(dk: &mut DkIndex, data: &mut DataGraph, op: ServeOp) {
    match op {
        ServeOp::AddEdge { from, to } => {
            if from.index() < data.node_count() && to.index() < data.node_count() {
                dk.add_edge(data, from, to);
            }
        }
        ServeOp::Promote { node, k } => {
            if node.index() < data.node_count() {
                dk.promote(data, node, k);
            }
        }
        ServeOp::PromoteToRequirements => {
            dk.promote_to_requirements(data);
        }
        ServeOp::Demote(reqs) => {
            dk.demote(reqs);
        }
        ServeOp::SetRequirements(reqs) => {
            dk.set_requirements_public(reqs);
            dk.promote_to_requirements(data);
        }
    }
}

/// Would `apply` actually execute this op, or skip it? Edge and promote
/// ops naming a node outside the data graph are deterministic no-ops; the
/// WAL group-commit path uses this to keep no-ops out of the log, so strict
/// replay of the logged prefix reproduces the serve run exactly.
pub fn is_applicable(op: &ServeOp, data: &DataGraph) -> bool {
    match op {
        ServeOp::AddEdge { from, to } => {
            from.index() < data.node_count() && to.index() < data.node_count()
        }
        ServeOp::Promote { node, .. } => node.index() < data.node_count(),
        ServeOp::PromoteToRequirements | ServeOp::Demote(_) | ServeOp::SetRequirements(_) => true,
    }
}

/// Apply `ops` serially to `(dk, data)` — the single-threaded oracle used by
/// the determinism tests: an N-thread serve run over the same submission
/// order must end byte-identical to this.
pub fn apply_serial(dk: &mut DkIndex, data: &mut DataGraph, ops: &[ServeOp]) {
    for op in ops {
        apply(dk, data, op.clone());
    }
}
