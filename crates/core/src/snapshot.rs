//! The versioned, checksummed snapshot container (`DKSN`) — the durable
//! on-disk form of a D(k)-index and its data graph.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic     b"DKSN"
//! version   u32 (= 1)
//! sections  u32 count, then per section:
//!             tag      [u8; 4]      (b"REQS" | b"GRPH" | b"INDX")
//!             len      u32          payload byte length
//!             crc      u32          CRC-32 of the payload
//!             payload  len bytes
//! ```
//!
//! Section payloads reuse the existing codecs: `GRPH` holds a `DKG1` graph
//! stream, `REQS` the requirements table, `INDX` the `DKI1`-style index
//! body. Unknown tags are skipped (forward compatibility).
//!
//! Two read modes:
//!
//! * [`read_snapshot`] — strict: any checksum or structural failure is a
//!   typed [`SnapshotError`]. Used where silent degradation is unacceptable.
//! * [`load_with_recovery`] — graceful: as long as the `GRPH` section is
//!   intact, a corrupt `INDX` (or failed invariant check) triggers a rebuild
//!   of the index from the data graph, and a corrupt `REQS` falls back to
//!   empty requirements; the [`Recovery`] report says exactly what happened.
//!   Only a damaged graph section is unrecoverable.
//!
//! The legacy un-checksummed `.dki` format (a bare `DKG1` stream + index)
//! remains readable through [`load_index_bytes`], which sniffs the magic.

use crate::bytes::Cursor;
use crate::crc32::crc32;
use crate::dk::construct::DkIndex;
use crate::requirements::Requirements;
use crate::store;
use dkindex_graph::io::ReadError;
use dkindex_graph::{DataGraph, LabeledGraph};
use dkindex_telemetry as telemetry;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;

/// The snapshot container magic (`DKSN`); callers can sniff it to pick a
/// format-specific code path before parsing.
pub const MAGIC: &[u8; 4] = b"DKSN";
const VERSION: u32 = 1;
const TAG_REQS: [u8; 4] = *b"REQS";
const TAG_GRPH: [u8; 4] = *b"GRPH";
const TAG_INDX: [u8; 4] = *b"INDX";

/// Typed snapshot failure.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Wrong container magic — not a snapshot.
    BadMagic,
    /// The header declares a version this build cannot read.
    UnsupportedVersion(u32),
    /// The byte stream ends inside a header or section frame.
    Truncated {
        /// What was being read when the stream ended.
        what: String,
    },
    /// A section's payload does not match its stored CRC.
    SectionCrc {
        /// Four-character section tag.
        tag: [u8; 4],
    },
    /// A section's payload failed to parse or validate.
    Section {
        /// Four-character section tag.
        tag: [u8; 4],
        /// What was wrong.
        reason: String,
    },
    /// A required section is absent.
    MissingSection {
        /// Four-character section tag.
        tag: [u8; 4],
    },
    /// Bytes remain after the declared sections.
    TrailingBytes,
    /// Failure in the legacy (pre-snapshot) `.dki` codec.
    Legacy(ReadError),
}

fn tag_str(tag: &[u8; 4]) -> String {
    String::from_utf8_lossy(tag).into_owned()
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic, expected DKSN)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::Truncated { what } => write!(f, "snapshot truncated while reading {what}"),
            SnapshotError::SectionCrc { tag } => {
                write!(f, "checksum mismatch in section {}", tag_str(tag))
            }
            SnapshotError::Section { tag, reason } => {
                write!(f, "corrupt section {}: {reason}", tag_str(tag))
            }
            SnapshotError::MissingSection { tag } => {
                write!(f, "snapshot is missing its {} section", tag_str(tag))
            }
            SnapshotError::TrailingBytes => write!(f, "trailing bytes after the last section"),
            SnapshotError::Legacy(e) => write!(f, "legacy index file: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// What [`load_with_recovery`] had to do.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Recovery {
    /// The index graph was rebuilt from the data graph.
    pub rebuilt_index: bool,
    /// The requirements section was unreadable; empty requirements were used.
    pub lost_requirements: bool,
    /// One line per degradation, empty when the snapshot was intact.
    pub notes: Vec<String>,
}

impl Recovery {
    /// True when every section loaded cleanly.
    pub fn is_intact(&self) -> bool {
        self.notes.is_empty()
    }
}

/// Serialize `dk` + `data` as a snapshot container.
pub fn write_snapshot<W: Write>(dk: &DkIndex, data: &DataGraph, w: &mut W) -> io::Result<()> {
    let mut reqs_payload = Vec::new();
    store::write_requirements(dk.requirements(), &mut reqs_payload)?;
    let mut graph_payload = Vec::new();
    dkindex_graph::io::write_graph(data, &mut graph_payload)?;
    let mut index_payload = Vec::new();
    store::write_index(dk.index(), &mut index_payload)?;

    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&3u32.to_le_bytes())?;
    for (tag, payload) in [
        (TAG_REQS, &reqs_payload),
        (TAG_GRPH, &graph_payload),
        (TAG_INDX, &index_payload),
    ] {
        w.write_all(&tag)?;
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(&crc32(payload).to_le_bytes())?;
        w.write_all(payload)?;
    }
    telemetry::metrics::STORE_SNAPSHOT_WRITES.incr();
    Ok(())
}

/// Snapshot bytes for `dk` + `data` (convenience over [`write_snapshot`]).
pub fn snapshot_bytes(dk: &DkIndex, data: &DataGraph) -> Vec<u8> {
    let mut bytes = Vec::new();
    // Threading io::Result through every caller would only launder an error
    // that cannot happen: Write for Vec<u8> has no I/O to fail.
    // analyze: allow(panic-path) — Write for Vec<u8> is infallible
    write_snapshot(dk, data, &mut bytes).expect("Vec<u8> writes are infallible");
    bytes
}

/// Write a snapshot to `path` atomically: temp file, `sync_all`, rename.
pub fn save_snapshot_file(dk: &DkIndex, data: &DataGraph, path: &Path) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        write_snapshot(dk, data, &mut file)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// One parsed section's state after framing + checksum validation.
enum SectionState {
    Missing,
    Corrupt(String),
    Ok(std::ops::Range<usize>),
}

struct Frames {
    reqs: SectionState,
    grph: SectionState,
    indx: SectionState,
    /// Set when the container framing itself broke mid-stream; sections
    /// parsed *before* the break are still usable for recovery.
    framing_error: Option<SnapshotError>,
}

/// Parse the container framing, validating each section's CRC. Never fails
/// outright: framing breaks are recorded so recovery can still use the
/// sections that parsed before the break.
fn parse_frames(bytes: &[u8]) -> Result<Frames, SnapshotError> {
    let mut cur = Cursor::new(bytes);
    let magic = cur.array4().ok_or_else(|| SnapshotError::Truncated {
        what: "header".to_string(),
    })?;
    if magic != *MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = cur.u32_le().ok_or_else(|| SnapshotError::Truncated {
        what: "header".to_string(),
    })?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let count = cur.u32_le().ok_or_else(|| SnapshotError::Truncated {
        what: "header".to_string(),
    })? as usize;

    let mut frames = Frames {
        reqs: SectionState::Missing,
        grph: SectionState::Missing,
        indx: SectionState::Missing,
        framing_error: None,
    };
    for _ in 0..count {
        let (Some(tag), Some(len), Some(stored_crc)) =
            (cur.array4(), cur.u32_le().map(|v| v as usize), cur.u32_le())
        else {
            frames.framing_error = Some(SnapshotError::Truncated {
                what: "section header".to_string(),
            });
            return Ok(frames);
        };
        let start = cur.offset();
        let Some(payload) = cur.take(len) else {
            frames.framing_error = Some(SnapshotError::Truncated {
                what: format!("section {} payload", tag_str(&tag)),
            });
            return Ok(frames);
        };
        let state = if crc32(payload) == stored_crc {
            SectionState::Ok(start..start + len)
        } else {
            telemetry::metrics::STORE_CRC_FAILURES.incr();
            SectionState::Corrupt("checksum mismatch".to_string())
        };
        match tag {
            TAG_REQS => frames.reqs = state,
            TAG_GRPH => frames.grph = state,
            TAG_INDX => frames.indx = state,
            _ => {} // unknown section: skip (forward compatibility)
        }
    }
    if cur.remaining() != 0 {
        frames.framing_error = Some(SnapshotError::TrailingBytes);
    }
    Ok(frames)
}

/// The payload of a validated section. The range came out of
/// [`parse_frames`] over this same buffer, so the lookup cannot miss; on
/// an (impossible) mismatch the empty slice makes the section parse fail
/// with a typed error instead of panicking.
fn section_bytes<'a>(bytes: &'a [u8], range: &std::ops::Range<usize>) -> &'a [u8] {
    bytes.get(range.clone()).unwrap_or(&[])
}

/// Strict load: every section must be present, checksum-clean and parse,
/// and the index must pass its invariant check against the graph.
pub fn read_snapshot(bytes: &[u8]) -> Result<(DkIndex, DataGraph), SnapshotError> {
    let frames = parse_frames(bytes)?;
    if let Some(e) = frames.framing_error {
        return Err(e);
    }
    let data = parse_graph(bytes, &frames.grph)?;
    let reqs = match &frames.reqs {
        SectionState::Ok(range) => {
            let mut cursor = section_bytes(bytes, range);
            store::read_requirements(&mut cursor).map_err(|e| {
                SnapshotError::Section { tag: TAG_REQS, reason: e.to_string() }
            })?
        }
        SectionState::Corrupt(reason) => {
            return Err(section_error(TAG_REQS, reason));
        }
        SectionState::Missing => return Err(SnapshotError::MissingSection { tag: TAG_REQS }),
    };
    let index = match &frames.indx {
        SectionState::Ok(range) => {
            let mut cursor = section_bytes(bytes, range);
            let index = store::read_index(&mut cursor, data.node_count()).map_err(|e| {
                SnapshotError::Section { tag: TAG_INDX, reason: e.to_string() }
            })?;
            if !cursor.is_empty() {
                return Err(SnapshotError::Section {
                    tag: TAG_INDX,
                    reason: "trailing bytes inside the section".to_string(),
                });
            }
            index.check_invariants(&data).map_err(|e| SnapshotError::Section {
                tag: TAG_INDX,
                reason: format!("fails invariants: {e}"),
            })?;
            index
        }
        SectionState::Corrupt(reason) => return Err(section_error(TAG_INDX, reason)),
        SectionState::Missing => return Err(SnapshotError::MissingSection { tag: TAG_INDX }),
    };
    telemetry::metrics::STORE_SNAPSHOT_LOADS.incr();
    Ok((DkIndex::from_parts(index, reqs), data))
}

fn section_error(tag: [u8; 4], reason: &str) -> SnapshotError {
    if reason == "checksum mismatch" {
        SnapshotError::SectionCrc { tag }
    } else {
        SnapshotError::Section { tag, reason: reason.to_string() }
    }
}

fn parse_graph(bytes: &[u8], state: &SectionState) -> Result<DataGraph, SnapshotError> {
    match state {
        SectionState::Ok(range) => {
            let mut cursor = section_bytes(bytes, range);
            dkindex_graph::io::read_graph(&mut cursor).map_err(|e| {
                SnapshotError::Section { tag: TAG_GRPH, reason: e.to_string() }
            })
        }
        SectionState::Corrupt(reason) => Err(section_error(TAG_GRPH, reason)),
        SectionState::Missing => Err(SnapshotError::MissingSection { tag: TAG_GRPH }),
    }
}

/// Graceful load: recover everything recoverable. The data graph section is
/// the ground truth — while it is intact, a damaged requirements section
/// degrades to empty requirements and a damaged (or invariant-violating)
/// index section is rebuilt from the graph. Returns a [`Recovery`] report
/// describing any degradation.
pub fn load_with_recovery(
    bytes: &[u8],
) -> Result<(DkIndex, DataGraph, Recovery), SnapshotError> {
    let frames = parse_frames(bytes)?;
    let data = parse_graph(bytes, &frames.grph)?;
    let mut recovery = Recovery::default();
    if let Some(e) = &frames.framing_error {
        recovery.notes.push(format!("container framing: {e}"));
    }

    let reqs = match &frames.reqs {
        SectionState::Ok(range) => match store::read_requirements(&mut section_bytes(bytes, range)) {
            Ok(reqs) => reqs,
            Err(e) => {
                recovery.lost_requirements = true;
                recovery.notes.push(format!("REQS unparseable ({e}); using empty requirements"));
                Requirements::new()
            }
        },
        SectionState::Corrupt(reason) => {
            recovery.lost_requirements = true;
            recovery.notes.push(format!("REQS {reason}; using empty requirements"));
            Requirements::new()
        }
        SectionState::Missing => {
            recovery.lost_requirements = true;
            recovery.notes.push("REQS section missing; using empty requirements".to_string());
            Requirements::new()
        }
    };

    let index = match &frames.indx {
        SectionState::Ok(range) => {
            let mut cursor = section_bytes(bytes, range);
            match store::read_index(&mut cursor, data.node_count()) {
                Ok(index) if cursor.is_empty() => {
                    match index.check_invariants(&data) {
                        Ok(()) => Some(index),
                        Err(e) => {
                            recovery.notes.push(format!("INDX fails invariants: {e}"));
                            None
                        }
                    }
                }
                Ok(_) => {
                    recovery.notes.push("INDX has trailing bytes".to_string());
                    None
                }
                Err(e) => {
                    recovery.notes.push(format!("INDX unparseable: {e}"));
                    None
                }
            }
        }
        SectionState::Corrupt(reason) => {
            recovery.notes.push(format!("INDX {reason}"));
            None
        }
        SectionState::Missing => {
            recovery.notes.push("INDX section missing".to_string());
            None
        }
    };

    let dk = match index {
        Some(index) => DkIndex::from_parts(index, reqs),
        None => {
            recovery.rebuilt_index = true;
            telemetry::metrics::AUDIT_REBUILDS.incr();
            DkIndex::build(&data, reqs)
        }
    };
    telemetry::metrics::STORE_SNAPSHOT_LOADS.incr();
    Ok((dk, data, recovery))
}

/// Which on-disk format a file turned out to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// The checksummed `DKSN` container.
    Snapshot,
    /// The legacy bare `DKG1 + DKI1` stream.
    Legacy,
}

/// Load an index file of either format, sniffing the magic: `DKSN` →
/// strict snapshot read, `DKG1` → legacy [`store::load_dk`].
pub fn load_index_bytes(
    bytes: &[u8],
) -> Result<(DkIndex, DataGraph, SnapshotFormat), SnapshotError> {
    if bytes.starts_with(MAGIC) {
        let (dk, data) = read_snapshot(bytes)?;
        Ok((dk, data, SnapshotFormat::Snapshot))
    } else {
        let mut cursor = bytes;
        let (dk, data) = store::load_dk(&mut cursor).map_err(SnapshotError::Legacy)?;
        Ok((dk, data, SnapshotFormat::Legacy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::EdgeKind;

    fn sample() -> (DataGraph, DkIndex) {
        let mut g = DataGraph::new();
        let d = g.add_labeled_node("director");
        let m = g.add_labeled_node("movie");
        let t = g.add_labeled_node("title");
        let a = g.add_labeled_node("actor");
        let r = g.root();
        g.add_edge(r, d, EdgeKind::Tree);
        g.add_edge(d, m, EdgeKind::Tree);
        g.add_edge(m, t, EdgeKind::Tree);
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, m, EdgeKind::Reference);
        let dk = DkIndex::build(&g, Requirements::from_pairs([("title", 2)]));
        (g, dk)
    }

    /// Regression for the cursor-based framing rewrite: the container
    /// prefix is a durable format, so its exact bytes are pinned — magic,
    /// LE version 1, LE section count 3, then the first section's tag.
    #[test]
    fn container_framing_bytes_are_pinned() {
        let (g, dk) = sample();
        let bytes = snapshot_bytes(&dk, &g);
        assert_eq!(bytes[..4], *b"DKSN");
        assert_eq!(bytes[4..8], 1u32.to_le_bytes());
        assert_eq!(bytes[8..12], 3u32.to_le_bytes());
        assert_eq!(bytes[12..16], *b"REQS");
    }

    #[test]
    fn snapshot_round_trips_byte_identically() {
        let (g, dk) = sample();
        let bytes = snapshot_bytes(&dk, &g);
        let (back, g2) = read_snapshot(&bytes).unwrap();
        assert_eq!(back.requirements(), dk.requirements());
        assert_eq!(snapshot_bytes(&back, &g2), bytes);
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_recovered() {
        let (g, dk) = sample();
        let bytes = snapshot_bytes(&dk, &g);
        for i in 0..bytes.len() {
            let mut copy = bytes.clone();
            copy[i] ^= 0xFF;
            // Strict mode must never accept a flipped snapshot verbatim.
            if let Ok((back, g2)) = read_snapshot(&copy) {
                assert_eq!(
                    snapshot_bytes(&back, &g2),
                    bytes,
                    "flip at {i} accepted but changed the index"
                );
            }
        }
    }

    #[test]
    fn recovery_rebuilds_from_intact_graph() {
        let (g, dk) = sample();
        let bytes = snapshot_bytes(&dk, &g);
        // Corrupt one byte inside the INDX payload (last section).
        let mut copy = bytes.clone();
        let n = copy.len();
        copy[n - 3] ^= 0xFF;
        assert!(read_snapshot(&copy).is_err());
        let (recovered, g2, recovery) = load_with_recovery(&copy).unwrap();
        assert!(recovery.rebuilt_index, "{:?}", recovery.notes);
        assert!(!recovery.lost_requirements);
        recovered.index().check_invariants(&g2).unwrap();
        // The rebuild reuses the recovered requirements, so it reproduces
        // the original index exactly.
        assert_eq!(snapshot_bytes(&recovered, &g2), bytes);
    }

    #[test]
    fn recovery_fails_cleanly_when_graph_is_corrupt() {
        let (g, dk) = sample();
        let mut bytes = snapshot_bytes(&dk, &g);
        // The GRPH payload starts after REQS; find its DKG1 magic and break it.
        let pos = bytes
            .windows(4)
            .position(|w| w == b"DKG1")
            .expect("graph payload present");
        bytes[pos + 10] ^= 0xFF;
        assert!(matches!(
            load_with_recovery(&bytes),
            Err(SnapshotError::SectionCrc { tag }) if tag == TAG_GRPH
        ));
    }

    #[test]
    fn truncation_at_every_length_is_typed_or_recovered() {
        let (g, dk) = sample();
        let bytes = snapshot_bytes(&dk, &g);
        for cut in 0..bytes.len() {
            // A typed error is the other legal outcome for any cut.
            if let Ok((recovered, g2, recovery)) = load_with_recovery(&bytes[..cut]) {
                // Only possible once GRPH is fully framed; result must
                // be a well-formed index.
                assert!(!recovery.is_intact(), "cut at {cut} claimed intact");
                recovered.index().check_invariants(&g2).unwrap();
            }
        }
    }

    #[test]
    fn legacy_files_still_load() {
        let (g, dk) = sample();
        let mut legacy = Vec::new();
        store::save_dk(&dk, &g, &mut legacy).unwrap();
        let (back, _, format) = load_index_bytes(&legacy).unwrap();
        assert_eq!(format, SnapshotFormat::Legacy);
        assert_eq!(back.size(), dk.size());

        let snap = snapshot_bytes(&dk, &g);
        let (_, _, format) = load_index_bytes(&snap).unwrap();
        assert_eq!(format, SnapshotFormat::Snapshot);
    }
}
