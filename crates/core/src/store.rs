//! Binary serialization for index graphs and D(k)-indexes, so a tuned index
//! survives restarts without the O(km) rebuild.
//!
//! Format `DKI1` (little-endian), written after the data graph's own `DKG1`
//! payload when stored together via [`save_dk`]/[`load_dk`]:
//!
//! ```text
//! magic    b"DKI1"
//! reqs     u32 floor, u32 count, then per entry: u16+utf8 label, u32 k
//! labels   u32 count, then per label: u16+utf8 name
//! inodes   u32 count, then per node:
//!            u32 label, u64 similarity, u32 extent-len, u32 data-node ids
//! edges    u32 count, then per edge: u32 from, u32 to
//! root     u32 index node id
//! ```
//!
//! Loading validates structure (extents partition `0..data_nodes`, ids in
//! range) and leaves semantic validation to
//! [`IndexGraph::check_invariants`], which [`load_dk`] runs against the
//! graph it loads alongside.
//!
//! ```
//! use dkindex_core::store::{load_dk, save_dk};
//! use dkindex_core::{DkIndex, Requirements};
//! use dkindex_xml::parse_to_graph;
//!
//! let data = parse_to_graph("<db><a/><a/></db>").unwrap();
//! let dk = DkIndex::build(&data, Requirements::uniform(1));
//! let mut bytes = Vec::new();
//! save_dk(&dk, &data, &mut bytes).unwrap();
//! let (loaded, loaded_data) = load_dk(&mut bytes.as_slice()).unwrap();
//! assert_eq!(loaded.size(), dk.size());
//! loaded.index().check_invariants(&loaded_data).unwrap();
//! ```

use crate::dk::construct::DkIndex;
use crate::index_graph::IndexGraph;
use crate::requirements::Requirements;
use dkindex_graph::io::{read_str, read_u32, write_graph, write_str, write_u32, ReadError};
use dkindex_graph::{DataGraph, LabelInterner, LabeledGraph, NodeId};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"DKI1";

fn corrupt(msg: impl Into<String>) -> ReadError {
    ReadError::Corrupt(msg.into())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, ReadError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Serialize an index graph (without its data graph).
pub fn write_index<W: Write>(index: &IndexGraph, w: &mut W) -> io::Result<()> {
    write_u32(w, index.labels().len() as u32)?;
    for (_, name) in index.labels().iter() {
        write_str(w, name)?;
    }
    write_u32(w, index.size() as u32)?;
    for inode in index.node_ids() {
        write_u32(w, index.label_of(inode).index() as u32)?;
        write_u64(w, index.similarity(inode) as u64)?;
        let extent = index.extent(inode);
        write_u32(w, extent.len() as u32)?;
        for &d in extent {
            write_u32(w, d.index() as u32)?;
        }
    }
    let edge_total: usize = index
        .node_ids()
        .map(|i| index.children_of(i).len())
        .sum();
    write_u32(w, edge_total as u32)?;
    for from in index.node_ids() {
        for &to in index.children_of(from) {
            write_u32(w, from.index() as u32)?;
            write_u32(w, to.index() as u32)?;
        }
    }
    write_u32(w, index.root().index() as u32)
}

/// Deserialize an index graph. `data_nodes` is the node count of the data
/// graph the index summarizes (extents must partition exactly that range).
pub fn read_index<R: Read>(r: &mut R, data_nodes: usize) -> Result<IndexGraph, ReadError> {
    let label_count = read_u32(r)? as usize;
    let mut interner = LabelInterner::new();
    for i in 0..label_count {
        let name = read_str(r)?;
        let id = interner.intern(&name);
        if id.index() != i {
            return Err(corrupt(format!("index label table broken at {name:?}")));
        }
    }
    let inode_count = read_u32(r)? as usize;
    if inode_count == 0 {
        return Err(corrupt("index has no nodes"));
    }
    if inode_count > data_nodes {
        return Err(corrupt("more index nodes than data nodes"));
    }
    // Never pre-allocate from untrusted counts beyond a small bound: a
    // corrupted length field must fail on EOF, not abort on allocation.
    let cap = inode_count.min(1 << 16);
    let mut labels = Vec::with_capacity(cap);
    let mut sims = Vec::with_capacity(cap);
    let mut extents: Vec<Vec<NodeId>> = Vec::with_capacity(cap);
    let mut covered = vec![false; data_nodes];
    for i in 0..inode_count {
        let label = read_u32(r)? as usize;
        if label >= label_count {
            return Err(corrupt(format!("inode {i}: label out of range")));
        }
        let sim = read_u64(r)?;
        let len = read_u32(r)? as usize;
        if len == 0 {
            return Err(corrupt(format!("inode {i}: empty extent")));
        }
        if len > data_nodes {
            return Err(corrupt(format!("inode {i}: extent larger than data")));
        }
        let mut extent = Vec::with_capacity(len);
        for _ in 0..len {
            let d = read_u32(r)? as usize;
            if d >= data_nodes {
                return Err(corrupt(format!("inode {i}: extent member out of range")));
            }
            if covered[d] {
                return Err(corrupt(format!("data node {d} in two extents")));
            }
            covered[d] = true;
            extent.push(NodeId::from_index(d));
        }
        labels.push(dkindex_graph::LabelId::from_index(label));
        sims.push(usize::try_from(sim).map_err(|_| corrupt("similarity overflow"))?);
        extents.push(extent);
    }
    if let Some(d) = covered.iter().position(|&c| !c) {
        return Err(corrupt(format!("data node {d} not covered by any extent")));
    }

    let mut index = IndexGraph::from_stored_parts(interner, labels, sims, extents, data_nodes);
    let edge_count = read_u32(r)? as usize;
    for _ in 0..edge_count {
        let from = read_u32(r)? as usize;
        let to = read_u32(r)? as usize;
        if from >= inode_count || to >= inode_count {
            return Err(corrupt("index edge out of range"));
        }
        index.add_index_edge(NodeId::from_index(from), NodeId::from_index(to));
    }
    let root = read_u32(r)? as usize;
    if root >= inode_count {
        return Err(corrupt("root index node out of range"));
    }
    index.set_root(NodeId::from_index(root));
    Ok(index)
}

pub(crate) fn write_requirements<W: Write>(reqs: &Requirements, w: &mut W) -> io::Result<()> {
    write_u32(w, reqs.floor() as u32)?;
    let mut entries: Vec<(&str, usize)> = reqs.iter().collect();
    entries.sort(); // deterministic output
    write_u32(w, entries.len() as u32)?;
    for (label, k) in entries {
        write_str(w, label)?;
        write_u32(w, k as u32)?;
    }
    Ok(())
}

pub(crate) fn read_requirements<R: Read>(r: &mut R) -> Result<Requirements, ReadError> {
    let floor = read_u32(r)? as usize;
    let mut reqs = Requirements::new();
    reqs.raise_floor(floor);
    let count = read_u32(r)? as usize;
    for _ in 0..count {
        let label = read_str(r)?;
        let k = read_u32(r)? as usize;
        reqs.raise(&label, k);
    }
    Ok(reqs)
}

/// Save a D(k)-index together with its data graph into one stream.
pub fn save_dk<W: Write>(dk: &DkIndex, data: &DataGraph, w: &mut W) -> io::Result<()> {
    write_graph(data, w)?;
    w.write_all(MAGIC)?;
    write_requirements(dk.requirements(), w)?;
    write_index(dk.index(), w)
}

/// Load a D(k)-index and its data graph from one stream, verifying the
/// index invariants against the loaded graph.
pub fn load_dk<R: Read>(r: &mut R) -> Result<(DkIndex, DataGraph), ReadError> {
    // read_graph demands stream exhaustion, so peel the graph bytes off by
    // re-reading through a tee; simplest correct approach: buffer the rest.
    let mut all = Vec::new();
    r.read_to_end(&mut all)?;
    let mut cursor = io::Cursor::new(&all);
    let data = read_graph_prefix(&mut cursor)?;
    let mut magic = [0u8; 4];
    cursor.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(corrupt("bad index magic (expected DKI1)"));
    }
    let reqs = read_requirements(&mut cursor)?;
    let index = read_index(&mut cursor, data.node_count())?;
    if cursor.position() != all.len() as u64 {
        return Err(corrupt("trailing bytes after index"));
    }
    index
        .check_invariants(&data)
        .map_err(|e| corrupt(format!("loaded index fails invariants: {e}")))?;
    let dk = DkIndex::from_parts(index, reqs);
    Ok((dk, data))
}

/// Like [`dkindex_graph::io::read_graph`] but tolerant of trailing bytes
/// (the index payload follows).
fn read_graph_prefix<R: Read>(r: &mut R) -> Result<DataGraph, ReadError> {
    // Re-serialize-free approach: read_graph insists on exhaustion, so wrap
    // the reader to stop exactly at the graph boundary is impossible without
    // knowing the length. Instead, duplicate the small amount of framing
    // logic: write_graph's layout is length-prefixed throughout, so
    // read_graph_inner (graph crate) could parse prefixes — we emulate by
    // buffering: parse with a counting reader that read_graph sees as EOF
    // only at the real end is not available, so we re-parse manually here.
    dkindex_graph::io::read_graph_allow_trailing(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::Requirements;
    use dkindex_graph::EdgeKind;

    fn sample() -> (DataGraph, DkIndex) {
        let mut g = DataGraph::new();
        let d = g.add_labeled_node("director");
        let m = g.add_labeled_node("movie");
        let t = g.add_labeled_node("title");
        let a = g.add_labeled_node("actor");
        let r = g.root();
        g.add_edge(r, d, EdgeKind::Tree);
        g.add_edge(d, m, EdgeKind::Tree);
        g.add_edge(m, t, EdgeKind::Tree);
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, m, EdgeKind::Reference);
        let dk = DkIndex::build(&g, Requirements::from_pairs([("title", 2)]));
        (g, dk)
    }

    #[test]
    fn dk_round_trips() {
        let (g, dk) = sample();
        let mut bytes = Vec::new();
        save_dk(&dk, &g, &mut bytes).unwrap();
        let (back, g2) = load_dk(&mut bytes.as_slice()).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(back.size(), dk.size());
        assert_eq!(back.requirements(), dk.requirements());
        assert!(back
            .index()
            .to_partition()
            .same_equivalence(&dk.index().to_partition()));
        for inode in dk.index().node_ids() {
            assert_eq!(
                back.index().similarity(inode),
                dk.index().similarity(inode)
            );
        }
    }

    #[test]
    fn loaded_index_answers_queries() {
        use crate::eval::{evaluate_on_data, IndexEvaluator};
        use dkindex_pathexpr::parse;
        let (g, dk) = sample();
        let mut bytes = Vec::new();
        save_dk(&dk, &g, &mut bytes).unwrap();
        let (back, g2) = load_dk(&mut bytes.as_slice()).unwrap();
        for q in ["director.movie.title", "actor.movie", "movie.title"] {
            let e = parse(q).unwrap();
            let out = IndexEvaluator::new(back.index(), &g2).evaluate(&e);
            assert_eq!(out.matches, evaluate_on_data(&g2, &e).0, "{q}");
        }
    }

    #[test]
    fn corrupted_extent_is_rejected() {
        let (g, dk) = sample();
        let mut bytes = Vec::new();
        save_dk(&dk, &g, &mut bytes).unwrap();
        // Flip a late byte (inside the index payload) until loading fails —
        // robustness: corruption must never produce a silently-wrong index.
        let mut corrupted = 0;
        for i in (bytes.len() - 40)..bytes.len() {
            let mut copy = bytes.clone();
            copy[i] ^= 0xFF;
            if load_dk(&mut copy.as_slice()).is_err() {
                corrupted += 1;
            }
        }
        assert!(corrupted > 30, "most corruptions must be detected");
    }

    #[test]
    fn truncation_is_rejected() {
        let (g, dk) = sample();
        let mut bytes = Vec::new();
        save_dk(&dk, &g, &mut bytes).unwrap();
        bytes.truncate(bytes.len() - 1);
        assert!(load_dk(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (g, dk) = sample();
        let mut bytes = Vec::new();
        save_dk(&dk, &g, &mut bytes).unwrap();
        bytes.extend_from_slice(b"junk");
        assert!(load_dk(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn requirements_round_trip_including_floor() {
        let mut reqs = Requirements::from_pairs([("a", 3), ("b", 1)]);
        reqs.raise_floor(1);
        let mut bytes = Vec::new();
        write_requirements(&reqs, &mut bytes).unwrap();
        let back = read_requirements(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, reqs);
    }
}
