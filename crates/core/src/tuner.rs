//! Adaptive tuning: closing the loop between the query load and the index.
//!
//! The paper prescribes that the promoting and demoting processes "be
//! executed periodically to tune the D(k)-index and keep its high
//! performance" (§5.3–§5.4) and names query-pattern mining as the first
//! direction of future work (§7). [`AdaptiveTuner`] implements that loop:
//!
//! 1. every query evaluated through the tuner is recorded (per-result-label
//!    length histogram, validation counter);
//! 2. when the observation window fills, fresh requirements are mined from
//!    the recorded load (frequency-weighted, so one stray deep query does
//!    not inflate the index — "the choice of k_A should guarantee that the
//!    majority of queries accessing A are ≤ k_A in length", §4.1);
//! 3. labels whose requirement *rose* are promoted; if the load a label
//!    actually received got shallower, the index is demoted — but only for
//!    labels the window *observed*: a label that merely went unqueried
//!    keeps its current requirement, so alternating workloads do not
//!    thrash the index promote/demote every window.
//!
//! The tuning *policy* — given current requirements, mined requirements,
//! and the set of observed result labels, decide promote/demote/hold — is
//! the pure function [`plan_tuning`], shared verbatim by this offline
//! tuner and by the live tuning pass inside [`crate::serve`]'s maintenance
//! thread. Everything here iterates ordered containers (`BTreeMap`,
//! sorted vectors): the same window must always yield the same plan, byte
//! for byte, because the live path replays tuning decisions through the
//! serial-application oracle (`dkindex-analyze` enforces the scope).
//!
//! ```
//! use dkindex_core::{AdaptiveTuner, DkIndex, Requirements, TunerConfig, TuningAction};
//! use dkindex_pathexpr::parse;
//! use dkindex_xml::parse_to_graph;
//!
//! let data = parse_to_graph("<db><movie><title/></movie></db>").unwrap();
//! let mut tuner = AdaptiveTuner::new(
//!     DkIndex::build(&data, Requirements::new()),
//!     TunerConfig { window: 2, min_support: 1, demote_slack: 1 },
//! );
//! let q = parse("movie.title").unwrap();
//! tuner.evaluate(&data, &q);
//! tuner.evaluate(&data, &q);
//! assert!(matches!(tuner.maybe_tune(&data), TuningAction::Promoted { .. }));
//! assert!(!tuner.evaluate(&data, &q).validated);
//! ```

use crate::dk::construct::DkIndex;
use crate::eval::{IndexEvalOutcome, IndexEvaluator};
use crate::mining::mine_requirements_weighted;
use crate::requirements::Requirements;
use dkindex_graph::DataGraph;
use dkindex_pathexpr::PathExpr;
use dkindex_telemetry as telemetry;
use std::collections::{BTreeMap, BTreeSet};

/// Tuning policy knobs.
#[derive(Clone, Debug)]
pub struct TunerConfig {
    /// Number of queries per observation window.
    pub window: usize,
    /// Minimum occurrences within a window for a query shape to influence
    /// the mined requirements (the "majority" filter of §4.1).
    pub min_support: u64,
    /// Demote when the retained maximum requirement is at least this much
    /// below the current one (hysteresis against oscillation).
    pub demote_slack: usize,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            window: 200,
            min_support: 2,
            demote_slack: 1,
        }
    }
}

/// What a call to [`AdaptiveTuner::maybe_tune`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TuningAction {
    /// Window not full yet, or the mined requirements matched the current
    /// ones: nothing changed.
    None,
    /// Some labels were promoted (splits performed).
    Promoted {
        /// Extent splits performed by the promotion pass.
        splits: usize,
    },
    /// The index was demoted to the mined requirements.
    Demoted {
        /// Index nodes merged away.
        nodes_saved: usize,
    },
}

/// Which result labels one observation window actually saw, regardless of
/// the `min_support` filter: a label is *observed* when any query in the
/// window could end at it. [`plan_tuning`] only lets observed labels decay
/// — an unqueried label carries no evidence that its load shrank.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObservedLoad {
    /// Result labels some window query can end at (sorted, deduplicated).
    pub labels: BTreeSet<String>,
    /// True when some window query can end in a wildcard (blanket load:
    /// evidence about the requirement floor rather than any one label).
    pub wildcard: bool,
}

impl ObservedLoad {
    /// Collect the observed result labels of a window's queries. Unbounded
    /// queries (`R*` tails) are skipped exactly as the miner skips them:
    /// they carry no finite length requirement.
    pub fn from_queries<'a>(queries: impl IntoIterator<Item = &'a PathExpr>) -> ObservedLoad {
        let mut observed = ObservedLoad::default();
        for query in queries {
            if query.max_word_len().is_none() {
                continue;
            }
            let last = query.last_labels();
            observed.labels.extend(last.labels);
            observed.wildcard |= last.wildcard;
        }
        observed
    }

    /// True when the window saw no bounded query at all.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty() && !self.wildcard
    }
}

/// The decision of one tuning step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TuningPlan {
    /// The mined load matches the current index: hold.
    Hold,
    /// Replace the requirements with the carried value and promote up to
    /// them (some label's requirement rose).
    Promote(Requirements),
    /// Demote the index down to the carried requirements (the observed
    /// load got shallower; unobserved labels are retained as-is).
    Demote(Requirements),
}

/// The pure tuning policy, shared by the offline [`AdaptiveTuner`] and the
/// live tuning pass in [`crate::serve`]:
///
/// * **Promote** when some mined label requirement (or the mined floor)
///   exceeds the current one. The promotion target is the current
///   requirements with the rises merged in — existing guarantees are never
///   given up by a promotion.
/// * **Demote** only on evidence of shrink: the demotion target keeps every
///   *unobserved* label at its current requirement and lowers observed
///   labels to their mined values (the floor follows the mined floor, as
///   blanket load is only attributable to wildcard queries). The demotion
///   fires only when the target's maximum requirement sits at least
///   `demote_slack + 1` below the current maximum (hysteresis).
/// * **Hold** otherwise.
///
/// Deterministic by construction: both inputs are reduced through
/// order-insensitive max-merges ([`Requirements::raise`]), so two calls
/// with equal inputs yield equal plans regardless of any iteration order
/// upstream.
pub fn plan_tuning(
    current: &Requirements,
    mined: &Requirements,
    observed: &ObservedLoad,
    demote_slack: usize,
) -> TuningPlan {
    let rises: Vec<(String, usize)> = {
        let mut rises: Vec<(String, usize)> = mined
            .iter()
            .filter(|&(label, k)| k > current.get(label))
            .map(|(l, k)| (l.to_string(), k))
            .collect();
        rises.sort();
        rises
    };
    let mined_floor_rose = mined.floor() > current.floor();

    if !rises.is_empty() || mined_floor_rose {
        let mut merged = current.clone();
        for (label, k) in &rises {
            merged.raise(label, *k);
        }
        if mined_floor_rose {
            merged.raise_floor(mined.floor());
        }
        return TuningPlan::Promote(merged);
    }

    // Demotion target: observed labels decay to their mined requirement,
    // unobserved labels retain their current one — a label that simply
    // went unqueried this window is not evidence of a shallower load.
    let mut target = Requirements::new();
    target.raise_floor(mined.floor());
    let mut retained: Vec<(&str, usize)> = current.iter().collect();
    retained.sort();
    for (label, k) in retained {
        if !observed.labels.contains(label) {
            target.raise(label, k);
        }
    }
    let mut shrunk: Vec<(&str, usize)> = mined.iter().collect();
    shrunk.sort();
    for (label, k) in shrunk {
        target.raise(label, k);
    }

    // Shrink only when the retained load clearly got shallower (hysteresis).
    if target.max_requirement() + demote_slack < current.max_requirement() {
        return TuningPlan::Demote(target);
    }
    TuningPlan::Hold
}

/// A D(k)-index coupled with a query-load monitor (paper §5.3/§5.4/§7).
#[derive(Debug)]
pub struct AdaptiveTuner {
    dk: DkIndex,
    config: TunerConfig,
    /// Query shape → occurrences in the current window. Ordered so the
    /// window drains the same way every run — the mining input, and with
    /// it the tuning decision, must not depend on hash iteration order.
    observed: BTreeMap<PathExpr, u64>,
    seen: usize,
    validations: u64,
}

impl AdaptiveTuner {
    /// Wrap an existing D(k)-index.
    pub fn new(dk: DkIndex, config: TunerConfig) -> Self {
        AdaptiveTuner {
            dk,
            config,
            observed: BTreeMap::new(),
            seen: 0,
            validations: 0,
        }
    }

    /// The wrapped index.
    pub fn index(&self) -> &DkIndex {
        &self.dk
    }

    /// Consume the tuner, returning the tuned index.
    pub fn into_index(self) -> DkIndex {
        self.dk
    }

    /// Fraction of queries in the *current* observation window that
    /// triggered validation. An empty window (no query recorded since the
    /// last tuning pass) has no rate yet and reports 0.0 — never NaN.
    pub fn validation_rate(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.validations as f64 / self.seen as f64
        }
    }

    /// Evaluate `query` through the index, recording it for tuning.
    pub fn evaluate(&mut self, data: &DataGraph, query: &PathExpr) -> IndexEvalOutcome {
        let out = IndexEvaluator::new(self.dk.index(), data).evaluate(query);
        *self.observed.entry(query.clone()).or_insert(0) += 1;
        self.seen += 1;
        self.validations += u64::from(out.validated);
        telemetry::metrics::TUNER_QUERIES.incr();
        if out.validated {
            telemetry::metrics::TUNER_VALIDATIONS.incr();
        }
        out
    }

    /// Run the periodic tuning step if the observation window is full.
    /// Call after a batch of [`AdaptiveTuner::evaluate`] calls.
    pub fn maybe_tune(&mut self, data: &DataGraph) -> TuningAction {
        // An empty window carries no evidence about the load: never act on
        // it, even under degenerate configs such as `window == 0`.
        if self.seen == 0 || self.seen < self.config.window {
            return TuningAction::None;
        }
        telemetry::metrics::TUNER_WINDOWS.incr();
        let _span = telemetry::Span::start(&telemetry::metrics::TUNER_TUNE_NS);
        // `BTreeMap` iteration is the declared query order: the mining
        // input is identical across runs for the same window content.
        let weighted: Vec<(PathExpr, u64)> =
            std::mem::take(&mut self.observed).into_iter().collect();
        self.seen = 0;
        self.validations = 0;
        let observed = ObservedLoad::from_queries(weighted.iter().map(|(q, _)| q));
        let mined = mine_requirements_weighted(&weighted, self.config.min_support);

        match plan_tuning(self.dk.requirements(), &mined, &observed, self.config.demote_slack) {
            TuningPlan::Promote(merged) => {
                self.dk.set_requirements_public(merged);
                let splits = self.dk.promote_to_requirements(data);
                telemetry::metrics::TUNER_PROMOTIONS.incr();
                TuningAction::Promoted { splits }
            }
            TuningPlan::Demote(target) => {
                let saved = self.dk.demote(target);
                telemetry::metrics::TUNER_DEMOTIONS.incr();
                TuningAction::Demoted { nodes_saved: saved }
            }
            TuningPlan::Hold => TuningAction::None,
        }
    }
}

impl DkIndex {
    /// Public requirement replacement for tuning layers. Does not modify the
    /// index structure; pair with [`DkIndex::promote_to_requirements`] or
    /// [`DkIndex::demote`].
    pub fn set_requirements_public(&mut self, reqs: Requirements) {
        self.set_requirements(reqs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::{EdgeKind, LabeledGraph};
    use dkindex_pathexpr::parse;

    fn data() -> DataGraph {
        let mut g = DataGraph::new();
        let d = g.add_labeled_node("director");
        let a = g.add_labeled_node("actor");
        let m1 = g.add_labeled_node("movie");
        let m2 = g.add_labeled_node("movie");
        let t1 = g.add_labeled_node("title");
        let t2 = g.add_labeled_node("title");
        let r = g.root();
        g.add_edge(r, d, EdgeKind::Tree);
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(d, m1, EdgeKind::Tree);
        g.add_edge(a, m2, EdgeKind::Tree);
        g.add_edge(m1, t1, EdgeKind::Tree);
        g.add_edge(m2, t2, EdgeKind::Tree);
        g
    }

    fn tuner(g: &DataGraph, window: usize) -> AdaptiveTuner {
        AdaptiveTuner::new(
            DkIndex::build(g, Requirements::new()),
            TunerConfig {
                window,
                min_support: 2,
                demote_slack: 1,
            },
        )
    }

    #[test]
    fn window_must_fill_before_tuning() {
        let g = data();
        let mut t = tuner(&g, 10);
        let q = parse("movie.title").unwrap();
        for _ in 0..9 {
            t.evaluate(&g, &q);
        }
        assert_eq!(t.maybe_tune(&g), TuningAction::None);
        t.evaluate(&g, &q);
        assert!(matches!(t.maybe_tune(&g), TuningAction::Promoted { .. }));
    }

    #[test]
    fn repeated_long_queries_promote_and_stop_validation() {
        let g = data();
        let mut t = tuner(&g, 4);
        let q = parse("director.movie.title").unwrap();
        for _ in 0..4 {
            assert!(t.evaluate(&g, &q).validated); // label-split validates
        }
        let action = t.maybe_tune(&g);
        assert!(matches!(action, TuningAction::Promoted { splits } if splits > 0));
        // Next evaluation is sound.
        let out = t.evaluate(&g, &q);
        assert!(!out.validated);
    }

    #[test]
    fn rare_deep_queries_are_ignored_by_min_support() {
        let g = data();
        let mut t = tuner(&g, 4);
        let short = parse("title").unwrap();
        let deep = parse("ROOT.director.movie.title").unwrap();
        t.evaluate(&g, &deep); // once: below min_support 2
        for _ in 0..3 {
            t.evaluate(&g, &short);
        }
        assert_eq!(t.maybe_tune(&g), TuningAction::None);
        assert_eq!(t.index().requirements().max_requirement(), 0);
    }

    #[test]
    fn shallower_load_eventually_demotes() {
        let g = data();
        let mut t = AdaptiveTuner::new(
            DkIndex::build(&g, Requirements::uniform(3)),
            TunerConfig {
                window: 4,
                min_support: 1,
                demote_slack: 1,
            },
        );
        let size_before = t.index().size();
        let q = parse("title").unwrap(); // zero-requirement load
        for _ in 0..4 {
            t.evaluate(&g, &q);
        }
        let action = t.maybe_tune(&g);
        assert!(matches!(action, TuningAction::Demoted { nodes_saved } if nodes_saved > 0));
        assert!(t.index().size() < size_before);
    }

    #[test]
    fn validation_rate_tracks_outcomes() {
        let g = data();
        let mut t = tuner(&g, 100);
        let sound = parse("title").unwrap();
        let approx = parse("director.movie.title").unwrap();
        t.evaluate(&g, &sound);
        t.evaluate(&g, &approx);
        assert!((t.validation_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn validation_rate_is_finite_on_an_empty_window() {
        let g = data();
        let mut t = tuner(&g, 2);
        // Before any query: empty window, rate must be 0.0 (not NaN).
        assert_eq!(t.validation_rate(), 0.0);
        assert!(t.validation_rate().is_finite());
        let q = parse("director.movie.title").unwrap();
        t.evaluate(&g, &q);
        t.evaluate(&g, &q);
        assert!(t.validation_rate() > 0.0);
        // Tuning drains the window: the rate resets to 0.0, again finite.
        assert!(matches!(t.maybe_tune(&g), TuningAction::Promoted { .. }));
        assert_eq!(t.validation_rate(), 0.0);
        assert!(t.validation_rate().is_finite());
    }

    #[test]
    fn empty_window_never_tunes_even_with_zero_window_config() {
        let g = data();
        let mut t = AdaptiveTuner::new(
            DkIndex::build(&g, Requirements::uniform(3)),
            TunerConfig {
                window: 0,
                min_support: 1,
                demote_slack: 1,
            },
        );
        let size_before = t.index().size();
        // `seen == 0 >= window == 0`, but there is no evidence to act on:
        // the degenerate config must not demote the index to nothing.
        assert_eq!(t.maybe_tune(&g), TuningAction::None);
        assert_eq!(t.index().size(), size_before);
    }

    #[test]
    fn tuned_index_remains_exact() {
        use crate::eval::evaluate_on_data;
        let g = data();
        let mut t = tuner(&g, 3);
        for q in ["movie.title", "director.movie.title", "actor.movie"] {
            let expr = parse(q).unwrap();
            let out = t.evaluate(&g, &expr);
            assert_eq!(out.matches, evaluate_on_data(&g, &expr).0);
        }
        t.maybe_tune(&g);
        t.index().index().check_invariants(&g).unwrap();
        for q in ["movie.title", "director.movie.title", "actor.movie"] {
            let expr = parse(q).unwrap();
            let out = t.evaluate(&g, &expr);
            assert_eq!(out.matches, evaluate_on_data(&g, &expr).0);
        }
    }

    /// The oscillation regression (ISSUE 9): a label promoted in window N
    /// that simply goes *unqueried* in window N+1 must keep its
    /// requirement. Under the old wholesale demote-to-mined policy, an
    /// alternating deep-A / shallow-B workload thrashed split/merge every
    /// window; now both of the later windows are strict holds.
    #[test]
    fn alternating_workloads_do_not_thrash() {
        let g = data();
        let mut t = AdaptiveTuner::new(
            DkIndex::build(&g, Requirements::new()),
            TunerConfig {
                window: 4,
                min_support: 2,
                demote_slack: 1,
            },
        );
        let deep = parse("ROOT.director.movie.title").unwrap(); // title: 3
        let shallow = parse("actor.movie").unwrap(); // movie: 1

        // Window 1: deep load promotes `title` to 3.
        for _ in 0..4 {
            t.evaluate(&g, &deep);
        }
        assert!(matches!(t.maybe_tune(&g), TuningAction::Promoted { splits } if splits > 0));
        assert_eq!(t.index().requirements().get("title"), 3);

        // Window 2: only the shallow load — `title` is unqueried, not
        // shrunk. The shallow label still gets its promotion, but the old
        // policy would also have demoted `title` back to zero here.
        for _ in 0..4 {
            t.evaluate(&g, &shallow);
        }
        t.maybe_tune(&g);
        assert_eq!(t.index().requirements().get("title"), 3);
        assert_eq!(t.index().requirements().get("movie"), 1);

        // Windows 3 and 4: the workload keeps alternating; the index has
        // converged, so tuning must hold — no repeated split/merge churn.
        for _ in 0..4 {
            t.evaluate(&g, &shallow);
        }
        assert_eq!(t.maybe_tune(&g), TuningAction::None);
        for _ in 0..4 {
            t.evaluate(&g, &deep);
        }
        assert_eq!(t.maybe_tune(&g), TuningAction::None);
        assert_eq!(t.index().requirements().get("title"), 3);
        assert_eq!(t.index().requirements().get("movie"), 1);
    }

    /// Genuine shrink still demotes: the same label queried *shallowly*
    /// (not merely unqueried) is evidence the load got shallower.
    #[test]
    fn observed_shrink_still_demotes() {
        let g = data();
        let mut t = AdaptiveTuner::new(
            DkIndex::build(&g, Requirements::new()),
            TunerConfig {
                window: 4,
                min_support: 1,
                demote_slack: 1,
            },
        );
        let deep = parse("ROOT.director.movie.title").unwrap();
        for _ in 0..4 {
            t.evaluate(&g, &deep);
        }
        assert!(matches!(t.maybe_tune(&g), TuningAction::Promoted { .. }));
        // The *same* result label, now only ever reached by length-1
        // queries: observed shrinking, demote fires.
        let shallow = parse("title").unwrap();
        for _ in 0..4 {
            t.evaluate(&g, &shallow);
        }
        assert!(matches!(t.maybe_tune(&g), TuningAction::Demoted { .. }));
        assert_eq!(t.index().requirements().get("title"), 0);
    }

    /// Determinism (ISSUE 9): the same op sequence must produce the same
    /// tuner actions and a byte-identical index across repeated runs — the
    /// property the live serve path's serial-replay oracle depends on.
    #[test]
    fn tuner_is_deterministic_across_runs() {
        use crate::snapshot::snapshot_bytes;
        let g = data();
        let queries = [
            "director.movie.title",
            "actor.movie",
            "movie.title",
            "title",
            "ROOT.director.movie.title",
            "actor.movie.title",
        ];
        let run = || {
            let mut t = AdaptiveTuner::new(
                DkIndex::build(&g, Requirements::new()),
                TunerConfig {
                    window: 3,
                    min_support: 1,
                    demote_slack: 1,
                },
            );
            let mut actions = Vec::new();
            for (i, q) in queries.iter().cycle().take(24).enumerate() {
                let expr = parse(q).unwrap();
                t.evaluate(&g, &expr);
                if i % 3 == 2 {
                    actions.push(t.maybe_tune(&g));
                }
            }
            (actions, snapshot_bytes(t.index(), &g))
        };
        let (first_actions, first_bytes) = run();
        for _ in 0..4 {
            let (actions, bytes) = run();
            assert_eq!(actions, first_actions, "tuner actions diverged across runs");
            assert_eq!(bytes, first_bytes, "tuned index bytes diverged across runs");
        }
    }
}
