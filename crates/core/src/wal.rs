//! Write-ahead log of edge updates (§5's update stream, made crash-safe).
//!
//! A snapshot captures the index at one point in time; the WAL captures the
//! edge updates applied since. `snapshot + replay(WAL)` therefore
//! reconstructs exactly the state reached by applying the same stream
//! directly — byte-identical serialization, asserted by the fault-injection
//! suite and the robustness property tests.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! header   b"DKWL", u32 version (= 1)
//! record   u8 tag (1 = add-edge), u32 from, u32 to,
//!          u32 CRC-32 of the preceding 9 bytes
//! ```
//!
//! Decoding distinguishes two failure shapes with different semantics:
//!
//! * **Torn tail** — the file ends mid-record. This is the expected crash
//!   signature (the process died while appending); decoding *succeeds* with
//!   the complete prefix and reports [`WalTail::Torn`].
//! * **Corrupt record** — a complete record whose CRC does not match. This
//!   is bit rot or tampering, never a clean crash; decoding fails with a
//!   typed [`WalError::CorruptRecord`].
//!
//! [`WalWriter`] orders appends for durability: each record is written and
//! `sync_data`ed before `append` returns, so a record acknowledged to the
//! caller survives a crash.

use crate::bytes::Cursor;
use crate::crc32::crc32;
use crate::dk::construct::DkIndex;
use crate::dk::edge_update::EdgeUpdateOutcome;
use dkindex_graph::{DataGraph, LabeledGraph, NodeId};
use dkindex_telemetry as telemetry;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"DKWL";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 8;
const RECORD_LEN: usize = 13;
const TAG_ADD_EDGE: u8 = 1;

/// One logged update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// The paper's edge-addition update (Algorithms 4–5).
    AddEdge {
        /// Source data node.
        from: NodeId,
        /// Target data node.
        to: NodeId,
    },
}

/// How the log ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalTail {
    /// The file ends exactly on a record boundary.
    Clean,
    /// The file ends mid-record (crash during append); `valid_len` is the
    /// byte length of the complete prefix.
    Torn {
        /// Length of the valid prefix in bytes.
        valid_len: usize,
    },
}

/// Typed WAL failure.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The header magic is wrong — not a WAL file.
    BadMagic,
    /// The file is shorter than the header.
    TruncatedHeader,
    /// The header declares a version this build cannot read.
    UnsupportedVersion(u32),
    /// A complete record failed its CRC or carries an unknown tag.
    CorruptRecord {
        /// Zero-based record index.
        index: usize,
        /// Byte offset of the record start.
        offset: usize,
        /// What was wrong.
        reason: String,
    },
    /// A record references a data node the graph does not have.
    RecordOutOfRange {
        /// Zero-based record index.
        index: usize,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::BadMagic => write!(f, "not a WAL file (bad magic, expected DKWL)"),
            WalError::TruncatedHeader => write!(f, "WAL truncated inside the header"),
            WalError::UnsupportedVersion(v) => write!(f, "unsupported WAL version {v}"),
            WalError::CorruptRecord { index, offset, reason } => {
                write!(f, "corrupt WAL record {index} at byte {offset}: {reason}")
            }
            WalError::RecordOutOfRange { index } => {
                write!(f, "WAL record {index} references a node outside the data graph")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Encode one record into its 13-byte wire form.
pub fn encode_record(record: &WalRecord) -> [u8; RECORD_LEN] {
    let WalRecord::AddEdge { from, to } = record;
    let [f0, f1, f2, f3] = (from.index() as u32).to_le_bytes();
    let [t0, t1, t2, t3] = (to.index() as u32).to_le_bytes();
    let body = [TAG_ADD_EDGE, f0, f1, f2, f3, t0, t1, t2, t3];
    let [c0, c1, c2, c3] = crc32(&body).to_le_bytes();
    [TAG_ADD_EDGE, f0, f1, f2, f3, t0, t1, t2, t3, c0, c1, c2, c3]
}

/// The 8-byte WAL header.
pub fn encode_header() -> [u8; HEADER_LEN] {
    let [m0, m1, m2, m3] = *MAGIC;
    let [v0, v1, v2, v3] = VERSION.to_le_bytes();
    [m0, m1, m2, m3, v0, v1, v2, v3]
}

/// Decode a WAL byte stream into records. A file ending mid-record yields
/// the complete prefix with [`WalTail::Torn`]; a complete record with a bad
/// CRC is a typed error.
pub fn decode_wal(bytes: &[u8]) -> Result<(Vec<WalRecord>, WalTail), WalError> {
    let mut cur = Cursor::new(bytes);
    let magic = cur.array4().ok_or(WalError::TruncatedHeader)?;
    if magic != *MAGIC {
        return Err(WalError::BadMagic);
    }
    let version = cur.u32_le().ok_or(WalError::TruncatedHeader)?;
    if version != VERSION {
        return Err(WalError::UnsupportedVersion(version));
    }
    let mut records = Vec::new();
    let mut index = 0usize;
    // A file ending exactly on a record boundary is a clean tail: every
    // appended record survived. Only a strictly partial trailing record —
    // fewer than RECORD_LEN bytes past the last boundary — is torn.
    while cur.remaining() >= RECORD_LEN {
        let offset = cur.offset();
        let Some(rec) = cur.take(RECORD_LEN) else {
            // Unreachable given the remaining() guard, but a torn tail is
            // the sound typed fallback either way.
            break;
        };
        let mut fields = Cursor::new(rec);
        let (Some(tag), Some(from), Some(to), Some(stored)) =
            (fields.u8(), fields.u32_le(), fields.u32_le(), fields.u32_le())
        else {
            break;
        };
        let body = rec.get(..RECORD_LEN - 4).unwrap_or(rec);
        if crc32(body) != stored {
            telemetry::metrics::STORE_CRC_FAILURES.incr();
            return Err(WalError::CorruptRecord {
                index,
                offset,
                reason: "CRC mismatch".to_string(),
            });
        }
        if tag != TAG_ADD_EDGE {
            return Err(WalError::CorruptRecord {
                index,
                offset,
                reason: format!("unknown record tag {tag}"),
            });
        }
        records.push(WalRecord::AddEdge {
            from: NodeId::from_index(from as usize),
            to: NodeId::from_index(to as usize),
        });
        index += 1;
    }
    if cur.remaining() != 0 {
        // Incomplete trailing record: a crash mid-append, not corruption.
        telemetry::metrics::WAL_TORN_TAILS.incr();
        return Ok((records, WalTail::Torn { valid_len: cur.offset() }));
    }
    Ok((records, WalTail::Clean))
}

/// Outcome of replaying a WAL against a snapshot.
#[derive(Debug)]
pub struct ReplayReport {
    /// Records applied.
    pub applied: usize,
    /// Per-record update outcomes (same order as the log).
    pub outcomes: Vec<EdgeUpdateOutcome>,
    /// How the log ended.
    pub tail: WalTail,
}

/// Replay decoded `records` into `dk`/`data` via the paper's edge-addition
/// update. Records referencing nodes outside the graph are a typed error
/// (the WAL belongs to a different snapshot), applied *before* any mutation
/// of that record.
pub fn replay_records(
    dk: &mut DkIndex,
    data: &mut DataGraph,
    records: &[WalRecord],
    tail: WalTail,
) -> Result<ReplayReport, WalError> {
    let span = telemetry::Span::start(&telemetry::metrics::WAL_REPLAY_NS);
    let mut outcomes = Vec::with_capacity(records.len());
    for (index, record) in records.iter().enumerate() {
        let WalRecord::AddEdge { from, to } = *record;
        if from.index() >= data.node_count() || to.index() >= data.node_count() {
            return Err(WalError::RecordOutOfRange { index });
        }
        outcomes.push(dk.add_edge(data, from, to));
        telemetry::metrics::WAL_RECORDS_REPLAYED.incr();
    }
    drop(span);
    Ok(ReplayReport {
        applied: outcomes.len(),
        outcomes,
        tail,
    })
}

/// Decode `bytes` and replay into `dk`/`data` in one step.
pub fn replay(
    dk: &mut DkIndex,
    data: &mut DataGraph,
    bytes: &[u8],
) -> Result<ReplayReport, WalError> {
    let (records, tail) = decode_wal(bytes)?;
    replay_records(dk, data, records.as_slice(), tail)
}

/// Append-only WAL file handle with fsync-ordered writes: every record is
/// flushed to stable storage before `append` returns.
pub struct WalWriter {
    file: File,
}

impl WalWriter {
    /// Create (or truncate) a WAL at `path`, writing and syncing the header.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut file = File::create(path)?;
        file.write_all(&encode_header())?;
        file.sync_data()?;
        Ok(WalWriter { file })
    }

    /// Open an existing WAL for appending. The whole file is validated
    /// first; a torn tail (crash during a previous append) is truncated away
    /// so new records extend the valid prefix.
    pub fn open(path: &Path) -> Result<Self, WalError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let (_, tail) = decode_wal(&bytes)?;
        let file = OpenOptions::new().write(true).open(path)?;
        if let WalTail::Torn { valid_len } = tail {
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        let mut writer = WalWriter { file };
        use std::io::Seek;
        writer.file.seek(io::SeekFrom::End(0))?;
        Ok(writer)
    }

    /// Append one record durably: write, then `sync_data`, then return.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        self.file.write_all(&encode_record(record))?;
        self.file.sync_data()?;
        telemetry::metrics::WAL_RECORDS_APPENDED.incr();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::Requirements;
    use dkindex_graph::EdgeKind;

    fn sample() -> (DataGraph, DkIndex) {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let c = g.add_labeled_node("c");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, b, EdgeKind::Tree);
        g.add_edge(r, c, EdgeKind::Tree);
        let dk = DkIndex::build(&g, Requirements::uniform(2));
        (g, dk)
    }

    fn log_bytes(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = encode_header().to_vec();
        for r in records {
            bytes.extend_from_slice(&encode_record(r));
        }
        bytes
    }

    /// Regression for the panic-free encode rewrite: the wire layout is a
    /// durable format, so the exact bytes are pinned — tag, LE from, LE to,
    /// LE CRC of the first 9 bytes; header is magic + LE version.
    #[test]
    fn wire_format_bytes_are_pinned() {
        assert_eq!(encode_header(), *b"DKWL\x01\x00\x00\x00");
        let rec = encode_record(&WalRecord::AddEdge {
            from: NodeId::from_index(0x0102),
            to: NodeId::from_index(3),
        });
        assert_eq!(rec[..9], [1, 0x02, 0x01, 0, 0, 3, 0, 0, 0]);
        assert_eq!(rec[9..], crc32(&rec[..9]).to_le_bytes());
    }

    #[test]
    fn encode_decode_round_trips() {
        let records = vec![
            WalRecord::AddEdge { from: NodeId::from_index(3), to: NodeId::from_index(1) },
            WalRecord::AddEdge { from: NodeId::from_index(0), to: NodeId::from_index(2) },
        ];
        let (back, tail) = decode_wal(&log_bytes(&records)).unwrap();
        assert_eq!(back, records);
        assert_eq!(tail, WalTail::Clean);
    }

    #[test]
    fn torn_tail_yields_prefix() {
        let records = vec![
            WalRecord::AddEdge { from: NodeId::from_index(3), to: NodeId::from_index(1) },
            WalRecord::AddEdge { from: NodeId::from_index(0), to: NodeId::from_index(2) },
        ];
        let full = log_bytes(&records);
        // Every truncation point inside the second record keeps record one.
        for cut in (HEADER_LEN + RECORD_LEN + 1)..full.len() {
            let (back, tail) = decode_wal(&full[..cut]).unwrap();
            assert_eq!(back, records[..1], "cut at {cut}");
            assert_eq!(tail, WalTail::Torn { valid_len: HEADER_LEN + RECORD_LEN });
        }
    }

    #[test]
    fn record_boundary_cuts_are_clean_tails() {
        let records = vec![
            WalRecord::AddEdge { from: NodeId::from_index(3), to: NodeId::from_index(1) },
            WalRecord::AddEdge { from: NodeId::from_index(0), to: NodeId::from_index(2) },
            WalRecord::AddEdge { from: NodeId::from_index(2), to: NodeId::from_index(4) },
        ];
        let full = log_bytes(&records);
        // A cut landing exactly on a record boundary — including the bare
        // header and the full file — is a clean tail with that many records.
        for n in 0..=records.len() {
            let cut = HEADER_LEN + n * RECORD_LEN;
            let (back, tail) = decode_wal(&full[..cut]).unwrap();
            assert_eq!(back, records[..n], "boundary cut after {n} records");
            assert_eq!(tail, WalTail::Clean, "boundary cut after {n} records");
        }
        // One byte either side of each interior boundary is torn back to it.
        for n in 1..=records.len() {
            let boundary = HEADER_LEN + n * RECORD_LEN;
            if boundary < full.len() {
                let (back, tail) = decode_wal(&full[..boundary + 1]).unwrap();
                assert_eq!(back, records[..n]);
                assert_eq!(tail, WalTail::Torn { valid_len: boundary });
            }
            let (back, tail) = decode_wal(&full[..boundary - 1]).unwrap();
            assert_eq!(back, records[..n - 1]);
            assert_eq!(tail, WalTail::Torn { valid_len: boundary - RECORD_LEN });
        }
    }

    #[test]
    fn complete_record_with_bad_crc_is_a_typed_error() {
        let records = vec![WalRecord::AddEdge {
            from: NodeId::from_index(3),
            to: NodeId::from_index(1),
        }];
        for byte in HEADER_LEN..HEADER_LEN + RECORD_LEN {
            let mut bytes = log_bytes(&records);
            bytes[byte] ^= 0x40;
            let err = decode_wal(&bytes).unwrap_err();
            assert!(
                matches!(err, WalError::CorruptRecord { .. }),
                "flip at {byte}: {err}"
            );
        }
    }

    #[test]
    fn header_corruption_is_typed() {
        assert!(matches!(decode_wal(b""), Err(WalError::TruncatedHeader)));
        assert!(matches!(decode_wal(b"DKW"), Err(WalError::TruncatedHeader)));
        assert!(matches!(decode_wal(b"XXXX\x01\0\0\0"), Err(WalError::BadMagic)));
        assert!(matches!(
            decode_wal(b"DKWL\x63\0\0\0"),
            Err(WalError::UnsupportedVersion(0x63))
        ));
    }

    #[test]
    fn replay_matches_direct_application() {
        let (mut g_direct, mut dk_direct) = sample();
        let (mut g_replayed, mut dk_replayed) = sample();
        let updates = [(3usize, 1usize), (0, 2), (2, 3)];

        let records: Vec<WalRecord> = updates
            .iter()
            .map(|&(f, t)| WalRecord::AddEdge {
                from: NodeId::from_index(f),
                to: NodeId::from_index(t),
            })
            .collect();
        for &(f, t) in &updates {
            dk_direct.add_edge(&mut g_direct, NodeId::from_index(f), NodeId::from_index(t));
        }
        let report =
            replay(&mut dk_replayed, &mut g_replayed, &log_bytes(&records)).unwrap();
        assert_eq!(report.applied, updates.len());

        let mut direct_bytes = Vec::new();
        let mut replayed_bytes = Vec::new();
        crate::store::save_dk(&dk_direct, &g_direct, &mut direct_bytes).unwrap();
        crate::store::save_dk(&dk_replayed, &g_replayed, &mut replayed_bytes).unwrap();
        assert_eq!(direct_bytes, replayed_bytes, "replay must be byte-identical");
    }

    #[test]
    fn replay_rejects_out_of_range_records() {
        let (mut g, mut dk) = sample();
        let bytes = log_bytes(&[WalRecord::AddEdge {
            from: NodeId::from_index(99),
            to: NodeId::from_index(0),
        }]);
        assert!(matches!(
            replay(&mut dk, &mut g, &bytes),
            Err(WalError::RecordOutOfRange { index: 0 })
        ));
    }

    #[test]
    fn writer_appends_durably_and_reopens_after_torn_tail() {
        let dir = std::env::temp_dir().join(format!("dkindex-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("updates.wal");

        let mut w = WalWriter::create(&path).unwrap();
        w.append(&WalRecord::AddEdge {
            from: NodeId::from_index(3),
            to: NodeId::from_index(1),
        })
        .unwrap();
        drop(w);

        // Simulate a crash mid-append: chop half a record off the end.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&encode_record(&WalRecord::AddEdge {
            from: NodeId::from_index(0),
            to: NodeId::from_index(2),
        })[..5]);
        std::fs::write(&path, &bytes).unwrap();

        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::AddEdge {
            from: NodeId::from_index(2),
            to: NodeId::from_index(3),
        })
        .unwrap();
        drop(w);

        let bytes = std::fs::read(&path).unwrap();
        let (records, tail) = decode_wal(&bytes).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(records.len(), 2, "torn tail truncated, then one append");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
