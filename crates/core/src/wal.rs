//! Write-ahead log of maintenance operations (§5's update stream, made
//! crash-safe and, since v2, covering the full [`ServeOp`] vocabulary).
//!
//! A snapshot captures the index at one point in time; the WAL captures the
//! maintenance operations applied since. `snapshot + replay(WAL)` therefore
//! reconstructs exactly the state reached by applying the same stream
//! directly — byte-identical serialization, asserted by the fault-injection
//! suite, the crash-recovery torture harness and the robustness property
//! tests.
//!
//! Two on-disk versions share the `b"DKWL"` magic (all integers
//! little-endian):
//!
//! ```text
//! v1 header   b"DKWL", u32 version (= 1)
//! v1 record   u8 tag (1 = add-edge), u32 from, u32 to,
//!             u32 CRC-32 of the preceding 9 bytes
//!
//! v2 header   b"DKWL", u32 version (= 2)
//! v2 record   u32 body_len, body, u32 CRC-32 of body
//!             body = u8 tag, payload
//!               tag 1  add-edge                u32 from, u32 to
//!               tag 2  promote                 u32 node, u32 k
//!               tag 3  promote-to-requirements (empty)
//!               tag 4  demote                  requirements
//!               tag 5  set-requirements        requirements
//!               tag 6  commit fence            u32 ops since previous fence
//!             requirements = u32 floor, u32 count,
//!                            count × (u32 name_len, name bytes, u32 k)
//!             (pairs sorted by label name — the in-memory table is a
//!             `HashMap`, so the wire order is declared here)
//! ```
//!
//! v2 adds the **commit fence** (tag 6): the group-commit writer stages a
//! batch of op records plus one fence in a single write and `fsync`s once.
//! Decoding returns only records *covered by a fence* — the committed
//! prefix. Everything after the last fence, whether a partial record or
//! complete-but-unfenced records, is the unacknowledged tail: recovery and
//! [`WalWriter::open`] drop it atomically, which is what lets a DKNP
//! `UPDATE_OK` promise durability (docs/PROTOCOL.md §8). v1 files have no
//! fences; every complete record counts as committed (each v1 append
//! synced individually).
//!
//! Decoding distinguishes two failure shapes with different semantics:
//!
//! * **Torn tail** — the file ends mid-record, or (v2) past the last commit
//!   fence. This is the expected crash signature (the process died while
//!   appending, or before the batch's fsync); decoding *succeeds* with the
//!   committed prefix and reports [`WalTail::Torn`].
//! * **Corrupt record** — a complete record whose CRC does not match, an
//!   unknown tag, a malformed payload, or a fence whose op count disagrees
//!   with the records actually present. This is bit rot or tampering, never
//!   a clean crash (a torn write leaves a *prefix* of what was written);
//!   decoding fails with a typed [`WalError::CorruptRecord`].
//!
//! [`WalWriter`] orders writes for durability: a record (or batch) is
//! written and synced before the append returns, so an operation
//! acknowledged to the caller survives a crash. The writer is generic over
//! [`WalStore`] so the crash torture harness can substitute the
//! fail-injecting [`crate::io_fail::SimDisk`] for a real file.

use crate::bytes::Cursor;
use crate::crc32::crc32;
use crate::dk::construct::DkIndex;
use crate::requirements::Requirements;
use crate::serve_ops::ServeOp;
use dkindex_graph::{DataGraph, LabeledGraph, NodeId};
use dkindex_telemetry as telemetry;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"DKWL";
/// Current on-disk version written by [`WalWriter::create`].
pub const VERSION: u32 = 2;
const VERSION_V1: u32 = 1;
const HEADER_LEN: usize = 8;
const V1_RECORD_LEN: usize = 13;
const TAG_ADD_EDGE: u8 = 1;
const TAG_PROMOTE: u8 = 2;
const TAG_PROMOTE_TO_REQUIREMENTS: u8 = 3;
const TAG_DEMOTE: u8 = 4;
const TAG_SET_REQUIREMENTS: u8 = 5;
const TAG_COMMIT: u8 = 6;
/// Upper bound on one v2 record body. A length prefix beyond this is
/// corruption, not a huge record: the largest legitimate body is a
/// requirements table, and even a pathological label set stays far below
/// a mebibyte.
pub const MAX_RECORD_LEN: usize = 1 << 20;

/// One logged maintenance operation (the WAL mirror of [`ServeOp`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// The paper's edge-addition update (Algorithms 4–5).
    AddEdge {
        /// Source data node.
        from: NodeId,
        /// Target data node.
        to: NodeId,
    },
    /// Promote the block containing `node` to local similarity `k`
    /// (Algorithm 6).
    Promote {
        /// A data node identifying the target block.
        node: NodeId,
        /// Requested local similarity.
        k: usize,
    },
    /// Run the full promoting pass against the stored requirements.
    PromoteToRequirements,
    /// Demote the index to the given requirements (§5.4).
    Demote(Requirements),
    /// Replace the stored requirements and promote up to them.
    SetRequirements(Requirements),
}

impl WalRecord {
    /// The WAL record logging `op`.
    pub fn from_op(op: &ServeOp) -> WalRecord {
        match op {
            ServeOp::AddEdge { from, to } => WalRecord::AddEdge { from: *from, to: *to },
            ServeOp::Promote { node, k } => WalRecord::Promote { node: *node, k: *k },
            ServeOp::PromoteToRequirements => WalRecord::PromoteToRequirements,
            ServeOp::Demote(reqs) => WalRecord::Demote(reqs.clone()),
            ServeOp::SetRequirements(reqs) => WalRecord::SetRequirements(reqs.clone()),
        }
    }

    /// The serve operation this record replays as.
    pub fn to_op(&self) -> ServeOp {
        match self {
            WalRecord::AddEdge { from, to } => ServeOp::AddEdge { from: *from, to: *to },
            WalRecord::Promote { node, k } => ServeOp::Promote { node: *node, k: *k },
            WalRecord::PromoteToRequirements => ServeOp::PromoteToRequirements,
            WalRecord::Demote(reqs) => ServeOp::Demote(reqs.clone()),
            WalRecord::SetRequirements(reqs) => ServeOp::SetRequirements(reqs.clone()),
        }
    }
}

/// How the log ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalTail {
    /// v1: the file ends exactly on a record boundary. v2: the file ends
    /// exactly on a commit fence (or is a bare header).
    Clean,
    /// The committed prefix ends at `valid_len`: the file continues with a
    /// partial record (crash during a write) or, in v2, with records no
    /// commit fence covers (crash before the batch's fsync). Recovery
    /// truncates here.
    Torn {
        /// Length of the committed prefix in bytes.
        valid_len: usize,
    },
}

/// Typed WAL failure.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The header magic is wrong — not a WAL file.
    BadMagic,
    /// The file is shorter than the header.
    TruncatedHeader,
    /// The header declares a version this build cannot read.
    UnsupportedVersion(u32),
    /// A complete record failed its CRC, carries an unknown tag, has a
    /// malformed payload, or is a fence whose count disagrees with the log.
    CorruptRecord {
        /// Zero-based record index (fences included, v2).
        index: usize,
        /// Byte offset of the record start.
        offset: usize,
        /// What was wrong.
        reason: String,
    },
    /// A record references a data node the graph does not have.
    RecordOutOfRange {
        /// Zero-based record index.
        index: usize,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::BadMagic => write!(f, "not a WAL file (bad magic, expected DKWL)"),
            WalError::TruncatedHeader => write!(f, "WAL truncated inside the header"),
            WalError::UnsupportedVersion(v) => write!(f, "unsupported WAL version {v}"),
            WalError::CorruptRecord { index, offset, reason } => {
                write!(f, "corrupt WAL record {index} at byte {offset}: {reason}")
            }
            WalError::RecordOutOfRange { index } => {
                write!(f, "WAL record {index} references a node outside the data graph")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

// ---- encoding ------------------------------------------------------------

/// The 8-byte header of the current (v2) format.
pub fn encode_header() -> [u8; HEADER_LEN] {
    encode_header_version(VERSION)
}

/// The 8-byte header of the legacy v1 format (compatibility tests and the
/// fault sweeps still write v1 streams).
pub fn encode_header_v1() -> [u8; HEADER_LEN] {
    encode_header_version(VERSION_V1)
}

fn encode_header_version(version: u32) -> [u8; HEADER_LEN] {
    let [m0, m1, m2, m3] = *MAGIC;
    let [v0, v1, v2, v3] = version.to_le_bytes();
    [m0, m1, m2, m3, v0, v1, v2, v3]
}

/// Encode one op record into its v2 wire form (length prefix + body + CRC).
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut body = Vec::with_capacity(16);
    match record {
        WalRecord::AddEdge { from, to } => {
            body.push(TAG_ADD_EDGE);
            body.extend_from_slice(&(from.index() as u32).to_le_bytes());
            body.extend_from_slice(&(to.index() as u32).to_le_bytes());
        }
        WalRecord::Promote { node, k } => {
            body.push(TAG_PROMOTE);
            body.extend_from_slice(&(node.index() as u32).to_le_bytes());
            body.extend_from_slice(&(*k as u32).to_le_bytes());
        }
        WalRecord::PromoteToRequirements => body.push(TAG_PROMOTE_TO_REQUIREMENTS),
        WalRecord::Demote(reqs) => {
            body.push(TAG_DEMOTE);
            encode_requirements(reqs, &mut body);
        }
        WalRecord::SetRequirements(reqs) => {
            body.push(TAG_SET_REQUIREMENTS);
            encode_requirements(reqs, &mut body);
        }
    }
    frame_body(&body)
}

/// Encode a v2 commit fence covering `count` op records.
pub fn encode_commit(count: u32) -> Vec<u8> {
    let mut body = Vec::with_capacity(5);
    body.push(TAG_COMMIT);
    body.extend_from_slice(&count.to_le_bytes());
    frame_body(&body)
}

fn frame_body(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out
}

/// Requirements wire form: floor, pair count, then `(name_len, name, k)`
/// pairs sorted by label name. The in-memory table is hash-keyed, so the
/// sort *declares* the byte order — the WAL is a durable format and must
/// encode identically across runs.
fn encode_requirements(reqs: &Requirements, out: &mut Vec<u8>) {
    let mut pairs: Vec<(&str, usize)> = reqs.iter().collect();
    pairs.sort_by(|a, b| a.0.cmp(b.0));
    out.extend_from_slice(&(reqs.floor() as u32).to_le_bytes());
    out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for (name, k) in pairs {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(k as u32).to_le_bytes());
    }
}

/// Encode one record into the legacy 13-byte v1 wire form. Only
/// [`WalRecord::AddEdge`] exists in v1; other ops return `None`.
pub fn encode_record_v1(record: &WalRecord) -> Option<[u8; V1_RECORD_LEN]> {
    let WalRecord::AddEdge { from, to } = record else {
        return None;
    };
    let [f0, f1, f2, f3] = (from.index() as u32).to_le_bytes();
    let [t0, t1, t2, t3] = (to.index() as u32).to_le_bytes();
    let body = [TAG_ADD_EDGE, f0, f1, f2, f3, t0, t1, t2, t3];
    let [c0, c1, c2, c3] = crc32(&body).to_le_bytes();
    Some([TAG_ADD_EDGE, f0, f1, f2, f3, t0, t1, t2, t3, c0, c1, c2, c3])
}

// ---- decoding ------------------------------------------------------------

/// Per-file WAL report for `dkindex doctor`: version, committed record
/// count, dropped-tail size and the tail verdict, without replaying.
#[derive(Debug)]
pub struct WalInspection {
    /// On-disk format version (1 or 2).
    pub version: u32,
    /// Records covered by the acknowledged prefix (replay applies these).
    pub committed: usize,
    /// Complete records past the last commit fence — written but never
    /// fsync-fenced, so recovery drops them (always 0 for v1).
    pub uncommitted: usize,
    /// How the file ends.
    pub verdict: WalVerdict,
}

/// Doctor's three-way tail verdict.
#[derive(Debug)]
pub enum WalVerdict {
    /// The file ends exactly on the committed prefix.
    Clean,
    /// The committed prefix ends at `valid_len`; the rest is an
    /// unacknowledged tail that recovery truncates (the crash signature).
    TornTail {
        /// Byte length of the committed prefix.
        valid_len: usize,
    },
    /// A complete record is damaged — bit rot or tampering, not a crash.
    Corrupt {
        /// Zero-based record index.
        index: usize,
        /// Byte offset of the record start.
        offset: usize,
        /// What was wrong.
        reason: String,
    },
}

/// How the low-level scan ended.
enum DecodeEnd {
    Clean,
    Torn,
    Corrupt { index: usize, offset: usize, reason: String },
}

/// Low-level scan result shared by [`decode_wal`] and [`inspect_wal`].
struct Decoded {
    version: u32,
    /// Every complete, CRC-valid op record in file order (fences excluded).
    records: Vec<WalRecord>,
    /// How many of `records` a commit fence covers (v1: all of them).
    committed: usize,
    /// Byte offset where the committed prefix ends.
    committed_end: usize,
    end: DecodeEnd,
}

fn decode_engine(bytes: &[u8]) -> Result<Decoded, WalError> {
    let mut cur = Cursor::new(bytes);
    let magic = cur.array4().ok_or(WalError::TruncatedHeader)?;
    if magic != *MAGIC {
        return Err(WalError::BadMagic);
    }
    let version = cur.u32_le().ok_or(WalError::TruncatedHeader)?;
    match version {
        VERSION_V1 => Ok(decode_engine_v1(cur)),
        VERSION => Ok(decode_engine_v2(cur)),
        other => Err(WalError::UnsupportedVersion(other)),
    }
}

fn decode_engine_v1(mut cur: Cursor<'_>) -> Decoded {
    let mut records = Vec::new();
    let mut index = 0usize;
    // A v1 file ending exactly on a record boundary is a clean tail: every
    // appended record survived (v1 synced per append). Only a strictly
    // partial trailing record is torn.
    while cur.remaining() >= V1_RECORD_LEN {
        let offset = cur.offset();
        let Some(rec) = cur.take(V1_RECORD_LEN) else {
            break;
        };
        let mut fields = Cursor::new(rec);
        let (Some(tag), Some(from), Some(to), Some(stored)) =
            (fields.u8(), fields.u32_le(), fields.u32_le(), fields.u32_le())
        else {
            break;
        };
        let body = rec.get(..V1_RECORD_LEN - 4).unwrap_or(rec);
        if crc32(body) != stored {
            telemetry::metrics::STORE_CRC_FAILURES.incr();
            return Decoded {
                version: VERSION_V1,
                committed: records.len(),
                committed_end: offset,
                records,
                end: DecodeEnd::Corrupt {
                    index,
                    offset,
                    reason: "CRC mismatch".to_string(),
                },
            };
        }
        if tag != TAG_ADD_EDGE {
            return Decoded {
                version: VERSION_V1,
                committed: records.len(),
                committed_end: offset,
                records,
                end: DecodeEnd::Corrupt {
                    index,
                    offset,
                    reason: format!("unknown record tag {tag}"),
                },
            };
        }
        records.push(WalRecord::AddEdge {
            from: NodeId::from_index(from as usize),
            to: NodeId::from_index(to as usize),
        });
        index += 1;
    }
    let committed_end = cur.offset();
    let end = if cur.remaining() == 0 { DecodeEnd::Clean } else { DecodeEnd::Torn };
    Decoded {
        version: VERSION_V1,
        committed: records.len(),
        committed_end,
        records,
        end,
    }
}

fn decode_engine_v2(mut cur: Cursor<'_>) -> Decoded {
    let mut records: Vec<WalRecord> = Vec::new();
    let mut committed = 0usize;
    let mut committed_end = cur.offset();
    let mut index = 0usize;
    let corrupt = |records: Vec<WalRecord>,
                   committed: usize,
                   committed_end: usize,
                   index: usize,
                   offset: usize,
                   reason: String| Decoded {
        version: VERSION,
        records,
        committed,
        committed_end,
        end: DecodeEnd::Corrupt { index, offset, reason },
    };
    loop {
        if cur.remaining() == 0 {
            break;
        }
        let offset = cur.offset();
        // A tear inside the 4 length bytes, or a body/CRC shorter than the
        // declared length, is the crash signature: the write stopped partway.
        let Some(len) = cur.u32_le() else {
            return Decoded {
                version: VERSION,
                records,
                committed,
                committed_end,
                end: DecodeEnd::Torn,
            };
        };
        let len = len as usize;
        if len == 0 || len > MAX_RECORD_LEN {
            // The 4 length bytes are complete, so they are the bytes that
            // were written — an out-of-bounds value is damage, not a tear.
            return corrupt(
                records,
                committed,
                committed_end,
                index,
                offset,
                format!("record length {len} out of bounds"),
            );
        }
        if cur.remaining() < len + 4 {
            return Decoded {
                version: VERSION,
                records,
                committed,
                committed_end,
                end: DecodeEnd::Torn,
            };
        }
        let (Some(body), Some(stored)) = (cur.take(len), cur.u32_le()) else {
            return Decoded {
                version: VERSION,
                records,
                committed,
                committed_end,
                end: DecodeEnd::Torn,
            };
        };
        if crc32(body) != stored {
            telemetry::metrics::STORE_CRC_FAILURES.incr();
            return corrupt(
                records,
                committed,
                committed_end,
                index,
                offset,
                "CRC mismatch".to_string(),
            );
        }
        match decode_body(body) {
            Ok(DecodedBody::Op(record)) => records.push(record),
            Ok(DecodedBody::Commit(count)) => {
                let run = records.len() - committed;
                if count as usize != run {
                    return corrupt(
                        records,
                        committed,
                        committed_end,
                        index,
                        offset,
                        format!("commit fence covers {count} records but {run} follow the previous fence"),
                    );
                }
                committed = records.len();
                committed_end = cur.offset();
            }
            Err(reason) => {
                return corrupt(records, committed, committed_end, index, offset, reason)
            }
        }
        index += 1;
    }
    let end = if committed == records.len() && committed_end == cur.offset() {
        DecodeEnd::Clean
    } else {
        // Complete records past the last fence: written but never fenced by
        // an fsync, i.e. never acknowledged — the tail recovery drops.
        DecodeEnd::Torn
    };
    Decoded {
        version: VERSION,
        records,
        committed,
        committed_end,
        end,
    }
}

enum DecodedBody {
    Op(WalRecord),
    Commit(u32),
}

fn decode_body(body: &[u8]) -> Result<DecodedBody, String> {
    let mut cur = Cursor::new(body);
    let Some(tag) = cur.u8() else {
        return Err("empty record body".to_string());
    };
    let record = match tag {
        TAG_ADD_EDGE => {
            let (Some(from), Some(to)) = (cur.u32_le(), cur.u32_le()) else {
                return Err("add-edge payload truncated".to_string());
            };
            DecodedBody::Op(WalRecord::AddEdge {
                from: NodeId::from_index(from as usize),
                to: NodeId::from_index(to as usize),
            })
        }
        TAG_PROMOTE => {
            let (Some(node), Some(k)) = (cur.u32_le(), cur.u32_le()) else {
                return Err("promote payload truncated".to_string());
            };
            DecodedBody::Op(WalRecord::Promote {
                node: NodeId::from_index(node as usize),
                k: k as usize,
            })
        }
        TAG_PROMOTE_TO_REQUIREMENTS => DecodedBody::Op(WalRecord::PromoteToRequirements),
        TAG_DEMOTE => DecodedBody::Op(WalRecord::Demote(decode_requirements(&mut cur)?)),
        TAG_SET_REQUIREMENTS => {
            DecodedBody::Op(WalRecord::SetRequirements(decode_requirements(&mut cur)?))
        }
        TAG_COMMIT => {
            let Some(count) = cur.u32_le() else {
                return Err("commit fence payload truncated".to_string());
            };
            DecodedBody::Commit(count)
        }
        other => return Err(format!("unknown record tag {other}")),
    };
    if cur.remaining() != 0 {
        return Err(format!("{} trailing payload bytes", cur.remaining()));
    }
    Ok(record)
}

fn decode_requirements(cur: &mut Cursor<'_>) -> Result<Requirements, String> {
    let (Some(floor), Some(count)) = (cur.u32_le(), cur.u32_le()) else {
        return Err("requirements payload truncated".to_string());
    };
    let mut reqs = Requirements::new();
    for _ in 0..count {
        let Some(name_len) = cur.u32_le() else {
            return Err("requirements pair truncated".to_string());
        };
        let Some(name_bytes) = cur.take(name_len as usize) else {
            return Err("requirements label truncated".to_string());
        };
        let Ok(name) = std::str::from_utf8(name_bytes) else {
            return Err("requirements label is not UTF-8".to_string());
        };
        let Some(k) = cur.u32_le() else {
            return Err("requirements pair truncated".to_string());
        };
        reqs.raise(name, k as usize);
    }
    reqs.raise_floor(floor as usize);
    Ok(reqs)
}

/// Decode a WAL byte stream into its committed records. A file ending
/// mid-record — or, in v2, past the last commit fence — yields the committed
/// prefix with [`WalTail::Torn`]; a complete record with a bad CRC (or any
/// other structural damage) is a typed error.
pub fn decode_wal(bytes: &[u8]) -> Result<(Vec<WalRecord>, WalTail), WalError> {
    let mut decoded = decode_engine(bytes)?;
    match decoded.end {
        DecodeEnd::Corrupt { index, offset, reason } => {
            Err(WalError::CorruptRecord { index, offset, reason })
        }
        DecodeEnd::Clean => Ok((decoded.records, WalTail::Clean)),
        DecodeEnd::Torn => {
            telemetry::metrics::WAL_TORN_TAILS.incr();
            decoded.records.truncate(decoded.committed);
            Ok((decoded.records, WalTail::Torn { valid_len: decoded.committed_end }))
        }
    }
}

/// Scan a WAL byte stream for `dkindex doctor`: version, committed and
/// dropped record counts, and the three-way tail verdict. Unlike
/// [`decode_wal`], a corrupt record is reported in the verdict rather than
/// failing the scan; only header-level damage is an error.
pub fn inspect_wal(bytes: &[u8]) -> Result<WalInspection, WalError> {
    let decoded = decode_engine(bytes)?;
    let uncommitted = decoded.records.len() - decoded.committed;
    let verdict = match decoded.end {
        DecodeEnd::Clean => WalVerdict::Clean,
        DecodeEnd::Torn => WalVerdict::TornTail { valid_len: decoded.committed_end },
        DecodeEnd::Corrupt { index, offset, reason } => {
            WalVerdict::Corrupt { index, offset, reason }
        }
    };
    Ok(WalInspection {
        version: decoded.version,
        committed: decoded.committed,
        uncommitted,
        verdict,
    })
}

// ---- replay --------------------------------------------------------------

/// Outcome of replaying a WAL against a snapshot.
#[derive(Debug)]
pub struct ReplayReport {
    /// Records applied.
    pub applied: usize,
    /// How the log ended.
    pub tail: WalTail,
}

/// Replay decoded `records` into `dk`/`data`. Each record applies exactly as
/// [`crate::serve_ops`] would have applied the operation it logs — replay of
/// the committed prefix is byte-identical to the serve run that wrote it.
/// Records referencing nodes outside the graph are a typed error (the WAL
/// belongs to a different snapshot), raised *before* any mutation of that
/// record; the serve writer never logs such an op.
pub fn replay_records(
    dk: &mut DkIndex,
    data: &mut DataGraph,
    records: &[WalRecord],
    tail: WalTail,
) -> Result<ReplayReport, WalError> {
    let span = telemetry::Span::start(&telemetry::metrics::WAL_REPLAY_NS);
    for (index, record) in records.iter().enumerate() {
        match record {
            WalRecord::AddEdge { from, to }
                if from.index() >= data.node_count() || to.index() >= data.node_count() =>
            {
                return Err(WalError::RecordOutOfRange { index });
            }
            WalRecord::Promote { node, .. } if node.index() >= data.node_count() => {
                return Err(WalError::RecordOutOfRange { index });
            }
            _ => {}
        }
        crate::serve_ops::apply(dk, data, record.to_op());
        telemetry::metrics::WAL_RECORDS_REPLAYED.incr();
    }
    drop(span);
    Ok(ReplayReport { applied: records.len(), tail })
}

/// Decode `bytes` and replay into `dk`/`data` in one step.
pub fn replay(
    dk: &mut DkIndex,
    data: &mut DataGraph,
    bytes: &[u8],
) -> Result<ReplayReport, WalError> {
    let (records, tail) = decode_wal(bytes)?;
    replay_records(dk, data, records.as_slice(), tail)
}

// ---- writing -------------------------------------------------------------

/// The byte sink a [`WalWriter`] appends to. The production store is a real
/// file ([`FileStore`]); the crash torture harness substitutes
/// [`crate::io_fail::SimDisk`] to inject fsync failures and torn writes.
pub trait WalStore {
    /// Append `buf` at the end of the store.
    fn write_all_bytes(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush everything written so far to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// [`WalStore`] over a real file, syncing with `sync_data`.
pub struct FileStore {
    file: File,
}

impl WalStore for FileStore {
    fn write_all_bytes(&mut self, buf: &[u8]) -> io::Result<()> {
        self.file.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// Durable batch sink for the serve maintenance thread: one group commit
/// (single write + single fsync) per batch, all-or-nothing before any
/// acknowledgment is released.
pub trait BatchLog: Send {
    /// Durably log one batch of operations.
    fn log_batch(&mut self, ops: &[ServeOp]) -> io::Result<()>;
}

impl<S: WalStore + Send> BatchLog for WalWriter<S> {
    fn log_batch(&mut self, ops: &[ServeOp]) -> io::Result<()> {
        self.append_batch(ops)
    }
}

/// Append-only WAL handle with fsync-ordered writes: every record — or, for
/// a batch, the batch plus its commit fence — is flushed to stable storage
/// before the append returns.
pub struct WalWriter<S: WalStore = FileStore> {
    store: S,
    version: u32,
    /// v2 op records written since the last commit fence.
    staged: u32,
}

impl WalWriter<FileStore> {
    /// Create (or truncate) a WAL at `path`, writing and syncing the
    /// current-version header.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut store = FileStore { file: File::create(path)? };
        store.write_all_bytes(&encode_header())?;
        store.sync()?;
        Ok(WalWriter { store, version: VERSION, staged: 0 })
    }

    /// Open an existing WAL (either version) for appending. The whole file
    /// is validated first; the unacknowledged tail — a torn record or, in
    /// v2, anything past the last commit fence — is truncated away so new
    /// records extend the committed prefix. Appends continue in the file's
    /// own version.
    pub fn open(path: &Path) -> Result<Self, WalError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let decoded = decode_engine(&bytes)?;
        if let DecodeEnd::Corrupt { index, offset, reason } = decoded.end {
            return Err(WalError::CorruptRecord { index, offset, reason });
        }
        let file = OpenOptions::new().write(true).open(path)?;
        if decoded.committed_end != bytes.len() {
            telemetry::metrics::WAL_TORN_TAILS.incr();
            file.set_len(decoded.committed_end as u64)?;
            file.sync_data()?;
        }
        let mut store = FileStore { file };
        use std::io::Seek;
        store.file.seek(io::SeekFrom::End(0))?;
        Ok(WalWriter { store, version: decoded.version, staged: 0 })
    }
}

impl<S: WalStore> WalWriter<S> {
    /// Wrap a fresh store, writing and syncing a current-version header.
    /// The torture harness builds its writers through here over a
    /// [`crate::io_fail::SimDisk`].
    pub fn with_store(mut store: S) -> io::Result<Self> {
        store.write_all_bytes(&encode_header())?;
        store.sync()?;
        Ok(WalWriter { store, version: VERSION, staged: 0 })
    }

    /// The on-disk version this writer appends in.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Borrow the underlying store (the torture harness reads crash views
    /// through this).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Append one record durably: write, fence (v2), sync, then return.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        self.stage(record)?;
        self.commit()
    }

    /// Write one record without syncing. The record is not durable — and in
    /// v2 not even replayable — until [`WalWriter::commit`] fences it.
    pub fn stage(&mut self, record: &WalRecord) -> io::Result<()> {
        let bytes = self.encode_for_version(record)?;
        self.store.write_all_bytes(&bytes)?;
        self.staged = self.staged.saturating_add(1);
        telemetry::metrics::WAL_RECORDS_APPENDED.incr();
        Ok(())
    }

    /// Fence and fsync everything staged since the previous commit. A v2
    /// fence covers exactly the staged run; v1 has no fences, so this is a
    /// bare sync. A no-op when nothing is staged.
    pub fn commit(&mut self) -> io::Result<()> {
        if self.staged == 0 {
            return Ok(());
        }
        if self.version == VERSION {
            self.store.write_all_bytes(&encode_commit(self.staged))?;
        }
        self.sync_counted()?;
        self.staged = 0;
        telemetry::metrics::WAL_GROUP_COMMITS.incr();
        Ok(())
    }

    /// Group-commit one batch: every op record plus the commit fence in a
    /// single write, then a single fsync. This is the serve maintenance
    /// thread's durability step — nothing in the batch is acknowledged
    /// until this returns `Ok`.
    pub fn append_batch(&mut self, ops: &[ServeOp]) -> io::Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        let span = telemetry::Span::start(&telemetry::metrics::WAL_GROUP_COMMIT_NS);
        let mut buf = Vec::new();
        for op in ops {
            let record = WalRecord::from_op(op);
            buf.extend_from_slice(&self.encode_for_version(&record)?);
        }
        if self.version == VERSION {
            buf.extend_from_slice(&encode_commit(ops.len() as u32));
        }
        self.store.write_all_bytes(&buf)?;
        self.sync_counted()?;
        for _ in ops {
            telemetry::metrics::WAL_RECORDS_APPENDED.incr();
        }
        telemetry::metrics::WAL_GROUP_COMMITS.incr();
        drop(span);
        Ok(())
    }

    fn encode_for_version(&self, record: &WalRecord) -> io::Result<Vec<u8>> {
        if self.version == VERSION_V1 {
            match encode_record_v1(record) {
                Some(bytes) => Ok(bytes.to_vec()),
                None => Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "v1 WAL files can only log add-edge records; \
                     recreate the WAL to log maintenance ops",
                )),
            }
        } else {
            Ok(encode_record(record))
        }
    }

    fn sync_counted(&mut self) -> io::Result<()> {
        match self.store.sync() {
            Ok(()) => Ok(()),
            Err(e) => {
                telemetry::metrics::WAL_SYNC_FAILURES.incr();
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkindex_graph::EdgeKind;

    fn sample() -> (DataGraph, DkIndex) {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        let c = g.add_labeled_node("c");
        let r = g.root();
        g.add_edge(r, a, EdgeKind::Tree);
        g.add_edge(a, b, EdgeKind::Tree);
        g.add_edge(r, c, EdgeKind::Tree);
        let dk = DkIndex::build(&g, Requirements::uniform(2));
        (g, dk)
    }

    fn add(from: usize, to: usize) -> WalRecord {
        WalRecord::AddEdge { from: NodeId::from_index(from), to: NodeId::from_index(to) }
    }

    /// v2 log bytes: each record individually fenced (append-per-record).
    fn log_bytes(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = encode_header().to_vec();
        for r in records {
            bytes.extend_from_slice(&encode_record(r));
            bytes.extend_from_slice(&encode_commit(1));
        }
        bytes
    }

    /// v1 log bytes (legacy format).
    fn log_bytes_v1(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = encode_header_v1().to_vec();
        for r in records {
            bytes.extend_from_slice(&encode_record_v1(r).unwrap());
        }
        bytes
    }

    fn mixed_records() -> Vec<WalRecord> {
        vec![
            add(3, 1),
            WalRecord::Promote { node: NodeId::from_index(1), k: 2 },
            WalRecord::PromoteToRequirements,
            WalRecord::Demote(Requirements::from_pairs([("a", 1), ("b", 2)])),
            WalRecord::SetRequirements({
                let mut r = Requirements::from_pairs([("c", 3)]);
                r.raise_floor(1);
                r
            }),
        ]
    }

    /// The v1 wire layout is a durable format and stays pinned: tag, LE
    /// from, LE to, LE CRC of the first 9 bytes; header is magic + LE 1.
    #[test]
    fn v1_wire_format_bytes_are_pinned() {
        assert_eq!(encode_header_v1(), *b"DKWL\x01\x00\x00\x00");
        let rec = encode_record_v1(&add(0x0102, 3)).unwrap();
        assert_eq!(rec[..9], [1, 0x02, 0x01, 0, 0, 3, 0, 0, 0]);
        assert_eq!(rec[9..], crc32(&rec[..9]).to_le_bytes());
    }

    /// The v2 wire layout is likewise pinned: LE body length, body = tag +
    /// payload, LE CRC of the body; header is magic + LE 2; the commit
    /// fence is tag 6 with an LE op count.
    #[test]
    fn v2_wire_format_bytes_are_pinned() {
        assert_eq!(encode_header(), *b"DKWL\x02\x00\x00\x00");
        let rec = encode_record(&add(0x0102, 3));
        assert_eq!(rec[..4], 9u32.to_le_bytes());
        assert_eq!(rec[4..13], [1, 0x02, 0x01, 0, 0, 3, 0, 0, 0]);
        assert_eq!(rec[13..], crc32(&rec[4..13]).to_le_bytes());
        let fence = encode_commit(7);
        assert_eq!(fence[..4], 5u32.to_le_bytes());
        assert_eq!(fence[4..9], [6, 7, 0, 0, 0]);
        assert_eq!(fence[9..], crc32(&fence[4..9]).to_le_bytes());
        // Requirements pairs are sorted by label name on the wire.
        let reqs = WalRecord::Demote(Requirements::from_pairs([("zz", 1), ("aa", 2)]));
        let body = &encode_record(&reqs)[4..];
        let aa = body.windows(2).position(|w| w == b"aa");
        let zz = body.windows(2).position(|w| w == b"zz");
        assert!(aa.unwrap() < zz.unwrap(), "pairs must be name-sorted");
    }

    #[test]
    fn v2_round_trips_every_op_kind() {
        let records = mixed_records();
        let (back, tail) = decode_wal(&log_bytes(&records)).unwrap();
        assert_eq!(back, records);
        assert_eq!(tail, WalTail::Clean);
    }

    #[test]
    fn v1_streams_still_decode() {
        let records = vec![add(3, 1), add(0, 2)];
        let (back, tail) = decode_wal(&log_bytes_v1(&records)).unwrap();
        assert_eq!(back, records);
        assert_eq!(tail, WalTail::Clean);
    }

    #[test]
    fn v2_torn_record_yields_committed_prefix() {
        let records = vec![add(3, 1), add(0, 2)];
        let full = log_bytes(&records);
        let first_end = HEADER_LEN + encode_record(&records[0]).len() + encode_commit(1).len();
        // Every truncation point inside the second record (or its fence)
        // keeps exactly the first committed record.
        for cut in (first_end + 1)..full.len() {
            let (back, tail) = decode_wal(&full[..cut]).unwrap();
            assert_eq!(back, records[..1], "cut at {cut}");
            assert_eq!(tail, WalTail::Torn { valid_len: first_end }, "cut at {cut}");
        }
    }

    #[test]
    fn v2_unfenced_records_are_dropped_as_torn_tail() {
        // A batch of two records whose fence never made it to disk: both
        // are complete, neither is committed.
        let mut bytes = encode_header().to_vec();
        bytes.extend_from_slice(&encode_record(&add(3, 1)));
        bytes.extend_from_slice(&encode_record(&add(0, 2)));
        let (back, tail) = decode_wal(&bytes).unwrap();
        assert!(back.is_empty(), "unfenced records must not replay");
        assert_eq!(tail, WalTail::Torn { valid_len: HEADER_LEN });
        // With the fence appended, both commit.
        bytes.extend_from_slice(&encode_commit(2));
        let (back, tail) = decode_wal(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(tail, WalTail::Clean);
    }

    #[test]
    fn v2_fence_count_mismatch_is_corrupt() {
        let mut bytes = encode_header().to_vec();
        bytes.extend_from_slice(&encode_record(&add(3, 1)));
        bytes.extend_from_slice(&encode_commit(2));
        let err = decode_wal(&bytes).unwrap_err();
        assert!(matches!(err, WalError::CorruptRecord { .. }), "{err}");
    }

    #[test]
    fn v1_torn_tail_yields_prefix() {
        let records = vec![add(3, 1), add(0, 2)];
        let full = log_bytes_v1(&records);
        for cut in (HEADER_LEN + V1_RECORD_LEN + 1)..full.len() {
            let (back, tail) = decode_wal(&full[..cut]).unwrap();
            assert_eq!(back, records[..1], "cut at {cut}");
            assert_eq!(tail, WalTail::Torn { valid_len: HEADER_LEN + V1_RECORD_LEN });
        }
    }

    #[test]
    fn v1_record_boundary_cuts_are_clean_tails() {
        let records = vec![add(3, 1), add(0, 2), add(2, 4)];
        let full = log_bytes_v1(&records);
        for n in 0..=records.len() {
            let cut = HEADER_LEN + n * V1_RECORD_LEN;
            let (back, tail) = decode_wal(&full[..cut]).unwrap();
            assert_eq!(back, records[..n], "boundary cut after {n} records");
            assert_eq!(tail, WalTail::Clean, "boundary cut after {n} records");
        }
    }

    #[test]
    fn complete_record_with_bad_crc_is_a_typed_error_in_both_versions() {
        let records = vec![add(3, 1)];
        let v1 = log_bytes_v1(&records);
        for byte in HEADER_LEN..v1.len() {
            let mut bytes = v1.clone();
            bytes[byte] ^= 0x40;
            let err = decode_wal(&bytes).unwrap_err();
            assert!(matches!(err, WalError::CorruptRecord { .. }), "v1 flip at {byte}: {err}");
        }
        // v2: flip every body/CRC byte (flips inside a length prefix can
        // legitimately read as torn tails — the length governs framing).
        let v2 = log_bytes(&records);
        let rec_len = encode_record(&records[0]).len();
        let record_len_prefix = HEADER_LEN..HEADER_LEN + 4;
        let fence_len_prefix = HEADER_LEN + rec_len..HEADER_LEN + rec_len + 4;
        for byte in HEADER_LEN..v2.len() {
            if record_len_prefix.contains(&byte) || fence_len_prefix.contains(&byte) {
                continue;
            }
            let mut bytes = v2.clone();
            bytes[byte] ^= 0x40;
            let err = decode_wal(&bytes).unwrap_err();
            assert!(matches!(err, WalError::CorruptRecord { .. }), "v2 flip at {byte}: {err}");
        }
    }

    #[test]
    fn v2_oversized_length_is_corrupt_not_torn() {
        let mut bytes = encode_header().to_vec();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = decode_wal(&bytes).unwrap_err();
        assert!(matches!(err, WalError::CorruptRecord { .. }), "{err}");
    }

    #[test]
    fn header_corruption_is_typed() {
        assert!(matches!(decode_wal(b""), Err(WalError::TruncatedHeader)));
        assert!(matches!(decode_wal(b"DKW"), Err(WalError::TruncatedHeader)));
        assert!(matches!(decode_wal(b"XXXX\x01\0\0\0"), Err(WalError::BadMagic)));
        assert!(matches!(
            decode_wal(b"DKWL\x63\0\0\0"),
            Err(WalError::UnsupportedVersion(0x63))
        ));
    }

    #[test]
    fn inspect_reports_version_counts_and_verdict() {
        let records = mixed_records();
        let clean = inspect_wal(&log_bytes(&records)).unwrap();
        assert_eq!(clean.version, 2);
        assert_eq!(clean.committed, records.len());
        assert_eq!(clean.uncommitted, 0);
        assert!(matches!(clean.verdict, WalVerdict::Clean));

        let mut unfenced = log_bytes(&records[..2]);
        unfenced.extend_from_slice(&encode_record(&records[2]));
        let torn = inspect_wal(&unfenced).unwrap();
        assert_eq!(torn.committed, 2);
        assert_eq!(torn.uncommitted, 1);
        assert!(matches!(torn.verdict, WalVerdict::TornTail { .. }));

        let mut corrupt = log_bytes(&records[..1]);
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        let bad = inspect_wal(&corrupt).unwrap();
        assert!(matches!(bad.verdict, WalVerdict::Corrupt { .. }));

        let v1 = inspect_wal(&log_bytes_v1(&[add(1, 2)])).unwrap();
        assert_eq!(v1.version, 1);
        assert_eq!(v1.committed, 1);
        assert!(matches!(v1.verdict, WalVerdict::Clean));

        assert!(inspect_wal(b"XXXXzzzz").is_err());
    }

    #[test]
    fn replay_matches_direct_application_for_mixed_ops() {
        let (mut g_direct, mut dk_direct) = sample();
        let (mut g_replayed, mut dk_replayed) = sample();
        let records = vec![
            add(3, 1),
            WalRecord::Promote { node: NodeId::from_index(1), k: 3 },
            add(0, 2),
            WalRecord::Demote(Requirements::uniform(1)),
            WalRecord::SetRequirements(Requirements::uniform(2)),
            add(2, 3),
        ];
        for r in &records {
            crate::serve_ops::apply(&mut dk_direct, &mut g_direct, r.to_op());
        }
        let report = replay(&mut dk_replayed, &mut g_replayed, &log_bytes(&records)).unwrap();
        assert_eq!(report.applied, records.len());

        let mut direct_bytes = Vec::new();
        let mut replayed_bytes = Vec::new();
        crate::store::save_dk(&dk_direct, &g_direct, &mut direct_bytes).unwrap();
        crate::store::save_dk(&dk_replayed, &g_replayed, &mut replayed_bytes).unwrap();
        assert_eq!(direct_bytes, replayed_bytes, "replay must be byte-identical");
    }

    #[test]
    fn replay_rejects_out_of_range_records() {
        let (mut g, mut dk) = sample();
        let bytes = log_bytes(&[add(99, 0)]);
        assert!(matches!(
            replay(&mut dk, &mut g, &bytes),
            Err(WalError::RecordOutOfRange { index: 0 })
        ));
        let (mut g, mut dk) = sample();
        let bytes = log_bytes(&[WalRecord::Promote { node: NodeId::from_index(77), k: 1 }]);
        assert!(matches!(
            replay(&mut dk, &mut g, &bytes),
            Err(WalError::RecordOutOfRange { index: 0 })
        ));
    }

    #[test]
    fn op_record_conversion_round_trips() {
        for record in mixed_records() {
            assert_eq!(WalRecord::from_op(&record.to_op()), record);
        }
    }

    #[test]
    fn writer_appends_durably_and_reopens_after_torn_tail() {
        let dir = std::env::temp_dir().join(format!("dkindex-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("updates.wal");

        let mut w = WalWriter::create(&path).unwrap();
        assert_eq!(w.version(), VERSION);
        w.append(&add(3, 1)).unwrap();
        drop(w);

        // Simulate a crash mid-append: a complete record with no fence plus
        // half of another record.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&encode_record(&add(0, 2)));
        bytes.extend_from_slice(&encode_record(&add(1, 1))[..5]);
        std::fs::write(&path, &bytes).unwrap();

        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::Promote { node: NodeId::from_index(2), k: 1 }).unwrap();
        drop(w);

        let bytes = std::fs::read(&path).unwrap();
        let (records, tail) = decode_wal(&bytes).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(
            records,
            vec![add(3, 1), WalRecord::Promote { node: NodeId::from_index(2), k: 1 }],
            "unfenced tail truncated, then one append"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_keeps_appending_v1_files_in_v1() {
        let dir =
            std::env::temp_dir().join(format!("dkindex-wal-v1-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v1.wal");
        std::fs::write(&path, log_bytes_v1(&[add(3, 1)])).unwrap();

        let mut w = WalWriter::open(&path).unwrap();
        assert_eq!(w.version(), 1);
        w.append(&add(0, 2)).unwrap();
        // v1 cannot express maintenance ops — typed error, not a panic.
        let err = w.append(&WalRecord::PromoteToRequirements).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        drop(w);

        let (records, tail) = decode_wal(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(records, vec![add(3, 1), add(0, 2)]);
        assert_eq!(tail, WalTail::Clean);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_append_commits_atomically() {
        let dir =
            std::env::temp_dir().join(format!("dkindex-wal-batch-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("batch.wal");
        let ops = vec![
            ServeOp::AddEdge { from: NodeId::from_index(3), to: NodeId::from_index(1) },
            ServeOp::Promote { node: NodeId::from_index(1), k: 2 },
            ServeOp::SetRequirements(Requirements::uniform(1)),
        ];
        let mut w = WalWriter::create(&path).unwrap();
        w.append_batch(&ops).unwrap();
        w.append_batch(&[]).unwrap();
        drop(w);

        let bytes = std::fs::read(&path).unwrap();
        let (records, tail) = decode_wal(&bytes).unwrap();
        assert_eq!(tail, WalTail::Clean);
        let expected: Vec<WalRecord> = ops.iter().map(WalRecord::from_op).collect();
        assert_eq!(records, expected);
        // Chopping the fence off drops the whole batch.
        let fence_len = encode_commit(ops.len() as u32).len();
        let (records, tail) = decode_wal(&bytes[..bytes.len() - fence_len]).unwrap();
        assert!(records.is_empty());
        assert_eq!(tail, WalTail::Torn { valid_len: HEADER_LEN });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
