//! Structural-sharing (copy-on-write) properties of the delta-epoch
//! storage:
//!
//! * **Byte identity**: every epoch in a COW chain — each state cloned from
//!   its predecessor and batch-mutated — serializes byte-identically to a
//!   from-scratch serial replay of the same op prefix. Sharing is a
//!   representation change, never an answer change.
//! * **Sharing actually happens**: after a batch, every block whose
//!   contents the batch did not change is still the *same allocation*
//!   (`Arc::ptr_eq`) as in the predecessor epoch. A regression back to
//!   full deep clones fails these tests.
//! * Both properties hold through the real `DkServer` publish path, not
//!   just hand-rolled clones.

use dkindex_core::serve::{apply_serial, DkServer, ServeConfig, ServeOp};
use dkindex_core::{snapshot_bytes, DkIndex, IndexGraph, Requirements};
use dkindex_datagen::{random_graph, RandomGraphConfig};
use dkindex_graph::{DataGraph, LabeledGraph, NodeId};
use dkindex_workload::generate_update_edges;

fn fixture() -> (DataGraph, DkIndex, Vec<ServeOp>) {
    let g = random_graph(&RandomGraphConfig {
        nodes: 300,
        labels: 6,
        reference_edges: 30,
        max_fanout: 6,
        seed: 0xC0117,
    });
    let dk = DkIndex::build(&g, Requirements::uniform(2));
    let ops = generate_update_edges(&g, 24, 11)
        .into_iter()
        .map(|(from, to)| ServeOp::AddEdge { from, to })
        .collect();
    (g, dk, ops)
}

/// Same summary state for one index node in two snapshots, judged purely by
/// contents (never by pointers).
fn block_content_eq(a: &IndexGraph, b: &IndexGraph, i: NodeId) -> bool {
    a.label_of(i) == b.label_of(i)
        && a.similarity(i) == b.similarity(i)
        && a.extent(i) == b.extent(i)
        && a.children_of(i) == b.children_of(i)
        && a.parents_of(i) == b.parents_of(i)
}

/// The sharing contract between a predecessor snapshot and its successor:
/// content-unchanged blocks are pointer-identical (a full-clone regression
/// breaks this), and pointer-identical blocks are content-unchanged (COW
/// soundness).
fn assert_sharing_contract(prev: &IndexGraph, next: &IndexGraph, what: &str) {
    let common = prev.size().min(next.size());
    for i in 0..common {
        let inode = NodeId::from_index(i);
        let same_content = block_content_eq(prev, next, inode);
        let same_ptr = next.block_ptr_eq(prev, inode);
        assert!(
            !same_content || same_ptr,
            "{what}: block {i} is content-identical but was deep-copied \
             (COW regression to full clones)"
        );
        assert!(
            !same_ptr || same_content,
            "{what}: block {i} is pointer-shared but its contents diverged \
             (COW unsoundness)"
        );
    }
}

/// A fresh clone shares every block and every adjacency segment; mutating
/// the clone never disturbs the original.
#[test]
fn clone_shares_everything_until_mutated() {
    let (g, dk, _) = fixture();
    let dk2 = dk.clone();
    let g2 = g.clone();

    let (shared, rebuilt) = dk2.index().shared_blocks_with(dk.index());
    assert_eq!(shared, dk.index().size());
    assert_eq!(rebuilt, 0);
    let (seg_shared, seg_total) = g2.shared_segments_with(&g);
    assert_eq!(seg_shared, seg_total);

    assert_eq!(
        snapshot_bytes(&dk2, &g2),
        snapshot_bytes(&dk, &g),
        "shallow clones must serialize identically"
    );
}

/// One edge update touches O(1 + lowered) blocks: everything whose contents
/// the update left alone stays pointer-shared with the pre-update snapshot,
/// and the mutated clone serializes exactly like a serial application of
/// the same op.
#[test]
fn single_edge_update_shares_untouched_blocks() {
    let (g, dk, ops) = fixture();
    let op = &ops[..1];

    let mut next_dk = dk.clone();
    let mut next_g = g.clone();
    apply_serial(&mut next_dk, &mut next_g, op);

    let (shared, rebuilt) = next_dk.index().shared_blocks_with(dk.index());
    assert!(shared > 0, "a single edge must not rebuild the whole store");
    assert!(
        rebuilt < dk.index().size(),
        "a single edge must leave some blocks untouched"
    );
    assert_sharing_contract(dk.index(), next_dk.index(), "single edge");

    // Byte identity against an independent replay from the same base.
    let mut replay_dk = dk.clone();
    let mut replay_g = g.clone();
    apply_serial(&mut replay_dk, &mut replay_g, op);
    assert_eq!(snapshot_bytes(&next_dk, &next_g), snapshot_bytes(&replay_dk, &replay_g));

    // The pre-update snapshot is untouched by the clone's mutation.
    dk.index().check_invariants(&g).unwrap();
}

/// A chain of COW epochs — each built by cloning its predecessor and
/// applying one batch — is byte-identical at every link to a from-scratch
/// serial replay of the corresponding op prefix, and every link honors the
/// sharing contract with its predecessor.
#[test]
fn cow_chain_is_byte_identical_to_serial_replay() {
    let (g, dk, ops) = fixture();
    const BATCH: usize = 4;

    let mut chain_dk = dk.clone();
    let mut chain_g = g.clone();
    let mut applied = 0usize;
    for batch in ops.chunks(BATCH) {
        let prev_dk = chain_dk.clone();
        apply_serial(&mut chain_dk, &mut chain_g, batch);
        applied += batch.len();

        // (a) Byte identity: replay the prefix from scratch.
        let mut replay_dk = dk.clone();
        let mut replay_g = g.clone();
        apply_serial(&mut replay_dk, &mut replay_g, &ops[..applied]);
        assert_eq!(
            snapshot_bytes(&chain_dk, &chain_g),
            snapshot_bytes(&replay_dk, &replay_g),
            "chain diverged from serial replay after {applied} ops"
        );

        // (b) Sharing: the new link shares with its predecessor.
        let (shared, _) = chain_dk.index().shared_blocks_with(prev_dk.index());
        assert!(shared > 0, "batch ending at {applied} rebuilt every block");
        assert_sharing_contract(
            prev_dk.index(),
            chain_dk.index(),
            &format!("chain batch ending at {applied}"),
        );
    }
    chain_dk.index().check_invariants(&chain_g).unwrap();
}

/// The same two properties through the real publish path: epochs published
/// by `DkServer` share untouched blocks with their predecessors (readers
/// holding the old `Arc<Epoch>` keep their snapshot), and the final state
/// is byte-identical to the serial oracle.
#[test]
fn server_publishes_delta_epochs() {
    let (g, dk, ops) = fixture();

    let mut serial_dk = dk.clone();
    let mut serial_g = g.clone();
    apply_serial(&mut serial_dk, &mut serial_g, &ops);
    let expected = snapshot_bytes(&serial_dk, &serial_g);

    let server = DkServer::start(
        g,
        dk,
        ServeConfig {
            max_batch: 8,
            threads: 1,
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();

    let mut prev = handle.epoch();
    for batch in ops.chunks(8) {
        for op in batch {
            server.submit(op.clone()).unwrap();
        }
        server.flush().unwrap();
        let next = handle.epoch();
        assert!(next.id() > prev.id(), "flush must have published");

        let (shared, rebuilt) = next.index().index().shared_blocks_with(prev.index().index());
        assert!(
            shared > 0,
            "publish {} rebuilt all {} blocks — not a delta epoch",
            next.id(),
            shared + rebuilt
        );
        assert_sharing_contract(
            prev.index().index(),
            next.index().index(),
            &format!("publish {}", next.id()),
        );
        // The superseded epoch still answers from an intact snapshot.
        prev.index().index().check_invariants(prev.data()).unwrap();
        prev = next;
    }

    let (final_dk, final_g) = server.shutdown().unwrap();
    assert_eq!(
        snapshot_bytes(&final_dk, &final_g),
        expected,
        "delta-epoch serve run diverged from the serial oracle"
    );
}
