//! Model checking for the `core::serve` epoch publication protocol.
//!
//! The runtime serve tests race real threads, which samples schedules; this
//! suite enumerates **every** interleaving of a paper-model of the protocol
//! with the `dkindex-loom` explorer (the offline loom stand-in — see
//! `crates/loom-shim` for why step-atomic exhaustive interleaving is sound
//! for a fully lock-protected protocol like this one).
//!
//! Modeled protocol, mirroring `core::serve`:
//!
//! * submitters push ops into a FIFO queue (the mpsc channel);
//! * one maintenance thread atomically drains the queue, applies the ops in
//!   submission order to its owned state, and publishes a new epoch (the
//!   `RwLock<Arc<Epoch>>` pointer swap) — apply+publish is one critical
//!   section, matching the single-writer discipline;
//! * readers atomically load the current epoch and evaluate against it,
//!   with a memo keyed by the epoch (the per-epoch query cache).
//!
//! Checked properties: epoch snapshots are prefix-folds of submission
//! order (determinism vs the serial oracle), published state never skips
//! or reorders ops, reader observations are always consistent with some
//! published epoch, and the per-epoch memo can never serve an answer from
//! a different epoch. A deliberately broken variant (a global memo that
//! survives publishes) must be *caught* — proving the checker has teeth.

use loom::{explore, thread, Step};

/// The submission order every model run uses. Epoch state is the applied
/// prefix of this sequence.
const OPS: [u32; 3] = [10, 20, 30];

/// Shared state of the protocol model. Everything a real run keeps behind
/// locks/channels is a plain field here; steps are the critical sections.
#[derive(Clone, Default)]
struct ServeModel {
    /// The op channel: submitted but not yet drained.
    queue: Vec<u32>,
    /// Maintenance-owned state: ops applied, in order.
    applied: Vec<u32>,
    /// Epoch history; `published[i]` is the state snapshot of epoch `i`.
    /// Index 0 is the initial (empty) epoch.
    published: Vec<Vec<u32>>,
    /// Reader observations: (epoch id, state seen).
    observed: Vec<(usize, Vec<u32>)>,
    /// Per-epoch memo: (epoch id it was computed on, cached answer).
    memo: Option<(usize, u32)>,
    /// Memoized answers readers actually returned: (epoch id, answer).
    answers: Vec<(usize, u32)>,
}

impl ServeModel {
    fn initial() -> ServeModel {
        ServeModel {
            published: vec![Vec::new()],
            ..ServeModel::default()
        }
    }

    /// The modeled query result on an epoch's state: something that changes
    /// whenever an op is applied, so staleness is observable.
    fn answer_on(state: &[u32]) -> u32 {
        state.iter().sum::<u32>() + state.len() as u32
    }
}

/// A submitter step: enqueue the next op (one mpsc send).
fn submit(op: u32) -> Step<ServeModel> {
    Box::new(move |s: &mut ServeModel| s.queue.push(op))
}

/// A maintenance step: drain the whole queue, apply in order, publish one
/// new epoch if anything was applied. Atomic, like the real single-writer
/// critical section.
fn maintain() -> Step<ServeModel> {
    Box::new(|s: &mut ServeModel| {
        if s.queue.is_empty() {
            return;
        }
        s.applied.append(&mut s.queue);
        s.published.push(s.applied.clone());
    })
}

/// A reader step: load the current epoch and record what it saw.
fn read() -> Step<ServeModel> {
    Box::new(|s: &mut ServeModel| {
        let id = s.published.len() - 1;
        let state = s.published[id].clone();
        s.observed.push((id, state));
    })
}

/// A reader step with the **correct** memo: keyed by epoch id, so a publish
/// invalidates it by key mismatch (the real code drops the memo with the
/// epoch `Arc` — same invariant).
fn read_memoized() -> Step<ServeModel> {
    Box::new(|s: &mut ServeModel| {
        let id = s.published.len() - 1;
        let answer = match s.memo {
            Some((memo_id, cached)) if memo_id == id => cached,
            _ => {
                let fresh = ServeModel::answer_on(&s.published[id]);
                s.memo = Some((id, fresh));
                fresh
            }
        };
        s.answers.push((id, answer));
    })
}

/// A reader step with a **broken** global memo that survives publishes —
/// the bug the per-epoch design exists to make impossible.
fn read_global_memo() -> Step<ServeModel> {
    Box::new(|s: &mut ServeModel| {
        let id = s.published.len() - 1;
        let answer = match s.memo {
            Some((_, cached)) => cached,
            None => {
                let fresh = ServeModel::answer_on(&s.published[id]);
                s.memo = Some((id, fresh));
                fresh
            }
        };
        s.answers.push((id, answer));
    })
}

/// Epochs are prefix-folds of submission order, ids are dense and
/// monotone, and the newest epoch always equals the applied state.
fn epoch_invariant(s: &ServeModel) -> Result<(), String> {
    for (id, state) in s.published.iter().enumerate() {
        if state.as_slice() != &OPS[..state.len()] {
            return Err(format!("epoch {id} is not a submission-order prefix: {state:?}"));
        }
        if id > 0 && state.len() <= s.published[id - 1].len() {
            return Err(format!("epoch {id} did not grow over epoch {}", id - 1));
        }
    }
    match s.published.last() {
        Some(newest) if newest == &s.applied => Ok(()),
        _ => Err("newest epoch diverged from the maintenance-owned state".to_string()),
    }
}

/// Every reader observation matches the epoch it claims to have read.
fn observation_invariant(s: &ServeModel) -> Result<(), String> {
    for (id, state) in &s.observed {
        match s.published.get(*id) {
            Some(published) if published == state => {}
            _ => return Err(format!("observation of epoch {id} saw {state:?}")),
        }
    }
    Ok(())
}

/// Every answer a reader returned is exact for the epoch it was read on.
fn memo_invariant(s: &ServeModel) -> Result<(), String> {
    for (id, answer) in &s.answers {
        let expected = ServeModel::answer_on(&s.published[*id]);
        if *answer != expected {
            return Err(format!(
                "epoch {id} answered {answer}, expected {expected}: stale memo served"
            ));
        }
    }
    Ok(())
}

/// Epoch publication: under every interleaving of 3 submits, 2 maintenance
/// drains, and 2 reads, epochs are submission-order prefixes and readers
/// only ever observe published, consistent snapshots.
#[test]
fn epoch_publication_is_consistent_under_all_interleavings() {
    let explored = explore(
        &ServeModel::initial(),
        vec![
            thread("submitter", OPS.iter().map(|&op| submit(op)).collect()),
            thread("maintenance", vec![maintain(), maintain()]),
            thread("reader", vec![read(), read()]),
        ],
        |s| {
            epoch_invariant(s)?;
            observation_invariant(s)
        },
        |_| Ok(()),
    )
    .unwrap_or_else(|v| panic!("{v}"));
    assert!(explored.interleavings > 100, "model too small to mean anything");
}

/// Determinism vs the serial oracle: whatever the schedule, the applied
/// prefix plus the still-queued suffix is exactly the submission order —
/// draining the rest serially lands on the serial fold's result.
#[test]
fn any_schedule_converges_to_the_serial_fold() {
    explore(
        &ServeModel::initial(),
        vec![
            thread("submitter", OPS.iter().map(|&op| submit(op)).collect()),
            thread("maintenance", vec![maintain(), maintain(), maintain()]),
        ],
        epoch_invariant,
        |s| {
            let mut serial = s.applied.clone();
            serial.extend(&s.queue);
            if serial == OPS {
                Ok(())
            } else {
                Err(format!("applied {:?} + queued {:?} lost or reordered ops", s.applied, s.queue))
            }
        },
    )
    .unwrap_or_else(|v| panic!("{v}"));
}

/// The per-epoch memo never serves an answer computed on a different
/// epoch, under every interleaving of updates and memoized reads.
#[test]
fn per_epoch_memo_never_serves_stale_answers() {
    explore(
        &ServeModel::initial(),
        vec![
            thread("submitter", OPS.iter().map(|&op| submit(op)).collect()),
            thread("maintenance", vec![maintain(), maintain()]),
            thread("reader", vec![read_memoized(), read_memoized(), read_memoized()]),
        ],
        |s| {
            epoch_invariant(s)?;
            memo_invariant(s)
        },
        |_| Ok(()),
    )
    .unwrap_or_else(|v| panic!("{v}"));
}

/// Teeth check: a global memo that survives publishes MUST be caught — the
/// explorer has to find the schedule where a reader memoizes on the old
/// epoch and replays it after an update published a new one.
#[test]
fn global_memo_bug_is_caught_by_the_explorer() {
    let violation = explore(
        &ServeModel::initial(),
        vec![
            thread("submitter", vec![submit(OPS[0])]),
            thread("maintenance", vec![maintain()]),
            thread("reader", vec![read_global_memo(), read_global_memo()]),
        ],
        |s| {
            epoch_invariant(s)?;
            memo_invariant(s)
        },
        |_| Ok(()),
    )
    .expect_err("the stale global memo must be detected");
    assert!(
        violation.message.contains("stale memo served"),
        "wrong violation: {violation}"
    );
}
